//! Breadth-first search: hop distances `hop(u, v)` and the unweighted diameter
//! `D(G) = max_{u,v} hop(u, v)` (§1.3 of the paper).

use std::collections::VecDeque;

use crate::dist::{Distance, INFINITY};
use crate::graph::Graph;
use crate::ids::NodeId;

/// Hop distances from a single source, as produced by [`bfs`].
#[derive(Debug, Clone)]
pub struct HopDistances {
    source: NodeId,
    dist: Vec<Distance>,
}

impl HopDistances {
    /// The source the search started from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// `hop(source, v)`, or [`INFINITY`] if unreachable.
    pub fn dist(&self, v: NodeId) -> Distance {
        self.dist[v.index()]
    }

    /// The raw distance array indexed by node.
    pub fn as_slice(&self) -> &[Distance] {
        &self.dist
    }

    /// Largest finite hop distance from the source (its eccentricity).
    pub fn eccentricity(&self) -> Distance {
        self.dist.iter().copied().filter(|&d| d != INFINITY).max().unwrap_or(0)
    }
}

/// Computes hop distances from `source` by BFS in `O(n + m)`.
pub fn bfs(g: &Graph, source: NodeId) -> HopDistances {
    let mut dist = vec![INFINITY; g.len()];
    dist[source.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for (u, _) in g.neighbors(v) {
            if dist[u.index()] == INFINITY {
                dist[u.index()] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    HopDistances { source, dist }
}

/// Computes hop distances from `source`, exploring only up to `max_hops`.
///
/// Nodes farther than `max_hops` hops keep distance [`INFINITY`]. Used to model the
/// paper's local explorations "to depth d" without touching the rest of the graph.
pub fn bfs_limited(g: &Graph, source: NodeId, max_hops: usize) -> HopDistances {
    let mut dist = vec![INFINITY; g.len()];
    dist[source.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        if dv as usize >= max_hops {
            continue;
        }
        for (u, _) in g.neighbors(v) {
            if dist[u.index()] == INFINITY {
                dist[u.index()] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    HopDistances { source, dist }
}

/// Multi-source BFS: for every node, the hop distance to the closest source and that
/// source's identity (ties broken towards the smaller source ID — the paper's
/// "break ties arbitrarily" made deterministic).
///
/// Returns `(closest_source, hop_distance)` per node; unreachable nodes map to
/// `(None, INFINITY)`.
pub fn multi_source_bfs(g: &Graph, sources: &[NodeId]) -> Vec<(Option<NodeId>, Distance)> {
    let mut dist = vec![INFINITY; g.len()];
    let mut owner: Vec<Option<NodeId>> = vec![None; g.len()];
    let mut queue = VecDeque::new();
    let mut sorted = sources.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    for &s in &sorted {
        dist[s.index()] = 0;
        owner[s.index()] = Some(s);
        queue.push_back(s);
    }
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        let ov = owner[v.index()];
        for (u, _) in g.neighbors(v) {
            if dist[u.index()] == INFINITY {
                dist[u.index()] = dv + 1;
                owner[u.index()] = ov;
                queue.push_back(u);
            }
        }
    }
    owner.into_iter().zip(dist).collect()
}

/// The unweighted diameter `D(G) = max_{u,v} hop(u, v)` via `n` BFS runs.
///
/// Returns [`INFINITY`] for disconnected graphs.
pub fn unweighted_diameter(g: &Graph) -> Distance {
    let mut best = 0;
    for v in g.nodes() {
        let d = bfs(g, v);
        for u in g.nodes() {
            let duv = d.dist(u);
            if duv == INFINITY {
                return INFINITY;
            }
            best = best.max(duv);
        }
    }
    best
}

/// Largest hop distance observed from `v` within its `r`-hop neighborhood — the
/// paper's `h_v := max_{w ∈ N_{r}(v)} hop(v, w)` used in Algorithm 9.
pub fn local_max_hop(g: &Graph, v: NodeId, r: usize) -> Distance {
    let d = bfs_limited(g, v, r);
    d.eccentricity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, path};
    use crate::graph::GraphBuilder;

    #[test]
    fn bfs_on_path() {
        let g = path(5, 1).unwrap();
        let d = bfs(&g, NodeId::new(0));
        for i in 0..5 {
            assert_eq!(d.dist(NodeId::new(i)), i as u64);
        }
        assert_eq!(d.eccentricity(), 4);
    }

    #[test]
    fn bfs_ignores_weights() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId::new(0), NodeId::new(1), 100).unwrap();
        b.add_edge(NodeId::new(1), NodeId::new(2), 100).unwrap();
        let g = b.build().unwrap();
        assert_eq!(bfs(&g, NodeId::new(0)).dist(NodeId::new(2)), 2);
    }

    #[test]
    fn bfs_limited_truncates() {
        let g = path(10, 1).unwrap();
        let d = bfs_limited(&g, NodeId::new(0), 3);
        assert_eq!(d.dist(NodeId::new(3)), 3);
        assert_eq!(d.dist(NodeId::new(4)), INFINITY);
    }

    #[test]
    fn multi_source_assigns_closest() {
        let g = path(7, 1).unwrap();
        let res = multi_source_bfs(&g, &[NodeId::new(0), NodeId::new(6)]);
        assert_eq!(res[1], (Some(NodeId::new(0)), 1));
        assert_eq!(res[5], (Some(NodeId::new(6)), 1));
        // Midpoint ties towards smaller source id.
        assert_eq!(res[3], (Some(NodeId::new(0)), 3));
    }

    #[test]
    fn diameter_of_cycle() {
        let g = cycle(8, 1).unwrap();
        assert_eq!(unweighted_diameter(&g), 4);
    }

    #[test]
    fn diameter_disconnected_is_infinite() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId::new(0), NodeId::new(1), 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(unweighted_diameter(&g), INFINITY);
    }

    #[test]
    fn local_max_hop_on_path() {
        let g = path(10, 1).unwrap();
        assert_eq!(local_max_hop(&g, NodeId::new(0), 4), 4);
        assert_eq!(local_max_hop(&g, NodeId::new(5), 3), 3);
        assert_eq!(local_max_hop(&g, NodeId::new(0), 100), 9);
    }
}
