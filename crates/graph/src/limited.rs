//! `h`-limited distances — the paper's
//! `d_h(u,v) := min { w(P) : u–v path P, |P| ≤ h }` (§1.3), with `d_h(u,v) = ∞`
//! when no such path exists.
//!
//! `d_h` is *not* a metric restriction of `d`: a hop-limited shortest path may be
//! heavier than the true shortest path. It is computed by `h` rounds of
//! Bellman–Ford relaxation, which is exactly what `h` rounds of local flooding
//! compute in the LOCAL part of the HYBRID model — so this module is also the
//! knowledge-semantics backend of the simulator's local phases.

use crate::dist::{dist_add, Distance, INFINITY};
use crate::graph::Graph;
use crate::ids::NodeId;

/// Two-array Bellman–Ford DP with a frontier worklist. The two-phase structure
/// (collect all relaxations from the current frontier, then apply them) is what
/// guarantees a value advances exactly one hop per iteration — an in-place update
/// loop would let improvements travel multiple hops per iteration and undercount
/// `d_h`. Runs in `O(h · m)` worst case but only touches the `h`-hop ball.
fn limited_distances_two_array(g: &Graph, source: NodeId, h: usize) -> Vec<Distance> {
    let mut cur = vec![INFINITY; g.len()];
    cur[source.index()] = 0;
    let mut frontier = vec![source];
    for _ in 0..h {
        if frontier.is_empty() {
            break;
        }
        let mut updates: Vec<(NodeId, Distance)> = Vec::new();
        for &v in &frontier {
            let dv = cur[v.index()];
            for (u, w) in g.neighbors(v) {
                let nd = dist_add(dv, w);
                if nd < cur[u.index()] {
                    updates.push((u, nd));
                }
            }
        }
        let mut next = Vec::new();
        for (u, nd) in updates {
            if nd < cur[u.index()] {
                cur[u.index()] = nd;
                next.push(u);
            }
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }
    cur
}

/// `d_h(source, ·)` for all nodes (two-array Bellman–Ford DP; exact hop budget).
pub fn hop_limited_distances(g: &Graph, source: NodeId, h: usize) -> Vec<Distance> {
    limited_distances_two_array(g, source, h)
}

/// `d_h(s, ·)` for every `s` in `sources`; rows are in the order of `sources`.
pub fn hop_limited_from_set(g: &Graph, sources: &[NodeId], h: usize) -> Vec<Vec<Distance>> {
    sources.iter().map(|&s| hop_limited_distances(g, s, h)).collect()
}

/// Marks every node within `h` hops (unweighted) of any seed: multi-source
/// BFS truncated at depth `h`. Seeds themselves are marked (depth 0). This is
/// the ball primitive of churn damage analysis — a `d_h` row of `s` can only
/// change if `s` lies within `h` hops of an edited edge endpoint.
pub fn mark_within_hops(g: &Graph, seeds: &[NodeId], h: usize) -> Vec<bool> {
    let mut mark = vec![false; g.len()];
    let mut frontier: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if !mark[s.index()] {
            mark[s.index()] = true;
            frontier.push(s);
        }
    }
    for _ in 0..h {
        if frontier.is_empty() {
            break;
        }
        let mut next = Vec::new();
        for &v in &frontier {
            for (u, _) in g.neighbors(v) {
                if !mark[u.index()] {
                    mark[u.index()] = true;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    mark
}

/// Sparse view of `d_h(source, ·)`: only the reached `(node, distance)` pairs,
/// sorted by node. Useful when `h`-hop balls are much smaller than `n`.
pub fn hop_limited_sparse(g: &Graph, source: NodeId, h: usize) -> Vec<(NodeId, Distance)> {
    hop_limited_distances(g, source, h)
        .into_iter()
        .enumerate()
        .filter(|&(_, d)| d != INFINITY)
        .map(|(i, d)| (NodeId::new(i), d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::generators::{erdos_renyi_connected, path};
    use crate::graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The in-place worklist version can propagate multiple hops per iteration; the
    /// exported `hop_limited_distances` must not. This graph exposes the difference:
    /// light long path vs heavy short path.
    fn hop_tradeoff_graph() -> Graph {
        // 0 -1- 1 -1- 2 -1- 3 (3 hops, weight 3)  vs  0 -5- 3 (1 hop, weight 5)
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId::new(0), NodeId::new(1), 1).unwrap();
        b.add_edge(NodeId::new(1), NodeId::new(2), 1).unwrap();
        b.add_edge(NodeId::new(2), NodeId::new(3), 1).unwrap();
        b.add_edge(NodeId::new(0), NodeId::new(3), 5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn respects_hop_budget() {
        let g = hop_tradeoff_graph();
        let d1 = hop_limited_distances(&g, NodeId::new(0), 1);
        assert_eq!(d1[3], 5); // only the direct heavy edge fits in 1 hop
        let d2 = hop_limited_distances(&g, NodeId::new(0), 2);
        assert_eq!(d2[3], 5); // 2 hops still cannot use the light path
        let d3 = hop_limited_distances(&g, NodeId::new(0), 3);
        assert_eq!(d3[3], 3); // 3 hops unlock the light path
    }

    #[test]
    fn zero_hops_reaches_only_source() {
        let g = path(4, 1).unwrap();
        let d = hop_limited_distances(&g, NodeId::new(1), 0);
        assert_eq!(d[1], 0);
        assert_eq!(d[0], INFINITY);
        assert_eq!(d[2], INFINITY);
    }

    #[test]
    fn unreached_nodes_are_infinite() {
        let g = path(6, 1).unwrap();
        let d = hop_limited_distances(&g, NodeId::new(0), 2);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], INFINITY);
    }

    #[test]
    fn large_h_matches_dijkstra() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = erdos_renyi_connected(60, 0.08, 10, &mut rng).unwrap();
        let sp = dijkstra(&g, NodeId::new(0));
        let dh = hop_limited_distances(&g, NodeId::new(0), g.len());
        assert_eq!(sp.as_slice(), dh.as_slice());
    }

    #[test]
    fn monotone_in_h() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = erdos_renyi_connected(40, 0.1, 5, &mut rng).unwrap();
        let mut prev = hop_limited_distances(&g, NodeId::new(3), 0);
        for h in 1..10 {
            let cur = hop_limited_distances(&g, NodeId::new(3), h);
            for i in 0..g.len() {
                assert!(cur[i] <= prev[i], "d_h must be non-increasing in h");
            }
            prev = cur;
        }
    }

    #[test]
    fn sparse_matches_dense() {
        let g = path(8, 2).unwrap();
        let dense = hop_limited_distances(&g, NodeId::new(0), 3);
        let sparse = hop_limited_sparse(&g, NodeId::new(0), 3);
        assert_eq!(sparse.len(), 4);
        for (v, d) in sparse {
            assert_eq!(dense[v.index()], d);
        }
    }

    #[test]
    fn mark_within_hops_is_the_bfs_ball() {
        let g = path(10, 7).unwrap(); // weights are irrelevant: hops only
        let mark = mark_within_hops(&g, &[NodeId::new(3), NodeId::new(8)], 2);
        let expected: Vec<bool> =
            (0..10).map(|v| (1..=5).contains(&v) || (6..=9).contains(&v)).collect();
        assert_eq!(mark, expected);
        let zero = mark_within_hops(&g, &[NodeId::new(4)], 0);
        assert_eq!(zero.iter().filter(|&&m| m).count(), 1);
        assert!(zero[4]);
    }

    #[test]
    fn from_set_rows_align() {
        let g = path(5, 1).unwrap();
        let rows = hop_limited_from_set(&g, &[NodeId::new(0), NodeId::new(4)], 2);
        assert_eq!(rows[0][2], 2);
        assert_eq!(rows[1][2], 2);
        assert_eq!(rows[0][4], INFINITY);
    }
}
