//! Failure-injection tests: the simulator's first-class fault hooks
//! (`FaultPlan` message drops and node crashes), the congestion machinery
//! under starved caps, the low-probability failure events of the randomized
//! lemmas, and the overflow policies under pressure.
//!
//! The fault regimes themselves are declarative: starved caps come from
//! `HybridConfig::starved`, and drops/crashes are `hybrid_sim::FaultPlan`s
//! installed in the exchange engine — the same hooks the scenario registry's
//! `faulty-*` entries use (see `crates/scenarios`).

use hybrid_shortest_paths::core::skeleton_ops::compute_representatives;
use hybrid_shortest_paths::core::token_routing::{route_tokens, RoutingRates, Token};
use hybrid_shortest_paths::core::HybridError;
use hybrid_shortest_paths::graph::apsp::apsp as reference_apsp;
use hybrid_shortest_paths::graph::generators::{cycle, erdos_renyi_connected, path};
use hybrid_shortest_paths::graph::skeleton::Skeleton;
use hybrid_shortest_paths::graph::{NodeId, INFINITY};
use hybrid_shortest_paths::scenarios;
use hybrid_shortest_paths::sim::{
    Crash, Envelope, FaultPlan, HybridConfig, HybridNet, OverflowPolicy, SimError,
};
use hybrid_shortest_paths::{solve, DiameterCorollary, Query};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn strict_policy_surfaces_send_overflow_from_protocols() {
    // With send cap 1 and strict failure, token routing must abort with a
    // simulator error rather than silently mis-charge.
    let g = path(40, 1).unwrap();
    let mut net = HybridNet::new(&g, HybridConfig::starved(OverflowPolicy::Fail));
    let tokens: Vec<Token<u8>> =
        (0..20).map(|i| Token::new(NodeId::new(0), NodeId::new(30), i, 0)).collect();
    let err = route_tokens(
        &mut net,
        tokens,
        &[NodeId::new(0)],
        &[NodeId::new(30)],
        RoutingRates::dense(),
        1,
        "tr",
    )
    .unwrap_err();
    assert!(
        matches!(err, HybridError::Sim(SimError::RecvCapExceeded { .. }))
            || matches!(err, HybridError::Sim(SimError::SendCapExceeded { .. })),
        "got {err:?}"
    );
}

#[test]
fn stretch_policy_pays_rounds_instead_of_failing() {
    // Same starved instance under Stretch: completes correctly, just slower.
    let g = path(40, 1).unwrap();
    let mut generous = HybridNet::new(&g, HybridConfig::default());
    let mk = || -> Vec<Token<u8>> {
        (0..20).map(|i| Token::new(NodeId::new(0), NodeId::new(30), i, 0)).collect()
    };
    let fast = route_tokens(
        &mut generous,
        mk(),
        &[NodeId::new(0)],
        &[NodeId::new(30)],
        RoutingRates::dense(),
        1,
        "tr",
    )
    .unwrap();
    let mut slow_net = HybridNet::new(&g, HybridConfig::starved(OverflowPolicy::Stretch));
    let slow = route_tokens(
        &mut slow_net,
        mk(),
        &[NodeId::new(0)],
        &[NodeId::new(30)],
        RoutingRates::dense(),
        1,
        "tr",
    )
    .unwrap();
    assert_eq!(slow.len(), 20, "all tokens still delivered");
    assert!(
        slow.rounds > fast.rounds,
        "starved net must pay more rounds ({} vs {})",
        slow.rounds,
        fast.rounds
    );
    assert!(slow_net.metrics().stretched_exchanges > 0);
}

#[test]
fn degenerate_caps_rejected_at_construction() {
    // The old failure mode: a 0-messages/round cap silently starved paced
    // exchanges. Now it is a structured construction error.
    let g = path(8, 1).unwrap();
    for bad in [0.0, -2.0, f64::NAN, f64::INFINITY] {
        let cfg = HybridConfig {
            send_cap_factor: bad,
            recv_cap_factor: 1.0,
            overflow: OverflowPolicy::Stretch,
        };
        assert!(
            matches!(HybridNet::try_new(&g, cfg), Err(SimError::InvalidConfig { .. })),
            "factor {bad} must be rejected"
        );
    }
}

#[test]
fn direct_exchange_overflow_errors_are_precise() {
    let g = path(8, 1).unwrap();
    let mut net = HybridNet::new(&g, HybridConfig::starved(OverflowPolicy::Fail));
    // Send cap is 1: two messages from one node must fail with the node named.
    let err = net
        .exchange(
            "t",
            vec![
                Envelope::new(NodeId::new(2), NodeId::new(3), 0u8),
                Envelope::new(NodeId::new(2), NodeId::new(4), 1u8),
            ],
        )
        .unwrap_err();
    match err {
        SimError::SendCapExceeded { node, sent, cap } => {
            assert_eq!(node, NodeId::new(2));
            assert_eq!(sent, 2);
            assert_eq!(cap, 1);
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn dropped_messages_never_corrupt_apsp() {
    // The recovery contract end to end: the solver routes faulty runs through
    // the reliable exchange layer, so under random global-message loss exact
    // APSP *completes with the exact answer* on every seed — lost messages are
    // retransmitted (and billed), never silently absorbed or aborted on.
    let mut rng = StdRng::seed_from_u64(8);
    let g = erdos_renyi_connected(60, 10.0 / 60.0, 4, &mut rng).unwrap();
    let exact = reference_apsp(&g);
    let mut total_dropped = 0u64;
    let mut total_retransmitted = 0u64;
    for seed in 0..6u64 {
        let mut net = HybridNet::new(&g, HybridConfig::default());
        net.inject_faults(&FaultPlan::drops(0.01, seed)).unwrap();
        let out = solve(&mut net, &Query::apsp().xi(1.5).build().unwrap(), 5)
            .expect("reliable delivery must recover every loss");
        assert!(out.guarantee.is_exact(), "drop-only plans recover undowngraded");
        let dist = out.distances().expect("matrix answer");
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    dist.get(u, v),
                    exact.get(u, v),
                    "recovered run must answer exactly at d({u},{v})"
                );
            }
        }
        assert_eq!(out.dropped_messages, net.metrics().dropped_messages);
        total_dropped += net.metrics().dropped_messages;
        total_retransmitted += net.metrics().retransmissions;
        assert_eq!(net.metrics().declared_dead, 0, "nobody crashed");
    }
    assert!(total_dropped > 0, "the drop stream must bite across 6 seeds");
    assert!(total_retransmitted >= total_dropped, "every loss costs at least one retransmission");
}

#[test]
fn crashed_nodes_fall_silent_mid_protocol() {
    // A node that crashes mid-run stops sending and receiving; the reliable
    // layer detects it, the solver degrades to the LOCAL fallback, and the
    // downgrade is recorded explicitly — never a silent answer change.
    use hybrid_shortest_paths::core::solver::Guarantee;
    let g = cycle(32, 1).unwrap();
    let mut net = HybridNet::new(&g, HybridConfig::default());
    net.inject_faults(&FaultPlan::node_crashes(vec![Crash { node: NodeId::new(7), at_round: 10 }]))
        .unwrap();
    let out = solve(&mut net, &Query::apsp().xi(1.5).build().unwrap(), 3)
        .expect("crash recovery must complete");
    assert!(net.metrics().dropped_messages > 0, "the crash must remove traffic");
    assert_eq!(
        out.dropped_messages,
        net.metrics().dropped_messages,
        "the report accounts the faults"
    );
    match out.guarantee {
        Guarantee::Degraded { from, to, .. } => {
            assert_eq!(from, "apsp-thm11");
            assert_eq!(to, "apsp-local-flood");
        }
        other => panic!("a detected crash must degrade explicitly, got {other:?}"),
    }
    // The LOCAL fallback answers exactly on the full (local) graph.
    let exact = reference_apsp(&g);
    let dist = out.distances().expect("matrix answer");
    for u in g.nodes() {
        for v in g.nodes() {
            assert_eq!(dist.get(u, v), exact.get(u, v), "degraded answers are exact");
        }
    }
}

#[test]
fn faulty_registry_scenarios_verify_under_the_lossy_contract() {
    // The registry's fault scenarios are the canonical forms of the ad-hoc
    // setups above: run them through the engine and let the golden
    // verification layer apply the contract.
    for name in ["faulty-drop-apsp", "crash-mid-run-apsp", "faulty-soda20"] {
        let sc = scenarios::find(name).expect("registered");
        let report = scenarios::run_scenario(sc, 48);
        assert!(report.passed(), "{name}: {}", report.detail);
    }
}

#[test]
fn skeleton_undersampling_degrades_gracefully() {
    // A skeleton whose h is far below the sampling gaps: the diameter
    // framework must not panic; it reports a (useless but safe) over-estimate,
    // possibly saturated at INFINITY when the skeleton is disconnected.
    let g = cycle(200, 1).unwrap();
    let mut net = HybridNet::new(&g, HybridConfig::default());
    let query = Query::diameter(DiameterCorollary::Cor52).eps(0.25).xi(0.05).build().unwrap();
    let out = solve(&mut net, &query, 5).unwrap();
    assert!(out.diameter_estimate().unwrap() >= 100, "never underestimates D = 100");
}

#[test]
fn apsp_survives_aggressive_xi_via_fallbacks() {
    // With ξ far below the Lemma C.1 regime the APSP run must still terminate
    // and never *under*estimate; exactness may be lost (that is the Monte
    // Carlo failure event) but the fallback accounting must kick in.
    let g = cycle(150, 1).unwrap();
    let mut net = HybridNet::new(&g, HybridConfig::default());
    let out = solve(&mut net, &Query::apsp().xi(0.1).build().unwrap(), 3).unwrap();
    let dist = out.distances().expect("matrix answer");
    let exact = reference_apsp(&g);
    for u in g.nodes() {
        for v in g.nodes() {
            let got = dist.get(u, v);
            assert!(got >= exact.get(u, v), "no underestimates even on failure");
            assert!(got < INFINITY, "connected graph: something must be found");
        }
    }
}

#[test]
fn representative_fallback_charges_extra_exploration() {
    let g = path(60, 1).unwrap();
    let mut net = HybridNet::new(&g, HybridConfig::default());
    // Skeleton = {0} with tiny h: the far source must fall back.
    let skel = Skeleton::from_nodes(&g, vec![NodeId::new(0)], 2).unwrap();
    let (reps, fallbacks) =
        compute_representatives(&mut net, &skel, &[NodeId::new(59)], 1, "reps").unwrap();
    assert_eq!(fallbacks, 1);
    assert_eq!(reps[0].dist, 59);
    assert!(net.rounds() >= 57);
}

#[test]
fn halved_caps_roughly_double_global_phase_rounds() {
    // The (λ, γ) story quantitatively: global-bound phases scale inversely
    // with the cap, local phases are untouched.
    let mut rng = StdRng::seed_from_u64(4);
    let g = erdos_renyi_connected(150, 0.06, 3, &mut rng).unwrap();
    let query = Query::apsp().xi(1.0).build().unwrap();
    let full = {
        let mut net = HybridNet::new(&g, HybridConfig::default());
        solve(&mut net, &query, 7).unwrap();
        net.into_metrics()
    };
    let halved = {
        let mut net = HybridNet::new(&g, HybridConfig::degraded(0.5, 2.0));
        solve(&mut net, &query, 7).unwrap();
        net.into_metrics()
    };
    assert_eq!(full.local_rounds, halved.local_rounds, "local mode unaffected");
    assert!(
        halved.global_rounds > full.global_rounds,
        "global rounds must grow when γ shrinks ({} vs {})",
        halved.global_rounds,
        full.global_rounds
    );
}

#[test]
fn zero_weight_and_duplicate_edges_rejected_at_the_source() {
    use hybrid_shortest_paths::graph::{GraphBuilder, GraphError};
    let mut b = GraphBuilder::new(3);
    assert!(matches!(
        b.add_edge(NodeId::new(0), NodeId::new(1), 0),
        Err(GraphError::ZeroWeight { .. })
    ));
    b.add_edge(NodeId::new(0), NodeId::new(1), 2).unwrap();
    assert!(matches!(
        b.add_edge(NodeId::new(1), NodeId::new(0), 3),
        Err(GraphError::DuplicateEdge { .. })
    ));
}
