//! A line-delimited TCP front door over [`Broker::serve_line`]: one
//! `std::net::TcpListener`, one scoped thread per connection, hand-rolled
//! newline framing — no crates.io, no async runtime.
//!
//! The framing is hostile-input safe: lines are capped at
//! [`MAX_LINE_BYTES`] (longer ones are answered with `ERR code=oversized`
//! and discarded without buffering them), partial lines split across reads
//! are reassembled, and responses go out through `write_all` so partial
//! writes are always completed or the connection is dropped. A draining
//! server ([`TcpServer::drain`]) finishes requests already in flight but
//! answers every later request with `ERR code=draining`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::Scope;

use crate::broker::Broker;
use crate::protocol::{parse_request, WireRequest};

/// Hard cap on one request line (bytes, newline excluded). Generous for the
/// protocol's grammar — the longest legitimate lines are explicit k-SSP
/// source lists — while bounding per-connection memory.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Handle to a running TCP server: the bound address plus shutdown and drain
/// latches. The accept loop and every connection handler run on the caller's
/// thread scope, so dropping the scope joins them all.
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
}

impl TcpServer {
    /// The address the server actually bound (use with port 0 to let the OS
    /// pick).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a graceful drain: requests already being served finish and
    /// their responses are written, but every request line read after this
    /// point — on new or existing connections — is answered with
    /// `ERR code=draining` instead of touching the broker. Idempotent.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether [`TcpServer::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Signals the accept loop to exit. Idempotent; returns once the latch
    /// is set (the loop observes it on its next wakeup, which the call
    /// forces with a throwaway connection).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept() call; errors are fine — the listener may
        // already be gone.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Serves `broker` on `listener` using threads spawned on `scope`: an accept
/// loop plus one handler per connection, each reading request lines and
/// writing one response line per request. Returns immediately with the
/// server handle; call [`TcpServer::shutdown`] before the scope ends, or the
/// scope will block on the accept loop forever.
///
/// # Errors
///
/// Propagates the listener's `local_addr` failure.
pub fn serve_tcp<'scope, 'env, 'g: 'env>(
    scope: &'scope Scope<'scope, 'env>,
    broker: &'env Broker<'g>,
    listener: TcpListener,
) -> std::io::Result<TcpServer> {
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let draining = Arc::new(AtomicBool::new(false));
    let latch = Arc::clone(&shutdown);
    let drain_latch = Arc::clone(&draining);
    scope.spawn(move || {
        for stream in listener.incoming() {
            if latch.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let drain_latch = Arc::clone(&drain_latch);
            scope.spawn(move || handle_connection(broker, &drain_latch, stream));
        }
    });
    Ok(TcpServer { addr, shutdown, draining })
}

/// Writes one response line; `write_all` loops over partial writes, so the
/// line either lands whole or the connection is dropped.
fn respond(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Answers one complete request line, honouring the drain latch.
fn answer(broker: &Broker<'_>, draining: &AtomicBool, line: &str) -> String {
    if draining.load(Ordering::SeqCst) {
        // Echo the client's correlation id when the line parses.
        let id = match parse_request(line) {
            Ok(WireRequest::Solve { id, .. }) => id,
            _ => 0,
        };
        return format!("ERR id={id} code=draining msg=server is draining, retry elsewhere");
    }
    broker.serve_line(line)
}

/// One connection: reassemble newline-framed lines from raw reads (partial
/// lines survive across reads), answer each through the broker, reject
/// oversized lines without buffering them. I/O errors drop the connection;
/// they never unwind into the scope.
fn handle_connection(broker: &Broker<'_>, draining: &AtomicBool, stream: TcpStream) {
    let Ok(mut read_half) = stream.try_clone() else { return };
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // Inside an oversized line: its rejection was already sent; swallow
    // bytes until the terminating newline.
    let mut discarding = false;
    loop {
        let n = match read_half.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        buf.extend_from_slice(&chunk[..n]);
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let mut line: Vec<u8> = buf.drain(..=pos).collect();
            line.pop(); // the newline
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if discarding {
                discarding = false;
                continue;
            }
            if line.len() > MAX_LINE_BYTES {
                let reject = format!(
                    "ERR id=0 code=oversized msg=request line exceeds {MAX_LINE_BYTES} bytes"
                );
                if respond(&mut writer, &reject).is_err() {
                    return;
                }
                continue;
            }
            let line = String::from_utf8_lossy(&line);
            if line.trim().is_empty() {
                continue;
            }
            let response = answer(broker, draining, &line);
            if respond(&mut writer, &response).is_err() {
                return;
            }
        }
        if !discarding && buf.len() > MAX_LINE_BYTES {
            // The partial line already blew the cap: reject it now and
            // swallow the rest as it streams in, bounding memory.
            let reject =
                format!("ERR id=0 code=oversized msg=request line exceeds {MAX_LINE_BYTES} bytes");
            if respond(&mut writer, &reject).is_err() {
                return;
            }
            buf.clear();
            discarding = true;
        } else if discarding {
            buf.clear();
        }
    }
}
