//! Single-source shortest paths (Theorem 1.3 / Corollary 4.9) and baselines.
//!
//! * [`exact_sssp`] — the paper's `Õ(n^{2/5})` exact SSSP: the k-SSP framework
//!   (Theorem 4.1) instantiated with the exact `Õ(n^{1/6})`-round CLIQUE SSSP
//!   of \[7\] (Theorem 5.2); `δ = 1/6` gives `x = 3/5` and runtime
//!   `Õ(n^{2/5})`. The single source is forced into the skeleton (Lemma 4.5),
//!   so no representative detour and no approximation loss.
//! * [`sssp_local_bellman_ford`] — the LOCAL-mode baseline: distributed
//!   Bellman–Ford over the graph edges, exact in `SPD(G) + 1` rounds. On
//!   low-`SPD` graphs this wins; on the high-`SPD` workloads of experiment E4
//!   (`SPD ∈ Θ(n)`) Theorem 1.3's `Õ(n^{2/5})` is the clear winner — and also
//!   beats the `Õ(√SPD)` algorithm of \[3\] (≈ `√n` there).

use clique_sim::declared::DeclaredKssp;
use hybrid_graph::{Distance, NodeId, INFINITY};
use hybrid_sim::HybridNet;

use crate::error::HybridError;
use crate::ksssp::{kssp_framework_prepared, KsspConfig, KsspOutcome};
use crate::prepare::Prep;

/// Configuration of the SSSP runs — its own parameter set, no longer borrowed
/// from the k-SSP framework config.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsspConfig {
    /// The skeleton radius constant `ξ`. [`exact_sssp`] instantiates the
    /// Theorem 4.1 framework at `δ = 1/6`, i.e. skeleton exponent
    /// `x = 2/(3+2δ) = 3/5`: nodes are sampled into the skeleton with
    /// probability `n^{-2/5}` (so `|V_S| ≈ n^{3/5}`) and connected by paths of
    /// up to `h = ⌈ξ · n^{2/5} · ln n⌉` hops (pinned by the
    /// `xi_scales_the_skeleton_radius_as_documented` test). Larger `ξ` means a
    /// larger `h` — more local exploration rounds, but a lower Lemma C.1
    /// failure probability (the paper's w.h.p. guarantee wants `ξ ≥ 8`, which
    /// exceeds most graph diameters at simulable `n`; experiments document the
    /// value they use).
    pub xi: f64,
}

impl Default for SsspConfig {
    fn default() -> Self {
        SsspConfig { xi: 1.5 }
    }
}

impl SsspConfig {
    /// The framework config this parameter set translates to internally.
    fn framework(self) -> KsspConfig {
        KsspConfig { xi: self.xi }
    }
}

/// Result of an SSSP run.
#[derive(Debug, Clone)]
pub struct SsspOutcome {
    /// The source.
    pub source: NodeId,
    /// Distance per node.
    pub dist: Vec<Distance>,
    /// Total HYBRID rounds.
    pub rounds: u64,
    /// Skeleton size (0 for the local baseline).
    pub skeleton_size: usize,
    /// Skeleton hop budget `h` (0 for the local baseline).
    pub h: usize,
    /// The approximation factor the run guarantees (1.0 for the exact
    /// algorithms; `α + β/T_B` per Lemma 4.5 for the approximate baseline).
    pub guaranteed_factor: f64,
}

/// Exact SSSP in `Õ(n^{2/5})` rounds (Theorem 1.3).
///
/// # Errors
///
/// Propagates framework errors.
pub fn exact_sssp(
    net: &mut HybridNet<'_>,
    source: NodeId,
    cfg: SsspConfig,
    seed: u64,
) -> Result<SsspOutcome, HybridError> {
    exact_sssp_prepared(net, source, cfg, seed, Prep::Cold)
}

pub(crate) fn exact_sssp_prepared(
    net: &mut HybridNet<'_>,
    source: NodeId,
    cfg: SsspConfig,
    seed: u64,
    prep: Prep<'_>,
) -> Result<SsspOutcome, HybridError> {
    let alg = DeclaredKssp::exact_sssp();
    let out: KsspOutcome =
        kssp_framework_prepared(net, &alg, &[source], cfg.framework(), seed, prep)?;
    Ok(SsspOutcome {
        source,
        dist: out.est.into_iter().next().expect("one source row"),
        rounds: out.rounds,
        skeleton_size: out.skeleton_size,
        h: out.h,
        // The source is forced into the skeleton (Lemma 4.5) and the plugged
        // CLIQUE SSSP is exact (α = 1, β = 0): no approximation loss.
        guaranteed_factor: 1.0,
    })
}

/// The `(1+ε)`-approximate SSSP of Augustine et al. \[3\] in `Õ(n^{1/3})`
/// rounds, obtained there by simulating the broadcast congested clique (BCC)
/// SSSP of Becker et al. on a skeleton. In framework terms this is the `γ = 0,
/// δ = 0, η = 1/ε, α = 1+ε` point (`x = 2/3`), which is how we instantiate it
/// (DESIGN.md §3 substitution 1 applies to the BCC algorithm).
///
/// # Errors
///
/// Propagates framework errors.
pub fn approx_sssp_soda20(
    net: &mut HybridNet<'_>,
    source: NodeId,
    eps: f64,
    cfg: SsspConfig,
    seed: u64,
) -> Result<SsspOutcome, HybridError> {
    approx_sssp_soda20_prepared(net, source, eps, cfg, seed, Prep::Cold)
}

pub(crate) fn approx_sssp_soda20_prepared(
    net: &mut HybridNet<'_>,
    source: NodeId,
    eps: f64,
    cfg: SsspConfig,
    seed: u64,
    prep: Prep<'_>,
) -> Result<SsspOutcome, HybridError> {
    assert!(eps > 0.0);
    let alg = clique_sim::declared::DeclaredKssp::custom(
        "AHKSS20-BCC-SSSP",
        clique_sim::SourceCapacity::SingleSource,
        0.0,
        (1.0 / eps).max(1.0),
        1.0 + eps,
        clique_sim::Beta::Zero,
        Some(hybrid_sim::derive_seed(seed, 0xBCC)),
    );
    let out: KsspOutcome =
        kssp_framework_prepared(net, &alg, &[source], cfg.framework(), seed, prep)?;
    let factor = out.guaranteed_factor(false);
    Ok(SsspOutcome {
        source,
        dist: out.est.into_iter().next().expect("one source row"),
        rounds: out.rounds,
        skeleton_size: out.skeleton_size,
        h: out.h,
        guaranteed_factor: factor,
    })
}

/// Baseline: exact SSSP by distributed Bellman–Ford over the *local* network
/// only. One relaxation per round; terminates after `SPD_source + 1` rounds
/// (all charged).
pub fn sssp_local_bellman_ford(net: &mut HybridNet<'_>, source: NodeId) -> SsspOutcome {
    let g = net.graph();
    let n = g.len();
    let mut dist = vec![INFINITY; n];
    dist[source.index()] = 0;
    let mut frontier = vec![source];
    let mut rounds = 0u64;
    while !frontier.is_empty() {
        rounds += 1;
        let mut updates: Vec<(NodeId, Distance)> = Vec::new();
        for &v in &frontier {
            let dv = dist[v.index()];
            for (u, w) in g.neighbors(v) {
                let cand = hybrid_graph::dist_add(dv, w);
                if cand < dist[u.index()] {
                    updates.push((u, cand));
                }
            }
        }
        let mut next = Vec::new();
        for (u, d) in updates {
            if d < dist[u.index()] {
                dist[u.index()] = d;
                next.push(u);
            }
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }
    net.charge_local(rounds, "sssp:local-bf");
    SsspOutcome { source, dist, rounds, skeleton_size: 0, h: 0, guaranteed_factor: 1.0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::dijkstra::dijkstra;
    use hybrid_graph::generators::{erdos_renyi_connected, path_with_heavy_hub};
    use hybrid_sim::HybridConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn framework_sssp_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [60, 110] {
            let g = erdos_renyi_connected(n, 0.07, 6, &mut rng).unwrap();
            let source = NodeId::new(n / 2);
            let exact = dijkstra(&g, source);
            let mut net = HybridNet::new(&g, HybridConfig::default());
            let out = exact_sssp(&mut net, source, SsspConfig::default(), 5).unwrap();
            assert_eq!(out.dist.as_slice(), exact.as_slice());
            assert!(out.skeleton_size >= 1);
        }
    }

    #[test]
    fn local_bf_is_exact_and_charges_spd() {
        let g = path_with_heavy_hub(40, 100).unwrap();
        let source = NodeId::new(0);
        let exact = dijkstra(&g, source);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let out = sssp_local_bellman_ford(&mut net, source);
        assert_eq!(out.dist.as_slice(), exact.as_slice());
        // SPD from node 0 on the 38-edge path: 38 relaxation rounds + final.
        assert!(out.rounds >= 38, "rounds = {}", out.rounds);
        assert_eq!(net.rounds(), out.rounds);
    }

    #[test]
    fn xi_scales_the_skeleton_radius_as_documented() {
        // ξ's meaning for SSSP, pinned so the `SsspConfig::xi` docs cannot
        // drift: at δ = 1/6 the framework samples with exponent x = 3/5, so
        // h = ⌈ξ · n^{1-x} · ln n⌉ (no Lemma C.1 remediation on this dense
        // instance). Larger ξ ⇒ strictly larger h.
        let mut rng = StdRng::seed_from_u64(3);
        let g = erdos_renyi_connected(120, 0.08, 4, &mut rng).unwrap();
        let n = g.len() as f64;
        let x = 2.0 / (3.0 + 2.0 * (1.0 / 6.0));
        let mut prev_h = 0usize;
        for xi in [0.5, 1.0, 2.0] {
            let mut net = HybridNet::new(&g, HybridConfig::default());
            let out = exact_sssp(&mut net, NodeId::new(7), SsspConfig { xi }, 11).unwrap();
            let predicted = ((xi * n.powf(1.0 - x) * n.ln()).ceil() as usize).max(1);
            assert_eq!(out.h, predicted, "xi = {xi}");
            assert!(out.h > prev_h, "h must grow with ξ");
            prev_h = out.h;
            assert_eq!(out.guaranteed_factor, 1.0, "Thm 1.3 is exact at every ξ");
        }
    }

    #[test]
    fn soda20_approx_respects_factor() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = erdos_renyi_connected(90, 0.07, 5, &mut rng).unwrap();
        let source = NodeId::new(4);
        let exact = dijkstra(&g, source);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let out = approx_sssp_soda20(&mut net, source, 0.25, SsspConfig::default(), 9).unwrap();
        for v in g.nodes() {
            let (e, a) = (exact.dist(v), out.dist[v.index()]);
            assert!(a >= e, "never underestimates");
            // γ = 0 ⇒ Lemma 4.5: (α + β/T_B) = (1.25 + 0) plus the framework's
            // exploration slack; allow the declared α exactly.
            assert!(a as f64 <= 1.25 * e as f64 + 1.0, "pair {v}: {a} vs {e}");
        }
    }

    #[test]
    fn framework_beats_local_bf_on_high_spd() {
        // E4's headline shape: on the heavy-hub path (SPD = n-2, D = 2) the
        // framework's Õ(n^{2/5}) must undercut the local Θ(SPD) baseline.
        let g = path_with_heavy_hub(500, 1000).unwrap();
        let source = NodeId::new(0);
        let mut net_a = HybridNet::new(&g, HybridConfig::default());
        let a = exact_sssp(&mut net_a, source, SsspConfig { xi: 0.8 }, 3).unwrap();
        let mut net_b = HybridNet::new(&g, HybridConfig::default());
        let b = sssp_local_bellman_ford(&mut net_b, source);
        assert_eq!(a.dist, b.dist);
        assert!(a.rounds < b.rounds, "framework {} should beat local BF {}", a.rounds, b.rounds);
    }
}
