//! Recovery determinism through the serving front-end (PR 9 satellite): a
//! chaos serving run — faulty tenants, degraded answers, overload retries —
//! executed twice, and under sequential vs sharded round engines
//! (`round_threads` 1 vs 4, the programmatic face of
//! `HYBRID_ROUND_THREADS`), must yield **byte-identical** response streams:
//! every digest, every `degraded=` annotation, and every retry count.
//!
//! Latency is the only thing allowed to differ between runs, and none of the
//! wire responses carry latency, so the full line stream is comparable as-is.

use hybrid_shortest_paths::graph::NodeId;
use hybrid_shortest_paths::scenarios::workloads;
use hybrid_shortest_paths::serve::{run_load, LoadSpec};
use hybrid_shortest_paths::sim::{Crash, FaultPlan};
use hybrid_shortest_paths::{Broker, BrokerConfig, GraphCatalog, Query, TenantConfig};

const SEED: u64 = 23;

/// The chaos tenant mix: healthy, lossy+corrupting, crashing (degraded
/// answers), and a zero-depth tenant that always overloads (retry fodder).
fn chaos_broker<'g>(catalog: &'g GraphCatalog, round_threads: usize) -> Broker<'g> {
    let mut cfg = BrokerConfig::new(SEED);
    cfg.round_threads = Some(round_threads);
    let broker = Broker::new(catalog, cfg);
    broker.register_tenant("steady", TenantConfig::new(4)).unwrap();
    let mut lossy = TenantConfig::new(4);
    lossy.faults = Some(FaultPlan { corrupt_prob: 0.2, ..FaultPlan::drops(0.2, 17) });
    broker.register_tenant("lossy", lossy).unwrap();
    let mut crashy = TenantConfig::new(4);
    crashy.faults =
        Some(FaultPlan::node_crashes(vec![Crash { node: NodeId::new(0), at_round: 1 }]));
    broker.register_tenant("crashy", crashy).unwrap();
    broker.register_tenant("throttled", TenantConfig::new(0)).unwrap();
    broker
}

/// One full chaos run: a fixed wire-request sequence through `serve_line`
/// (the byte stream under test), then a single-client retry workload against
/// the zero-depth tenant. Returns every response line plus the deterministic
/// load counters (retries, shed, issued).
fn chaos_run(round_threads: usize) -> (Vec<String>, (u64, u64, u64)) {
    let g = workloads::er(56, 10.0, 4, 3);
    let mut catalog = GraphCatalog::new();
    catalog.insert("g", g);
    let broker = chaos_broker(&catalog, round_threads);
    let requests = [
        "SOLVE id=1 tenant=steady graph=g query=apsp-thm11:xi=1.5",
        "SOLVE id=2 tenant=lossy graph=g query=apsp-thm11:xi=1.5",
        "SOLVE id=3 tenant=crashy graph=g query=apsp-thm11:xi=1.5",
        "SOLVE id=4 tenant=lossy graph=g query=sssp-thm13:src=3:xi=1.5",
        "SOLVE id=5 tenant=crashy graph=g query=diameter-cor52:eps=0.5:xi=1.5",
        // Fault streams are deterministic per run: the repeat must reproduce
        // id=2's digest exactly even though the plan replays afresh.
        "SOLVE id=6 tenant=lossy graph=g query=apsp-thm11:xi=1.5",
        "SOLVE id=7 tenant=throttled graph=g query=apsp-thm11:xi=1.5",
        "STATS",
    ];
    let stream: Vec<String> = requests.iter().map(|r| broker.serve_line(r)).collect();
    let report = run_load(
        &broker,
        &LoadSpec {
            name: "chaos-retries".into(),
            clients: 1,
            requests_per_client: 4,
            tenants: vec!["throttled".into()],
            graphs: vec!["g".into()],
            queries: vec![Query::apsp().xi(1.5).build().unwrap()],
            seed: SEED,
            retries: 2,
            retry_backoff_ms: 0,
            deadline_ms: None,
            updates: Vec::new(),
            update_every: 0,
        },
    );
    (stream, (report.retries, report.shed, report.issued))
}

/// The stream itself must exercise the chaos surface: degraded annotations
/// with their structured cause, verified faulty-tenant answers, a matching
/// repeat digest, and the structured overload rejection.
fn assert_stream_shape(stream: &[String]) {
    assert!(stream[0].starts_with("OK id=1") && stream[0].contains("guarantee=exact"));
    assert!(
        stream[1].starts_with("OK id=2") && stream[1].contains("verified=1"),
        "lossy tenant must serve verified: {}",
        stream[1]
    );
    assert!(
        stream[2].contains("guarantee=degraded=") && stream[2].contains(":crash-detected"),
        "crashy tenant must answer with a structured degraded guarantee: {}",
        stream[2]
    );
    assert!(stream[4].contains("guarantee=degraded="), "degraded diameter: {}", stream[4]);
    let digest_of = |line: &str| {
        line.split_whitespace()
            .find_map(|t| t.strip_prefix("digest="))
            .map(str::to_string)
            .unwrap_or_else(|| panic!("no digest on {line}"))
    };
    assert_eq!(digest_of(&stream[1]), digest_of(&stream[5]), "repeat digest must match");
    assert!(stream[6].starts_with("ERR id=7 code=overloaded"), "throttled: {}", stream[6]);
    assert!(stream[7].starts_with("STATS "), "stats: {}", stream[7]);
}

#[test]
fn chaos_serving_is_byte_identical_across_runs() {
    let (a, tallies_a) = chaos_run(1);
    let (b, tallies_b) = chaos_run(1);
    assert_stream_shape(&a);
    assert_eq!(a, b, "two identical chaos runs must produce identical response streams");
    assert_eq!(tallies_a, tallies_b, "retry/shed/issued counts must be identical");
    assert_eq!(tallies_a.0, 8, "4 requests x 2 retries, all deterministic");
    assert_eq!(tallies_a.1, 4, "every throttled request sheds after its retries");
}

#[test]
fn chaos_serving_is_byte_identical_across_round_thread_budgets() {
    let (seq, tallies_seq) = chaos_run(1);
    let (par, tallies_par) = chaos_run(4);
    assert_stream_shape(&seq);
    assert_eq!(
        seq, par,
        "sequential and sharded round engines must produce identical response streams"
    );
    assert_eq!(tallies_seq, tallies_par);
}
