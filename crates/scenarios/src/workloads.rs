//! Shared workload-construction helpers: the one place that turns
//! `(n, knobs, seed)` into concrete graphs and source sets. The experiment
//! harness, the examples, and the scenario families all build on these, so no
//! consumer hand-rolls its own RNG-plus-generator setup.

use hybrid_graph::generators::erdos_renyi_connected;
use hybrid_graph::{Distance, Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Erdős–Rényi with expected average degree `avg_deg`, weights in
/// `[1, max_w]`, patched to connectivity, deterministic in `seed`.
pub fn er(n: usize, avg_deg: f64, max_w: Distance, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    erdos_renyi_connected(n, (avg_deg / n as f64).min(1.0), max_w, &mut rng).expect("generator")
}

/// `k` distinct nodes of `0..n`, uniformly without replacement, sorted,
/// deterministic in `seed` — the standard source/landmark picker. This is the
/// same derivation [`hybrid_core::solver::SourceSet::Random`] resolves with,
/// so a registry suite and the equivalent hand-built query pick identical
/// sources.
pub fn random_nodes(n: usize, k: usize, seed: u64) -> Vec<NodeId> {
    hybrid_core::solver::random_sources(n, k, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_deterministic_and_connected() {
        let a = er(60, 8.0, 4, 5);
        let b = er(60, 8.0, 4, 5);
        assert!(a.is_connected());
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn random_nodes_distinct_sorted_deterministic() {
        let a = random_nodes(50, 10, 3);
        let b = random_nodes(50, 10, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(random_nodes(5, 99, 1).len(), 5, "k clamps to n");
    }
}
