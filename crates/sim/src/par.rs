//! Thread sharding for the parallel round engine.
//!
//! The HYBRID model is defined by `n` nodes acting *simultaneously* each
//! round; the simulator exploits exactly that independence: per-node protocol
//! steps and the exchange engine's counting-sort scatter are partitioned into
//! contiguous node shards and run under `std::thread::scope`. Work assigned
//! to a shard depends only on that shard's nodes, so results are
//! **bit-identical** to the sequential execution regardless of thread count.
//!
//! The worker count is `std::thread::available_parallelism`, overridable with
//! the `HYBRID_ROUND_THREADS` environment variable (`1` forces the sequential
//! path everywhere).

/// Items a shard must own before spawning a thread for it is worth the
/// `std::thread::scope` overhead.
pub const MIN_SHARD_ITEMS: usize = 64;

/// Number of round-engine worker threads: the `HYBRID_ROUND_THREADS`
/// environment variable if set, otherwise `available_parallelism`.
pub fn round_threads() -> usize {
    let hw = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    std::env::var("HYBRID_ROUND_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or(hw)
}

/// Effective shard count for `items` work items under a `threads` budget:
/// capped so every shard owns at least [`MIN_SHARD_ITEMS`] items.
pub fn shard_count(threads: usize, items: usize) -> usize {
    threads.min(items / MIN_SHARD_ITEMS).max(1)
}

/// Runs `f` over contiguous shards of `items`, passing each invocation the
/// shard's start offset and its mutable slice; shard results come back in
/// shard order. With one shard (or few items) everything runs inline on the
/// calling thread — the sequential path is the parallel path with one shard.
pub fn map_shards_mut<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    let shards = shard_count(threads, items.len());
    if shards <= 1 {
        return vec![f(0, items)];
    }
    let chunk = items.len().div_ceil(shards);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, shard)| scope.spawn(move || f(ci * chunk, shard)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("round-engine shard panicked")).collect()
    })
}

/// Like [`map_shards_mut`], but over *two* per-node slices sharded in
/// lockstep — the pattern of protocol steps that update parallel per-node
/// tables (e.g. connector + distance rows, or stores + response queues).
/// `n` is the logical node count; slice `a` holds `stride_a` elements per
/// node (`a.0.len() == n * a.1`), likewise `b`. `f` receives the shard's
/// start node and both mutable sub-slices.
pub fn map_shards_mut2<T, U, R, F>(
    threads: usize,
    n: usize,
    a: (&mut [T], usize),
    b: (&mut [U], usize),
    f: F,
) -> Vec<R>
where
    T: Send,
    U: Send,
    R: Send,
    F: Fn(usize, &mut [T], &mut [U]) -> R + Sync,
{
    let (a, stride_a) = a;
    let (b, stride_b) = b;
    assert_eq!(a.len(), n * stride_a, "slice a must hold stride_a elements per node");
    assert_eq!(b.len(), n * stride_b, "slice b must hold stride_b elements per node");
    let shards = shard_count(threads, n);
    if shards <= 1 {
        return vec![f(0, a, b)];
    }
    let chunk = n.div_ceil(shards);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = a
            .chunks_mut(chunk * stride_a)
            .zip(b.chunks_mut(chunk * stride_b))
            .enumerate()
            .map(|(ci, (sa, sb))| scope.spawn(move || f(ci * chunk, sa, sb)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("round-engine shard panicked")).collect()
    })
}

/// Runs `f` over contiguous shards of the index range `0..n` (no backing
/// slice), returning shard results in shard order.
pub fn map_index_shards<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let shards = shard_count(threads, n);
    if shards <= 1 {
        return vec![f(0..n)];
    }
    let chunk = n.div_ceil(shards);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|ci| {
                let lo = ci * chunk;
                let hi = ((ci + 1) * chunk).min(n);
                scope.spawn(move || f(lo..hi))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("round-engine shard panicked")).collect()
    })
}

/// Builds an ordered sequence by letting each shard of the per-node state
/// slice `items` append into its own pre-split scratch buffer, then
/// concatenating the buffers in shard order — the outbox-construction pattern
/// of the per-node protocol steps (`fill` receives the shard's start node,
/// its mutable state slice, and its output buffer). The result is identical
/// to a sequential `for v in 0..n` loop appending to `out`. Scratch buffers
/// keep their capacity across calls, so a warmed steady-state round allocates
/// nothing.
pub fn extend_sharded<T, M, F>(
    threads: usize,
    items: &mut [T],
    out: &mut Vec<M>,
    scratch: &mut Vec<Vec<M>>,
    fill: F,
) where
    T: Send,
    M: Send,
    F: Fn(usize, &mut [T], &mut Vec<M>) + Sync,
{
    let n = items.len();
    let shards = shard_count(threads, n);
    if shards <= 1 {
        fill(0, items, out);
        return;
    }
    if scratch.len() < shards {
        scratch.resize_with(shards, Vec::new);
    }
    let chunk = n.div_ceil(shards);
    let fill = &fill;
    std::thread::scope(|scope| {
        for ((ci, shard), buf) in items.chunks_mut(chunk).enumerate().zip(scratch.iter_mut()) {
            scope.spawn(move || {
                buf.clear();
                fill(ci * chunk, shard, buf);
            });
        }
    });
    for buf in scratch.iter_mut().take(shards) {
        out.append(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_count_respects_minimum() {
        assert_eq!(shard_count(8, 10), 1);
        assert_eq!(shard_count(8, 2 * MIN_SHARD_ITEMS), 2);
        assert_eq!(shard_count(2, 100 * MIN_SHARD_ITEMS), 2);
        assert_eq!(shard_count(1, 1_000_000), 1);
    }

    #[test]
    fn map_shards_mut_covers_all_items_in_order() {
        let n = 5 * MIN_SHARD_ITEMS;
        let mut items: Vec<usize> = vec![0; n];
        let offsets = map_shards_mut(4, &mut items, |start, shard| {
            for (i, x) in shard.iter_mut().enumerate() {
                *x = start + i;
            }
            start
        });
        assert_eq!(items, (0..n).collect::<Vec<_>>());
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        assert_eq!(offsets, sorted, "shard results in shard order");
    }

    #[test]
    fn index_shards_partition_the_range() {
        let n = 3 * MIN_SHARD_ITEMS + 7;
        let ranges = map_index_shards(3, n, |r| r);
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, n);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn extend_sharded_matches_sequential_order() {
        let n = 4 * MIN_SHARD_ITEMS;
        // Per-node state: a countdown drained into the output, like the
        // per-node token queues of the dissemination tree phases.
        let fill = |start: usize, shard: &mut [usize], buf: &mut Vec<(usize, usize)>| {
            for (i, pending) in shard.iter_mut().enumerate() {
                let v = start + i;
                for j in 0..*pending {
                    buf.push((v, j));
                }
                *pending = 0;
            }
        };
        let mk_items = || (0..n).map(|v| v % 3).collect::<Vec<usize>>();
        let mut seq = Vec::new();
        fill(0, &mut mk_items(), &mut seq);
        let mut par = Vec::new();
        let mut scratch = Vec::new();
        let mut items = mk_items();
        extend_sharded(4, &mut items, &mut par, &mut scratch, fill);
        assert_eq!(par, seq);
        assert!(items.iter().all(|&p| p == 0), "every shard drained its nodes");
        // Steady-state reuse: the scratch buffers keep capacity.
        let caps: Vec<usize> = scratch.iter().map(Vec::capacity).collect();
        par.clear();
        let mut items = mk_items();
        extend_sharded(4, &mut items, &mut par, &mut scratch, fill);
        assert_eq!(par, seq);
        assert_eq!(caps, scratch.iter().map(Vec::capacity).collect::<Vec<_>>());
    }
}
