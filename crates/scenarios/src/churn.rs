//! Deterministic delta-batch generation for the `churn-*` scenario family.
//!
//! Every batch derives from SplitMix64 streams of `(scenario seed, step)`,
//! so a churn replay is fully determined by the scenario — the same
//! reproducibility contract as graph builds and fault schedules. Batches are
//! *constructed valid*: each candidate op is applied to a scratch copy of
//! the evolving graph first, and ops that would fail validation or
//! disconnect the graph are skipped (connectivity is a precondition of every
//! suite contract, not something churn is allowed to break).

use hybrid_graph::{DeltaBatch, Graph, GraphDelta, NodeId};
use hybrid_sim::derive_seed;

/// Stream salt separating churn draws from every other consumer of the
/// scenario seed (graph: `0x0067_7261_7068`, faults: `0xFA17`, …).
const CHURN_SALT: u64 = 0xC4_12_4E;

/// The seed of step `step`'s batch stream for a scenario rooted at `seed`.
pub fn step_seed(seed: u64, step: usize) -> u64 {
    derive_seed(derive_seed(seed, CHURN_SALT), step as u64)
}

/// Generates one delta batch against `g`, deterministically from `seed`
/// (use [`step_seed`]), and returns it with the post-delta graph. Attempts
/// `ops` operations — a mix of reweights (weighted graphs only), edge
/// inserts, and connectivity-preserving removals — skipping any draw that
/// would be invalid; the returned batch may therefore be smaller than
/// `ops`.
pub fn churn_batch(g: &Graph, seed: u64, ops: usize) -> (DeltaBatch, Graph) {
    let n = g.len();
    // Unweighted graphs must stay unweighted under churn — the diameter
    // contracts assume unit weights — so churn on them is purely topological
    // (inserts at weight 1, connectivity-preserving removals, no reweights).
    let unweighted = g.max_weight() <= 1;
    let wmax = if unweighted { 1 } else { g.max_weight().max(4) };
    let mut scratch = g.clone();
    let mut batch = DeltaBatch::new();
    let mut salt = 0u64;
    // Each accepted op costs one draw; rejected draws retry with fresh salt,
    // bounded so a pathological graph (e.g. a clique with nothing to add)
    // terminates.
    while batch.len() < ops && salt < 32 * ops as u64 {
        let draw = derive_seed(seed, salt);
        salt += 1;
        let edges = scratch.edges();
        let kind = if unweighted { 2 + draw % 2 } else { draw % 4 };
        let op = match kind {
            // Reweight an existing edge — always valid (weighted graphs only).
            0 | 1 => {
                let e = &edges[(draw >> 8) as usize % edges.len()];
                GraphDelta::Reweight { u: e.u, v: e.v, w: 1 + (draw >> 40) % wmax }
            }
            // Insert a fresh edge — never disconnects.
            2 => {
                let u = NodeId::new((draw >> 8) as usize % n);
                let v = NodeId::new((draw >> 24) as usize % n);
                if u == v || scratch.has_edge(u, v) {
                    continue;
                }
                GraphDelta::AddEdge { u, v, w: 1 + (draw >> 40) % wmax }
            }
            // Remove an edge, but only when the graph stays connected — the
            // scratch application below is the arbiter.
            _ => {
                let e = &edges[(draw >> 8) as usize % edges.len()];
                GraphDelta::RemoveEdge { u: e.u, v: e.v }
            }
        };
        let mut trial = DeltaBatch::new();
        trial.push(op);
        match scratch.apply_delta(&trial) {
            Ok(next) if next.is_connected() => {
                scratch = next;
                batch.push(op);
            }
            _ => {}
        }
    }
    (batch, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators::{cycle, grid};
    use hybrid_graph::Distance;

    #[test]
    fn batches_are_deterministic_and_valid() {
        let g = grid(6, 6, 3).unwrap();
        let (a, ga) = churn_batch(&g, step_seed(7, 0), 5);
        let (b, gb) = churn_batch(&g, step_seed(7, 0), 5);
        assert_eq!(a, b, "same seed, same batch");
        assert_eq!(ga.edges(), gb.edges());
        assert!(!a.is_empty());
        // The returned graph IS the batch applied to the input.
        assert_eq!(g.apply_delta(&a).unwrap().edges(), ga.edges());
        assert!(ga.is_connected());
        let (c, _) = churn_batch(&g, step_seed(8, 0), 5);
        assert_ne!(a, c, "different seed, different batch");
    }

    #[test]
    fn removals_never_disconnect() {
        // On a cycle every single-edge removal keeps connectivity, but a
        // second removal on the induced path can cut it — the scratch check
        // must refuse those. Drive many steps and keep checking.
        let mut g = cycle(16, 1).unwrap();
        for step in 0..12 {
            let (batch, next) = churn_batch(&g, step_seed(3, step), 3);
            assert!(next.is_connected(), "step {step} disconnected the graph");
            assert_eq!(g.apply_delta(&batch).unwrap().edges(), next.edges());
            g = next;
        }
    }

    #[test]
    fn batch_mix_spans_all_op_kinds_over_a_replay() {
        let mut g = grid(6, 6, 3).unwrap();
        let (mut adds, mut removes, mut reweights) = (0, 0, 0);
        for step in 0..8 {
            let (batch, next) = churn_batch(&g, step_seed(11, step), 6);
            for op in batch.ops() {
                match op {
                    GraphDelta::AddEdge { .. } => adds += 1,
                    GraphDelta::RemoveEdge { .. } => removes += 1,
                    GraphDelta::Reweight { .. } => reweights += 1,
                }
            }
            g = next;
        }
        assert!(adds > 0 && removes > 0 && reweights > 0, "{adds}/{removes}/{reweights}");
    }

    #[test]
    fn unweighted_graphs_stay_unweighted() {
        // Diameter contracts assume unit weights; churn must not break that.
        let mut g = cycle(20, 1).unwrap();
        for step in 0..8 {
            let (batch, next) = churn_batch(&g, step_seed(9, step), 4);
            for op in batch.ops() {
                assert!(
                    !matches!(op, GraphDelta::Reweight { .. }),
                    "reweight on an unweighted graph"
                );
            }
            assert_eq!(next.max_weight(), 1, "step {step} introduced a weight");
            g = next;
        }
    }

    #[test]
    fn weights_stay_in_the_model_range() {
        let g = grid(6, 6, 3).unwrap();
        let (batch, _) = churn_batch(&g, step_seed(5, 0), 8);
        for op in batch.ops() {
            if let GraphDelta::AddEdge { w, .. } | GraphDelta::Reweight { w, .. } = op {
                let w: Distance = *w;
                assert!((1..=4).contains(&w), "weight {w} outside [1, max(4, wmax)]");
            }
        }
    }
}
