//! The multi-tenant request broker: a byte-budgeted LRU of [`Session`]s with
//! per-tenant admission control, batch coalescing, and online bit-identity
//! verification against cold solves.

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use hybrid_core::session::{Session, SessionConfig};
use hybrid_core::solver::{solve, Answer, Guarantee, Query, Report};
use hybrid_core::HybridError;
use hybrid_graph::{DeltaBatch, Graph};
use hybrid_sim::{FaultPlan, HybridConfig, HybridNet};

/// Floor charged per cached session so even an unqueried (zero-byte) session
/// occupies budget and can be evicted.
const MIN_ENTRY_BYTES: usize = 1024;

// ---------------------------------------------------------------------------
// FNV-1a digests
// ---------------------------------------------------------------------------

/// Incremental FNV-1a (64-bit) — the broker's stable digest over graphs and
/// reports. Not cryptographic; collision resistance is irrelevant because the
/// cold reference is computed from the same query on the same graph.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Stable fingerprint of a graph's structure (node count, edge list, weights)
/// — one component of the broker's session-cache key. Two graphs with equal
/// fingerprints are treated as the same preprocessing domain.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut h = Fnv::new();
    h.usize(g.len());
    for e in g.edges() {
        h.u64(u64::from(e.u.raw()));
        h.u64(u64::from(e.v.raw()));
        h.u64(e.w);
    }
    h.finish()
}

/// Stable digest of everything a [`Report`] pins besides wall-clock: the
/// query label, the answer payload, the guarantee, and the full round/message
/// bill. Phase attributions are excluded, exactly like the session-equivalence
/// tests — they describe *where* rounds went, and their sum is already pinned
/// by [`Report::rounds`].
pub fn report_digest(r: &Report) -> u64 {
    let mut h = Fnv::new();
    h.bytes(r.label().as_bytes());
    h.u64(r.rounds);
    h.u64(r.global_messages);
    h.u64(r.dropped_messages);
    h.usize(r.skeleton_size);
    h.usize(r.h);
    h.usize(r.coverage_fallbacks);
    match &r.guarantee {
        Guarantee::Exact => h.u64(1),
        Guarantee::Stretch { factor } => {
            h.u64(2);
            h.u64(factor.to_bits());
        }
        Guarantee::DiameterFactor { factor } => {
            h.u64(3);
            h.u64(factor.to_bits());
        }
        Guarantee::Degraded { from, to, cause } => {
            h.u64(4);
            h.bytes(from.as_bytes());
            h.bytes(to.as_bytes());
            h.bytes(cause.to_string().as_bytes());
        }
    }
    match &r.answer {
        Answer::Distances(m) => {
            h.u64(10);
            for &d in m.as_flat() {
                h.u64(d);
            }
        }
        Answer::DistanceRow { source, dist } => {
            h.u64(11);
            h.u64(u64::from(source.raw()));
            for &d in dist {
                h.u64(d);
            }
        }
        Answer::DistanceRows { sources, est } => {
            h.u64(12);
            for s in sources {
                h.u64(u64::from(s.raw()));
            }
            for row in est {
                h.usize(row.len());
                for &d in row {
                    h.u64(d);
                }
            }
        }
        Answer::Diameter { estimate, exact_local } => {
            h.u64(13);
            h.u64(*estimate);
            h.u64(u64::from(*exact_local));
        }
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

/// One graph version in the catalog: the shared graph, its fingerprint, and
/// its delta epoch.
#[derive(Debug, Clone)]
struct CatalogVersion {
    graph: Arc<Graph>,
    fingerprint: u64,
    epoch: u64,
}

/// Outcome of one [`GraphCatalog::apply_delta`]: the new version and what it
/// replaced.
#[derive(Debug, Clone)]
pub struct CatalogUpdate {
    /// Fingerprint of the version the delta replaced (the stale one).
    pub old_fingerprint: u64,
    /// Fingerprint of the post-delta graph.
    pub fingerprint: u64,
    /// Epoch of the new version (`0` at registration, `+1` per delta).
    pub epoch: u64,
    /// The post-delta graph.
    pub graph: Arc<Graph>,
}

/// The broker's graph namespace: named, fingerprinted, epoch-versioned
/// graphs. Lookups hand out shared [`Arc<Graph>`] handles, so a delta applied
/// mid-flight never invalidates a session already serving the old version —
/// old epochs stay alive exactly as long as someone holds them.
#[derive(Debug, Default)]
pub struct GraphCatalog {
    entries: Vec<(String, RwLock<CatalogVersion>)>,
}

impl GraphCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        GraphCatalog::default()
    }

    /// Registers `graph` under `name` at epoch 0 (replacing any previous
    /// binding) and returns its fingerprint.
    pub fn insert(&mut self, name: &str, graph: Graph) -> u64 {
        let fp = graph_fingerprint(&graph);
        self.entries.retain(|(n, _)| n != name);
        self.entries.push((
            name.to_string(),
            RwLock::new(CatalogVersion { graph: Arc::new(graph), fingerprint: fp, epoch: 0 }),
        ));
        fp
    }

    fn version(&self, name: &str) -> Option<&RwLock<CatalogVersion>> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Looks up the current version of a registered graph: the shared graph
    /// and its fingerprint.
    pub fn get(&self, name: &str) -> Option<(Arc<Graph>, u64)> {
        let v = self.version(name)?.read().expect("catalog version lock");
        Some((Arc::clone(&v.graph), v.fingerprint))
    }

    /// Like [`GraphCatalog::get`], but when the caller pins an `expected`
    /// fingerprint, a version mismatch is rejected *here* as a structured
    /// [`ServeError::StaleFingerprint`] — instead of silently serving the new
    /// graph to a client still reasoning about the old one (which the digest
    /// referee, solving on the same new graph, would never catch).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownGraph`] / [`ServeError::StaleFingerprint`].
    pub fn get_pinned(
        &self,
        name: &str,
        expected: Option<u64>,
    ) -> Result<(Arc<Graph>, u64), ServeError> {
        let (graph, fingerprint) =
            self.get(name).ok_or_else(|| ServeError::UnknownGraph { graph: name.to_string() })?;
        if let Some(requested) = expected {
            if requested != fingerprint {
                return Err(ServeError::StaleFingerprint {
                    graph: name.to_string(),
                    requested,
                    current: fingerprint,
                });
            }
        }
        Ok((graph, fingerprint))
    }

    /// The delta epoch of a registered graph (`0` until the first delta).
    pub fn epoch(&self, name: &str) -> Option<u64> {
        Some(self.version(name)?.read().expect("catalog version lock").epoch)
    }

    /// Applies a validated delta batch to `name`'s current version: installs
    /// the post-delta graph, recomputes the FNV-1a fingerprint, and bumps the
    /// epoch. Lookups from this point on see the new version; holders of the
    /// old `Arc` are undisturbed.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownGraph`] for an unregistered name;
    /// [`ServeError::Solve`] wrapping the structured
    /// [`hybrid_graph::DeltaError`] when the batch fails validation (the
    /// catalog is unchanged).
    pub fn apply_delta(&self, name: &str, batch: &DeltaBatch) -> Result<CatalogUpdate, ServeError> {
        let slot = self
            .version(name)
            .ok_or_else(|| ServeError::UnknownGraph { graph: name.to_string() })?;
        let mut v = slot.write().expect("catalog version lock");
        let new_graph =
            v.graph.apply_delta(batch).map_err(|e| ServeError::Solve(HybridError::Delta(e)))?;
        let old_fingerprint = v.fingerprint;
        let fingerprint = graph_fingerprint(&new_graph);
        let graph = Arc::new(new_graph);
        *v = CatalogVersion { graph: Arc::clone(&graph), fingerprint, epoch: v.epoch + 1 };
        Ok(CatalogUpdate { old_fingerprint, fingerprint, epoch: v.epoch, graph })
    }

    /// Registered names, in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Structured failure of a broker request — overload and admission failures
/// are first-class values here, never silent drops.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request named a tenant that was never registered.
    UnknownTenant {
        /// The unregistered tenant name.
        tenant: String,
    },
    /// The request named a graph absent from the catalog.
    UnknownGraph {
        /// The unknown graph name.
        graph: String,
    },
    /// The request pinned a graph fingerprint that a delta has since
    /// superseded. Refused at lookup time — a client reasoning about an old
    /// graph version must learn about the delta explicitly, not receive
    /// answers computed on a graph it never saw.
    StaleFingerprint {
        /// The graph name.
        graph: String,
        /// The fingerprint the client pinned.
        requested: u64,
        /// The catalog's current fingerprint.
        current: u64,
    },
    /// The tenant's queue is at its configured depth; the request was shed
    /// *before* touching any session. The client may retry.
    Overloaded {
        /// The tenant whose queue was full.
        tenant: String,
        /// The configured depth that was hit.
        depth: usize,
    },
    /// The request carried a deadline budget and its admission-queue wait
    /// exhausted it before a slot opened. Counted separately from
    /// [`ServeError::Overloaded`]: overload is an instantaneous full-queue
    /// shed, deadline exhaustion is a timed-out wait.
    DeadlineExceeded {
        /// The tenant whose queue the request waited in.
        tenant: String,
        /// The deadline budget that was exhausted, in milliseconds.
        deadline_ms: u64,
    },
    /// The tenant's circuit breaker is open: enough consecutive failures
    /// accumulated that the broker fails fast instead of burning a slot. The
    /// breaker half-opens deterministically after a fixed number of rejected
    /// requests (request-count-based, not timer-based).
    BreakerOpen {
        /// The tenant whose breaker is open.
        tenant: String,
    },
    /// The solve panicked. The panic was contained (`catch_unwind`), the
    /// serving session was quarantined out of the LRU, and the failure is
    /// surfaced structurally instead of tearing down the worker.
    Internal {
        /// The tenant whose request hit the panic.
        tenant: String,
        /// The query's canonical label.
        query: &'static str,
    },
    /// A served answer did not digest-match the cold solve it must be
    /// bit-identical to. This is a broker invariant violation, not a client
    /// error.
    BitIdentityMismatch {
        /// The query's canonical label.
        query: &'static str,
        /// Digest of the cold reference.
        expected: u64,
        /// Digest of the served report.
        got: u64,
    },
    /// The underlying solve failed; carries the structured solver error
    /// (verified identical to the cold solve's error before propagation).
    Solve(HybridError),
    /// A protocol line could not be parsed.
    Protocol {
        /// What was wrong with the line.
        msg: String,
    },
}

impl ServeError {
    /// Stable machine-readable code used on the wire (`ERR ... code=<this>`).
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::UnknownTenant { .. } => "unknown-tenant",
            ServeError::UnknownGraph { .. } => "unknown-graph",
            ServeError::StaleFingerprint { .. } => "stale-fingerprint",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::DeadlineExceeded { .. } => "deadline-exceeded",
            ServeError::BreakerOpen { .. } => "breaker-open",
            ServeError::Internal { .. } => "internal",
            ServeError::BitIdentityMismatch { .. } => "bit-identity",
            ServeError::Solve(_) => "solve",
            ServeError::Protocol { .. } => "protocol",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant { tenant } => write!(f, "unknown tenant {tenant:?}"),
            ServeError::UnknownGraph { graph } => write!(f, "unknown graph {graph:?}"),
            ServeError::StaleFingerprint { graph, requested, current } => write!(
                f,
                "graph {graph:?} fingerprint {requested:016x} is stale \
                 (current {current:016x}): re-read the graph before querying"
            ),
            ServeError::Overloaded { tenant, depth } => {
                write!(f, "tenant {tenant:?} overloaded: queue depth {depth} reached")
            }
            ServeError::DeadlineExceeded { tenant, deadline_ms } => write!(
                f,
                "tenant {tenant:?} request shed: {deadline_ms} ms deadline budget exhausted \
                 waiting for admission"
            ),
            ServeError::BreakerOpen { tenant } => {
                write!(f, "tenant {tenant:?} circuit breaker is open: failing fast")
            }
            ServeError::Internal { tenant, query } => write!(
                f,
                "internal error serving {query} for tenant {tenant:?}: solve panicked \
                 (session quarantined)"
            ),
            ServeError::BitIdentityMismatch { query, expected, got } => write!(
                f,
                "bit-identity violation serving {query}: cold digest {expected:016x}, \
                 served digest {got:016x}"
            ),
            ServeError::Solve(e) => write!(f, "solve failed: {e}"),
            ServeError::Protocol { msg } => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<HybridError> for ServeError {
    fn from(e: HybridError) -> Self {
        ServeError::Solve(e)
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Broker-wide configuration: the default seed, network, and the session
/// cache's byte budget.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Default root seed for requests that don't carry their own.
    pub seed: u64,
    /// Simulated network configuration for every session.
    pub net: HybridConfig,
    /// Round-engine worker budget applied to every session's nets.
    pub round_threads: Option<usize>,
    /// Byte budget of the session LRU, charged at
    /// `SessionStats::prepared_bytes` (floored at 1 KiB per session). When
    /// the resident total exceeds it, least-recently-used sessions are
    /// evicted (the most recent always survives).
    pub session_budget_bytes: usize,
    /// Verify every response against a memoized cold solve (the broker's
    /// bit-identity contract). On mismatch the response is replaced by
    /// [`ServeError::BitIdentityMismatch`]. Disable only for latency
    /// experiments that deliberately skip the referee.
    pub verify: bool,
}

impl BrokerConfig {
    /// Defaults: `ξ`-agnostic, default network, 256 MiB budget, verification
    /// on.
    pub fn new(seed: u64) -> Self {
        BrokerConfig {
            seed,
            net: HybridConfig::default(),
            round_threads: None,
            session_budget_bytes: 256 << 20,
            verify: true,
        }
    }
}

/// Per-tenant admission policy.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Maximum concurrently admitted requests; request `depth + 1` is shed
    /// with [`ServeError::Overloaded`] (or waits, if it carries a deadline
    /// budget).
    pub max_queue_depth: usize,
    /// Optional fault plan for the tenant's sessions. Any plan that passes
    /// [`FaultPlan::validate`] is accepted — including lossy and corrupting
    /// ones. A non-trivial plan runs every query cold (fault streams are
    /// stateful per run, so preprocessing is never shared) through the
    /// reliable layer, and the cold referee replays the *same* plan, so the
    /// bit-identity contract holds on the chaos path too.
    pub faults: Option<FaultPlan>,
    /// Default deadline budget in milliseconds applied to requests that don't
    /// carry their own `deadline_ms`. `None`: no deadline — a full queue
    /// sheds instantly with [`ServeError::Overloaded`].
    pub default_deadline_ms: Option<u64>,
    /// Circuit breaker: this many *consecutive* request failures (solve
    /// errors, bit-identity mismatches, contained panics — not sheds) open
    /// the breaker. `None` disables the breaker.
    pub breaker_threshold: Option<u32>,
    /// While open, the breaker rejects this many requests with
    /// [`ServeError::BreakerOpen`] and then lets the next one through as a
    /// half-open probe — request-count-based, so the state machine is
    /// deterministic under a deterministic request order.
    pub breaker_cooldown: u32,
    /// Deterministic panic-injection seam for exercising the broker's panic
    /// containment: every `k`-th admitted request of this tenant (1-based)
    /// panics inside the solve path. `None` (the default) injects nothing.
    /// The panic is always contained, surfaced as [`ServeError::Internal`],
    /// and quarantines the serving session.
    pub chaos_panic_every: Option<u64>,
}

impl TenantConfig {
    /// A tenant admitting at most `max_queue_depth` concurrent requests, no
    /// faults, no deadline, breaker disabled.
    pub fn new(max_queue_depth: usize) -> Self {
        TenantConfig {
            max_queue_depth,
            faults: None,
            default_deadline_ms: None,
            breaker_threshold: None,
            breaker_cooldown: 4,
            chaos_panic_every: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Requests / responses
// ---------------------------------------------------------------------------

/// One in-process broker request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The requesting tenant (must be registered).
    pub tenant: String,
    /// Catalog name of the graph to query.
    pub graph: String,
    /// Root seed override (`None`: the broker default). Part of the session
    /// key — distinct seeds get distinct sessions.
    pub seed: Option<u64>,
    /// The query to serve.
    pub query: Query,
    /// Deadline budget in milliseconds (`None`: the tenant's configured
    /// default, if any). A request whose admission-queue wait exhausts the
    /// budget is shed with [`ServeError::DeadlineExceeded`].
    pub deadline_ms: Option<u64>,
    /// Optional graph-version pin: the fingerprint the client believes the
    /// graph has. If a delta has superseded it, the request is refused with
    /// [`ServeError::StaleFingerprint`] at lookup time. `None`: serve
    /// whatever version is current.
    pub fingerprint: Option<u64>,
}

impl Request {
    /// A request with no seed override, no deadline, and no version pin.
    pub fn new(tenant: &str, graph: &str, query: Query) -> Self {
        Request {
            tenant: tenant.to_string(),
            graph: graph.to_string(),
            seed: None,
            query,
            deadline_ms: None,
            fingerprint: None,
        }
    }
}

/// One successful broker response.
#[derive(Debug, Clone)]
pub struct Response {
    /// The full report, bit-identical to a cold solve of the same request.
    pub report: Report,
    /// [`report_digest`] of the report — what went on the wire and what was
    /// compared against the cold reference.
    pub digest: u64,
    /// Whether this response was actually checked against the cold referee
    /// (`false` only when [`BrokerConfig::verify`] is off).
    pub verified: bool,
    /// Whether the serving session was already resident (an LRU hit).
    pub session_hit: bool,
}

// ---------------------------------------------------------------------------
// Broker internals
// ---------------------------------------------------------------------------

/// Cache key of a session: who is asking, over what graph, under which seed
/// and skeleton constant. Everything preprocessing depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SessionKey {
    tenant: String,
    fingerprint: u64,
    seed: u64,
    xi_bits: u64,
}

/// A memoized cold reference: the digest a served report must match, or the
/// structured error a cold solve produces.
type ColdCell = Arc<Mutex<Option<Result<u64, HybridError>>>>;

/// Failure of one coalesced solve, as stored in the batch results map: a
/// structured solver error, or a contained panic that poisoned the whole
/// batch.
#[derive(Debug, Clone)]
enum BatchError {
    Solve(HybridError),
    Panicked,
}

/// Coalescing state of one session: queued queries waiting for a leader, and
/// finished results waiting for their owners.
struct BatchState {
    next_ticket: u64,
    pending: Vec<(u64, Query)>,
    results: HashMap<u64, Result<Report, BatchError>>,
    leader: bool,
    /// Set when a queued request carries a chaos panic injection; the next
    /// batch leader panics inside its (contained) solve call.
    chaos: bool,
}

/// One resident session plus its coalescing and verification state.
struct SessionEntry {
    session: Session,
    /// Tenant fault plan — replayed on the cold referee net so the
    /// bit-identity contract holds on the chaos path too.
    faults: Option<FaultPlan>,
    /// LRU stamp: monotonically bumped on every acquisition.
    stamp: AtomicU64,
    /// Last settled `prepared_bytes` (floored at [`MIN_ENTRY_BYTES`]).
    bytes: AtomicUsize,
    batch: Mutex<BatchState>,
    batch_cv: Condvar,
    /// Memoized cold references: canonical query spec → digest (or the
    /// structured error a cold solve produces). Computed at most once per
    /// distinct query per session; every response is compared against it.
    cold: Mutex<HashMap<String, ColdCell>>,
}

/// The per-tenant circuit breaker's deterministic state machine. Transitions
/// are driven by request outcomes and request *counts*, never timers, so a
/// deterministic request order produces a deterministic breaker trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Healthy: counting consecutive failures.
    Closed {
        /// Consecutive failures so far.
        consecutive: u32,
    },
    /// Tripped: rejecting requests until enough have been turned away to
    /// earn a half-open probe.
    Open {
        /// Requests rejected since the breaker opened.
        rejected: u32,
    },
    /// One probe request is in flight; its outcome closes or re-opens the
    /// breaker. Concurrent requests are rejected meanwhile.
    HalfOpen,
}

/// Per-tenant admission state.
struct TenantState {
    cfg: TenantConfig,
    inflight: AtomicUsize,
    shed: AtomicU64,
    /// Requests shed because their deadline budget ran out while waiting.
    deadline_shed: AtomicU64,
    breaker: Mutex<BreakerState>,
    /// Signalled whenever an admission slot frees up, waking deadline
    /// waiters.
    slot_cv: Condvar,
    /// Companion lock of `slot_cv` (the inflight counter itself stays
    /// atomic; this mutex only sequences the waits).
    slot_lock: Mutex<()>,
    /// Admitted-request ordinal, driving the deterministic
    /// [`TenantConfig::chaos_panic_every`] injection seam.
    requests: AtomicU64,
}

/// RAII decrement of a tenant's inflight counter; keeps the tenant state
/// alive for as long as the request is admitted.
struct AdmitGuard {
    state: Arc<TenantState>,
}

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        self.state.inflight.fetch_sub(1, Ordering::AcqRel);
        // Wake any deadline-budgeted request waiting for this slot.
        let _held = self.state.slot_lock.lock().expect("slot lock");
        self.state.slot_cv.notify_all();
    }
}

/// Cumulative broker counters (a consistent-enough snapshot of atomics; see
/// [`Broker::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BrokerStats {
    /// Successfully served responses.
    pub served: u64,
    /// Requests shed with [`ServeError::Overloaded`].
    pub shed: u64,
    /// Requests shed with [`ServeError::DeadlineExceeded`] (deadline budget
    /// exhausted waiting for admission) — disjoint from `shed`.
    pub deadline_shed: u64,
    /// Circuit-breaker open transitions: threshold trips plus failed
    /// half-open probes.
    pub breaker_opens: u64,
    /// Half-open probe requests let through while a breaker was open.
    pub breaker_probes: u64,
    /// Sessions quarantined out of the LRU after a contained solve panic.
    pub quarantined: u64,
    /// Served responses whose guarantee was `Guarantee::Degraded` — answers
    /// that are correct and verified but carry an explicit degradation.
    pub degraded_served: u64,
    /// Requests admitted to an already-resident session (LRU hits).
    pub session_hits: u64,
    /// Sessions created (LRU misses).
    pub sessions_admitted: u64,
    /// Sessions evicted by the byte budget.
    pub sessions_evicted: u64,
    /// Currently resident sessions.
    pub resident_sessions: usize,
    /// Total bytes currently charged against the session budget.
    pub session_bytes: usize,
    /// Responses checked against the cold referee.
    pub verified: u64,
    /// Bit-identity violations detected (must stay 0).
    pub mismatches: u64,
    /// Coalesced `solve_batch` calls issued by batch leaders.
    pub batches: u64,
    /// Queries that went through those coalesced calls.
    pub batched_queries: u64,
    /// Largest single coalesced batch.
    pub max_batch: u64,
    /// Sum of `SessionStats::queries` over resident sessions.
    pub session_queries: u64,
    /// Sum of `SessionStats::report_hits` over resident sessions.
    pub session_report_hits: u64,
    /// Delta operations applied through [`Broker::update`].
    pub deltas_applied: u64,
    /// Resident sessions migrated across a delta on the incremental patch
    /// path (damage analysis held).
    pub repair_patched: u64,
    /// Resident sessions migrated across a delta via the full re-prepare
    /// fallback.
    pub repair_full: u64,
    /// Requests refused with [`ServeError::StaleFingerprint`] because they
    /// pinned a superseded graph version.
    pub stale_epoch_refused: u64,
}

/// The multi-tenant serving front-end (see the crate docs for the contract
/// and an end-to-end example). Shared by reference across client threads —
/// every public method takes `&self`.
pub struct Broker<'g> {
    catalog: &'g GraphCatalog,
    cfg: BrokerConfig,
    tenants: Mutex<HashMap<String, Arc<TenantState>>>,
    lru: Mutex<HashMap<SessionKey, Arc<SessionEntry>>>,
    lru_clock: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    deadline_shed: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_probes: AtomicU64,
    quarantined: AtomicU64,
    degraded_served: AtomicU64,
    session_hits: AtomicU64,
    sessions_admitted: AtomicU64,
    sessions_evicted: AtomicU64,
    verified: AtomicU64,
    mismatches: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    max_batch: AtomicU64,
    deltas_applied: AtomicU64,
    repair_patched: AtomicU64,
    repair_full: AtomicU64,
    stale_epoch_refused: AtomicU64,
}

/// The `ξ` a query pins its session to (every variant carries the field; the
/// LOCAL baselines ignore it at solve time but still cache under it).
fn query_xi(q: &Query) -> f64 {
    match q {
        Query::Apsp { xi, .. }
        | Query::Sssp { xi, .. }
        | Query::Kssp { xi, .. }
        | Query::Diameter { xi, .. } => *xi,
    }
}

impl<'g> Broker<'g> {
    /// A broker over `catalog` with no tenants registered yet.
    pub fn new(catalog: &'g GraphCatalog, cfg: BrokerConfig) -> Self {
        Broker {
            catalog,
            cfg,
            tenants: Mutex::new(HashMap::new()),
            lru: Mutex::new(HashMap::new()),
            lru_clock: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_shed: AtomicU64::new(0),
            breaker_opens: AtomicU64::new(0),
            breaker_probes: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            degraded_served: AtomicU64::new(0),
            session_hits: AtomicU64::new(0),
            sessions_admitted: AtomicU64::new(0),
            sessions_evicted: AtomicU64::new(0),
            verified: AtomicU64::new(0),
            mismatches: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_queries: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            deltas_applied: AtomicU64::new(0),
            repair_patched: AtomicU64::new(0),
            repair_full: AtomicU64::new(0),
            stale_epoch_refused: AtomicU64::new(0),
        }
    }

    /// Registers `tenant` under `cfg`.
    ///
    /// Any fault plan that passes [`FaultPlan::validate`] is accepted —
    /// lossy and corrupting plans included. A faulty tenant's queries run
    /// cold through the reliable layer, and the cold referee replays the
    /// *same* plan, so the bit-identity contract holds on the chaos path
    /// too (responses may carry `Guarantee::Degraded`, surfaced on the
    /// wire).
    ///
    /// # Errors
    ///
    /// [`ServeError::Solve`] wrapping the session layer's own validation
    /// error for a structurally invalid plan (the same path `Session::new`
    /// takes) — e.g. an out-of-range drop or corruption probability.
    pub fn register_tenant(&self, tenant: &str, cfg: TenantConfig) -> Result<(), ServeError> {
        if let Some(plan) = &cfg.faults {
            // Same validation a Session::new would run, surfaced eagerly.
            plan.validate().map_err(|e| ServeError::Solve(HybridError::Sim(e)))?;
        }
        let state = Arc::new(TenantState {
            cfg,
            inflight: AtomicUsize::new(0),
            shed: AtomicU64::new(0),
            deadline_shed: AtomicU64::new(0),
            breaker: Mutex::new(BreakerState::Closed { consecutive: 0 }),
            slot_cv: Condvar::new(),
            slot_lock: Mutex::new(()),
            requests: AtomicU64::new(0),
        });
        self.tenants.lock().expect("tenant table lock").insert(tenant.to_string(), state);
        Ok(())
    }

    /// Requests shed so far for `tenant` (`None` if unregistered).
    pub fn tenant_shed(&self, tenant: &str) -> Option<u64> {
        let tenants = self.tenants.lock().expect("tenant table lock");
        tenants.get(tenant).map(|t| t.shed.load(Ordering::Relaxed))
    }

    /// Requests deadline-shed so far for `tenant` (`None` if unregistered).
    pub fn tenant_deadline_shed(&self, tenant: &str) -> Option<u64> {
        let tenants = self.tenants.lock().expect("tenant table lock");
        tenants.get(tenant).map(|t| t.deadline_shed.load(Ordering::Relaxed))
    }

    /// Breaker state per breaker-enabled tenant, sorted by tenant name:
    /// `"closed"`, `"open"`, or `"half-open"`. Tenants without a configured
    /// [`TenantConfig::breaker_threshold`] are omitted.
    pub fn breaker_states(&self) -> Vec<(String, &'static str)> {
        let tenants = self.tenants.lock().expect("tenant table lock");
        let mut out: Vec<(String, &'static str)> = tenants
            .iter()
            .filter(|(_, s)| s.cfg.breaker_threshold.is_some())
            .map(|(name, s)| {
                let label = match *s.breaker.lock().expect("breaker lock") {
                    BreakerState::Closed { .. } => "closed",
                    BreakerState::Open { .. } => "open",
                    BreakerState::HalfOpen => "half-open",
                };
                (name.clone(), label)
            })
            .collect();
        out.sort();
        out
    }

    /// A snapshot of the broker's cumulative counters.
    pub fn stats(&self) -> BrokerStats {
        let (resident, bytes, queries, hits) = {
            let lru = self.lru.lock().expect("session cache lock");
            let mut bytes = 0usize;
            let mut queries = 0u64;
            let mut hits = 0u64;
            for entry in lru.values() {
                bytes += entry.bytes.load(Ordering::Relaxed);
                let s = entry.session.stats();
                queries += s.queries;
                hits += s.report_hits;
            }
            (lru.len(), bytes, queries, hits)
        };
        BrokerStats {
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_shed: self.deadline_shed.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            breaker_probes: self.breaker_probes.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            degraded_served: self.degraded_served.load(Ordering::Relaxed),
            session_hits: self.session_hits.load(Ordering::Relaxed),
            sessions_admitted: self.sessions_admitted.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            resident_sessions: resident,
            session_bytes: bytes,
            verified: self.verified.load(Ordering::Relaxed),
            mismatches: self.mismatches.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_queries: self.batched_queries.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            session_queries: queries,
            session_report_hits: hits,
            deltas_applied: self.deltas_applied.load(Ordering::Relaxed),
            repair_patched: self.repair_patched.load(Ordering::Relaxed),
            repair_full: self.repair_full.load(Ordering::Relaxed),
            stale_epoch_refused: self.stale_epoch_refused.load(Ordering::Relaxed),
        }
    }

    /// Looks up a registered tenant's shared state.
    fn tenant_state(&self, tenant: &str) -> Result<Arc<TenantState>, ServeError> {
        let tenants = self.tenants.lock().expect("tenant table lock");
        tenants
            .get(tenant)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant { tenant: tenant.to_string() })
    }

    /// The breaker's admission-side gate, run before a slot is claimed.
    /// Returns whether this request is a half-open probe, or fails fast with
    /// [`ServeError::BreakerOpen`].
    fn breaker_gate(&self, state: &TenantState, tenant: &str) -> Result<bool, ServeError> {
        if state.cfg.breaker_threshold.is_none() {
            return Ok(false);
        }
        let mut b = state.breaker.lock().expect("breaker lock");
        match *b {
            BreakerState::Closed { .. } => Ok(false),
            BreakerState::Open { rejected } => {
                if rejected >= state.cfg.breaker_cooldown {
                    *b = BreakerState::HalfOpen;
                    self.breaker_probes.fetch_add(1, Ordering::Relaxed);
                    Ok(true)
                } else {
                    *b = BreakerState::Open { rejected: rejected + 1 };
                    Err(ServeError::BreakerOpen { tenant: tenant.to_string() })
                }
            }
            // One probe is already in flight; fail fast without counting
            // toward the next probe (its outcome decides the transition).
            BreakerState::HalfOpen => Err(ServeError::BreakerOpen { tenant: tenant.to_string() }),
        }
    }

    /// The breaker's outcome side, run after the request resolved. Solve
    /// errors, bit-identity mismatches, and contained panics count as
    /// failures; sheds and bad names are neutral (but release a dangling
    /// half-open probe so the next request re-probes immediately); success
    /// closes the breaker.
    fn breaker_settle(
        &self,
        state: &TenantState,
        probe: bool,
        outcome: &Result<Response, ServeError>,
    ) {
        let Some(threshold) = state.cfg.breaker_threshold else { return };
        let failed = match outcome {
            Ok(_) => false,
            Err(
                ServeError::Solve(_)
                | ServeError::BitIdentityMismatch { .. }
                | ServeError::Internal { .. },
            ) => true,
            // Sheds, unknown names, protocol noise: not evidence about the
            // tenant's solve health.
            Err(_) => {
                if probe {
                    let mut b = state.breaker.lock().expect("breaker lock");
                    if *b == BreakerState::HalfOpen {
                        *b = BreakerState::Open { rejected: state.cfg.breaker_cooldown };
                    }
                }
                return;
            }
        };
        let mut b = state.breaker.lock().expect("breaker lock");
        if failed {
            let opened = match *b {
                BreakerState::Closed { consecutive } => {
                    let consecutive = consecutive + 1;
                    if consecutive >= threshold {
                        *b = BreakerState::Open { rejected: 0 };
                        true
                    } else {
                        *b = BreakerState::Closed { consecutive };
                        false
                    }
                }
                // The probe failed: re-open (counted as another open).
                BreakerState::HalfOpen => {
                    *b = BreakerState::Open { rejected: 0 };
                    true
                }
                // A straggler admitted before the trip; the breaker is
                // already open.
                BreakerState::Open { .. } => false,
            };
            if opened {
                self.breaker_opens.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            // Any success is evidence of health — probe or straggler alike.
            *b = BreakerState::Closed { consecutive: 0 };
        }
    }

    /// Admission control: bounded per-tenant concurrency. Returns an RAII
    /// guard holding the slot (and the tenant state). Without a deadline
    /// budget a full queue sheds instantly with [`ServeError::Overloaded`];
    /// with one, the request waits for a slot until the budget runs out and
    /// then sheds with [`ServeError::DeadlineExceeded`].
    fn admit(&self, state: &Arc<TenantState>, req: &Request) -> Result<AdmitGuard, ServeError> {
        let deadline_ms = req.deadline_ms.or(state.cfg.default_deadline_ms);
        let mut wait_start: Option<Instant> = None;
        loop {
            let prev = state.inflight.fetch_add(1, Ordering::AcqRel);
            if prev < state.cfg.max_queue_depth {
                return Ok(AdmitGuard { state: Arc::clone(state) });
            }
            state.inflight.fetch_sub(1, Ordering::AcqRel);
            let Some(budget) = deadline_ms else {
                state.shed.fetch_add(1, Ordering::Relaxed);
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    tenant: req.tenant.clone(),
                    depth: state.cfg.max_queue_depth,
                });
            };
            let start = *wait_start.get_or_insert_with(Instant::now);
            let remaining = Duration::from_millis(budget).checked_sub(start.elapsed());
            let Some(remaining) = remaining.filter(|d| !d.is_zero()) else {
                state.deadline_shed.fetch_add(1, Ordering::Relaxed);
                self.deadline_shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::DeadlineExceeded {
                    tenant: req.tenant.clone(),
                    deadline_ms: budget,
                });
            };
            // Re-check under the slot lock: AdmitGuard::drop notifies under
            // the same lock, so a slot freed between the failed claim above
            // and the wait below cannot be missed.
            let held = state.slot_lock.lock().expect("slot lock");
            if state.inflight.load(Ordering::Acquire) < state.cfg.max_queue_depth {
                continue;
            }
            let _ = state.slot_cv.wait_timeout(held, remaining).expect("slot lock");
        }
    }

    /// Removes a panicked session from the LRU — its internal state can no
    /// longer be trusted — and counts the quarantine once. In-flight holders
    /// of the same entry finish on their own `Arc` clone and fail contained
    /// as well.
    fn quarantine(&self, key: &SessionKey) {
        let mut lru = self.lru.lock().expect("session cache lock");
        if lru.remove(key).is_some() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Wraps an owned session in a fresh LRU entry.
    fn fresh_entry(session: Session, faults: Option<FaultPlan>, stamp: u64) -> Arc<SessionEntry> {
        Arc::new(SessionEntry {
            session,
            faults,
            stamp: AtomicU64::new(stamp),
            bytes: AtomicUsize::new(MIN_ENTRY_BYTES),
            batch: Mutex::new(BatchState {
                next_ticket: 0,
                pending: Vec::new(),
                results: HashMap::new(),
                leader: false,
                chaos: false,
            }),
            batch_cv: Condvar::new(),
            cold: Mutex::new(HashMap::new()),
        })
    }

    /// Finds or creates the session for `key`, bumping its LRU stamp.
    fn acquire_session(
        &self,
        key: SessionKey,
        graph: Arc<Graph>,
        faults: Option<FaultPlan>,
    ) -> Result<(Arc<SessionEntry>, bool), ServeError> {
        let stamp = self.lru_clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut lru = self.lru.lock().expect("session cache lock");
        if let Some(entry) = lru.get(&key) {
            entry.stamp.store(stamp, Ordering::Relaxed);
            self.session_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(entry), true));
        }
        let scfg = SessionConfig {
            seed: key.seed,
            xi: f64::from_bits(key.xi_bits),
            net: self.cfg.net,
            faults: faults.clone(),
            round_threads: self.cfg.round_threads,
            ..SessionConfig::new(key.seed)
        };
        let session = Session::shared(graph, scfg)?;
        let entry = Self::fresh_entry(session, faults, stamp);
        lru.insert(key, Arc::clone(&entry));
        self.sessions_admitted.fetch_add(1, Ordering::Relaxed);
        Ok((entry, false))
    }

    /// Settles `entry`'s byte charge from its session stats, then evicts
    /// least-recently-used sessions until the resident total fits the budget
    /// (the most recently used session always survives, however large).
    fn settle_and_evict(&self, entry: &SessionEntry) {
        let bytes = entry.session.stats().prepared_bytes.max(MIN_ENTRY_BYTES);
        entry.bytes.store(bytes, Ordering::Relaxed);
        let mut lru = self.lru.lock().expect("session cache lock");
        loop {
            if lru.len() <= 1 {
                return;
            }
            let total: usize = lru.values().map(|e| e.bytes.load(Ordering::Relaxed)).sum();
            if total <= self.cfg.session_budget_bytes {
                return;
            }
            let victim = lru
                .iter()
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
                .expect("non-empty cache");
            lru.remove(&victim);
            self.sessions_evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Serves `query` on `entry` through the coalescing layer: the query is
    /// queued, one thread becomes the batch leader and drives every queued
    /// query through a single [`Session::solve_batch`] call (whose scoped
    /// worker pool shards the distinct queries), and everyone picks up their
    /// own result.
    /// The leader's solve call runs under `catch_unwind`: a panic (injected
    /// or organic) poisons the whole coalesced batch — every member gets
    /// [`BatchError::Panicked`] — but the leader flag is always reset and
    /// waiters always wake, so the coalescing layer survives the panic.
    fn serve_on_entry(
        &self,
        entry: &SessionEntry,
        query: &Query,
        chaos_panic: bool,
    ) -> Result<Report, BatchError> {
        let ticket = {
            let mut b = entry.batch.lock().expect("batch lock");
            let t = b.next_ticket;
            b.next_ticket += 1;
            b.pending.push((t, query.clone()));
            b.chaos |= chaos_panic;
            t
        };
        let mut b = entry.batch.lock().expect("batch lock");
        loop {
            if let Some(result) = b.results.remove(&ticket) {
                return result;
            }
            if !b.leader {
                b.leader = true;
                let batch = std::mem::take(&mut b.pending);
                let chaos = std::mem::replace(&mut b.chaos, false);
                drop(b);
                let queries: Vec<Query> = batch.iter().map(|(_, q)| q.clone()).collect();
                let solved = catch_unwind(AssertUnwindSafe(|| {
                    if chaos {
                        panic!("chaos: injected solve panic");
                    }
                    entry.session.solve_batch(&queries)
                }));
                self.batches.fetch_add(1, Ordering::Relaxed);
                self.batched_queries.fetch_add(batch.len() as u64, Ordering::Relaxed);
                self.max_batch.fetch_max(batch.len() as u64, Ordering::Relaxed);
                let mut done = entry.batch.lock().expect("batch lock");
                match solved {
                    Ok(results) => {
                        for ((t, _), r) in batch.into_iter().zip(results) {
                            done.results.insert(t, r.map_err(BatchError::Solve));
                        }
                    }
                    Err(_) => {
                        for (t, _) in batch {
                            done.results.insert(t, Err(BatchError::Panicked));
                        }
                    }
                }
                done.leader = false;
                entry.batch_cv.notify_all();
                b = done;
            } else {
                b = entry.batch_cv.wait(b).expect("batch lock");
            }
        }
    }

    /// The cold referee: solves `query` from zero on a net configured exactly
    /// like the session's (`HybridConfig`, round threads, trivial fault
    /// plan), memoized per distinct query. The referee always runs on *the
    /// session's own graph* — the epoch the session is serving — so a
    /// catalog delta applied mid-flight can never make it compare against
    /// the wrong graph version. Returns the digest a served report must
    /// match, or the structured error a cold solve produces.
    fn cold_reference(
        &self,
        entry: &SessionEntry,
        seed: u64,
        query: &Query,
    ) -> Result<u64, HybridError> {
        let spec = crate::protocol::query_spec(query);
        let cell = {
            let mut cold = entry.cold.lock().expect("cold referee map lock");
            Arc::clone(cold.entry(spec).or_default())
        };
        let mut slot = cell.lock().expect("cold referee cell lock");
        if let Some(cached) = slot.as_ref() {
            return cached.clone();
        }
        let mut net = HybridNet::new(entry.session.graph(), self.cfg.net);
        if let Some(threads) = self.cfg.round_threads {
            net.set_round_threads(threads);
        }
        if let Some(plan) = &entry.faults {
            net.inject_faults(plan).expect("fault plan validated at registration");
        }
        let result = solve(&mut net, query, seed).map(|r| report_digest(&r));
        *slot = Some(result.clone());
        result
    }

    /// Serves one request end to end: breaker gate, admission, session
    /// acquisition, coalesced solve (panic-contained), online bit-identity
    /// verification, breaker settlement, LRU settlement.
    ///
    /// # Errors
    ///
    /// Structured, always: [`ServeError::Overloaded`] or
    /// [`ServeError::DeadlineExceeded`] under admission pressure,
    /// [`ServeError::BreakerOpen`] while the tenant's breaker is tripped,
    /// [`ServeError::UnknownTenant`]/[`ServeError::UnknownGraph`] for bad
    /// names, [`ServeError::Solve`] for solver errors (verified identical
    /// to the cold solve's), [`ServeError::Internal`] for a contained solve
    /// panic (the session is quarantined),
    /// [`ServeError::BitIdentityMismatch`] if a served answer ever diverges
    /// from its cold reference.
    pub fn serve(&self, req: &Request) -> Result<Response, ServeError> {
        let state = self.tenant_state(&req.tenant)?;
        let probe = self.breaker_gate(&state, &req.tenant)?;
        let outcome = self.serve_admitted(&state, req);
        self.breaker_settle(&state, probe, &outcome);
        outcome
    }

    /// The post-breaker serving path: admission through LRU settlement.
    fn serve_admitted(
        &self,
        state: &Arc<TenantState>,
        req: &Request,
    ) -> Result<Response, ServeError> {
        let guard = self.admit(state, req)?;
        let (graph, fingerprint) =
            self.catalog.get_pinned(&req.graph, req.fingerprint).inspect_err(|e| {
                if matches!(e, ServeError::StaleFingerprint { .. }) {
                    self.stale_epoch_refused.fetch_add(1, Ordering::Relaxed);
                }
            })?;
        let seed = req.seed.unwrap_or(self.cfg.seed);
        let key = SessionKey {
            tenant: req.tenant.clone(),
            fingerprint,
            seed,
            xi_bits: query_xi(&req.query).to_bits(),
        };
        let (entry, session_hit) =
            self.acquire_session(key.clone(), graph, guard.state.cfg.faults.clone())?;
        let ordinal = guard.state.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let chaos_panic =
            guard.state.cfg.chaos_panic_every.is_some_and(|k| k > 0 && ordinal % k == 0);
        let result = match self.serve_on_entry(&entry, &req.query, chaos_panic) {
            Ok(report) => Ok(report),
            Err(BatchError::Solve(e)) => Err(e),
            Err(BatchError::Panicked) => {
                self.quarantine(&key);
                return Err(ServeError::Internal {
                    tenant: req.tenant.clone(),
                    query: req.query.label(),
                });
            }
        };
        let response = if self.cfg.verify {
            let cold = self.cold_reference(&entry, seed, &req.query);
            self.verified.fetch_add(1, Ordering::Relaxed);
            match (result, cold) {
                (Ok(report), Ok(expected)) => {
                    let digest = report_digest(&report);
                    if digest == expected {
                        Ok(Response { report, digest, verified: true, session_hit })
                    } else {
                        self.mismatches.fetch_add(1, Ordering::Relaxed);
                        Err(ServeError::BitIdentityMismatch {
                            query: req.query.label(),
                            expected,
                            got: digest,
                        })
                    }
                }
                (Err(served), Err(cold)) if served == cold => Err(ServeError::Solve(served)),
                (served, cold) => {
                    self.mismatches.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::BitIdentityMismatch {
                        query: req.query.label(),
                        expected: cold.map_or(0, |d| d),
                        got: served.map_or(0, |r| report_digest(&r)),
                    })
                }
            }
        } else {
            match result {
                Ok(report) => {
                    let digest = report_digest(&report);
                    Ok(Response { report, digest, verified: false, session_hit })
                }
                Err(e) => Err(ServeError::Solve(e)),
            }
        };
        if let Ok(resp) = &response {
            self.served.fetch_add(1, Ordering::Relaxed);
            if matches!(resp.report.guarantee, Guarantee::Degraded { .. }) {
                self.degraded_served.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.settle_and_evict(&entry);
        response
    }

    /// Applies a graph delta on behalf of `tenant`: validates and installs
    /// the post-delta graph in the catalog (new fingerprint, epoch + 1), then
    /// migrates every resident session serving the old version through
    /// [`Session::apply_delta`] — incremental patch or verified full
    /// re-prepare, counted separately — and rekeys it under the new
    /// fingerprint.
    ///
    /// In-flight queries admitted before the update finish on their own
    /// `Arc` of the old-epoch session (and are verified against *that*
    /// epoch's graph); every admission from here on resolves the catalog to
    /// the new version.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] / [`ServeError::UnknownGraph`] for bad
    /// names; [`ServeError::Solve`] wrapping the structured
    /// [`hybrid_graph::DeltaError`] when the batch fails validation (catalog
    /// and sessions unchanged).
    pub fn update(
        &self,
        tenant: &str,
        graph: &str,
        batch: &DeltaBatch,
    ) -> Result<UpdateOutcome, ServeError> {
        self.tenant_state(tenant)?;
        let cat = self.catalog.apply_delta(graph, batch)?;
        self.deltas_applied.fetch_add(batch.len() as u64, Ordering::Relaxed);
        // Migrate resident sessions off the superseded version. The stale
        // entries leave the LRU immediately (no new admission can reach them
        // — lookups now resolve to the new fingerprint); in-flight holders
        // finish on their Arc clones.
        let stale: Vec<(SessionKey, Arc<SessionEntry>)> = {
            let mut lru = self.lru.lock().expect("session cache lock");
            let keys: Vec<SessionKey> =
                lru.keys().filter(|k| k.fingerprint == cat.old_fingerprint).cloned().collect();
            keys.into_iter()
                .map(|k| {
                    let e = lru.remove(&k).expect("key collected above");
                    (k, e)
                })
                .collect()
        };
        let mut outcome = UpdateOutcome {
            graph: graph.to_string(),
            fingerprint: cat.fingerprint,
            epoch: cat.epoch,
            migrated: 0,
            patched: 0,
            full: 0,
        };
        for (key, entry) in stale {
            let (session, repair) = entry.session.apply_delta(batch).map_err(ServeError::Solve)?;
            outcome.migrated += 1;
            outcome.patched += repair.patched;
            outcome.full += repair.full;
            self.repair_patched.fetch_add(repair.patched as u64, Ordering::Relaxed);
            self.repair_full.fetch_add(repair.full as u64, Ordering::Relaxed);
            let stamp = entry.stamp.load(Ordering::Relaxed);
            let migrated = Self::fresh_entry(session, entry.faults.clone(), stamp);
            let new_key = SessionKey { fingerprint: cat.fingerprint, ..key };
            let mut lru = self.lru.lock().expect("session cache lock");
            // A concurrent admission may have built the new-epoch session
            // already; keep whichever is resident (both are bit-identical by
            // the repair contract).
            lru.entry(new_key).or_insert(migrated);
        }
        Ok(outcome)
    }
}

/// Outcome of one [`Broker::update`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// The updated graph's catalog name.
    pub graph: String,
    /// Fingerprint of the post-delta graph (what future requests may pin).
    pub fingerprint: u64,
    /// The graph's new delta epoch.
    pub epoch: u64,
    /// Resident sessions migrated across the delta.
    pub migrated: usize,
    /// Preambles migrated on the incremental patch path, summed over those
    /// sessions.
    pub patched: usize,
    /// Preambles that took the full re-prepare fallback, summed over those
    /// sessions.
    pub full: usize,
}
