//! A line-delimited TCP front door over [`Broker::serve_line`]: one
//! `std::net::TcpListener`, one scoped thread per connection, newline
//! framing — no crates.io, no async runtime.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::Scope;

use crate::broker::Broker;

/// Handle to a running TCP server: the bound address plus a shutdown latch.
/// The accept loop and every connection handler run on the caller's thread
/// scope, so dropping the scope joins them all.
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl TcpServer {
    /// The address the server actually bound (use with port 0 to let the OS
    /// pick).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to exit. Idempotent; returns once the latch
    /// is set (the loop observes it on its next wakeup, which the call
    /// forces with a throwaway connection).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept() call; errors are fine — the listener may
        // already be gone.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Serves `broker` on `listener` using threads spawned on `scope`: an accept
/// loop plus one handler per connection, each reading request lines and
/// writing one response line per request. Returns immediately with the
/// server handle; call [`TcpServer::shutdown`] before the scope ends, or the
/// scope will block on the accept loop forever.
///
/// # Errors
///
/// Propagates the listener's `local_addr` failure.
pub fn serve_tcp<'scope, 'env, 'g: 'env>(
    scope: &'scope Scope<'scope, 'env>,
    broker: &'env Broker<'g>,
    listener: TcpListener,
) -> std::io::Result<TcpServer> {
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let latch = Arc::clone(&shutdown);
    scope.spawn(move || {
        for stream in listener.incoming() {
            if latch.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            scope.spawn(move || handle_connection(broker, stream));
        }
    });
    Ok(TcpServer { addr, shutdown })
}

/// One connection: read lines until EOF, answer each through the broker.
/// I/O errors drop the connection; they never unwind into the scope.
fn handle_connection(broker: &Broker<'_>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = broker.serve_line(&line);
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            break;
        }
    }
}
