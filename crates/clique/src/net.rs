//! The CLIQUE cost-model simulator.
//!
//! The congested clique (footnote 4 of the paper): synchronous message passing
//! where every node may send one `O(log n)`-bit message to *every* other node per
//! round. With Lenzen's routing theorem \[24\] this is equivalent, up to constant
//! factors, to: any message batch in which each node sends at most `n` and
//! receives at most `n` messages is deliverable in `O(1)` rounds. [`CliqueNet`]
//! adopts the Lenzen view and charges a batch `max_v ⌈max(sent_v, recv_v) / n⌉`
//! rounds.

use std::fmt;

use hybrid_graph::NodeId;

/// Errors of CLIQUE-algorithm executions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliqueError {
    /// An algorithm got more sources than its capacity allows (Theorem 4.1's
    /// `n^γ` restriction).
    TooManySources {
        /// Sources provided.
        got: usize,
        /// Maximum supported for this clique size.
        max: usize,
    },
    /// An envelope addressed a node outside `0..n`.
    AddressOutOfRange {
        /// The bad node.
        node: NodeId,
        /// Clique size.
        n: usize,
    },
    /// A declared algorithm was run on an empty source set where one is required.
    NoSources,
}

impl fmt::Display for CliqueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliqueError::TooManySources { got, max } => {
                write!(f, "algorithm supports at most {max} sources, got {got}")
            }
            CliqueError::AddressOutOfRange { node, n } => {
                write!(f, "node {node} out of range for clique of {n} nodes")
            }
            CliqueError::NoSources => write!(f, "algorithm requires at least one source"),
        }
    }
}

impl std::error::Error for CliqueError {}

/// A message in a CLIQUE routing batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliqueMsg<M> {
    /// Sender (clique-local ID).
    pub src: NodeId,
    /// Destination (clique-local ID).
    pub dst: NodeId,
    /// Payload (`O(log n)` bits in the model; small tuples in practice).
    pub msg: M,
}

impl<M> CliqueMsg<M> {
    /// Creates a message.
    pub fn new(src: NodeId, dst: NodeId, msg: M) -> Self {
        CliqueMsg { src, dst, msg }
    }
}

/// Simulated congested clique on `n` nodes with Lenzen-routing accounting.
#[derive(Debug)]
pub struct CliqueNet {
    n: usize,
    rounds: u64,
    messages: u64,
    max_round_load: usize,
    recorder: Option<Vec<Vec<(NodeId, NodeId)>>>,
}

impl CliqueNet {
    /// Creates a clique of `n` nodes.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "clique needs at least one node");
        CliqueNet { n, rounds: 0, messages: 0, max_round_load: 0, recorder: None }
    }

    /// Enables batch-shape recording: every routed batch's `(src, dst)` multiset
    /// is retained. The HYBRID simulation of the clique (Corollary 4.1 of the
    /// paper) replays these shapes through the token-routing protocol to charge
    /// honest HYBRID rounds for a genuine CLIQUE algorithm's traffic.
    pub fn record_batches(&mut self) {
        self.recorder = Some(Vec::new());
    }

    /// The recorded batch shapes (empty if recording was never enabled).
    pub fn recorded_batches(&self) -> &[Vec<(NodeId, NodeId)>] {
        self.recorder.as_deref().unwrap_or(&[])
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the clique is empty (never for a constructed net).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Rounds charged so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Messages routed so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Largest `max(sent_v, recv_v)` observed in a single batch.
    pub fn max_round_load(&self) -> usize {
        self.max_round_load
    }

    /// Charges `r` extra rounds (used by declared-complexity algorithms).
    pub fn charge_rounds(&mut self, r: u64) {
        self.rounds += r;
    }

    /// Routes a batch of messages, charging `max_v ⌈max(sent_v, recv_v) / n⌉`
    /// rounds (at least 1 for a non-empty batch). Returns per-node inboxes sorted
    /// by sender.
    ///
    /// # Errors
    ///
    /// [`CliqueError::AddressOutOfRange`] for bad endpoints.
    pub fn route<M>(
        &mut self,
        batch: Vec<CliqueMsg<M>>,
    ) -> Result<Vec<Vec<(NodeId, M)>>, CliqueError> {
        let n = self.n;
        if batch.is_empty() {
            return Ok((0..n).map(|_| Vec::new()).collect());
        }
        let mut sent = vec![0usize; n];
        let mut recv = vec![0usize; n];
        for m in &batch {
            if m.src.index() >= n {
                return Err(CliqueError::AddressOutOfRange { node: m.src, n });
            }
            if m.dst.index() >= n {
                return Err(CliqueError::AddressOutOfRange { node: m.dst, n });
            }
            sent[m.src.index()] += 1;
            recv[m.dst.index()] += 1;
        }
        let load = (0..n).map(|v| sent[v].max(recv[v])).max().unwrap_or(0);
        self.max_round_load = self.max_round_load.max(load);
        self.rounds += (load.div_ceil(n) as u64).max(1);
        self.messages += batch.len() as u64;
        if let Some(rec) = self.recorder.as_mut() {
            rec.push(batch.iter().map(|m| (m.src, m.dst)).collect());
        }
        let mut inboxes: Vec<Vec<(NodeId, M)>> = (0..n).map(|_| Vec::new()).collect();
        let mut sorted = batch;
        sorted.sort_by_key(|m| (m.dst, m.src));
        for m in sorted {
            inboxes[m.dst.index()].push((m.src, m.msg));
        }
        Ok(inboxes)
    }

    /// Broadcast from one node to all others (one CLIQUE round, `n-1` messages).
    ///
    /// # Errors
    ///
    /// [`CliqueError::AddressOutOfRange`] for a bad source.
    pub fn broadcast<M: Clone>(
        &mut self,
        src: NodeId,
        msg: M,
    ) -> Result<Vec<Vec<(NodeId, M)>>, CliqueError> {
        let batch: Vec<CliqueMsg<M>> = (0..self.n)
            .filter(|&v| v != src.index())
            .map(|v| CliqueMsg::new(src, NodeId::new(v), msg.clone()))
            .collect();
        self.route(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_batch_is_one_round() {
        let mut net = CliqueNet::new(4);
        let inboxes = net.route(vec![CliqueMsg::new(NodeId::new(0), NodeId::new(3), 9u8)]).unwrap();
        assert_eq!(inboxes[3], vec![(NodeId::new(0), 9)]);
        assert_eq!(net.rounds(), 1);
        assert_eq!(net.messages(), 1);
    }

    #[test]
    fn empty_batch_is_free() {
        let mut net = CliqueNet::new(4);
        net.route::<u8>(vec![]).unwrap();
        assert_eq!(net.rounds(), 0);
    }

    #[test]
    fn lenzen_cost_scales_with_load() {
        let mut net = CliqueNet::new(4);
        // Node 0 sends 10 messages to node 1: load 10, n = 4 ⇒ ⌈10/4⌉ = 3 rounds.
        let batch: Vec<_> =
            (0..10).map(|i| CliqueMsg::new(NodeId::new(0), NodeId::new(1), i)).collect();
        net.route(batch).unwrap();
        assert_eq!(net.rounds(), 3);
        assert_eq!(net.max_round_load(), 10);
    }

    #[test]
    fn full_clique_round_costs_one() {
        let n = 8;
        let mut net = CliqueNet::new(n);
        let mut batch = Vec::new();
        for s in 0..n {
            for d in 0..n {
                if s != d {
                    batch.push(CliqueMsg::new(NodeId::new(s), NodeId::new(d), (s, d)));
                }
            }
        }
        net.route(batch).unwrap();
        assert_eq!(net.rounds(), 1);
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let mut net = CliqueNet::new(5);
        let inboxes = net.broadcast(NodeId::new(2), "x").unwrap();
        for v in 0..5 {
            if v == 2 {
                assert!(inboxes[v].is_empty());
            } else {
                assert_eq!(inboxes[v], vec![(NodeId::new(2), "x")]);
            }
        }
        assert_eq!(net.rounds(), 1);
    }

    #[test]
    fn rejects_bad_address() {
        let mut net = CliqueNet::new(2);
        let err = net.route(vec![CliqueMsg::new(NodeId::new(0), NodeId::new(5), 0u8)]).unwrap_err();
        assert!(matches!(err, CliqueError::AddressOutOfRange { .. }));
    }

    #[test]
    fn charge_rounds_accumulates() {
        let mut net = CliqueNet::new(3);
        net.charge_rounds(7);
        assert_eq!(net.rounds(), 7);
    }

    #[test]
    fn error_display() {
        let e = CliqueError::TooManySources { got: 10, max: 3 };
        assert!(e.to_string().contains("sources"));
    }
}
