//! Experiment runner: regenerates every table of EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p hybrid-bench --bin experiments -- all
//! cargo run --release -p hybrid-bench --bin experiments -- e2 e5
//! cargo run --release -p hybrid-bench --bin experiments -- --small all
//! ```

use hybrid_bench::experiments as ex;
use hybrid_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--small") { Scale::Small } else { Scale::Full };
    let wanted: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();
    type Runner = fn(Scale) -> hybrid_bench::table::Table;
    let all = wanted.is_empty() || wanted.contains(&"all");
    let runs: Vec<(&str, Runner)> = vec![
        ("e1", ex::e1_token_routing),
        ("e2", ex::e2_apsp),
        ("e3", ex::e3_kssp),
        ("e4", ex::e4_sssp),
        ("e5", ex::e5_diameter),
        ("e6", ex::e6_kssp_lower_bound),
        ("e7", ex::e7_diameter_lower_bound),
        ("e8", ex::e8_helper_sets),
        ("e9", ex::e9_ruling_sets),
        ("e10", ex::e10_skeletons),
        ("e11", ex::e11_congestion),
        ("e12", ex::e12_clique_sim),
        ("e13", ex::e13_xi_ablation),
        ("e14", ex::e14_mu_ablation),
        ("e15", ex::e15_gamma_ablation),
    ];
    for (id, f) in runs {
        if all || wanted.contains(&id) {
            eprintln!("running {id}...");
            f(scale).print();
        }
    }
}
