//! Graph inspection and export utilities: DOT rendering for debugging the
//! constructions (skeletons, lower-bound graphs), degree statistics for
//! workload characterization, and induced subgraphs.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::graph::{Graph, GraphBuilder, GraphError};
use crate::ids::NodeId;

/// Renders the graph in Graphviz DOT format (undirected). Optional
/// `highlight` nodes are filled — used to visualize sampled skeletons and the
/// cliques of the `Γ` construction.
pub fn to_dot(g: &Graph, name: &str, highlight: &[NodeId]) -> String {
    let mark: std::collections::HashSet<NodeId> = highlight.iter().copied().collect();
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    for v in g.nodes() {
        if mark.contains(&v) {
            let _ = writeln!(out, "  {} [style=filled, fillcolor=lightblue];", v.index());
        }
    }
    for e in g.edges() {
        let _ = writeln!(out, "  {} -- {} [label=\"{}\"];", e.u.index(), e.v.index(), e.w);
    }
    out.push_str("}\n");
    out
}

/// Degree distribution summary of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Sum of degrees (`2m`).
    pub total: usize,
    /// Histogram: `count[d]` = number of nodes with degree `d`.
    pub histogram: Vec<usize>,
}

impl DegreeStats {
    /// Mean degree.
    pub fn mean(&self) -> f64 {
        let n: usize = self.histogram.iter().sum();
        if n == 0 {
            0.0
        } else {
            self.total as f64 / n as f64
        }
    }
}

/// Computes the degree statistics of `g`.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    let max = degrees.iter().copied().max().unwrap_or(0);
    let mut histogram = vec![0usize; max + 1];
    for &d in &degrees {
        histogram[d] += 1;
    }
    DegreeStats {
        min: degrees.iter().copied().min().unwrap_or(0),
        max,
        total: degrees.iter().sum(),
        histogram,
    }
}

/// Builds the subgraph induced by `nodes` (re-indexed densely in the order of
/// the sorted, deduplicated input). Returns the subgraph and the mapping from
/// new IDs to original IDs.
///
/// # Errors
///
/// Propagates [`GraphError`] (e.g. an empty node set).
pub fn induced_subgraph(g: &Graph, nodes: &[NodeId]) -> Result<(Graph, Vec<NodeId>), GraphError> {
    let mut sorted: Vec<NodeId> = nodes.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let index: HashMap<NodeId, usize> = sorted.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut b = GraphBuilder::new(sorted.len());
    for e in g.edges() {
        if let (Some(&u), Some(&v)) = (index.get(&e.u), index.get(&e.v)) {
            b.add_edge(NodeId::new(u), NodeId::new(v), e.w)?;
        }
    }
    Ok((b.build()?, sorted))
}

/// Returns the connected components of `g`, each sorted by ID, ordered by
/// smallest member.
pub fn connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    let n = g.len();
    let mut seen = vec![false; n];
    let mut components = Vec::new();
    for start in g.nodes() {
        if seen[start.index()] {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![start];
        seen[start.index()] = true;
        while let Some(v) = stack.pop() {
            comp.push(v);
            for (u, _) in g.neighbors(v) {
                if !seen[u.index()] {
                    seen[u.index()] = true;
                    stack.push(u);
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, path, star};

    #[test]
    fn dot_contains_all_edges_and_highlights() {
        let g = path(3, 2).unwrap();
        let dot = to_dot(&g, "p", &[NodeId::new(1)]);
        assert!(dot.starts_with("graph p {"));
        assert!(dot.contains("0 -- 1 [label=\"2\"]"));
        assert!(dot.contains("1 -- 2 [label=\"2\"]"));
        assert!(dot.contains("1 [style=filled"));
        assert!(!dot.contains("0 [style=filled"));
    }

    #[test]
    fn degree_stats_on_star() {
        let g = star(6, 1).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert_eq!(s.total, 10); // 2m
        assert_eq!(s.histogram[1], 5);
        assert_eq!(s.histogram[5], 1);
        assert!((s.mean() - 10.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = complete(5, 3).unwrap();
        let (sub, mapping) =
            induced_subgraph(&g, &[NodeId::new(4), NodeId::new(1), NodeId::new(2)]).unwrap();
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.num_edges(), 3); // triangle
        assert_eq!(mapping, vec![NodeId::new(1), NodeId::new(2), NodeId::new(4)]);
        assert_eq!(sub.edge_weight(NodeId::new(0), NodeId::new(2)), Some(3));
    }

    #[test]
    fn induced_subgraph_dedups_input() {
        let g = path(4, 1).unwrap();
        let (sub, mapping) =
            induced_subgraph(&g, &[NodeId::new(0), NodeId::new(0), NodeId::new(1)]).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(mapping.len(), 2);
        assert_eq!(sub.num_edges(), 1);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(NodeId::new(0), NodeId::new(1), 1).unwrap();
        b.add_edge(NodeId::new(3), NodeId::new(4), 1).unwrap();
        let g = b.build().unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![NodeId::new(0), NodeId::new(1)]);
        assert_eq!(comps[1], vec![NodeId::new(2)]);
        assert_eq!(comps[2], vec![NodeId::new(3), NodeId::new(4)]);
    }

    #[test]
    fn components_of_connected_graph() {
        let g = path(6, 1).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 6);
    }
}
