//! Scenario: an enterprise WAN — dense office LANs stitched together by a few
//! heavy long-haul links (the "company network + Internet/VPN" hybrid setting
//! of the paper's introduction). The operator wants full routing tables for
//! the local fabric: exact APSP (Theorem 1.1), then next-hop extraction — the
//! "efficient IP-routing" application the paper names.
//!
//! The topology is the registry's `wan-clustered-apsp` scenario.
//!
//! ```sh
//! cargo run --release --example enterprise_wan
//! ```

use hybrid_shortest_paths::graph::apsp::{follow_route, next_hop_table};
use hybrid_shortest_paths::graph::NodeId;
use hybrid_shortest_paths::scenarios::{self, GraphFamily};
use hybrid_shortest_paths::{solve, ApspVariant, Query};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 4 offices of 60 hosts; cheap LAN links, expensive WAN links.
    let scenario = scenarios::find("wan-clustered-apsp").expect("registered scenario");
    let g = scenario.graph(240);
    let GraphFamily::Clustered { link_w, .. } = scenario.family else {
        unreachable!("wan scenario is clustered");
    };
    println!(
        "WAN: {} hosts, {} links ({} heavy WAN links)",
        g.len(),
        g.num_edges(),
        g.edges().iter().filter(|e| e.w == link_w).count()
    );

    // Distributed exact APSP (Theorem 1.1) through the solver facade.
    let mut net = scenario.net(&g);
    let report = solve(&mut net, &Query::apsp().build()?, scenario.seed)?;
    println!(
        "exact APSP in {} HYBRID rounds (skeleton {}, h = {})",
        report.rounds, report.skeleton_size, report.h
    );
    let dist = report.distances().expect("APSP answers with a matrix");

    // The LOCAL-only alternative needs D rounds of full flooding — the same
    // facade, different variant.
    let mut local_net = scenario.net(&g);
    let flood = Query::apsp().variant(ApspVariant::LocalFlood).build()?;
    let local = solve(&mut local_net, &flood, scenario.seed)?;
    println!("LOCAL-only flooding baseline: {} rounds (= hop diameter)", local.rounds);
    println!(
        "  note: this fabric has tiny hop diameter, so plain flooding wins here — \n\
         the paper's algorithms are min(D, Õ(√n)) (§1); see datacenter_diameter \n\
         for the large-D regime. Flooding also ships the entire topology to every \n\
         host ({} edge records each) where APSP ships O(n) distances.",
        g.num_edges()
    );

    // Routing tables from the computed matrix.
    let table = next_hop_table(&g, dist);
    let (src, dst) = (NodeId::new(3), NodeId::new(g.len() - 5));
    let route = follow_route(&table, src, dst, g.len()).expect("connected WAN");
    let cost: u64 = route.windows(2).map(|w| g.edge_weight(w[0], w[1]).unwrap()).sum();
    println!(
        "route {src} -> {dst}: {} hops, total weight {cost} (= d(src,dst) = {})",
        route.len() - 1,
        dist.get(src, dst)
    );
    assert_eq!(cost, dist.get(src, dst), "routing table realizes shortest paths");

    // Every pair routes optimally — verify a sample.
    for (u, v) in [(0usize, 119), (17, 200), (55, 231), (90, 12)] {
        let (u, v) = (NodeId::new(u), NodeId::new(v % g.len()));
        if u == v {
            continue;
        }
        let r = follow_route(&table, u, v, g.len()).expect("route");
        let c: u64 = r.windows(2).map(|w| g.edge_weight(w[0], w[1]).unwrap()).sum();
        assert_eq!(c, dist.get(u, v));
    }
    println!("sampled routes all realize exact shortest-path weights ✓");
    Ok(())
}
