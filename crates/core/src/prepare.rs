//! Shared preprocessing phases and their session cache.
//!
//! Every paper algorithm opens with the same preamble: sample a skeleton
//! (Algorithm 6), derive per-node nearby-skeleton knowledge, and (for APSP)
//! solve the skeleton graph exactly. A fresh [`crate::solver::solve`] call
//! recomputes all of it; a [`crate::session::Session`] runs each phase once
//! per *skeleton key* `(x, ξ, forced nodes, seed)` and serves every later
//! query from the immutable [`Prepared`] artifact, charging only the
//! simulated rounds the phase would have cost (the protocol's round bill is
//! replayed, the wall-clock recomputation is not).
//!
//! The phases here are the single implementation used by both paths: the
//! algorithm modules call them with [`Prep::Cold`] (fresh solve — compute,
//! don't cache) or [`Prep::Warm`] (session solve — serve from / fill the
//! cache). Results are bit-identical by construction: each phase is a pure
//! function of `(graph, key)` plus a deterministic round charge.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use hybrid_graph::apsp::DistanceMatrix;
use hybrid_graph::dijkstra::par_map_rows;
use hybrid_graph::skeleton::Skeleton;
use hybrid_graph::{Distance, Graph, NodeId, INFINITY};
use hybrid_sim::{par, HybridNet};

use crate::error::HybridError;
use crate::skeleton_ops::compute_skeleton;

/// How an algorithm wants its preprocessing served.
#[derive(Clone, Copy)]
pub(crate) enum Prep<'a> {
    /// Fresh solve: compute every phase on the spot, cache nothing.
    Cold,
    /// Session solve: serve phases from (and insert them into) the cache.
    Warm(&'a Prepared),
}

/// Cache key of one skeleton preamble: the sampling exponent, the radius
/// constant ξ, the forced members (the single source of Lemma 4.5), and the
/// root seed — everything `compute_skeleton` draws on besides the graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct SkeletonKey {
    x_exp_bits: u64,
    xi_bits: u64,
    forced: Vec<NodeId>,
    seed: u64,
}

impl SkeletonKey {
    fn new(x_exp: f64, xi: f64, forced: &[NodeId], seed: u64) -> Self {
        SkeletonKey {
            x_exp_bits: x_exp.to_bits(),
            xi_bits: xi.to_bits(),
            forced: forced.to_vec(),
            seed,
        }
    }

    /// The sampling exponent the key was built from.
    pub(crate) fn x_exp(&self) -> f64 {
        f64::from_bits(self.x_exp_bits)
    }

    /// The radius constant ξ the key was built from.
    pub(crate) fn xi(&self) -> f64 {
        f64::from_bits(self.xi_bits)
    }

    /// The forced member set.
    pub(crate) fn forced(&self) -> &[NodeId] {
        &self.forced
    }

    /// The root seed.
    pub(crate) fn seed(&self) -> u64 {
        self.seed
    }
}

/// Tie-break used when a node has no skeleton within `h` hops and the
/// exploration is adaptively deepened. The two framework families resolve the
/// fallback differently (and the difference is pinned by their tests), so the
/// flavors are cached separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NearTie {
    /// APSP (Theorem 1.1 / SODA'20): nearest by `(distance, hops, index)`,
    /// charging the extra exploration rounds beyond `h`.
    HopThenIndex,
    /// k-SSP framework (Theorem 4.1): nearest by `(distance, index)`; the
    /// `ηh` exploration already paid for the deepening.
    IndexOnly,
}

/// Per-node nearby-skeleton lists in one compact flat arena: `starts` offsets
/// into parallel `idx`/`dist` arrays (u32 skeleton-local indices — half the
/// footprint of the former per-node `Vec<(usize, Distance)>` lists, and one
/// allocation instead of `n`).
#[derive(Debug)]
pub(crate) struct NearData {
    starts: Vec<u32>,
    idx: Vec<u32>,
    dist: Vec<Distance>,
    /// Nodes that needed the adaptive exploration fallback (Lemma C.1
    /// failure events).
    pub fallbacks: usize,
    /// Extra exploration rounds beyond `h` the fallbacks cost (charged by
    /// [`near_phase`] under the caller's phase label).
    pub extra_rounds: u64,
}

impl NearData {
    /// The `(skeleton-local index, d_h(v, s))` pairs of node `v`, ascending
    /// by index.
    pub fn node(&self, v: usize) -> impl Iterator<Item = (usize, Distance)> + '_ {
        let (lo, hi) = (self.starts[v] as usize, self.starts[v + 1] as usize);
        self.idx[lo..hi].iter().zip(&self.dist[lo..hi]).map(|(&i, &d)| (i as usize, d))
    }

    /// Number of per-node entry runs (= `n`).
    pub(crate) fn len(&self) -> usize {
        self.starts.len() - 1
    }

    /// Rebuilds the arena with the runs of `dirty` nodes replaced by their
    /// `fresh` lists and every clean run copied verbatim — the repair path's
    /// single-pass equivalent of expanding to per-node lists, editing the
    /// dirty ones, and re-flattening through [`NearData::from_lists`]
    /// (bit-identical to that construction, without `n` intermediate
    /// allocations). The caller guarantees `self.fallbacks == 0` and a
    /// non-empty fresh list for every dirty node, so the spliced arena is a
    /// fallback-free cold value.
    pub(crate) fn splice_rows(&self, dirty: &[bool], fresh: &[Vec<(usize, Distance)>]) -> NearData {
        let n = self.len();
        let mut starts = Vec::with_capacity(n + 1);
        let mut idx = Vec::with_capacity(self.idx.len());
        let mut dist = Vec::with_capacity(self.dist.len());
        starts.push(0u32);
        for v in 0..n {
            if dirty[v] {
                for &(i, d) in &fresh[v] {
                    idx.push(i as u32);
                    dist.push(d);
                }
            } else {
                let (lo, hi) = (self.starts[v] as usize, self.starts[v + 1] as usize);
                idx.extend_from_slice(&self.idx[lo..hi]);
                dist.extend_from_slice(&self.dist[lo..hi]);
            }
            starts.push(idx.len() as u32);
        }
        NearData { starts, idx, dist, fallbacks: 0, extra_rounds: 0 }
    }

    /// Flattens per-node lists into the compact arena — the single
    /// construction path, so equal lists yield a bit-identical arena.
    pub(crate) fn from_lists(
        lists: &[Vec<(usize, Distance)>],
        fallbacks: usize,
        extra_rounds: u64,
    ) -> NearData {
        let total: usize = lists.iter().map(Vec::len).sum();
        let mut starts = Vec::with_capacity(lists.len() + 1);
        let mut idx = Vec::with_capacity(total);
        let mut dist = Vec::with_capacity(total);
        starts.push(0u32);
        for list in lists {
            for &(i, d) in list {
                idx.push(i as u32);
                dist.push(d);
            }
            starts.push(idx.len() as u32);
        }
        NearData { starts, idx, dist, fallbacks, extra_rounds }
    }

    /// `d_h(v, s)` if skeleton node `s` is near `v` (binary search over the
    /// node's sorted index run).
    pub fn dist_to(&self, v: usize, s: usize) -> Option<Distance> {
        let (lo, hi) = (self.starts[v] as usize, self.starts[v + 1] as usize);
        self.idx[lo..hi].binary_search(&(s as u32)).ok().map(|k| self.dist[lo + k])
    }

    /// Approximate heap footprint of the arena in bytes.
    fn bytes(&self) -> usize {
        use std::mem::size_of;
        self.starts.len() * size_of::<u32>()
            + self.idx.len() * size_of::<u32>()
            + self.dist.len() * size_of::<Distance>()
    }
}

/// Everything derived from one skeleton preamble, computed lazily and at most
/// once per session. The skeleton itself is eager (it *is* the phase); the
/// derived tables fill on first use by an algorithm that needs them.
#[derive(Debug)]
pub(crate) struct SkeletonArtifacts {
    /// The constructed skeleton (Algorithm 6's output, post-remediation).
    pub skeleton: Skeleton,
    d_s: OnceLock<Arc<DistanceMatrix>>,
    near_hop: OnceLock<Arc<NearData>>,
    near_plain: OnceLock<Arc<NearData>>,
}

impl SkeletonArtifacts {
    fn new(skeleton: Skeleton) -> Self {
        SkeletonArtifacts {
            skeleton,
            d_s: OnceLock::new(),
            near_hop: OnceLock::new(),
            near_plain: OnceLock::new(),
        }
    }

    /// Artifacts with some derived tables pre-seeded — the repair path's
    /// constructor, carrying over tables proven unchanged by damage analysis
    /// (a `None` slot refills lazily, recomputing the bit-identical value).
    pub(crate) fn with_tables(
        skeleton: Skeleton,
        d_s: Option<Arc<DistanceMatrix>>,
        near_hop: Option<Arc<NearData>>,
        near_plain: Option<Arc<NearData>>,
    ) -> Self {
        let art = SkeletonArtifacts::new(skeleton);
        if let Some(m) = d_s {
            let _ = art.d_s.set(m);
        }
        if let Some(nd) = near_hop {
            let _ = art.near_hop.set(nd);
        }
        if let Some(nd) = near_plain {
            let _ = art.near_plain.set(nd);
        }
        art
    }

    /// The memoized skeleton APSP, if an algorithm has derived it already.
    pub(crate) fn d_s_built(&self) -> Option<Arc<DistanceMatrix>> {
        self.d_s.get().cloned()
    }

    /// The memoized near-list flavor, if built.
    pub(crate) fn near_built(&self, tie: NearTie) -> Option<Arc<NearData>> {
        match tie {
            NearTie::HopThenIndex => self.near_hop.get().cloned(),
            NearTie::IndexOnly => self.near_plain.get().cloned(),
        }
    }

    /// Approximate heap bytes of the skeleton and every derived table built
    /// so far (unbuilt lazy tables cost nothing yet).
    fn bytes(&self) -> usize {
        let mut total = self.skeleton.approx_heap_bytes();
        if let Some(m) = self.d_s.get() {
            total += std::mem::size_of_val(m.as_flat());
        }
        for slot in [&self.near_hop, &self.near_plain] {
            if let Some(near) = slot.get() {
                total += near.bytes();
            }
        }
        total
    }
}

/// The immutable preprocessing artifact of a session: skeleton preambles
/// keyed by `(x, ξ, forced, seed)`, each with its lazily derived tables.
/// Logically immutable — every entry is a pure function of the session's
/// graph and its key — with interior mutability only for memoization, so a
/// `&Prepared` can be shared across the batch workers.
///
/// Each key owns a per-key cell (`Mutex<Option<…>>`): the first worker to
/// reach a key computes the artifacts while holding the cell lock, and
/// concurrent workers on the same key *block and reuse* instead of
/// duplicating the preprocessing — the map lock itself is only held for the
/// entry lookup, so distinct keys still prepare in parallel.
#[derive(Debug, Default)]
pub struct Prepared {
    skeletons: Mutex<HashMap<SkeletonKey, PreambleCell>>,
}

/// One key's construction slot: empty while unbuilt (or after a failed
/// build), then the canonical artifacts. Workers lock the cell for the
/// duration of a build, so racers wait instead of duplicating it.
type PreambleCell = Arc<Mutex<Option<Arc<SkeletonArtifacts>>>>;

impl Prepared {
    /// Number of distinct skeleton preambles prepared so far (in-flight or
    /// failed constructions do not count).
    pub fn skeletons(&self) -> usize {
        let cells: Vec<PreambleCell> =
            self.skeletons.lock().expect("prepared cache lock").values().cloned().collect();
        cells.iter().filter(|c| c.lock().expect("prepared cell lock").is_some()).count()
    }

    /// Approximate heap bytes of every prepared artifact: skeletons plus the
    /// derived tables built so far. Grows as queries prepare and derive —
    /// the sizing input for byte-budgeted session caches (surfaced as
    /// `prepared_bytes` on [`crate::session::SessionStats`]).
    pub fn bytes(&self) -> usize {
        let cells: Vec<PreambleCell> =
            self.skeletons.lock().expect("prepared cache lock").values().cloned().collect();
        cells
            .iter()
            .filter_map(|c| c.lock().expect("prepared cell lock").as_ref().map(|a| a.bytes()))
            .sum()
    }

    /// The per-key cell, created empty on first access.
    fn cell(&self, key: SkeletonKey) -> PreambleCell {
        self.skeletons.lock().expect("prepared cache lock").entry(key).or_default().clone()
    }

    /// Snapshot of every *built* preamble — the migration set of incremental
    /// re-preparation after a topology delta.
    pub(crate) fn built_entries(&self) -> Vec<(SkeletonKey, Arc<SkeletonArtifacts>)> {
        let cells: Vec<(SkeletonKey, PreambleCell)> = self
            .skeletons
            .lock()
            .expect("prepared cache lock")
            .iter()
            .map(|(k, c)| (k.clone(), c.clone()))
            .collect();
        let mut entries: Vec<(SkeletonKey, Arc<SkeletonArtifacts>)> = cells
            .into_iter()
            .filter_map(|(k, c)| c.lock().expect("prepared cell lock").clone().map(|a| (k, a)))
            .collect();
        // Deterministic migration order, independent of hash-map iteration.
        entries.sort_by(|(a, _), (b, _)| {
            (a.x_exp_bits, a.xi_bits, &a.forced, a.seed).cmp(&(
                b.x_exp_bits,
                b.xi_bits,
                &b.forced,
                b.seed,
            ))
        });
        entries
    }

    /// Installs a pre-built preamble under `key` (the repair path's insert).
    pub(crate) fn insert_built(&self, key: SkeletonKey, art: Arc<SkeletonArtifacts>) {
        let cell = self.cell(key);
        let mut slot = cell.lock().expect("prepared cell lock");
        *slot = Some(art);
    }
}

/// Algorithm 6 as a reusable phase: returns the skeleton artifacts for
/// `(x_exp, xi, forced, seed)`, charging the `h` rounds of local edge
/// discovery exactly as a fresh `compute_skeleton` would — on a cache hit the
/// charge is replayed without recomputation.
pub(crate) fn skeleton_phase(
    net: &mut HybridNet<'_>,
    x_exp: f64,
    xi: f64,
    forced: &[NodeId],
    seed: u64,
    phase: &str,
    prep: Prep<'_>,
) -> Result<Arc<SkeletonArtifacts>, HybridError> {
    if net.tracing() {
        net.trace_span_begin(&format!("prepare:{phase}"));
    }
    let out = skeleton_phase_impl(net, x_exp, xi, forced, seed, phase, prep);
    if net.tracing() {
        net.trace_span_end(&format!("prepare:{phase}"));
    }
    out
}

fn skeleton_phase_impl(
    net: &mut HybridNet<'_>,
    x_exp: f64,
    xi: f64,
    forced: &[NodeId],
    seed: u64,
    phase: &str,
    prep: Prep<'_>,
) -> Result<Arc<SkeletonArtifacts>, HybridError> {
    let Prep::Warm(prepared) = prep else {
        let skeleton = compute_skeleton(net, x_exp, xi, forced, seed, phase)?;
        return Ok(Arc::new(SkeletonArtifacts::new(skeleton)));
    };
    let key = SkeletonKey::new(x_exp, xi, forced, seed);
    let cell = prepared.cell(key);
    let mut slot = cell.lock().expect("prepared cell lock");
    if let Some(art) = slot.as_ref() {
        // Replay Algorithm 6's round bill: `h` rounds of local discovery at
        // the (post-remediation) radius the cached construction settled on.
        let art = art.clone();
        net.trace_cache(phase, true);
        net.charge_local(art.skeleton.h() as u64, phase);
        return Ok(art);
    }
    // First worker on this key: compute while holding the cell lock so
    // concurrent workers block (and then replay) instead of recomputing. On
    // error the slot stays empty and the next caller retries.
    net.trace_cache(phase, false);
    let skeleton = compute_skeleton(net, x_exp, xi, forced, seed, phase)?;
    let art = Arc::new(SkeletonArtifacts::new(skeleton));
    *slot = Some(art.clone());
    Ok(art)
}

/// Exact APSP on the skeleton graph (`d_S`), memoized per skeleton. A pure
/// local computation — no rounds to charge.
pub(crate) fn skeleton_apsp(art: &SkeletonArtifacts) -> Arc<DistanceMatrix> {
    art.d_s.get_or_init(|| Arc::new(art.skeleton.apsp())).clone()
}

/// Per-node nearby-skeleton lists with the adaptive Lemma C.1 fallback,
/// memoized per `(skeleton, tie)`. The fallback's extra exploration rounds
/// are charged under `phase` on every call (hit or miss) for the
/// [`NearTie::HopThenIndex`] flavor — exactly the fresh algorithms' behavior.
pub(crate) fn near_phase(
    net: &mut HybridNet<'_>,
    art: &SkeletonArtifacts,
    tie: NearTie,
    phase: &str,
) -> Arc<NearData> {
    let g = net.graph();
    let threads = net.round_threads();
    let slot = match tie {
        NearTie::HopThenIndex => &art.near_hop,
        NearTie::IndexOnly => &art.near_plain,
    };
    let data = slot.get_or_init(|| Arc::new(compute_near(g, threads, &art.skeleton, tie))).clone();
    if tie == NearTie::HopThenIndex && data.extra_rounds > 0 {
        net.charge_local(data.extra_rounds, phase);
    }
    data
}

/// Computes the nearby-skeleton arena: per-node lists from the skeleton's
/// `d_h` table (sharded across the round-engine worker budget), then one
/// parallel lexicographic Dijkstra per uncovered node.
pub(crate) fn compute_near(
    g: &Graph,
    threads: usize,
    skeleton: &Skeleton,
    tie: NearTie,
) -> NearData {
    let n = g.len();
    let ns = skeleton.len();
    let mut lists: Vec<Vec<(usize, Distance)>> = vec![Vec::new(); n];
    par::map_shards_mut(threads, &mut lists, |start, shard| {
        for (i, slot) in shard.iter_mut().enumerate() {
            *slot = skeleton.skeletons_near(NodeId::new(start + i));
        }
    });
    let uncovered: Vec<NodeId> = (0..n).filter(|&v| lists[v].is_empty()).map(NodeId::new).collect();
    let fallbacks = uncovered.len();
    let mut extra_rounds = 0u64;
    if fallbacks > 0 {
        match tie {
            NearTie::HopThenIndex => {
                let resolved = par_map_rows(g, &uncovered, |_, _, dist, hops| {
                    (0..ns)
                        .filter_map(|i| {
                            let t = skeleton.global(i);
                            (dist[t.index()] != INFINITY).then_some((
                                dist[t.index()],
                                hops[t.index()],
                                i,
                            ))
                        })
                        .min()
                });
                for (&v, best) in uncovered.iter().zip(resolved) {
                    if let Some((d, hop, i)) = best {
                        extra_rounds = extra_rounds.max(hop.saturating_sub(skeleton.h() as u64));
                        lists[v.index()] = vec![(i, d)];
                    }
                }
            }
            NearTie::IndexOnly => {
                let resolved = par_map_rows(g, &uncovered, |_, _, dist, _| {
                    (0..ns)
                        .filter_map(|i| {
                            let t = skeleton.global(i);
                            (dist[t.index()] != INFINITY).then_some((dist[t.index()], i))
                        })
                        .min()
                });
                for (&v, best) in uncovered.iter().zip(resolved) {
                    lists[v.index()] = best.map(|(d, i)| vec![(i, d)]).unwrap_or_default();
                }
            }
        }
    }
    NearData::from_lists(&lists, fallbacks, extra_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators::{erdos_renyi_connected, path};
    use hybrid_sim::HybridConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn near_data_matches_per_node_lists() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi_connected(60, 0.08, 3, &mut rng).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let art = skeleton_phase(&mut net, 0.5, 1.5, &[], 9, "t", Prep::Cold).unwrap();
        let near = near_phase(&mut net, &art, NearTie::HopThenIndex, "t");
        for v in 0..g.len() {
            let expected = art.skeleton.skeletons_near(NodeId::new(v));
            let got: Vec<(usize, Distance)> = near.node(v).collect();
            assert_eq!(got, expected, "node {v}");
            for &(s, d) in &expected {
                assert_eq!(near.dist_to(v, s), Some(d));
            }
            assert_eq!(near.dist_to(v, art.skeleton.len() + 1), None);
        }
    }

    #[test]
    fn warm_phase_replays_the_same_round_bill() {
        let g = path(40, 1).unwrap();
        let prepared = Prepared::default();
        let mut cold_net = HybridNet::new(&g, HybridConfig::default());
        let cold = skeleton_phase(&mut cold_net, 0.5, 1.0, &[], 3, "t", Prep::Cold).unwrap();
        // First warm call computes and caches; second replays the charge.
        let mut warm1 = HybridNet::new(&g, HybridConfig::default());
        let a = skeleton_phase(&mut warm1, 0.5, 1.0, &[], 3, "t", Prep::Warm(&prepared)).unwrap();
        let mut warm2 = HybridNet::new(&g, HybridConfig::default());
        let b = skeleton_phase(&mut warm2, 0.5, 1.0, &[], 3, "t", Prep::Warm(&prepared)).unwrap();
        assert_eq!(prepared.skeletons(), 1);
        assert!(Arc::ptr_eq(&a, &b), "hit serves the canonical artifact");
        assert_eq!(a.skeleton.nodes(), cold.skeleton.nodes());
        assert_eq!(warm1.rounds(), cold_net.rounds());
        assert_eq!(warm2.rounds(), cold_net.rounds(), "hit charges the identical bill");
        // Distinct keys prepare distinct skeletons.
        let mut warm3 = HybridNet::new(&g, HybridConfig::default());
        skeleton_phase(&mut warm3, 0.5, 1.0, &[], 4, "t", Prep::Warm(&prepared)).unwrap();
        assert_eq!(prepared.skeletons(), 2);
    }

    #[test]
    fn d_s_is_memoized_per_skeleton() {
        let g = path(30, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let art = skeleton_phase(&mut net, 0.5, 1.0, &[], 7, "t", Prep::Cold).unwrap();
        let a = skeleton_apsp(&art);
        let b = skeleton_apsp(&art);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.get(NodeId::new(0), NodeId::new(0)), 0);
    }
}
