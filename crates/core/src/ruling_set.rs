//! Distributed ruling sets (§2.1, Lemma 2.1).
//!
//! A `(α, β)`-ruling set (Definition 2.3): every node has a ruler within `β`
//! hops, and rulers are pairwise `≥ α` hops apart. Lemma 2.1 (via \[22\], or
//! classically \[4\]) provides a deterministic `(2µ+1, 2µ⌈log n⌉)`-ruling set in
//! `O(µ log n)` rounds of the local network.
//!
//! We implement the classic bit-by-bit candidate elimination: process the
//! `⌈log₂ n⌉` ID bits from most significant to least; in the stage for bit `b`,
//! every remaining candidate whose bit is 1 withdraws if some candidate with
//! bit 0 sits within `2µ` hops (detectable by a `2µ`-round local exploration).
//! Surviving candidates with different IDs must differ at some bit, and at that
//! stage the 1-side would have withdrawn were they within `2µ` hops — so
//! survivors are pairwise `≥ 2µ+1` apart. A withdrawn node had a candidate
//! within `2µ` hops; chaining over the `⌈log₂ n⌉` stages bounds the domination
//! radius by `2µ⌈log₂ n⌉`.

use hybrid_graph::bfs::multi_source_bfs;
use hybrid_graph::graph::log2_ceil;
use hybrid_graph::{NodeId, INFINITY};
use hybrid_sim::HybridNet;

/// Result of the ruling-set computation.
#[derive(Debug, Clone)]
pub struct RulingSet {
    /// The rulers, sorted by ID.
    pub rulers: Vec<NodeId>,
    /// Guaranteed minimum pairwise hop distance `α = 2µ+1`.
    pub alpha: usize,
    /// Guaranteed domination radius `β = 2µ⌈log₂ n⌉`.
    pub beta: usize,
}

/// Computes a `(2µ+1, 2µ⌈log₂ n⌉)`-ruling set in `O(µ log n)` local rounds
/// (Lemma 2.1), charging them on `net` under `phase`.
///
/// # Panics
///
/// Panics if `mu == 0`.
pub fn ruling_set(net: &mut HybridNet<'_>, mu: usize, phase: &str) -> RulingSet {
    assert!(mu >= 1, "µ must be positive");
    let g = net.graph();
    let n = g.len();
    let bits = log2_ceil(n);
    let radius = 2 * mu;
    let mut candidate = vec![true; n];
    for b in (0..bits).rev() {
        // Zero-bit candidates of this stage.
        let zero_candidates: Vec<NodeId> =
            (0..n).filter(|&v| candidate[v] && (v >> b) & 1 == 0).map(NodeId::new).collect();
        // Local exploration to depth `radius`: each 1-candidate checks for a
        // 0-candidate nearby.
        net.charge_local(radius as u64, phase);
        if zero_candidates.is_empty() {
            continue;
        }
        let reach = multi_source_bfs(g, &zero_candidates);
        for v in 0..n {
            if candidate[v] && (v >> b) & 1 == 1 {
                let (_, d) = reach[v];
                if d != INFINITY && d as usize <= radius {
                    candidate[v] = false;
                }
            }
        }
    }
    let rulers: Vec<NodeId> = (0..n).filter(|&v| candidate[v]).map(NodeId::new).collect();
    RulingSet { rulers, alpha: 2 * mu + 1, beta: radius * bits }
}

/// Verifies the two ruling-set properties; returns `(min pairwise hop distance,
/// max domination distance)`. Test/experiment helper.
pub fn verify(g: &hybrid_graph::Graph, rs: &RulingSet) -> (u64, u64) {
    let mut min_pairwise = u64::MAX;
    for &r in &rs.rulers {
        let d = hybrid_graph::bfs::bfs(g, r);
        for &r2 in &rs.rulers {
            if r2 != r {
                min_pairwise = min_pairwise.min(d.dist(r2));
            }
        }
    }
    let reach = multi_source_bfs(g, &rs.rulers);
    let max_dom = reach.iter().map(|&(_, d)| d).max().unwrap_or(0);
    (min_pairwise, max_dom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators::{cycle, erdos_renyi_connected, grid, path};
    use hybrid_graph::Graph;
    use hybrid_sim::HybridConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check(g: &Graph, mu: usize) -> (RulingSet, u64) {
        let mut net = HybridNet::new(g, HybridConfig::strict());
        let rs = ruling_set(&mut net, mu, "rs");
        assert!(!rs.rulers.is_empty(), "connected graph must yield ≥ 1 ruler");
        let (min_pair, max_dom) = verify(g, &rs);
        assert!(
            rs.rulers.len() == 1 || min_pair >= rs.alpha as u64,
            "pairwise {min_pair} < α = {}",
            rs.alpha
        );
        assert!(max_dom <= rs.beta as u64, "domination {max_dom} > β = {}", rs.beta);
        (rs, net.rounds())
    }

    #[test]
    fn on_path() {
        let g = path(64, 1).unwrap();
        let (rs, rounds) = check(&g, 2);
        // Runtime O(µ log n): 2µ per stage × ⌈log2 64⌉ stages = 4 · 6 = 24.
        assert_eq!(rounds, 24);
        assert!(rs.rulers.len() >= 3, "path of 64 with α=5 has many rulers");
    }

    #[test]
    fn on_cycle_and_grid() {
        check(&cycle(50, 1).unwrap(), 1);
        check(&grid(8, 8, 1).unwrap(), 2);
    }

    #[test]
    fn on_random_graphs_various_mu() {
        let mut rng = StdRng::seed_from_u64(3);
        for mu in [1, 2, 4] {
            let g = erdos_renyi_connected(70, 0.06, 1, &mut rng).unwrap();
            check(&g, mu);
        }
    }

    #[test]
    fn single_node() {
        let g = hybrid_graph::GraphBuilder::new(1).build().unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let rs = ruling_set(&mut net, 3, "rs");
        assert_eq!(rs.rulers, vec![NodeId::new(0)]);
    }

    #[test]
    fn large_mu_sparse_rulers() {
        let g = path(100, 1).unwrap();
        let (rs, _) = check(&g, 10); // α = 21
                                     // On a 100-path with pairwise distance ≥ 21 there can be at most 5 rulers.
        assert!(rs.rulers.len() <= 5, "{} rulers", rs.rulers.len());
    }

    #[test]
    fn deterministic() {
        let g = grid(6, 6, 1).unwrap();
        let mut n1 = HybridNet::new(&g, HybridConfig::strict());
        let mut n2 = HybridNet::new(&g, HybridConfig::strict());
        assert_eq!(ruling_set(&mut n1, 2, "rs").rulers, ruling_set(&mut n2, 2, "rs").rulers);
    }
}
