//! Distributed skeleton construction and source representatives
//! (§4.1, Algorithms 6 and 7).
//!
//! * [`compute_skeleton`] — Algorithm 6: sample `V_S` with probability
//!   `1/n^{1-x}`, then determine the skeleton edges `E_S` (paths of ≤ `h` hops)
//!   by `h` rounds of local flooding.
//! * [`compute_representatives`] — Algorithm 7: every source tags its closest
//!   skeleton node as its *representative* and the pairs
//!   `⟨d_h(s, r_s), s, r_s⟩` are made public knowledge by token dissemination
//!   (`Õ(√k)` rounds for `k` sources, Lemma 4.4).

use hybrid_graph::dijkstra::dijkstra_lex;
use hybrid_graph::skeleton::{Skeleton, SkeletonParams};
use hybrid_graph::{Distance, NodeId, INFINITY};
use hybrid_sim::{derive_seed, HybridNet};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dissemination::disseminate;
use crate::error::HybridError;

/// Runs Algorithm 6: builds a skeleton with `|V_S| ≈ n^{x_exp}` (sampling
/// probability `1/n^{1-x_exp}`) and edge hop-budget `h = ⌈ξ n^{1-x_exp} ln n⌉`,
/// charging the `h` rounds of local edge discovery.
///
/// `forced` nodes are always included (the single source of Lemma 4.5).
///
/// # Errors
///
/// Propagates graph errors (cannot occur for valid inputs).
pub fn compute_skeleton(
    net: &mut HybridNet<'_>,
    x_exp: f64,
    xi: f64,
    forced: &[NodeId],
    seed: u64,
    phase: &str,
) -> Result<Skeleton, HybridError> {
    assert!((0.0..=1.0).contains(&x_exp), "x must be in [0, 1]");
    let n = net.n();
    let params = skeleton_params(n, x_exp, xi);
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x5E1));
    let mut skeleton = Skeleton::build(net.graph(), params, forced, &mut rng)?;
    // Remediation for the Lemma C.1 failure event at scaled-down ξ: if the
    // sampled skeleton is disconnected (a sampling gap exceeded h), double the
    // exploration radius until it is — detectable distributedly (each
    // skeleton node aggregates whether it reached every announced peer) and
    // charged at the final radius. With the paper's ξ this never triggers.
    let mut h = skeleton.h();
    while skeleton.len() > 1 && !skeleton.graph().is_connected() && h < n {
        h = (h * 2).min(n);
        skeleton = Skeleton::from_nodes(net.graph(), skeleton.nodes().to_vec(), h)?;
    }
    net.charge_local(skeleton.h() as u64, phase);
    Ok(skeleton)
}

/// The [`SkeletonParams`] Algorithm 6 derives from `(n, x_exp, ξ)`: the
/// Appendix-C "x" (inverse sampling probability) is `n^{1-x_exp}`.
pub(crate) fn skeleton_params(n: usize, x_exp: f64, xi: f64) -> SkeletonParams {
    let x_lemma = (n as f64).powf(1.0 - x_exp).max(1.0);
    SkeletonParams::scaled(x_lemma, xi)
}

/// The pre-remediation hop budget `h` a cold [`compute_skeleton`] starts
/// from. A cached skeleton whose `h` differs was remediated (Lemma C.1
/// failure event) — incremental repair cannot predict where a cold rebuild
/// would settle, so it must fall back to a full re-prepare.
pub(crate) fn initial_h(n: usize, x_exp: f64, xi: f64) -> usize {
    skeleton_params(n, x_exp, xi).h(n)
}

/// The representative of one source (Algorithm 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Representative {
    /// The source in `G`.
    pub source: NodeId,
    /// Skeleton-local index of its representative `r_s ∈ V_S`.
    pub rep_local: usize,
    /// `d_h(s, r_s)` — made public knowledge along with the pair.
    pub dist: Distance,
}

/// Runs Algorithm 7: computes and publishes all source representatives.
///
/// If a source has no skeleton node within `h` hops (the low-probability
/// failure of Lemma C.1), the exploration is adaptively deepened along the
/// hop-shortest path to the nearest skeleton node and the extra rounds are
/// charged honestly; the count of such fallbacks is returned.
///
/// # Errors
///
/// [`HybridError::NoSkeletonInReach`] only if the graph has no skeleton node
/// reachable at all (impossible for connected graphs with non-empty skeletons).
pub fn compute_representatives(
    net: &mut HybridNet<'_>,
    skeleton: &Skeleton,
    sources: &[NodeId],
    seed: u64,
    phase: &str,
) -> Result<(Vec<Representative>, usize), HybridError> {
    let g = net.graph();
    let mut reps = Vec::with_capacity(sources.len());
    let mut fallbacks = 0usize;
    let mut extra_rounds = 0u64;
    for &s in sources {
        if let Some(local) = skeleton.local_index(s) {
            reps.push(Representative { source: s, rep_local: local, dist: 0 });
            continue;
        }
        let near = skeleton.skeletons_near(s);
        if let Some(&(local, d)) = near.iter().min_by_key(|&&(i, d)| (d, i)) {
            reps.push(Representative { source: s, rep_local: local, dist: d });
            continue;
        }
        // Fallback: deepen the exploration to the hop-closest skeleton node.
        fallbacks += 1;
        let (dist, hops) = dijkstra_lex(g, s);
        let best = (0..skeleton.len())
            .map(|i| (dist[skeleton.global(i).index()], hops[skeleton.global(i).index()], i))
            .filter(|&(d, _, _)| d != INFINITY)
            .min();
        let Some((d, hop, local)) = best else {
            return Err(HybridError::NoSkeletonInReach { node: s, h: skeleton.h() });
        };
        extra_rounds = extra_rounds.max(hop.saturating_sub(skeleton.h() as u64));
        reps.push(Representative { source: s, rep_local: local, dist: d });
    }
    if extra_rounds > 0 {
        net.charge_local(extra_rounds, &format!("{phase}:fallback-exploration"));
    }
    // Publish ⟨d_h(s, r_s), s, r_s⟩ for every source: one token per source,
    // disseminated to all nodes (Õ(√k); Lemma 4.4's extra term).
    disseminate(net, sources, derive_seed(seed, 0x4E9), &format!("{phase}:publish"))?;
    Ok((reps, fallbacks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators::{erdos_renyi_connected, path};
    use hybrid_sim::HybridConfig;
    use rand::Rng;

    #[test]
    fn skeleton_size_tracks_exponent() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = erdos_renyi_connected(200, 0.03, 4, &mut rng).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let s = compute_skeleton(&mut net, 2.0 / 3.0, 1.0, &[], 9, "skel").unwrap();
        // n^{2/3} ≈ 34; sampling noise allowed, but the order of magnitude holds.
        assert!(s.len() > 8 && s.len() < 120, "skeleton size {}", s.len());
        assert_eq!(net.rounds(), s.h() as u64);
    }

    #[test]
    fn forced_nodes_present() {
        let g = path(50, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let forced = NodeId::new(33);
        let s = compute_skeleton(&mut net, 0.5, 1.0, &[forced], 2, "skel").unwrap();
        assert!(s.contains(forced));
    }

    #[test]
    fn representatives_are_nearest() {
        let g = path(40, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        // Explicit skeleton: nodes 0, 10, 20, 30 with generous h.
        let nodes: Vec<NodeId> = (0..40).step_by(10).map(NodeId::new).collect();
        let skel = Skeleton::from_nodes(&g, nodes, 12).unwrap();
        let sources = vec![NodeId::new(4), NodeId::new(26), NodeId::new(20)];
        let (reps, fallbacks) =
            compute_representatives(&mut net, &skel, &sources, 3, "reps").unwrap();
        assert_eq!(fallbacks, 0);
        assert_eq!(skel.global(reps[0].rep_local), NodeId::new(0));
        assert_eq!(reps[0].dist, 4);
        assert_eq!(skel.global(reps[1].rep_local), NodeId::new(30));
        assert_eq!(reps[1].dist, 4);
        // A source that *is* a skeleton node represents itself at distance 0.
        assert_eq!(skel.global(reps[2].rep_local), NodeId::new(20));
        assert_eq!(reps[2].dist, 0);
    }

    #[test]
    fn fallback_extends_reach() {
        let g = path(40, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        // Skeleton far from the source with tiny h: source 39, skeleton {0} only.
        let skel = Skeleton::from_nodes(&g, vec![NodeId::new(0)], 3).unwrap();
        let (reps, fallbacks) =
            compute_representatives(&mut net, &skel, &[NodeId::new(39)], 1, "reps").unwrap();
        assert_eq!(fallbacks, 1);
        assert_eq!(reps[0].dist, 39);
        assert!(net.rounds() >= 36, "extra exploration charged");
    }

    #[test]
    fn publish_cost_scales_with_sources() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = erdos_renyi_connected(150, 0.05, 1, &mut rng).unwrap();
        let skel = {
            let mut net = HybridNet::new(&g, HybridConfig::default());
            compute_skeleton(&mut net, 0.5, 2.0, &[], 8, "s").unwrap()
        };
        let mut few = HybridNet::new(&g, HybridConfig::default());
        let sources_few: Vec<NodeId> = (0..5).map(|_| NodeId::new(rng.gen_range(0..150))).collect();
        compute_representatives(&mut few, &skel, &sources_few, 1, "r").unwrap();
        let mut many = HybridNet::new(&g, HybridConfig::default());
        let sources_many: Vec<NodeId> =
            (0..80).map(|_| NodeId::new(rng.gen_range(0..150))).collect();
        compute_representatives(&mut many, &skel, &sources_many, 1, "r").unwrap();
        assert!(many.rounds() > few.rounds());
    }
}
