//! Criterion wall-clock wrapper for E12 (Corollary 4.1) (see EXPERIMENTS.md; the round-count
//! tables come from the `experiments` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use hybrid_bench::experiments::e12_clique_sim;
use hybrid_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bench_clique_sim");
    group.sample_size(10);
    group.bench_function("e12_small", |b| b.iter(|| e12_clique_sim(Scale::Small)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
