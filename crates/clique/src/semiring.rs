//! Exact APSP on the congested clique by min-plus matrix squaring with a 3D work
//! partition — the semiring-multiplication technique of Censor-Hillel et al. \[8\],
//! in its `Õ(n^{1/3})`-rounds-per-product form.
//!
//! One squaring `D ← D ⊗ D` (min-plus product) is distributed as follows. Let
//! `q = ⌈n^{1/3}⌉` and partition `[n]` into `q` blocks of size `b = ⌈n/q⌉`. The
//! `q³ ≈ n` block-triples `(I, J, K)` are assigned round-robin to the `n` nodes;
//! the owner of `(I, J, K)` multiplies block `A[I,K]` with block `B[K,J]`:
//!
//! 1. **Distribute**: row owner `i` sends each finite entry `D[i, k]` to the
//!    owners of `(blk(i), J, blk(k))` for all `J` (its A-role) and to the owners
//!    of `(I, blk(k)... )` — symmetrically for its B-role. Per node:
//!    `O(n^{4/3})` messages ⇒ `O(n^{1/3})` Lenzen rounds.
//! 2. **Multiply**: each owner computes its `b × b` partial min-plus block.
//! 3. **Tree-reduce** over `K`: `log q` halving steps, each moving `b² = n^{4/3}`
//!    entries per node ⇒ `O(n^{1/3} log n)` rounds.
//! 4. **Scatter**: the `(I, J, 0)` owners return result rows to the row owners.
//!
//! `⌈log₂ n⌉` squarings give exact APSP in `Õ(n^{1/3})` rounds; squaring stops
//! early once the matrix is a fixpoint.

use std::collections::BTreeMap;

use hybrid_graph::apsp::DistanceMatrix;
use hybrid_graph::minplus::min_plus_into;
use hybrid_graph::{Distance, Graph, NodeId, INFINITY};

use crate::net::{CliqueError, CliqueMsg, CliqueNet};
use crate::traits::{Beta, CliqueKsspAlgorithm, KsspEstimates, SourceCapacity};

/// Exact APSP via distributed min-plus squaring (`α = 1`, `β = 0`, `δ = 1/3`).
#[derive(Debug, Clone, Default)]
pub struct SemiringApsp;

impl SemiringApsp {
    /// Creates the algorithm.
    pub fn new() -> Self {
        SemiringApsp
    }

    /// Runs the full APSP and returns the distance matrix (clique-local indices).
    ///
    /// # Errors
    ///
    /// Propagates routing errors.
    pub fn apsp(&self, net: &mut CliqueNet, g: &Graph) -> Result<DistanceMatrix, CliqueError> {
        let n = g.len();
        let mut d = DistanceMatrix::new(n);
        for e in g.edges() {
            d.set(e.u, e.v, e.w);
            d.set(e.v, e.u, e.w);
        }
        // Squarings until 2^t ≥ n - 1 (or fixpoint).
        let mut span = 1usize;
        while span < n.saturating_sub(1) {
            let next = square(net, &d)?;
            let changed = (0..n).any(|i| {
                let (a, b) = (d.row(NodeId::new(i)), next.row(NodeId::new(i)));
                a != b
            });
            d = next;
            if !changed {
                break;
            }
            span *= 2;
        }
        Ok(d)
    }
}

/// Block partition helper: `q` blocks of size `b` covering `0..n`.
#[derive(Debug, Clone, Copy)]
struct Blocks {
    n: usize,
    q: usize,
    b: usize,
}

impl Blocks {
    fn new(n: usize) -> Self {
        let q = ((n as f64).cbrt().ceil() as usize).max(1);
        let b = n.div_ceil(q);
        Blocks { n, q, b }
    }

    /// Block index of row/column `i`.
    fn blk(&self, i: usize) -> usize {
        i / self.b
    }

    /// Owner node of triple `(i_blk, j_blk, k_blk)`.
    fn owner(&self, ib: usize, jb: usize, kb: usize) -> NodeId {
        NodeId::new(((ib * self.q + jb) * self.q + kb) % self.n)
    }
}

/// Message payload: a matrix entry with its role in the product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Entry {
    /// `A[i, k]` destined for triples `(blk(i), *, blk(k))`.
    A { i: u32, k: u32, v: Distance, jb: u32 },
    /// `B[k, j]` destined for triples `(*, blk(j), blk(k))`.
    B { k: u32, j: u32, v: Distance, ib: u32 },
    /// A partial/final result entry `C[i, j]`.
    C { i: u32, j: u32, v: Distance, kb: u32 },
}

/// One distributed min-plus squaring.
fn square(net: &mut CliqueNet, d: &DistanceMatrix) -> Result<DistanceMatrix, CliqueError> {
    let n = d.len();
    let blocks = Blocks::new(n);
    let q = blocks.q;

    // Phase 1: distribute A- and B-roles of every finite entry.
    let mut batch: Vec<CliqueMsg<Entry>> = Vec::new();
    for i in 0..n {
        let row = d.row(NodeId::new(i));
        let ib = blocks.blk(i);
        for (k, &v) in row.iter().enumerate() {
            if v == INFINITY {
                continue;
            }
            let kb = blocks.blk(k);
            for jb in 0..q {
                // A-role: D[i,k] feeds triple (ib, jb, kb).
                batch.push(CliqueMsg::new(
                    NodeId::new(i),
                    blocks.owner(ib, jb, kb),
                    Entry::A { i: i as u32, k: k as u32, v, jb: jb as u32 },
                ));
                // B-role: D[i,k] = D-row i read as B[k', j] with k' = i, j = k:
                // feeds triple (jb', blk(k), blk(i)) for all jb' — emitted below.
            }
            // B-role: row i of D is also the "middle" operand: B[i, k] feeds
            // triples (ib', kb, blk(i)) for all ib'.
            for ib2 in 0..q {
                batch.push(CliqueMsg::new(
                    NodeId::new(i),
                    blocks.owner(ib2, kb, blocks.blk(i)),
                    Entry::B { k: i as u32, j: k as u32, v, ib: ib2 as u32 },
                ));
            }
        }
    }
    let inboxes = net.route(batch)?;

    // Phase 2: each owner multiplies its triples. Owner state: per triple, a
    // *dense* `b × b` block per operand (INFINITY-filled; every distributed
    // entry lands at its local offset), multiplied with the shared blocked
    // min-plus kernel instead of nested hash maps. `BTreeMap` keys keep the
    // triple iteration (and thus the shipped batches) deterministic.
    type Triple = (usize, usize, usize);
    let b = blocks.b;
    let mut partials: BTreeMap<Triple, Vec<Distance>> = BTreeMap::new();
    {
        let mut a_blocks: BTreeMap<Triple, Vec<Distance>> = BTreeMap::new();
        let mut b_blocks: BTreeMap<Triple, Vec<Distance>> = BTreeMap::new();
        for (owner, msgs) in inboxes.into_iter().enumerate() {
            let _ = owner;
            for (_, entry) in msgs {
                match entry {
                    Entry::A { i, k, v, jb } => {
                        let t = (blocks.blk(i as usize), jb as usize, blocks.blk(k as usize));
                        let blk = a_blocks.entry(t).or_insert_with(|| vec![INFINITY; b * b]);
                        blk[(i as usize % b) * b + (k as usize % b)] = v;
                    }
                    Entry::B { k, j, v, ib } => {
                        let t = (ib as usize, blocks.blk(j as usize), blocks.blk(k as usize));
                        let blk = b_blocks.entry(t).or_insert_with(|| vec![INFINITY; b * b]);
                        blk[(k as usize % b) * b + (j as usize % b)] = v;
                    }
                    Entry::C { .. } => unreachable!("phase 1 carries no C entries"),
                }
            }
        }
        for (t, ablk) in a_blocks {
            let Some(bblk) = b_blocks.get(&t) else { continue };
            let out = partials.entry(t).or_insert_with(|| vec![INFINITY; b * b]);
            min_plus_into(&ablk, bblk, out, b, b);
        }
    }

    // Phase 3: binary tree reduction over K towards kb = 0 — elementwise
    // block minima; only finite entries travel.
    let mut gap = 1usize;
    while gap < q {
        let mut batch: Vec<CliqueMsg<Entry>> = Vec::new();
        let mut drained: Vec<Triple> = Vec::new();
        for (&(ib, jb, kb), blk) in partials.iter() {
            if kb % (2 * gap) == gap {
                let src = blocks.owner(ib, jb, kb);
                let dst = blocks.owner(ib, jb, kb - gap);
                for (li, row) in blk.chunks_exact(b).enumerate() {
                    for (lj, &v) in row.iter().enumerate() {
                        if v == INFINITY {
                            continue;
                        }
                        let (i, j) = ((ib * b + li) as u32, (jb * b + lj) as u32);
                        batch.push(CliqueMsg::new(
                            src,
                            dst,
                            Entry::C { i, j, v, kb: (kb - gap) as u32 },
                        ));
                    }
                }
                drained.push((ib, jb, kb));
            }
        }
        for t in drained {
            partials.remove(&t);
        }
        if !batch.is_empty() {
            let inboxes = net.route(batch)?;
            for msgs in inboxes {
                for (_, entry) in msgs {
                    let Entry::C { i, j, v, kb } = entry else {
                        unreachable!("phase 3 carries only C entries")
                    };
                    let t = (blocks.blk(i as usize), blocks.blk(j as usize), kb as usize);
                    let blk = partials.entry(t).or_insert_with(|| vec![INFINITY; b * b]);
                    let slot = &mut blk[(i as usize % b) * b + (j as usize % b)];
                    if v < *slot {
                        *slot = v;
                    }
                }
            }
        }
        gap *= 2;
    }

    // Phase 4: scatter result rows back to row owners.
    let mut batch: Vec<CliqueMsg<Entry>> = Vec::new();
    for (&(ib, jb, kb), blk) in partials.iter() {
        debug_assert_eq!(kb, 0, "after reduction only kb = 0 triples remain");
        let src = blocks.owner(ib, jb, kb);
        for (li, row) in blk.chunks_exact(b).enumerate() {
            let i = (ib * b + li) as u32;
            for (lj, &v) in row.iter().enumerate() {
                if v == INFINITY {
                    continue;
                }
                let j = (jb * b + lj) as u32;
                batch.push(CliqueMsg::new(
                    src,
                    NodeId::new(i as usize),
                    Entry::C { i, j, v, kb: 0 },
                ));
            }
        }
    }
    let inboxes = net.route(batch)?;
    // Seed with the current matrix (paths of the shorter hop class survive).
    let mut next = d.clone();
    for (row_owner, msgs) in inboxes.into_iter().enumerate() {
        for (_, entry) in msgs {
            let Entry::C { i, j, v, .. } = entry else { unreachable!() };
            debug_assert_eq!(i as usize, row_owner);
            let (iu, ju) = (NodeId::new(i as usize), NodeId::new(j as usize));
            if v < next.get(iu, ju) {
                next.set(iu, ju, v);
            }
        }
    }
    Ok(next)
}

impl CliqueKsspAlgorithm for SemiringApsp {
    fn name(&self) -> &'static str {
        "semiring-apsp"
    }

    fn capacity(&self) -> SourceCapacity {
        SourceCapacity::Apsp
    }

    fn delta(&self) -> f64 {
        1.0 / 3.0
    }

    fn eta(&self) -> f64 {
        1.0
    }

    fn alpha(&self) -> f64 {
        1.0
    }

    fn beta(&self) -> Beta {
        Beta::Zero
    }

    fn run(
        &self,
        net: &mut CliqueNet,
        g: &Graph,
        sources: &[NodeId],
    ) -> Result<KsspEstimates, CliqueError> {
        self.check_sources(net.len(), sources)?;
        let d = self.apsp(net, g)?;
        let est = sources.iter().map(|&s| d.row(s).to_vec()).collect();
        Ok(KsspEstimates { sources: sources.to_vec(), est })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::apsp::apsp;
    use hybrid_graph::generators::{cycle, erdos_renyi_connected, path};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_exact(g: &Graph) -> u64 {
        let exact = apsp(g);
        let mut net = CliqueNet::new(g.len());
        let got = SemiringApsp::new().apsp(&mut net, g).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(got.get(u, v), exact.get(u, v), "pair ({u}, {v})");
            }
        }
        net.rounds()
    }

    #[test]
    fn exact_on_path() {
        check_exact(&path(9, 2).unwrap());
    }

    #[test]
    fn exact_on_cycle() {
        check_exact(&cycle(11, 3).unwrap());
    }

    #[test]
    fn exact_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [10, 25, 40] {
            let g = erdos_renyi_connected(n, 0.12, 9, &mut rng).unwrap();
            check_exact(&g);
        }
    }

    #[test]
    fn exact_on_disconnected() {
        let mut b = hybrid_graph::GraphBuilder::new(5);
        b.add_edge(NodeId::new(0), NodeId::new(1), 4).unwrap();
        b.add_edge(NodeId::new(2), NodeId::new(3), 1).unwrap();
        b.add_edge(NodeId::new(3), NodeId::new(4), 1).unwrap();
        check_exact(&b.build().unwrap());
    }

    #[test]
    fn kssp_interface_extracts_rows() {
        let g = path(7, 1).unwrap();
        let mut net = CliqueNet::new(7);
        let out = SemiringApsp::new().run(&mut net, &g, &[NodeId::new(0), NodeId::new(6)]).unwrap();
        assert_eq!(out.get(0, NodeId::new(6)), 6);
        assert_eq!(out.get(1, NodeId::new(0)), 6);
    }

    #[test]
    fn round_complexity_beats_trivial_broadcast() {
        // The trivial clique APSP (every node learns the whole matrix) costs n
        // rounds per squaring, i.e. ≥ n·log₂(n) ≈ 384 rounds at n = 64. The 3D
        // partition runs in Õ(n^{1/3}) per squaring — with our constants well
        // under half the trivial cost even at this small n, and the gap widens
        // with n (measured in experiment E12).
        let mut rng = StdRng::seed_from_u64(6);
        let g = erdos_renyi_connected(64, 0.1, 4, &mut rng).unwrap();
        let mut net = CliqueNet::new(64);
        SemiringApsp::new().apsp(&mut net, &g).unwrap();
        assert!(net.rounds() < 2 * 64, "rounds = {}", net.rounds());
    }
}
