//! The paper's two lower-bound constructions.
//!
//! * **Figure 1** (§6, Theorem 1.5): the k-SSP worst case — a long path with node
//!   `b` at one end and two bundles of sources `S₁` (attached at distance `L` from
//!   `b`) and `S₂` (attached at the far end). The random assignment of sources to
//!   `S₁`/`S₂` carries `Ω(k)` bits of entropy that must cross the `L`-hop path
//!   prefix whose global receive capacity is only `O(L log² n)` bits per round.
//! * **Figure 2** (§7, Theorem 1.6): the set-disjointness diameter construction
//!   `Γ^{a,b}_{k,ℓ,W}`, adapted from Holzer & Pinsker. Its crux (Lemmas 7.1, 7.2):
//!   the diameter is small iff the encoded bit strings `a, b ∈ {0,1}^{k²}` are
//!   disjoint.
//!
//! Both constructions expose the *column* structure the simulation argument of
//! Lemma 7.3 partitions nodes by, so experiments can measure global traffic across
//! any Alice/Bob cut.

use rand::Rng;

use crate::dist::Distance;
use crate::graph::{Graph, GraphBuilder, GraphError};
use crate::ids::NodeId;

/// The Figure-1 construction for the `Ω̃(√k)` k-SSP lower bound.
#[derive(Debug, Clone)]
pub struct KsspLowerBound {
    /// The constructed (unweighted) graph.
    pub graph: Graph,
    /// The distinguished node that must learn all k distances.
    pub b: NodeId,
    /// Attachment point of `S₁`, at hop distance `l` from `b`.
    pub v1: NodeId,
    /// Attachment point of `S₂`, at the far end of the path.
    pub v2: NodeId,
    /// The k source nodes, in input order.
    pub sources: Vec<NodeId>,
    /// `assignment[i]` iff source `i` is attached to `v1` (the random state whose
    /// `Ω(k)` bits `b` must learn).
    pub assignment: Vec<bool>,
    /// Hop distance `L` between `b` and `v1`.
    pub l: usize,
    /// The path nodes from `b` (index 0) to `v2` (last), inclusive.
    pub path_nodes: Vec<NodeId>,
}

impl KsspLowerBound {
    /// Builds the construction: a path of `path_len ≥ l + 2` nodes with `b` at
    /// index 0, `v1` at index `l`, `v2` at the far end, and one leaf per source
    /// attached to `v1` or `v2` according to `assignment`.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] (cannot occur for valid parameters).
    ///
    /// # Panics
    ///
    /// Panics if `path_len < l + 2` or `l == 0`.
    pub fn build(path_len: usize, l: usize, assignment: &[bool]) -> Result<Self, GraphError> {
        assert!(l >= 1, "L must be positive");
        assert!(path_len >= l + 2, "path must extend beyond v1");
        let k = assignment.len();
        let n = path_len + k;
        let mut builder = GraphBuilder::new(n);
        for i in 1..path_len {
            builder.add_edge(NodeId::new(i - 1), NodeId::new(i), 1)?;
        }
        let b = NodeId::new(0);
        let v1 = NodeId::new(l);
        let v2 = NodeId::new(path_len - 1);
        let mut sources = Vec::with_capacity(k);
        for (i, &near) in assignment.iter().enumerate() {
            let s = NodeId::new(path_len + i);
            let attach = if near { v1 } else { v2 };
            builder.add_edge(attach, s, 1)?;
            sources.push(s);
        }
        Ok(KsspLowerBound {
            graph: builder.build()?,
            b,
            v1,
            v2,
            sources,
            assignment: assignment.to_vec(),
            l,
            path_nodes: (0..path_len).map(NodeId::new).collect(),
        })
    }

    /// Builds with a uniformly random assignment of exactly `⌊k/2⌋` sources to `S₁`
    /// (the paper's random split).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`].
    pub fn random<R: Rng + ?Sized>(
        path_len: usize,
        l: usize,
        k: usize,
        rng: &mut R,
    ) -> Result<Self, GraphError> {
        let mut assignment = vec![false; k];
        for slot in assignment.iter_mut().take(k / 2) {
            *slot = true;
        }
        // Fisher-Yates over the assignment.
        for i in (1..k).rev() {
            let j = rng.gen_range(0..=i);
            assignment.swap(i, j);
        }
        Self::build(path_len, l, &assignment)
    }

    /// The exact hop distance from `b` to source `i` (either `l + 1` or
    /// `path_len`), against which b's answers are checked.
    pub fn expected_distance(&self, i: usize) -> Distance {
        if self.assignment[i] {
            self.l as Distance + 1
        } else {
            self.path_nodes.len() as Distance
        }
    }

    /// Entropy (in bits) of the assignment: `log2 C(k, k/2) ≈ k` — the information
    /// `b` must acquire.
    pub fn assignment_entropy_bits(&self) -> f64 {
        let k = self.assignment.len() as f64;
        // log2(C(k, k/2)) via Stirling: k - 0.5*log2(pi*k/2); clamp at 0.
        if k < 2.0 {
            return 0.0;
        }
        (k - 0.5 * (std::f64::consts::PI * k / 2.0).log2()).max(0.0)
    }

    /// Whether a global node lies on the `b`-side prefix of the path strictly
    /// closer than hop distance `cut` (the Alice side of an information cut).
    pub fn on_b_side(&self, v: NodeId, cut: usize) -> bool {
        v.index() < cut.min(self.path_nodes.len())
    }
}

/// A 2-party set-disjointness instance over the universe `[k²]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetDisjointness {
    /// Alice's characteristic vector, length `k²`.
    pub a: Vec<bool>,
    /// Bob's characteristic vector, length `k²`.
    pub b: Vec<bool>,
}

impl SetDisjointness {
    /// Creates an instance; both vectors must have length `k*k` for some `k`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or are not a perfect square.
    pub fn new(a: Vec<bool>, b: Vec<bool>) -> Self {
        assert_eq!(a.len(), b.len(), "a and b must have equal length");
        let k = (a.len() as f64).sqrt().round() as usize;
        assert_eq!(k * k, a.len(), "universe size must be a perfect square");
        SetDisjointness { a, b }
    }

    /// Side length `k` of the `[k] × [k]` universe.
    pub fn k(&self) -> usize {
        (self.a.len() as f64).sqrt().round() as usize
    }

    /// Whether the instance is disjoint: no index has `a_i = b_i = 1`.
    pub fn is_disjoint(&self) -> bool {
        self.a.iter().zip(&self.b).all(|(&x, &y)| !(x && y))
    }

    /// Random instance with independent `Bernoulli(density)` bits; may or may not be
    /// disjoint.
    pub fn random<R: Rng + ?Sized>(k: usize, density: f64, rng: &mut R) -> Self {
        let a = (0..k * k).map(|_| rng.gen_bool(density)).collect();
        let b = (0..k * k).map(|_| rng.gen_bool(density)).collect();
        SetDisjointness::new(a, b)
    }

    /// Random *disjoint* instance: each index gets `a`, `b`, or neither.
    pub fn random_disjoint<R: Rng + ?Sized>(k: usize, rng: &mut R) -> Self {
        let mut a = vec![false; k * k];
        let mut b = vec![false; k * k];
        for i in 0..k * k {
            match rng.gen_range(0..3) {
                0 => a[i] = true,
                1 => b[i] = true,
                _ => {}
            }
        }
        SetDisjointness::new(a, b)
    }

    /// Random *intersecting* instance: like [`SetDisjointness::random_disjoint`]
    /// but with one uniformly chosen index forced into both sets.
    pub fn random_intersecting<R: Rng + ?Sized>(k: usize, rng: &mut R) -> Self {
        let mut inst = Self::random_disjoint(k, rng);
        let i = rng.gen_range(0..k * k);
        inst.a[i] = true;
        inst.b[i] = true;
        inst
    }
}

/// The Figure-2 construction `Γ^{a,b}_{k,ℓ,W}` for the diameter lower bound.
#[derive(Debug, Clone)]
pub struct GammaGraph {
    /// The constructed graph.
    pub graph: Graph,
    /// Clique `V₁` (Alice side, top half), size `k`.
    pub v1: Vec<NodeId>,
    /// Clique `V₂` (Alice side, bottom half), size `k`.
    pub v2: Vec<NodeId>,
    /// Clique `U₁` (Bob side, top half), size `k`.
    pub u1: Vec<NodeId>,
    /// Clique `U₂` (Bob side, bottom half), size `k`.
    pub u2: Vec<NodeId>,
    /// The hub adjacent to all of `V₁ ∪ V₂`.
    pub v_hat: NodeId,
    /// The hub adjacent to all of `U₁ ∪ U₂`.
    pub u_hat: NodeId,
    /// `column[v]`: hop distance of `v` from the first column `V₁ ∪ V₂ ∪ {v̂}`,
    /// in `0..=ell`. Red edges connect only within column 0 or within column `ell`.
    pub column: Vec<usize>,
    /// Matching-path hop length `ℓ`.
    pub ell: usize,
    /// Heavy edge weight `W`.
    pub w: Distance,
    /// The encoded instance.
    pub instance: SetDisjointness,
}

impl GammaGraph {
    /// Builds `Γ^{a,b}_{k,ℓ,W}`.
    ///
    /// Structure: cliques `V₁, V₂, U₁, U₂` of size `k` with weight-`W` edges;
    /// `V_i[x]` joined to `U_i[x]` by an `ℓ`-hop path of weight-1 edges; hubs `v̂`
    /// (adjacent to `V₁ ∪ V₂`, weight `W`) and `û` (adjacent to `U₁ ∪ U₂`, weight
    /// `W`) joined by an `ℓ`-hop weight-1 path; and a "red" edge of weight `W`
    /// between `V₁[x]` and `V₂[y]` iff `a_{(x,y)} = 0`, and between `U₁[x]` and
    /// `U₂[y]` iff `b_{(x,y)} = 0`.
    ///
    /// Total nodes: `4k + 2 + (2k + 1)(ℓ - 1)`.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] (cannot occur for valid parameters).
    ///
    /// # Panics
    ///
    /// Panics if `ell == 0` or `w == 0`.
    pub fn build(instance: SetDisjointness, ell: usize, w: Distance) -> Result<Self, GraphError> {
        assert!(ell >= 1, "ℓ must be positive");
        assert!(w >= 1, "W must be positive");
        let k = instance.k();
        assert!(k >= 1, "k must be positive");
        let n = 4 * k + 2 + (2 * k + 1) * (ell - 1);
        let mut bld = GraphBuilder::new(n);
        let mut next = 0usize;
        let mut alloc = |count: usize| -> Vec<NodeId> {
            let ids = (next..next + count).map(NodeId::new).collect();
            next += count;
            ids
        };
        let v1 = alloc(k);
        let v2 = alloc(k);
        let u1 = alloc(k);
        let u2 = alloc(k);
        let hubs = alloc(2);
        let (v_hat, u_hat) = (hubs[0], hubs[1]);

        let mut column = vec![0usize; n];
        for &x in v1.iter().chain(&v2) {
            column[x.index()] = 0;
        }
        column[v_hat.index()] = 0;
        for &x in u1.iter().chain(&u2) {
            column[x.index()] = ell;
        }
        column[u_hat.index()] = ell;

        // Cliques with weight-W edges.
        for set in [&v1, &v2, &u1, &u2] {
            for i in 0..k {
                for j in (i + 1)..k {
                    bld.add_edge(set[i], set[j], w)?;
                }
            }
        }
        // Hub stars.
        for &x in v1.iter().chain(&v2) {
            bld.add_edge(v_hat, x, w)?;
        }
        for &x in u1.iter().chain(&u2) {
            bld.add_edge(u_hat, x, w)?;
        }
        // ℓ-hop weight-1 paths: one per matched pair, one between the hubs.
        let add_path = |bld: &mut GraphBuilder,
                        column: &mut Vec<usize>,
                        from: NodeId,
                        to: NodeId,
                        interior: Vec<NodeId>|
         -> Result<(), GraphError> {
            let mut prev = from;
            for (step, &mid) in interior.iter().enumerate() {
                column[mid.index()] = step + 1;
                bld.add_edge(prev, mid, 1)?;
                prev = mid;
            }
            bld.add_edge(prev, to, 1)
        };
        for x in 0..k {
            let interior = alloc(ell - 1);
            add_path(&mut bld, &mut column, v1[x], u1[x], interior)?;
        }
        for y in 0..k {
            let interior = alloc(ell - 1);
            add_path(&mut bld, &mut column, v2[y], u2[y], interior)?;
        }
        let interior = alloc(ell - 1);
        add_path(&mut bld, &mut column, v_hat, u_hat, interior)?;

        // Red edges encoding a and b: bit (x, y) ↦ index x*k + y; edge iff bit is 0.
        for x in 0..k {
            for y in 0..k {
                let idx = x * k + y;
                if !instance.a[idx] {
                    bld.add_edge(v1[x], v2[y], w)?;
                }
                if !instance.b[idx] {
                    bld.add_edge(u1[x], u2[y], w)?;
                }
            }
        }
        debug_assert_eq!(next, n);
        Ok(GammaGraph {
            graph: bld.build()?,
            v1,
            v2,
            u1,
            u2,
            v_hat,
            u_hat,
            column,
            ell,
            w,
            instance,
        })
    }

    /// The weighted diameter the construction guarantees when `a, b` are disjoint
    /// (`W + 2ℓ` for `W > ℓ`; `ℓ + 1` for `W = 1`, Lemmas 7.1 / 7.2).
    pub fn disjoint_diameter(&self) -> Distance {
        if self.w == 1 {
            self.ell as Distance + 1
        } else {
            self.w + 2 * self.ell as Distance
        }
    }

    /// The weighted diameter when `a, b` intersect (`2W + ℓ` for `W > ℓ`;
    /// `ℓ + 2` for `W = 1`).
    pub fn intersecting_diameter(&self) -> Distance {
        if self.w == 1 {
            self.ell as Distance + 2
        } else {
            2 * self.w + self.ell as Distance
        }
    }

    /// Whether `v` belongs to Alice's side when the cut is placed after `col`
    /// columns (Alice simulates columns `0..=col`).
    pub fn on_alice_side(&self, v: NodeId, col: usize) -> bool {
        self.column[v.index()] <= col
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apsp::weighted_diameter;
    use crate::bfs::{bfs, unweighted_diameter};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kssp_graph_distances() {
        let assignment = vec![true, false, true, false];
        let lb = KsspLowerBound::build(12, 3, &assignment).unwrap();
        assert!(lb.graph.is_connected());
        let d = bfs(&lb.graph, lb.b);
        for (i, &s) in lb.sources.iter().enumerate() {
            assert_eq!(d.dist(s), lb.expected_distance(i));
        }
    }

    #[test]
    fn kssp_random_split_is_balanced() {
        let mut rng = StdRng::seed_from_u64(5);
        let lb = KsspLowerBound::random(20, 4, 10, &mut rng).unwrap();
        assert_eq!(lb.assignment.iter().filter(|&&x| x).count(), 5);
        assert!(lb.assignment_entropy_bits() > 5.0);
    }

    #[test]
    fn kssp_cut_sides() {
        let lb = KsspLowerBound::build(10, 2, &[true]).unwrap();
        assert!(lb.on_b_side(lb.b, 1));
        assert!(!lb.on_b_side(lb.v2, 5));
    }

    #[test]
    fn disjointness_detection() {
        let d =
            SetDisjointness::new(vec![true, false, false, false], vec![false, true, true, false]);
        assert!(d.is_disjoint());
        assert_eq!(d.k(), 2);
        let nd =
            SetDisjointness::new(vec![true, false, false, false], vec![true, true, true, false]);
        assert!(!nd.is_disjoint());
    }

    #[test]
    fn random_instances_have_claimed_disjointness() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            assert!(SetDisjointness::random_disjoint(4, &mut rng).is_disjoint());
            assert!(!SetDisjointness::random_intersecting(4, &mut rng).is_disjoint());
        }
    }

    #[test]
    fn gamma_node_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = SetDisjointness::random_disjoint(3, &mut rng);
        let g = GammaGraph::build(inst, 4, 10).unwrap();
        assert_eq!(g.graph.len(), 4 * 3 + 2 + (2 * 3 + 1) * 3);
        assert!(g.graph.is_connected());
    }

    #[test]
    fn lemma_7_1_weighted_gap() {
        // W > ℓ: diameter is W + 2ℓ iff disjoint, else 2W + ℓ.
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..3 {
            let (ell, w) = (3, 12);
            let dis = SetDisjointness::random_disjoint(3, &mut rng);
            let g = GammaGraph::build(dis, ell, w).unwrap();
            let diam = weighted_diameter(&g.graph);
            assert!(diam <= g.disjoint_diameter(), "disjoint: {diam}");
            let int = SetDisjointness::random_intersecting(3, &mut rng);
            let g2 = GammaGraph::build(int, ell, w).unwrap();
            assert_eq!(weighted_diameter(&g2.graph), g2.intersecting_diameter());
        }
    }

    #[test]
    fn lemma_7_2_unweighted_gap() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..3 {
            let ell = 4;
            let dis = SetDisjointness::random_disjoint(3, &mut rng);
            let g = GammaGraph::build(dis, ell, 1).unwrap();
            assert!(unweighted_diameter(&g.graph) <= ell as u64 + 1);
            let int = SetDisjointness::random_intersecting(3, &mut rng);
            let g2 = GammaGraph::build(int, ell, 1).unwrap();
            assert_eq!(unweighted_diameter(&g2.graph), ell as u64 + 2);
        }
    }

    #[test]
    fn columns_partition_by_hops() {
        let mut rng = StdRng::seed_from_u64(4);
        let inst = SetDisjointness::random_disjoint(2, &mut rng);
        let g = GammaGraph::build(inst, 3, 7).unwrap();
        // Column = hop distance from the first column, verified by BFS from v_hat's
        // column-0 peers.
        let sources: Vec<NodeId> = g.v1.iter().chain(&g.v2).copied().chain([g.v_hat]).collect();
        let res = crate::bfs::multi_source_bfs(&g.graph, &sources);
        for v in g.graph.nodes() {
            assert_eq!(res[v.index()].1 as usize, g.column[v.index()], "node {v}");
        }
        assert!(g.on_alice_side(g.v_hat, 0));
        assert!(!g.on_alice_side(g.u_hat, 2));
    }

    #[test]
    fn ell_one_degenerate_paths() {
        let mut rng = StdRng::seed_from_u64(6);
        let inst = SetDisjointness::random_disjoint(2, &mut rng);
        let g = GammaGraph::build(inst, 1, 5).unwrap();
        // ℓ = 1: matched nodes are directly adjacent with weight 1.
        assert_eq!(g.graph.edge_weight(g.v1[0], g.u1[0]), Some(1));
        assert_eq!(g.graph.edge_weight(g.v_hat, g.u_hat), Some(1));
    }
}
