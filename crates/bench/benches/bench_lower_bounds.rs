//! Criterion wall-clock wrapper for E6+E7 (Theorems 1.5, 1.6) (see EXPERIMENTS.md; the round-count
//! tables come from the `experiments` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use hybrid_bench::experiments::{e6_kssp_lower_bound, e7_diameter_lower_bound};
use hybrid_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bench_lower_bounds");
    group.sample_size(10);
    group.bench_function("e6_small", |b| b.iter(|| e6_kssp_lower_bound(Scale::Small)));
    group.bench_function("e7_small", |b| b.iter(|| e7_diameter_lower_bound(Scale::Small)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
