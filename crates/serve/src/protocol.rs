//! The line-delimited wire protocol: one request per line, one response per
//! line, plain `key=value` tokens — hand-rolled framing in the sim layer's
//! style (no crates.io).
//!
//! # Requests
//!
//! ```text
//! SOLVE id=<u64> tenant=<name> graph=<name> [seed=<u64>] [deadline_ms=<u64>] [fp=<016x>] query=<spec>
//! UPDATE id=<u64> tenant=<name> graph=<name> ops=<op,op,...>
//! STATS
//! ```
//!
//! The query `spec` is the canonical colon-separated form produced by
//! [`query_spec`], e.g. `apsp-thm11:xi=1.5`, `sssp-soda20:src=3:eps=0.25:xi=1.5`,
//! `kssp-cor46:k=4:eps=0.5:xi=1.5`, `diameter-cor52:eps=0.5:xi=1.5`. Explicit
//! k-SSP sources are a comma list: `kssp-cor47:src=1,5,9:eps=0.5:xi=1.5`.
//!
//! A `SOLVE` may pin the graph version it believes is current with
//! `fp=<016x>`; a delta-superseded pin is refused with `code=stale-fingerprint`
//! instead of being served on a graph the client never saw. `UPDATE` ops use
//! the deltas' canonical display form — `+u-v:w` (insert), `-u-v` (remove),
//! `~u-v:w` (reweight) — comma-separated, applied atomically in order.
//!
//! # Responses
//!
//! ```text
//! OK id=<u64> query=<label> rounds=<u64> guarantee=<label> digest=<016x> verified=<0|1>
//! OK id=<u64> update=<name> fp=<016x> epoch=<u64> migrated=<n> patched=<n> full=<n>
//! ERR id=<u64> code=<code> msg=<text...>
//! STATS served=<u64> shed=<u64> ...
//! ```
//!
//! A degraded (but still verified bit-identical) answer carries the
//! structured guarantee label `degraded=<from>:<to>:<cause>`, e.g.
//! `degraded=apsp-thm11:apsp-local-flood:crash-detected`. The `STATS` reply
//! extends append-only: the v1 counters first, then `deadline_shed=`,
//! `breaker_opens=`, `breaker_probes=`, `quarantined=`, `degraded_served=`,
//! then the churn counters `deltas_applied=`, `repair_patched=`,
//! `repair_full=`, `stale_epoch_refused=`, then one
//! `breaker.<tenant>=<closed|open|half-open>` token per breaker-enabled
//! tenant (sorted by tenant name).
//!
//! Float parameters round-trip through Rust's shortest-exact `Display`
//! formatting, so a spec identifies the query bit-for-bit.

use hybrid_core::solver::{
    ApspVariant, DiameterCorollary, Guarantee, KsspCorollary, Query, SsspVariant,
};
use hybrid_graph::{DeltaBatch, GraphDelta, NodeId};

use crate::broker::{Broker, Request, ServeError};

/// The canonical spec string of a query — parseable by [`parse_query_spec`]
/// and stable per distinct query (floats printed in shortest-exact form).
pub fn query_spec(q: &Query) -> String {
    match q {
        Query::Apsp { xi, .. } => format!("{}:xi={xi}", q.label()),
        Query::Sssp { variant, source, xi } => {
            let src = source.raw();
            match variant {
                SsspVariant::ApproxSoda20 { eps } => {
                    format!("{}:src={src}:eps={eps}:xi={xi}", q.label())
                }
                _ => format!("{}:src={src}:xi={xi}", q.label()),
            }
        }
        Query::Kssp { sources, eps, xi, .. } => {
            let src = match sources {
                hybrid_core::solver::SourceSet::Random { k } => format!("k={k}"),
                hybrid_core::solver::SourceSet::Nodes(nodes) => {
                    let list: Vec<String> = nodes.iter().map(|v| v.raw().to_string()).collect();
                    format!("src={}", list.join(","))
                }
            };
            format!("{}:{src}:eps={eps}:xi={xi}", q.label())
        }
        Query::Diameter { eps, xi, .. } => format!("{}:eps={eps}:xi={xi}", q.label()),
    }
}

/// The wire label of a guarantee: `exact`, `stretch=<f>`, `diameter=<f>`, or
/// the structured `degraded=<from>:<to>:<cause>` (labels are colon-free, so
/// the token splits unambiguously).
pub fn guarantee_label(g: &Guarantee) -> String {
    match g {
        Guarantee::Exact => "exact".to_string(),
        Guarantee::Stretch { factor } => format!("stretch={factor}"),
        Guarantee::DiameterFactor { factor } => format!("diameter={factor}"),
        Guarantee::Degraded { from, to, cause } => {
            format!("degraded={from}:{to}:{}", cause.label())
        }
    }
}

fn bad(msg: impl Into<String>) -> ServeError {
    ServeError::Protocol { msg: msg.into() }
}

fn parse_u64(key: &str, v: &str) -> Result<u64, ServeError> {
    v.parse().map_err(|_| bad(format!("{key}={v}: not a u64")))
}

fn parse_f64(key: &str, v: &str) -> Result<f64, ServeError> {
    v.parse().map_err(|_| bad(format!("{key}={v}: not a float")))
}

/// Parses the canonical query spec (see the module docs for the grammar).
///
/// # Errors
///
/// [`ServeError::Protocol`] for an unknown label, malformed parameter, or a
/// query the builders reject (invalid `ξ`/`ε`/sources).
pub fn parse_query_spec(spec: &str) -> Result<Query, ServeError> {
    let mut parts = spec.split(':');
    let label = parts.next().unwrap_or_default();
    let mut src: Option<&str> = None;
    let mut k: Option<usize> = None;
    let mut eps: Option<f64> = None;
    let mut xi: Option<f64> = None;
    for part in parts {
        let (key, value) =
            part.split_once('=').ok_or_else(|| bad(format!("{part:?}: expected key=value")))?;
        match key {
            "src" => src = Some(value),
            "k" => k = Some(value.parse().map_err(|_| bad(format!("k={value}: not a count")))?),
            "eps" => eps = Some(parse_f64("eps", value)?),
            "xi" => xi = Some(parse_f64("xi", value)?),
            _ => return Err(bad(format!("unknown query parameter {key:?}"))),
        }
    }
    let one_source = || -> Result<NodeId, ServeError> {
        let v = src.ok_or_else(|| bad(format!("{label}: missing src=<node>")))?;
        let raw: u32 = v.parse().map_err(|_| bad(format!("src={v}: not a node id")))?;
        Ok(NodeId::new(raw as usize))
    };
    let build = |b: Result<Query, hybrid_core::solver::QueryError>| {
        b.map_err(|e| bad(format!("{label}: {e}")))
    };
    let q = match label {
        "apsp-thm11" | "apsp-soda20" | "apsp-local-flood" => {
            let variant = match label {
                "apsp-thm11" => ApspVariant::Thm11,
                "apsp-soda20" => ApspVariant::Soda20,
                _ => ApspVariant::LocalFlood,
            };
            let mut b = Query::apsp().variant(variant);
            if let Some(xi) = xi {
                b = b.xi(xi);
            }
            build(b.build())?
        }
        "sssp-thm13" | "sssp-local-bf" | "sssp-soda20" => {
            let variant = match label {
                "sssp-thm13" => SsspVariant::Thm13,
                "sssp-local-bf" => SsspVariant::LocalBellmanFord,
                _ => SsspVariant::ApproxSoda20 {
                    eps: eps.ok_or_else(|| bad("sssp-soda20: missing eps=<f>"))?,
                },
            };
            let mut b = Query::sssp(one_source()?).variant(variant);
            if let Some(xi) = xi {
                b = b.xi(xi);
            }
            build(b.build())?
        }
        "kssp-cor46" | "kssp-cor47" | "kssp-cor48" => {
            let cor = match label {
                "kssp-cor46" => KsspCorollary::Cor46,
                "kssp-cor47" => KsspCorollary::Cor47,
                _ => KsspCorollary::Cor48,
            };
            let mut b = Query::kssp(cor);
            match (k, src) {
                (Some(k), None) => b = b.random_sources(k),
                (None, Some(list)) => {
                    let mut nodes = Vec::new();
                    for item in list.split(',') {
                        let raw: u32 =
                            item.parse().map_err(|_| bad(format!("src={item}: not a node id")))?;
                        nodes.push(NodeId::new(raw as usize));
                    }
                    b = b.sources(nodes);
                }
                _ => return Err(bad(format!("{label}: exactly one of k=<count> or src=<list>"))),
            }
            if let Some(eps) = eps {
                b = b.eps(eps);
            }
            if let Some(xi) = xi {
                b = b.xi(xi);
            }
            build(b.build())?
        }
        "diameter-cor52" | "diameter-cor53" => {
            let cor = if label == "diameter-cor52" {
                DiameterCorollary::Cor52
            } else {
                DiameterCorollary::Cor53
            };
            let mut b = Query::diameter(cor);
            if let Some(eps) = eps {
                b = b.eps(eps);
            }
            if let Some(xi) = xi {
                b = b.xi(xi);
            }
            build(b.build())?
        }
        _ => return Err(bad(format!("unknown query label {label:?}"))),
    };
    Ok(q)
}

/// The canonical wire form of a delta batch: each op's display form
/// (`+u-v:w` / `-u-v` / `~u-v:w`), comma-joined — parseable by
/// [`parse_delta_ops`].
pub fn delta_spec(batch: &DeltaBatch) -> String {
    let ops: Vec<String> = batch.ops().iter().map(|op| op.to_string()).collect();
    ops.join(",")
}

/// Parses the comma-separated delta-op list of an `UPDATE` line (grammar in
/// the module docs). Structural validity against the live graph is the
/// broker's job — this only parses the shape.
///
/// # Errors
///
/// [`ServeError::Protocol`] for an empty list or a malformed op.
pub fn parse_delta_ops(spec: &str) -> Result<DeltaBatch, ServeError> {
    let mut batch = DeltaBatch::new();
    for op in spec.split(',') {
        let (kind, rest) = op.split_at(op.len().min(1));
        let parse_node = |v: &str| -> Result<NodeId, ServeError> {
            let raw: u32 = v.parse().map_err(|_| bad(format!("{op:?}: {v:?} is not a node id")))?;
            Ok(NodeId::new(raw as usize))
        };
        let parse_pair = |s: &str| -> Result<(NodeId, NodeId), ServeError> {
            let (u, v) =
                s.split_once('-').ok_or_else(|| bad(format!("{op:?}: expected <u>-<v>")))?;
            Ok((parse_node(u)?, parse_node(v)?))
        };
        let parse_weighted = |s: &str| -> Result<(NodeId, NodeId, u64), ServeError> {
            let (pair, w) =
                s.split_once(':').ok_or_else(|| bad(format!("{op:?}: expected <u>-<v>:<w>")))?;
            let (u, v) = parse_pair(pair)?;
            let w = w.parse().map_err(|_| bad(format!("{op:?}: {w:?} is not a weight")))?;
            Ok((u, v, w))
        };
        match kind {
            "+" => {
                let (u, v, w) = parse_weighted(rest)?;
                batch.push(GraphDelta::AddEdge { u, v, w });
            }
            "-" => {
                let (u, v) = parse_pair(rest)?;
                batch.push(GraphDelta::RemoveEdge { u, v });
            }
            "~" => {
                let (u, v, w) = parse_weighted(rest)?;
                batch.push(GraphDelta::Reweight { u, v, w });
            }
            _ => return Err(bad(format!("{op:?}: expected leading +, - or ~"))),
        }
    }
    if batch.is_empty() {
        return Err(bad("ops=: empty delta list"));
    }
    Ok(batch)
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// `SOLVE ...`: serve one query; `id` correlates the response.
    Solve {
        /// Client-chosen correlation id, echoed on the response line.
        id: u64,
        /// The in-process request.
        request: Request,
    },
    /// `UPDATE ...`: apply a graph delta; `id` correlates the response.
    Update {
        /// Client-chosen correlation id, echoed on the response line.
        id: u64,
        /// The requesting tenant (must be registered).
        tenant: String,
        /// Catalog name of the graph to update.
        graph: String,
        /// The parsed delta batch.
        batch: DeltaBatch,
    },
    /// `STATS`: dump the broker counters.
    Stats,
}

/// Parses one request line.
///
/// # Errors
///
/// [`ServeError::Protocol`] with a description of the malformed token.
pub fn parse_request(line: &str) -> Result<WireRequest, ServeError> {
    let mut tokens = line.split_whitespace();
    match tokens.next() {
        Some("STATS") => Ok(WireRequest::Stats),
        Some("SOLVE") => {
            let mut id = None;
            let mut tenant = None;
            let mut graph = None;
            let mut seed = None;
            let mut deadline_ms = None;
            let mut fingerprint = None;
            let mut query = None;
            for token in tokens {
                let (key, value) = token
                    .split_once('=')
                    .ok_or_else(|| bad(format!("{token:?}: expected key=value")))?;
                match key {
                    "id" => id = Some(parse_u64("id", value)?),
                    "tenant" => tenant = Some(value.to_string()),
                    "graph" => graph = Some(value.to_string()),
                    "seed" => seed = Some(parse_u64("seed", value)?),
                    "deadline_ms" => deadline_ms = Some(parse_u64("deadline_ms", value)?),
                    "fp" => {
                        fingerprint = Some(
                            u64::from_str_radix(value, 16)
                                .map_err(|_| bad(format!("fp={value}: not a hex fingerprint")))?,
                        )
                    }
                    "query" => query = Some(parse_query_spec(value)?),
                    _ => return Err(bad(format!("unknown request field {key:?}"))),
                }
            }
            Ok(WireRequest::Solve {
                id: id.ok_or_else(|| bad("SOLVE: missing id=<u64>"))?,
                request: Request {
                    tenant: tenant.ok_or_else(|| bad("SOLVE: missing tenant=<name>"))?,
                    graph: graph.ok_or_else(|| bad("SOLVE: missing graph=<name>"))?,
                    seed,
                    query: query.ok_or_else(|| bad("SOLVE: missing query=<spec>"))?,
                    deadline_ms,
                    fingerprint,
                },
            })
        }
        Some("UPDATE") => {
            let mut id = None;
            let mut tenant = None;
            let mut graph = None;
            let mut batch = None;
            for token in tokens {
                let (key, value) = token
                    .split_once('=')
                    .ok_or_else(|| bad(format!("{token:?}: expected key=value")))?;
                match key {
                    "id" => id = Some(parse_u64("id", value)?),
                    "tenant" => tenant = Some(value.to_string()),
                    "graph" => graph = Some(value.to_string()),
                    "ops" => batch = Some(parse_delta_ops(value)?),
                    _ => return Err(bad(format!("unknown request field {key:?}"))),
                }
            }
            Ok(WireRequest::Update {
                id: id.ok_or_else(|| bad("UPDATE: missing id=<u64>"))?,
                tenant: tenant.ok_or_else(|| bad("UPDATE: missing tenant=<name>"))?,
                graph: graph.ok_or_else(|| bad("UPDATE: missing graph=<name>"))?,
                batch: batch.ok_or_else(|| bad("UPDATE: missing ops=<op,...>"))?,
            })
        }
        Some(other) => Err(bad(format!("unknown verb {other:?}"))),
        None => Err(bad("empty request line")),
    }
}

impl Broker<'_> {
    /// Serves one protocol line and returns the response line (no trailing
    /// newline) — the in-process entry point the TCP server and tests share.
    /// Never panics on malformed input: parse failures come back as
    /// `ERR id=0 code=protocol ...`.
    pub fn serve_line(&self, line: &str) -> String {
        match parse_request(line) {
            Ok(WireRequest::Stats) => {
                let s = self.stats();
                let mut line = format!(
                    "STATS served={} shed={} session_hits={} admitted={} evicted={} resident={} \
                     bytes={} verified={} mismatches={} batches={} batched={} max_batch={} \
                     deadline_shed={} breaker_opens={} breaker_probes={} quarantined={} \
                     degraded_served={}",
                    s.served,
                    s.shed,
                    s.session_hits,
                    s.sessions_admitted,
                    s.sessions_evicted,
                    s.resident_sessions,
                    s.session_bytes,
                    s.verified,
                    s.mismatches,
                    s.batches,
                    s.batched_queries,
                    s.max_batch,
                    s.deadline_shed,
                    s.breaker_opens,
                    s.breaker_probes,
                    s.quarantined,
                    s.degraded_served
                );
                line.push_str(&format!(
                    " deltas_applied={} repair_patched={} repair_full={} stale_epoch_refused={}",
                    s.deltas_applied, s.repair_patched, s.repair_full, s.stale_epoch_refused
                ));
                for (tenant, state) in self.breaker_states() {
                    line.push_str(&format!(" breaker.{tenant}={state}"));
                }
                line
            }
            Ok(WireRequest::Update { id, tenant, graph, batch }) => {
                match self.update(&tenant, &graph, &batch) {
                    Ok(out) => format!(
                        "OK id={id} update={} fp={:016x} epoch={} migrated={} patched={} full={}",
                        out.graph, out.fingerprint, out.epoch, out.migrated, out.patched, out.full
                    ),
                    Err(e) => format!("ERR id={id} code={} msg={e}", e.code()),
                }
            }
            Ok(WireRequest::Solve { id, request }) => match self.serve(&request) {
                Ok(resp) => format!(
                    "OK id={id} query={} rounds={} guarantee={} digest={:016x} verified={}",
                    resp.report.label(),
                    resp.report.rounds,
                    guarantee_label(&resp.report.guarantee),
                    resp.digest,
                    u8::from(resp.verified)
                ),
                Err(e) => format!("ERR id={id} code={} msg={e}", e.code()),
            },
            Err(e) => format!("ERR id=0 code={} msg={e}", e.code()),
        }
    }
}
