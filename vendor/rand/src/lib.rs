//! Offline stub of the `rand` 0.8 API surface used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, deterministic implementation of exactly the API it consumes:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the real
//! `StdRng` (ChaCha12), but statistically solid for simulation workloads and,
//! crucially, *stable across releases*: experiment tables regenerated from a
//! seed will never shift under a dependency bump.

pub mod rngs;
pub mod seq;

/// Object-safe core of a random generator: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators. Only the `seed_from_u64` entry point is provided —
/// it is the only constructor the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the domain;
    /// `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        // 53 random bits → uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution (the stub's analogue of
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by widening-multiply with a single rejection
/// retry loop (unbiased, branch-light).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Lemire's method: (x * span) >> 64 with a rejection zone of size
    // (2^64 mod span) at the low end of each bucket.
    let zone = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + uniform_below(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(uniform_below(rng, span) as i64)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                let span = span.wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                ((start as i64).wrapping_add(uniform_below(rng, span) as i64)) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                // Closed interval: scale by the span; the endpoint has measure
                // zero anyway for floats, so [0,1) scaling is fine.
                start + unit * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b} far from 1000");
        }
    }
}
