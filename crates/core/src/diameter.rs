//! Diameter computation in the HYBRID model (§5, Theorem 5.1, Algorithm 9) and
//! its instantiations (Corollaries 5.2, 5.3 = Theorem 1.4).
//!
//! Framework: build a skeleton (`|V_S| ≈ n^x`, `x = 2/(3+2δ)`), run an `(α, β)`
//! CLIQUE diameter algorithm on it, flood the estimate `ηh + 1` hops while every
//! node measures the largest hop distance `h_v` in its `(ηh+1)`-ball, aggregate
//! `ĥ = max_v h_v` globally (Lemma B.2), and output
//!
//! ```text
//! D̃ = ĥ              if ĥ ≤ ηh    (the diameter was small enough to see locally)
//! D̃ = D̃(S) + 2h      otherwise    (skeleton diameter ≥ D - 2h, Lemma C.1/C.2)
//! ```
//!
//! yielding an `(α + 2/η + β/T_B)`-approximation of the *hop* diameter `D(G)`
//! of an unweighted graph.

use clique_sim::declared::DeclaredKssp;
use clique_sim::diameter::{DeclaredDiameter32, DeclaredDiameterAlgebraic};
use clique_sim::CliqueDiameterAlgorithm;
use hybrid_graph::bfs::local_max_hop;
use hybrid_graph::{Distance, NodeId, INFINITY};
use hybrid_sim::{derive_seed, par, HybridNet};

use crate::aggregate::aggregate_all;
use crate::clique_on_skeleton::{simulate_diameter_on_skeleton, CliqueSimReport};
use crate::error::HybridError;
use crate::ksssp::KsspConfig;
use crate::prepare::{skeleton_phase, Prep};

/// Configuration of the diameter framework runs — its own parameter set, no
/// longer borrowed from the k-SSP framework config.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiameterConfig {
    /// The skeleton radius constant `ξ`: the framework samples its skeleton
    /// with exponent `x = 2/(3+2δ)` (δ declared by the plugged CLIQUE
    /// algorithm) and connects it with paths of up to
    /// `h = ⌈ξ · n^{1-x} · ln n⌉` hops — the same role as
    /// [`crate::sssp::SsspConfig::xi`].
    pub xi: f64,
}

impl Default for DiameterConfig {
    fn default() -> Self {
        DiameterConfig { xi: 1.5 }
    }
}

/// Result of a diameter framework run.
#[derive(Debug, Clone)]
pub struct DiameterOutcome {
    /// The estimate `D̃`.
    pub estimate: Distance,
    /// Total HYBRID rounds `T_B`.
    pub rounds: u64,
    /// Skeleton size.
    pub skeleton_size: usize,
    /// Skeleton hop budget `h`.
    pub h: usize,
    /// Whether the small-diameter exact path (`D̃ = ĥ`) was taken.
    pub exact_local: bool,
    /// The exploration threshold `⌈ηh⌉` (the else-branch implies `D` exceeds
    /// it, which converts the additive error at this rate).
    pub explore: u64,
    /// CLIQUE simulation cost breakdown.
    pub clique: CliqueSimReport,
    /// `(α, η, β bound)` of the plugged algorithm, for guarantee computation.
    pub alpha: f64,
    /// Runtime multiplier `η`.
    pub eta: f64,
    /// Additive `β` bound evaluated on the skeleton's max edge weight.
    pub beta_bound: f64,
}

impl DiameterOutcome {
    /// The approximation factor Theorem 5.1 guarantees for this run:
    /// `α + 2/η + β/⌈ηh⌉` (exact when the local path was taken).
    pub fn guaranteed_factor(&self) -> f64 {
        if self.exact_local {
            1.0
        } else {
            let beta_term =
                if self.explore > 0 { self.beta_bound / self.explore as f64 } else { 0.0 };
            self.alpha + 2.0 / self.eta + beta_term
        }
    }
}

/// Runs the diameter framework (Algorithm 9) with CLIQUE plugin `alg` on an
/// unweighted graph.
///
/// # Errors
///
/// Propagates simulator/CLIQUE errors.
pub fn diameter_framework<A: CliqueDiameterAlgorithm + ?Sized>(
    net: &mut HybridNet<'_>,
    alg: &A,
    cfg: DiameterConfig,
    seed: u64,
) -> Result<DiameterOutcome, HybridError> {
    diameter_framework_prepared(net, alg, cfg, seed, Prep::Cold)
}

pub(crate) fn diameter_framework_prepared<A: CliqueDiameterAlgorithm + ?Sized>(
    net: &mut HybridNet<'_>,
    alg: &A,
    cfg: DiameterConfig,
    seed: u64,
    prep: Prep<'_>,
) -> Result<DiameterOutcome, HybridError> {
    let start = net.rounds();
    let delta = alg.delta();
    let x = 2.0 / (3.0 + 2.0 * delta);

    // Step 1: skeleton.
    let art = skeleton_phase(net, x, cfg.xi, &[], seed, "diam:skeleton", prep)?;
    let skeleton = &art.skeleton;
    let h = skeleton.h();

    // Step 2: CLIQUE diameter algorithm on the skeleton.
    let (d_tilde_s, clique_report) =
        simulate_diameter_on_skeleton(net, skeleton, alg, derive_seed(seed, 1), "diam:clique")?;

    // Step 3: local exploration for ηh + 1 rounds — spreads D̃(S) and lets every
    // node measure h_v, its largest visible hop distance.
    let eta = alg.eta().max(1.0);
    let explore = ((eta * h as f64).ceil() as u64).max(1) + 1;
    net.charge_local(explore, "diam:local-exploration");
    let g = net.graph();
    // Every node measures h_v in its own ball — a per-node protocol step,
    // sharded across the round-engine worker budget (shard order keeps the
    // result vector identical to the sequential sweep).
    let h_values: Vec<Option<u64>> = par::map_index_shards(net.round_threads(), g.len(), |range| {
        range.map(|v| Some(local_max_hop(g, NodeId::new(v), explore as usize))).collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();

    // Step 4: global max-aggregation of ĥ (Lemma B.2, O(log n) rounds).
    let h_hat =
        aggregate_all(net, &h_values, "diam:aggregate", |a, b| a.max(b))?.expect("n ≥ 1 values");

    // Step 5: Equation (3).
    let threshold = explore - 1; // ηh
    let (estimate, exact_local) = if h_hat <= threshold {
        (h_hat, true)
    } else {
        (d_tilde_s.saturating_add(2 * h as u64), false)
    };
    Ok(DiameterOutcome {
        estimate,
        rounds: net.rounds() - start,
        skeleton_size: skeleton.len(),
        h,
        exact_local,
        explore: threshold,
        clique: clique_report,
        alpha: alg.alpha(),
        eta,
        beta_bound: alg.beta().bound(skeleton.graph().max_weight()),
    })
}

/// Corollary 5.2: `(3/2 + ε)`-approximate diameter in `Õ(n^{1/3}/ε)` rounds.
///
/// # Errors
///
/// Propagates framework errors.
pub fn diameter_cor52(
    net: &mut HybridNet<'_>,
    eps: f64,
    cfg: DiameterConfig,
    seed: u64,
) -> Result<DiameterOutcome, HybridError> {
    diameter_cor52_prepared(net, eps, cfg, seed, Prep::Cold)
}

pub(crate) fn diameter_cor52_prepared(
    net: &mut HybridNet<'_>,
    eps: f64,
    cfg: DiameterConfig,
    seed: u64,
    prep: Prep<'_>,
) -> Result<DiameterOutcome, HybridError> {
    let alg = DeclaredDiameter32::new(eps, derive_seed(seed, 52));
    diameter_framework_prepared(net, &alg, cfg, seed, prep)
}

/// Corollary 5.3: `(1 + ε)`-approximate diameter in `Õ(n^{0.397}/ε)` rounds.
///
/// # Errors
///
/// Propagates framework errors.
pub fn diameter_cor53(
    net: &mut HybridNet<'_>,
    eps: f64,
    cfg: DiameterConfig,
    seed: u64,
) -> Result<DiameterOutcome, HybridError> {
    diameter_cor53_prepared(net, eps, cfg, seed, Prep::Cold)
}

pub(crate) fn diameter_cor53_prepared(
    net: &mut HybridNet<'_>,
    eps: f64,
    cfg: DiameterConfig,
    seed: u64,
    prep: Prep<'_>,
) -> Result<DiameterOutcome, HybridError> {
    let alg = DeclaredDiameterAlgebraic::new(eps, derive_seed(seed, 53));
    diameter_framework_prepared(net, &alg, cfg, seed, prep)
}

/// Upper bound noted after Theorem 1.6: a `(2+o(1))`-approximation of the
/// *weighted* diameter in `Õ(n^{1/3})` rounds via the `(1+o(1))`-approximate
/// SSSP eccentricity trick (`D/2 ≤ e(v) ≤ D`, footnote 6): run the SSSP scheme
/// from one node and output `2·ẽ(v)`.
///
/// # Errors
///
/// Propagates framework errors.
pub fn weighted_diameter_2approx(
    net: &mut HybridNet<'_>,
    eps: f64,
    cfg: DiameterConfig,
    seed: u64,
) -> Result<DiameterOutcome, HybridError> {
    // (1+ε)-approximate SSSP from node 0 via the framework with the algebraic
    // APSP plugin restricted to one source.
    let alg = DeclaredKssp::algebraic_apsp(eps, derive_seed(seed, 66));
    let out = crate::ksssp::kssp_framework(
        net,
        &alg,
        &[NodeId::new(0)],
        KsspConfig { xi: cfg.xi },
        seed,
    )?;
    let ecc = out.est[0].iter().copied().filter(|&d| d != INFINITY).max().unwrap_or(0);
    Ok(DiameterOutcome {
        estimate: ecc.saturating_mul(2),
        rounds: out.rounds,
        skeleton_size: out.skeleton_size,
        h: out.h,
        exact_local: false,
        explore: out.explore,
        clique: out.clique,
        alpha: 2.0 * (1.0 + eps),
        eta: 1.0,
        beta_bound: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::apsp::weighted_diameter;
    use hybrid_graph::bfs::unweighted_diameter;
    use hybrid_graph::generators::{cycle, erdos_renyi_connected, grid};
    use hybrid_sim::HybridConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn small_diameter_graphs_are_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_connected(80, 0.1, 1, &mut rng).unwrap();
        let d = unweighted_diameter(&g);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let out = diameter_cor52(&mut net, 0.5, DiameterConfig::default(), 3).unwrap();
        // ER diameter ≈ 3 ≪ ηh: the local path applies and is exact.
        assert!(out.exact_local);
        assert_eq!(out.estimate, d);
    }

    #[test]
    fn estimates_respect_guarantee_on_large_diameter() {
        // A long cycle with ξ chosen so the skeleton covers the cycle (max
        // sampling gap below h — the Lemma C.1 regime) while ηh < D still
        // forces the skeleton path.
        let g = cycle(300, 1).unwrap();
        let d = unweighted_diameter(&g);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let out = diameter_cor52(&mut net, 0.5, DiameterConfig { xi: 1.2 }, 5).unwrap();
        assert!(!out.exact_local, "ηh = {} vs D = {d}", out.h);
        assert!(out.estimate >= d, "never underestimates: {} < {d}", out.estimate);
        let ratio = out.estimate as f64 / d as f64;
        assert!(
            ratio <= out.guaranteed_factor() + 1e-9,
            "ratio {ratio} > guarantee {}",
            out.guaranteed_factor()
        );
    }

    #[test]
    fn cor53_tighter_than_cor52_factor() {
        let g = grid(14, 14, 1).unwrap();
        let mut n1 = HybridNet::new(&g, HybridConfig::default());
        let a = diameter_cor52(&mut n1, 0.2, DiameterConfig { xi: 0.05 }, 7).unwrap();
        let mut n2 = HybridNet::new(&g, HybridConfig::default());
        let b = diameter_cor53(&mut n2, 0.2, DiameterConfig { xi: 0.05 }, 7).unwrap();
        assert!(b.guaranteed_factor() < a.guaranteed_factor());
        let d = unweighted_diameter(&g);
        assert!(a.estimate >= d && b.estimate >= d);
    }

    #[test]
    fn weighted_2approx() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = erdos_renyi_connected(70, 0.08, 9, &mut rng).unwrap();
        let d = weighted_diameter(&g);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let out = weighted_diameter_2approx(&mut net, 0.1, DiameterConfig::default(), 2).unwrap();
        assert!(out.estimate >= d, "eccentricity × 2 upper-bounds D");
        assert!(out.estimate as f64 <= 2.2 * d as f64 + 1.0);
    }
}
