//! Simulating the CLIQUE model on a skeleton of the HYBRID network
//! (§4, Corollary 4.1, Algorithm 8).
//!
//! One CLIQUE round on a sampled node set `S` (`|S| ≈ n^x`) is an instance of
//! token routing with `senders = receivers = S` and `k_S = k_R = |S|`, costing
//! `Õ(|S|²/n + √|S|) = Õ(n^{2x-1} + n^{x/2})` HYBRID rounds. This module runs a
//! CLIQUE algorithm on the skeleton graph and charges its communication through
//! the token-routing machinery:
//!
//! * **Genuine algorithms** (whose message batches were recorded by
//!   [`clique_sim::CliqueNet::record_batches`]) have every batch *replayed*
//!   through [`crate::token_routing::route_tokens`] — real messages, real
//!   congestion, real rounds.
//! * **Declared algorithms** (the wrappers of [`clique_sim::declared`]) have no
//!   recorded traffic; the cost of one *full* CLIQUE round (the worst-case shape
//!   Corollary 4.1 accounts for: every ordered pair of `S` exchanges a message)
//!   is measured by routing it once for real, and the remaining `T_A - 1`
//!   simulated rounds are charged at that measured rate.

use clique_sim::{CliqueDiameterAlgorithm, CliqueKsspAlgorithm, CliqueNet, KsspEstimates};
use hybrid_graph::skeleton::Skeleton;
use hybrid_graph::{Distance, NodeId};
use hybrid_sim::{derive_seed, HybridNet};

use crate::error::HybridError;
use crate::token_routing::{RoutingRates, RoutingSession, Token};

/// Cost breakdown of a CLIQUE-on-skeleton simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliqueSimReport {
    /// CLIQUE rounds the algorithm consumed.
    pub clique_rounds: u64,
    /// HYBRID rounds spent simulating them.
    pub hybrid_rounds: u64,
    /// Batches replayed message-by-message.
    pub replayed_batches: usize,
    /// HYBRID rounds of one full `|S|×|S|` CLIQUE round (measured), if the
    /// declared path was taken.
    pub measured_full_round: Option<u64>,
}

fn routing_rates(skeleton: &Skeleton, n: usize) -> RoutingRates {
    let p = (skeleton.len() as f64 / n as f64).clamp(f64::MIN_POSITIVE, 1.0);
    RoutingRates { p_s: p, p_r: p }
}

/// Establishes the routing session Corollary 4.1 reuses for every simulated
/// CLIQUE round: senders = receivers = skeleton, per-round workloads up to
/// `|S|` tokens per node.
fn skeleton_session(
    net: &mut HybridNet<'_>,
    skeleton: &Skeleton,
    seed: u64,
    phase: &str,
) -> Result<RoutingSession, HybridError> {
    let members = skeleton.nodes();
    let rates = routing_rates(skeleton, net.n());
    RoutingSession::establish(
        net,
        members,
        members,
        rates,
        members.len(),
        members.len(),
        derive_seed(seed, 0x5E55),
        phase,
    )
}

/// Replays recorded CLIQUE batches through the shared routing session; returns
/// HYBRID rounds spent (including the session establishment).
fn replay_batches(
    net: &mut HybridNet<'_>,
    skeleton: &Skeleton,
    batches: &[Vec<(NodeId, NodeId)>],
    seed: u64,
    phase: &str,
) -> Result<u64, HybridError> {
    let before = net.rounds();
    let session = skeleton_session(net, skeleton, seed, phase)?;
    for batch in batches.iter() {
        if batch.is_empty() {
            continue;
        }
        // Translate clique-local endpoints to global IDs; disambiguate repeated
        // (src, dst) pairs with the label index.
        let mut counter = std::collections::HashMap::new();
        let tokens: Vec<Token<()>> = batch
            .iter()
            .map(|&(s, r)| {
                let sg = skeleton.global(s.index());
                let rg = skeleton.global(r.index());
                let c = counter.entry((sg, rg)).or_insert(0u32);
                *c += 1;
                Token::new(sg, rg, *c - 1, ())
            })
            .collect();
        session.route(net, tokens, phase)?;
    }
    Ok(net.rounds() - before)
}

/// Routes one full CLIQUE round (every ordered skeleton pair exchanges one
/// message) and returns its HYBRID cost — the per-round rate Corollary 4.1
/// charges declared algorithms at. Session establishment is charged once,
/// outside the returned per-round rate.
fn measure_full_round(
    net: &mut HybridNet<'_>,
    skeleton: &Skeleton,
    seed: u64,
    phase: &str,
) -> Result<(u64, u64), HybridError> {
    let before = net.rounds();
    let session = skeleton_session(net, skeleton, seed, phase)?;
    let setup = net.rounds() - before;
    let members = skeleton.nodes();
    let mut tokens = Vec::with_capacity(members.len() * members.len());
    for &s in members {
        for &r in members {
            if s != r {
                tokens.push(Token::new(s, r, 0, ()));
            }
        }
    }
    let routed = session.route(net, tokens, phase)?;
    Ok((setup, routed.rounds))
}

/// Charges the HYBRID cost of a finished CLIQUE execution (Algorithm 8's outer
/// loop): replay if traffic was recorded, otherwise measure-and-scale.
fn charge_clique_execution(
    net: &mut HybridNet<'_>,
    skeleton: &Skeleton,
    cnet: &CliqueNet,
    seed: u64,
    phase: &str,
) -> Result<CliqueSimReport, HybridError> {
    let clique_rounds = cnet.rounds();
    let batches = cnet.recorded_batches();
    if !batches.is_empty() {
        let hybrid_rounds = replay_batches(net, skeleton, batches, seed, phase)?;
        return Ok(CliqueSimReport {
            clique_rounds,
            hybrid_rounds,
            replayed_batches: batches.len(),
            measured_full_round: None,
        });
    }
    let (setup, per_round) = measure_full_round(net, skeleton, seed, phase)?;
    let remaining = clique_rounds.saturating_sub(1) * per_round;
    net.charge_global_rounds(remaining, &format!("{phase}:declared-rounds"));
    Ok(CliqueSimReport {
        clique_rounds,
        hybrid_rounds: setup + per_round + remaining,
        replayed_batches: 0,
        measured_full_round: Some(per_round),
    })
}

/// Runs a k-SSP CLIQUE algorithm on the skeleton (Algorithm 8). `sources_local`
/// are skeleton-local indices. The returned estimates are in skeleton-local
/// indexing.
///
/// # Errors
///
/// Propagates CLIQUE and simulator errors.
pub fn simulate_kssp_on_skeleton<A: CliqueKsspAlgorithm + ?Sized>(
    net: &mut HybridNet<'_>,
    skeleton: &Skeleton,
    alg: &A,
    sources_local: &[NodeId],
    seed: u64,
    phase: &str,
) -> Result<(KsspEstimates, CliqueSimReport), HybridError> {
    let mut cnet = CliqueNet::new(skeleton.len());
    cnet.record_batches();
    let est = alg.run(&mut cnet, skeleton.graph(), sources_local)?;
    let report = charge_clique_execution(net, skeleton, &cnet, seed, phase)?;
    Ok((est, report))
}

/// Runs a diameter CLIQUE algorithm on the skeleton (Theorem 5.1's step 2).
///
/// # Errors
///
/// Propagates CLIQUE and simulator errors.
pub fn simulate_diameter_on_skeleton<A: CliqueDiameterAlgorithm + ?Sized>(
    net: &mut HybridNet<'_>,
    skeleton: &Skeleton,
    alg: &A,
    seed: u64,
    phase: &str,
) -> Result<(Distance, CliqueSimReport), HybridError> {
    let mut cnet = CliqueNet::new(skeleton.len());
    cnet.record_batches();
    let d = alg.run(&mut cnet, skeleton.graph())?;
    let report = charge_clique_execution(net, skeleton, &cnet, seed, phase)?;
    Ok((d, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clique_sim::bellman_ford::BellmanFordKSsp;
    use clique_sim::declared::DeclaredKssp;
    use clique_sim::diameter::{DeclaredDiameter32, ExactDiameter};
    use hybrid_graph::apsp::weighted_diameter;
    use hybrid_graph::dijkstra::dijkstra;
    use hybrid_graph::generators::erdos_renyi_connected;
    use hybrid_sim::HybridConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (hybrid_graph::Graph, Skeleton) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.06, 4, &mut rng).unwrap();
        let params = hybrid_graph::skeleton::SkeletonParams::scaled(3.0, 3.0);
        let s = Skeleton::build(&g, params, &[], &mut rng).unwrap();
        (g, s)
    }

    #[test]
    fn genuine_algorithm_is_replayed() {
        let (g, skel) = setup(80, 1);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let sources = vec![NodeId::new(0)];
        let (est, rep) =
            simulate_kssp_on_skeleton(&mut net, &skel, &BellmanFordKSsp::new(), &sources, 7, "cs")
                .unwrap();
        assert!(rep.replayed_batches > 0);
        assert!(rep.hybrid_rounds > 0);
        assert_eq!(net.rounds(), rep.hybrid_rounds);
        // Estimates are exact distances on the skeleton graph.
        let ref_sp = dijkstra(skel.graph(), NodeId::new(0));
        for v in skel.graph().nodes() {
            assert_eq!(est.get(0, v), ref_sp.dist(v));
        }
    }

    #[test]
    fn declared_algorithm_is_measured_and_scaled() {
        let (g, skel) = setup(80, 2);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let alg = DeclaredKssp::censor_hillel_apsp(0.5, 3);
        let sources: Vec<NodeId> = (0..skel.len().min(4)).map(NodeId::new).collect();
        let (_, rep) = simulate_kssp_on_skeleton(&mut net, &skel, &alg, &sources, 9, "cs").unwrap();
        assert_eq!(rep.replayed_batches, 0);
        let per = rep.measured_full_round.unwrap();
        assert!(per > 0);
        // hybrid_rounds = session setup + T_A × per-round rate.
        assert!(rep.hybrid_rounds >= rep.clique_rounds * per);
    }

    #[test]
    fn diameter_simulation_exact() {
        let (g, skel) = setup(70, 3);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let (d, rep) =
            simulate_diameter_on_skeleton(&mut net, &skel, &ExactDiameter::new(), 5, "cs").unwrap();
        assert_eq!(d, weighted_diameter(skel.graph()));
        assert!(rep.replayed_batches > 0);
    }

    #[test]
    fn diameter_simulation_declared() {
        let (g, skel) = setup(70, 4);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let alg = DeclaredDiameter32::new(0.25, 8);
        let (d, rep) = simulate_diameter_on_skeleton(&mut net, &skel, &alg, 5, "cs").unwrap();
        let exact = weighted_diameter(skel.graph());
        assert!(d >= exact);
        assert!(rep.measured_full_round.is_some());
    }
}
