//! The unified solver API: typed [`Query`] → [`solve`] → [`Report`].
//!
//! The paper presents one coherent family of HYBRID-model distance algorithms
//! (Theorem 1.1 APSP, Theorem 1.3 SSSP, the Theorem 4.1 k-SSP framework, the
//! Theorem 5.1 diameter framework). This module is the single typed entry
//! point over all of them:
//!
//! * [`Query`] — *what* to compute, as data. Corollary numbers are real enums
//!   ([`KsspCorollary`], [`DiameterCorollary`]), so invalid combinations are
//!   unrepresentable; parameters are validated at construction by the
//!   builders ([`Query::apsp`], [`Query::sssp`], [`Query::kssp`],
//!   [`Query::diameter`]) instead of deep inside a protocol phase.
//! * [`solve`] — runs the query on a [`HybridNet`] with a root seed.
//! * [`Report`] — the uniform outcome: a typed [`Answer`], the round/message
//!   accounting, and the [`Guarantee`] the paper proves for that run (exact,
//!   or the Theorem 4.1 / Theorem 5.1 approximation factor evaluated at the
//!   run's actual exploration radius) — so verification layers read the
//!   contract off the report instead of recomputing it per algorithm.
//!
//! The legacy free functions ([`crate::apsp::exact_apsp`],
//! [`crate::ksssp::kssp_cor46`], …) remain as the internal protocol
//! implementations — `solve` is a thin, behavior-preserving dispatcher over
//! them, so their unit tests keep pinning protocol behavior bit-for-bit.
//!
//! # Example
//!
//! ```
//! use hybrid_core::solver::{solve, Answer, Query};
//! use hybrid_graph::generators::grid;
//! use hybrid_sim::{HybridConfig, HybridNet};
//!
//! let g = grid(6, 6, 1).unwrap();
//! let mut net = HybridNet::new(&g, HybridConfig::default());
//! let query = Query::apsp().xi(1.5).build().unwrap();
//! let report = solve(&mut net, &query, 7).unwrap();
//! assert!(report.guarantee.is_exact());
//! assert!(matches!(report.answer, Answer::Distances(_)));
//! assert!(report.rounds > 0);
//! ```

use hybrid_graph::apsp::DistanceMatrix;
use hybrid_graph::{Distance, NodeId, INFINITY};
use hybrid_sim::{HybridNet, PhaseStats};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

use crate::apsp::{apsp_local_only, exact_apsp_prepared, exact_apsp_soda20_prepared, ApspConfig};
use crate::diameter::{diameter_cor52_prepared, diameter_cor53_prepared, DiameterConfig};
use crate::error::HybridError;
use crate::ksssp::{kssp_cor46_prepared, kssp_cor47_prepared, kssp_cor48_prepared, KsspConfig};
use crate::prepare::Prep;
use crate::sssp::{
    approx_sssp_soda20_prepared, exact_sssp_prepared, sssp_local_bellman_ford, SsspConfig,
};

/// A structurally valid query with invalid *parameters* — rejected by the
/// builders at construction and by [`solve`] as a backstop for hand-built
/// [`Query`] values.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The skeleton radius constant must be positive and finite.
    NonPositiveXi {
        /// The offending value.
        xi: f64,
    },
    /// The approximation parameter must lie in `(0, 1)`.
    EpsOutOfRange {
        /// The offending value.
        eps: f64,
    },
    /// A k-SSP query needs at least one source (`k ≥ 1`).
    NoSources,
    /// Not a k-SSP corollary number (the paper defines 46, 47, 48).
    UnknownKsspCorollary {
        /// The rejected number.
        cor: u8,
    },
    /// Not a diameter corollary number (the paper defines 52, 53).
    UnknownDiameterCorollary {
        /// The rejected number.
        cor: u8,
    },
    /// A [`crate::session::Session`] was handed a query whose `ξ` differs
    /// from the prepared artifact's — served structurally instead of silently
    /// re-preprocessing under the wrong constant.
    SessionXiMismatch {
        /// The session's pinned ξ.
        expected: f64,
        /// The query's ξ.
        got: f64,
    },
    /// A [`crate::session::Session`] was asked to solve under a different
    /// seed than the one its preprocessing was derived from.
    SessionSeedMismatch {
        /// The session's pinned root seed.
        expected: u64,
        /// The requested seed.
        got: u64,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::NonPositiveXi { xi } => {
                write!(f, "skeleton constant ξ must be positive and finite, got {xi}")
            }
            QueryError::EpsOutOfRange { eps } => {
                write!(f, "approximation parameter ε must be in (0, 1), got {eps}")
            }
            QueryError::NoSources => write!(f, "k-SSP queries need at least one source (k ≥ 1)"),
            QueryError::UnknownKsspCorollary { cor } => {
                write!(f, "unknown k-SSP corollary {cor} (the paper defines 46, 47, 48)")
            }
            QueryError::UnknownDiameterCorollary { cor } => {
                write!(f, "unknown diameter corollary {cor} (the paper defines 52, 53)")
            }
            QueryError::SessionXiMismatch { expected, got } => {
                write!(
                    f,
                    "query ξ = {got} does not match the session's prepared ξ = {expected} \
                     (open a session with the matching constant instead of re-preprocessing)"
                )
            }
            QueryError::SessionSeedMismatch { expected, got } => {
                write!(
                    f,
                    "seed {got} does not match the session's root seed {expected} \
                     (preprocessing is derived from the session seed)"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Which exact-APSP pipeline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApspVariant {
    /// Theorem 1.1: `Õ(√n)` rounds via token routing.
    Thm11,
    /// The `Õ(n^{2/3})` broadcast baseline of Augustine et al. (SODA'20).
    Soda20,
    /// The LOCAL-only yardstick: `Θ(D)` rounds of full-graph flooding.
    LocalFlood,
}

/// Which SSSP algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SsspVariant {
    /// Theorem 1.3: exact SSSP in `Õ(n^{2/5})` rounds.
    Thm13,
    /// Exact distributed Bellman–Ford over the local edges (`Θ(SPD)` rounds).
    LocalBellmanFord,
    /// The `(1+ε)`-approximate `Õ(n^{1/3})` SSSP of Augustine et al.
    ApproxSoda20 {
        /// Approximation parameter `ε ∈ (0, 1)`.
        eps: f64,
    },
}

/// The k-SSP corollaries of Theorem 1.2 (§4), as a closed enum — an invalid
/// corollary number is unrepresentable (use [`KsspCorollary::try_from`] at
/// deserialization boundaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KsspCorollary {
    /// Corollary 4.6: `n^{1/3}` sources, `(1+ε)` unweighted / `(3+ε)`
    /// weighted, `Õ(n^{1/3}/ε)` rounds.
    Cor46,
    /// Corollary 4.7: any `k` sources, `(2+ε)` unweighted / `(7+ε)` weighted,
    /// `Õ(n^{1/3}/ε + √k)` rounds.
    Cor47,
    /// Corollary 4.8: any `k` sources, `(1+ε)` unweighted / `(3+o(1))`
    /// weighted, `Õ(n^{0.397} + √k)` rounds.
    Cor48,
}

impl KsspCorollary {
    /// The paper's corollary number.
    pub fn number(self) -> u8 {
        match self {
            KsspCorollary::Cor46 => 46,
            KsspCorollary::Cor47 => 47,
            KsspCorollary::Cor48 => 48,
        }
    }
}

impl TryFrom<u8> for KsspCorollary {
    type Error = QueryError;

    fn try_from(cor: u8) -> Result<Self, QueryError> {
        match cor {
            46 => Ok(KsspCorollary::Cor46),
            47 => Ok(KsspCorollary::Cor47),
            48 => Ok(KsspCorollary::Cor48),
            _ => Err(QueryError::UnknownKsspCorollary { cor }),
        }
    }
}

/// The diameter corollaries of Theorem 1.4 (§5), as a closed enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiameterCorollary {
    /// Corollary 5.2: `(3/2 + ε)`-approximation in `Õ(n^{1/3}/ε)` rounds.
    Cor52,
    /// Corollary 5.3: `(1 + ε)`-approximation in `Õ(n^{0.397}/ε)` rounds.
    Cor53,
}

impl DiameterCorollary {
    /// The paper's corollary number.
    pub fn number(self) -> u8 {
        match self {
            DiameterCorollary::Cor52 => 52,
            DiameterCorollary::Cor53 => 53,
        }
    }
}

impl TryFrom<u8> for DiameterCorollary {
    type Error = QueryError;

    fn try_from(cor: u8) -> Result<Self, QueryError> {
        match cor {
            52 => Ok(DiameterCorollary::Cor52),
            53 => Ok(DiameterCorollary::Cor53),
            _ => Err(QueryError::UnknownDiameterCorollary { cor }),
        }
    }
}

/// The sources of a k-SSP query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceSet {
    /// `k` distinct pseudo-random nodes, derived deterministically from the
    /// run seed with [`random_sources`] — the registry's standard picker.
    Random {
        /// Source count `k ≥ 1` (clamped to `n` at solve time).
        k: usize,
    },
    /// An explicit source list.
    Nodes(Vec<NodeId>),
}

impl SourceSet {
    /// Resolves the set to concrete nodes on a graph of `n` nodes.
    fn resolve(&self, n: usize, seed: u64) -> Vec<NodeId> {
        match self {
            SourceSet::Random { k } => random_sources(n, *k, seed),
            SourceSet::Nodes(nodes) => nodes.clone(),
        }
    }
}

/// `k` distinct nodes of `0..n`, uniformly without replacement, sorted,
/// deterministic in `seed` — the standard source/landmark picker shared by
/// [`SourceSet::Random`] and the scenario engine.
pub fn random_sources(n: usize, k: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut all: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    all.shuffle(&mut rng);
    let mut out = all[..k.min(n)].to_vec();
    out.sort_unstable();
    out
}

/// A validated distance/diameter computation request — *what* to compute, as
/// plain data. Construct through the builders ([`Query::apsp`],
/// [`Query::sssp`], [`Query::kssp`], [`Query::diameter`]), which validate
/// parameters up front; [`solve`] re-validates as a backstop for hand-built
/// values.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Exact all-pairs shortest paths.
    Apsp {
        /// Which APSP pipeline.
        variant: ApspVariant,
        /// Skeleton radius constant `ξ` (see [`ApspConfig::xi`]; ignored by
        /// [`ApspVariant::LocalFlood`]).
        xi: f64,
    },
    /// Single-source shortest paths.
    Sssp {
        /// Which SSSP algorithm.
        variant: SsspVariant,
        /// The source node.
        source: NodeId,
        /// Skeleton radius constant `ξ` (see [`SsspConfig::xi`]; ignored by
        /// [`SsspVariant::LocalBellmanFord`]).
        xi: f64,
    },
    /// k-source shortest paths (Theorem 4.1 framework).
    Kssp {
        /// Which corollary instantiation.
        cor: KsspCorollary,
        /// The sources.
        sources: SourceSet,
        /// Approximation parameter `ε ∈ (0, 1)`.
        eps: f64,
        /// Skeleton radius constant `ξ` (see [`KsspConfig::xi`]).
        xi: f64,
    },
    /// Diameter approximation (Theorem 5.1 framework) on an unweighted graph.
    Diameter {
        /// Which corollary instantiation.
        cor: DiameterCorollary,
        /// Approximation parameter `ε ∈ (0, 1)`.
        eps: f64,
        /// Skeleton radius constant `ξ` (see [`DiameterConfig::xi`]).
        xi: f64,
    },
}

fn check_xi(xi: f64) -> Result<(), QueryError> {
    if xi > 0.0 && xi.is_finite() {
        Ok(())
    } else {
        Err(QueryError::NonPositiveXi { xi })
    }
}

fn check_eps(eps: f64) -> Result<(), QueryError> {
    if eps > 0.0 && eps < 1.0 {
        Ok(())
    } else {
        Err(QueryError::EpsOutOfRange { eps })
    }
}

impl Query {
    /// Builder for an exact-APSP query (default: [`ApspVariant::Thm11`],
    /// `ξ = 1.5`).
    pub fn apsp() -> ApspQueryBuilder {
        ApspQueryBuilder { variant: ApspVariant::Thm11, xi: 1.5 }
    }

    /// Builder for an SSSP query from `source` (default:
    /// [`SsspVariant::Thm13`], `ξ = 1.5`).
    pub fn sssp(source: NodeId) -> SsspQueryBuilder {
        SsspQueryBuilder { variant: SsspVariant::Thm13, source, xi: 1.5 }
    }

    /// Builder for a k-SSP query under corollary `cor` (default: `ε = 0.5`,
    /// `ξ = 1.5`; the sources must be set).
    pub fn kssp(cor: KsspCorollary) -> KsspQueryBuilder {
        KsspQueryBuilder { cor, sources: None, eps: 0.5, xi: 1.5 }
    }

    /// Builder for a diameter query under corollary `cor` (default: `ε = 0.5`,
    /// `ξ = 1.5`).
    pub fn diameter(cor: DiameterCorollary) -> DiameterQueryBuilder {
        DiameterQueryBuilder { cor, eps: 0.5, xi: 1.5 }
    }

    /// The canonical label of this query — stable across releases; used by
    /// scenario reports, benchmark records, and tables.
    pub fn label(&self) -> &'static str {
        match self {
            Query::Apsp { variant: ApspVariant::Thm11, .. } => "apsp-thm11",
            Query::Apsp { variant: ApspVariant::Soda20, .. } => "apsp-soda20",
            Query::Apsp { variant: ApspVariant::LocalFlood, .. } => "apsp-local-flood",
            Query::Sssp { variant: SsspVariant::Thm13, .. } => "sssp-thm13",
            Query::Sssp { variant: SsspVariant::LocalBellmanFord, .. } => "sssp-local-bf",
            Query::Sssp { variant: SsspVariant::ApproxSoda20 { .. }, .. } => "sssp-soda20",
            Query::Kssp { cor: KsspCorollary::Cor46, .. } => "kssp-cor46",
            Query::Kssp { cor: KsspCorollary::Cor47, .. } => "kssp-cor47",
            Query::Kssp { cor: KsspCorollary::Cor48, .. } => "kssp-cor48",
            Query::Diameter { cor: DiameterCorollary::Cor52, .. } => "diameter-cor52",
            Query::Diameter { cor: DiameterCorollary::Cor53, .. } => "diameter-cor53",
        }
    }

    /// Validates the query's parameters (`ξ > 0`, `k ≥ 1`, `ε ∈ (0, 1)`).
    /// The builders run this at construction; [`solve`] runs it as a backstop.
    pub fn validate(&self) -> Result<(), QueryError> {
        match self {
            Query::Apsp { variant, xi } => {
                if *variant != ApspVariant::LocalFlood {
                    check_xi(*xi)?;
                }
            }
            Query::Sssp { variant, xi, .. } => {
                if *variant != SsspVariant::LocalBellmanFord {
                    check_xi(*xi)?;
                }
                if let SsspVariant::ApproxSoda20 { eps } = variant {
                    check_eps(*eps)?;
                }
            }
            Query::Kssp { sources, eps, xi, .. } => {
                check_xi(*xi)?;
                check_eps(*eps)?;
                let empty = match sources {
                    SourceSet::Random { k } => *k == 0,
                    SourceSet::Nodes(nodes) => nodes.is_empty(),
                };
                if empty {
                    return Err(QueryError::NoSources);
                }
            }
            Query::Diameter { eps, xi, .. } => {
                check_xi(*xi)?;
                check_eps(*eps)?;
            }
        }
        Ok(())
    }
}

/// Builder for [`Query::Apsp`].
#[derive(Debug, Clone)]
pub struct ApspQueryBuilder {
    variant: ApspVariant,
    xi: f64,
}

impl ApspQueryBuilder {
    /// Selects the APSP pipeline (default [`ApspVariant::Thm11`]).
    pub fn variant(mut self, variant: ApspVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the skeleton radius constant `ξ` (must be positive and finite).
    pub fn xi(mut self, xi: f64) -> Self {
        self.xi = xi;
        self
    }

    /// Validates and builds the query.
    pub fn build(self) -> Result<Query, QueryError> {
        let q = Query::Apsp { variant: self.variant, xi: self.xi };
        q.validate()?;
        Ok(q)
    }
}

/// Builder for [`Query::Sssp`].
#[derive(Debug, Clone)]
pub struct SsspQueryBuilder {
    variant: SsspVariant,
    source: NodeId,
    xi: f64,
}

impl SsspQueryBuilder {
    /// Selects the SSSP algorithm (default [`SsspVariant::Thm13`]).
    pub fn variant(mut self, variant: SsspVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Sets the skeleton radius constant `ξ` (must be positive and finite).
    pub fn xi(mut self, xi: f64) -> Self {
        self.xi = xi;
        self
    }

    /// Validates and builds the query.
    pub fn build(self) -> Result<Query, QueryError> {
        let q = Query::Sssp { variant: self.variant, source: self.source, xi: self.xi };
        q.validate()?;
        Ok(q)
    }
}

/// Builder for [`Query::Kssp`].
#[derive(Debug, Clone)]
pub struct KsspQueryBuilder {
    cor: KsspCorollary,
    sources: Option<SourceSet>,
    eps: f64,
    xi: f64,
}

impl KsspQueryBuilder {
    /// Sets explicit sources.
    pub fn sources(mut self, sources: Vec<NodeId>) -> Self {
        self.sources = Some(SourceSet::Nodes(sources));
        self
    }

    /// Uses `k` seed-derived pseudo-random sources (see
    /// [`SourceSet::Random`]).
    pub fn random_sources(mut self, k: usize) -> Self {
        self.sources = Some(SourceSet::Random { k });
        self
    }

    /// Sets the approximation parameter `ε ∈ (0, 1)`.
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sets the skeleton radius constant `ξ` (must be positive and finite).
    pub fn xi(mut self, xi: f64) -> Self {
        self.xi = xi;
        self
    }

    /// Validates and builds the query.
    pub fn build(self) -> Result<Query, QueryError> {
        let sources = self.sources.ok_or(QueryError::NoSources)?;
        let q = Query::Kssp { cor: self.cor, sources, eps: self.eps, xi: self.xi };
        q.validate()?;
        Ok(q)
    }
}

/// Builder for [`Query::Diameter`].
#[derive(Debug, Clone)]
pub struct DiameterQueryBuilder {
    cor: DiameterCorollary,
    eps: f64,
    xi: f64,
}

impl DiameterQueryBuilder {
    /// Sets the approximation parameter `ε ∈ (0, 1)`.
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sets the skeleton radius constant `ξ` (must be positive and finite).
    pub fn xi(mut self, xi: f64) -> Self {
        self.xi = xi;
        self
    }

    /// Validates and builds the query.
    pub fn build(self) -> Result<Query, QueryError> {
        let q = Query::Diameter { cor: self.cor, eps: self.eps, xi: self.xi };
        q.validate()?;
        Ok(q)
    }
}

/// The typed payload of a [`Report`].
#[derive(Debug, Clone)]
pub enum Answer {
    /// A full distance matrix (APSP queries).
    Distances(DistanceMatrix),
    /// One distance vector (SSSP queries).
    DistanceRow {
        /// The source.
        source: NodeId,
        /// `dist[v]`: the (estimated) distance from the source to `v`.
        dist: Vec<Distance>,
    },
    /// Per-source estimate rows (k-SSP queries).
    DistanceRows {
        /// The resolved sources, in row order.
        sources: Vec<NodeId>,
        /// `est[s_idx][v]`: the estimate `d̃(v, sources[s_idx])`.
        est: Vec<Vec<Distance>>,
    },
    /// A diameter estimate.
    Diameter {
        /// The estimate `D̃ ≥ D`.
        estimate: Distance,
        /// Whether the small-diameter exact path (`D̃ = ĥ`) was taken.
        exact_local: bool,
    },
}

/// Why a run's guarantee was downgraded (see [`Guarantee::Degraded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeCause {
    /// The reliable layer detected crashed nodes (global messages were
    /// suppressed), so the requested protocol's answer could silently miss
    /// their contributions.
    CrashDetected,
    /// The requested protocol aborted with a structured error while a fault
    /// plan was installed.
    ProtocolFault,
}

impl DegradeCause {
    /// Stable machine-readable label (no spaces) used on the wire
    /// (`guarantee=degraded=<from>:<to>:<this>`).
    pub fn label(&self) -> &'static str {
        match self {
            DegradeCause::CrashDetected => "crash-detected",
            DegradeCause::ProtocolFault => "protocol-fault",
        }
    }
}

impl fmt::Display for DegradeCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradeCause::CrashDetected => write!(f, "crash detected"),
            DegradeCause::ProtocolFault => write!(f, "protocol fault"),
        }
    }
}

/// The paper-level contract a [`Report`]'s answer carries — what a
/// verification layer may assume without re-deriving per-algorithm math.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Guarantee {
    /// Distances are exact (Theorems 1.1, 1.3; the LOCAL baselines).
    Exact,
    /// Distance estimates never underestimate and the worst ratio against
    /// truth is at most `factor` (Theorem 4.1, evaluated at this run's actual
    /// exploration radius and edge-weight regime).
    Stretch {
        /// The guaranteed approximation factor.
        factor: f64,
    },
    /// The diameter estimate lies in `[D, factor · D]` (Theorem 5.1;
    /// `factor = 1` when the local horizon covered the diameter exactly).
    DiameterFactor {
        /// The guaranteed approximation factor.
        factor: f64,
    },
    /// The requested algorithm could not be trusted under the installed fault
    /// plan (a crash was detected, or the protocol aborted), so the solver
    /// fell back to a LOCAL-mode algorithm — which needs no global channel
    /// and therefore answers *exactly* on the full local graph. The downgrade
    /// is recorded here explicitly; an answer is never changed silently.
    Degraded {
        /// Canonical label of the requested algorithm.
        from: &'static str,
        /// Canonical label of the fallback that produced the answer.
        to: &'static str,
        /// Why the downgrade happened.
        cause: DegradeCause,
    },
}

impl Guarantee {
    /// `true` for [`Guarantee::Exact`] (and factor-1 approximations).
    /// [`Guarantee::Degraded`] answers are exact too, but report `false`
    /// here: they carry a distinct contract the caller must acknowledge.
    pub fn is_exact(&self) -> bool {
        match self {
            Guarantee::Exact => true,
            Guarantee::Stretch { factor } | Guarantee::DiameterFactor { factor } => *factor <= 1.0,
            Guarantee::Degraded { .. } => false,
        }
    }

    /// The guaranteed worst-case ratio against ground truth (1 for exact;
    /// also 1 for [`Guarantee::Degraded`] — the LOCAL fallbacks are exact).
    pub fn factor(&self) -> f64 {
        match self {
            Guarantee::Exact => 1.0,
            Guarantee::Stretch { factor } | Guarantee::DiameterFactor { factor } => *factor,
            Guarantee::Degraded { .. } => 1.0,
        }
    }
}

/// The uniform outcome of [`solve`]: the typed answer, the contract it
/// carries, and the run's round/message accounting.
#[derive(Debug, Clone)]
pub struct Report {
    /// The query that produced this report.
    pub query: Query,
    /// The typed result payload.
    pub answer: Answer,
    /// The paper-level contract of the answer.
    pub guarantee: Guarantee,
    /// Total HYBRID rounds consumed by this solve (round-clock delta).
    pub rounds: u64,
    /// Global (NCC) messages delivered during this solve.
    pub global_messages: u64,
    /// Global messages removed by fault injection during this solve.
    pub dropped_messages: u64,
    /// Skeleton size `|V_S|` (0 when the algorithm builds no skeleton).
    pub skeleton_size: usize,
    /// Skeleton hop budget `h` (0 when the algorithm builds no skeleton).
    pub h: usize,
    /// Lemma C.1 fallback count (nodes that found no skeleton within `h`
    /// hops; 0 when not applicable).
    pub coverage_fallbacks: usize,
    /// Per-phase rounds/messages attributable to *this* solve (the delta of
    /// the net's phase metrics across the solve, phases in lexicographic
    /// order, zero-activity phases omitted) — callers attribute rounds
    /// without reaching into the sim. The phase rounds sum to
    /// [`Report::rounds`].
    pub phases: Vec<(String, PhaseStats)>,
}

impl Report {
    /// The canonical query label (see [`Query::label`]).
    pub fn label(&self) -> &'static str {
        self.query.label()
    }

    /// The distance matrix, for APSP reports.
    pub fn distances(&self) -> Option<&DistanceMatrix> {
        match &self.answer {
            Answer::Distances(m) => Some(m),
            _ => None,
        }
    }

    /// The `(source, distances)` row, for SSSP reports.
    pub fn distance_row(&self) -> Option<(NodeId, &[Distance])> {
        match &self.answer {
            Answer::DistanceRow { source, dist } => Some((*source, dist.as_slice())),
            _ => None,
        }
    }

    /// The `(sources, estimate rows)`, for k-SSP reports.
    pub fn distance_rows(&self) -> Option<(&[NodeId], &[Vec<Distance>])> {
        match &self.answer {
            Answer::DistanceRows { sources, est } => Some((sources.as_slice(), est.as_slice())),
            _ => None,
        }
    }

    /// The diameter estimate, for diameter reports.
    pub fn diameter_estimate(&self) -> Option<Distance> {
        match &self.answer {
            Answer::Diameter { estimate, .. } => Some(*estimate),
            _ => None,
        }
    }

    /// Measured worst-case ratio of the answer's estimate rows against exact
    /// rows (`exact[s_idx][v]`), ignoring unreachable and zero pairs. Only
    /// meaningful for [`Answer::DistanceRow`] / [`Answer::DistanceRows`].
    pub fn max_ratio_vs(&self, exact: &[Vec<Distance>]) -> f64 {
        let rows: Vec<&[Distance]> = match &self.answer {
            Answer::DistanceRow { dist, .. } => vec![dist.as_slice()],
            Answer::DistanceRows { est, .. } => est.iter().map(|r| r.as_slice()).collect(),
            _ => return 1.0,
        };
        let mut worst: f64 = 1.0;
        for (row, erow) in rows.iter().zip(exact) {
            for (&a, &e) in row.iter().zip(erow) {
                if e == 0 || e == INFINITY || a == INFINITY {
                    continue;
                }
                worst = worst.max(a as f64 / e as f64);
            }
        }
        worst
    }
}

/// Runs `query` on `net`, deterministically in `seed`, and returns the
/// uniform [`Report`].
///
/// This is the front door over every paper algorithm; the legacy free
/// functions it dispatches to are bit-for-bit unchanged, so
/// `solve(Query::…)` and the corresponding direct call produce identical
/// distances, rounds, and message counts (pinned by the equivalence suite in
/// `tests/solver_equivalence.rs`).
///
/// # Errors
///
/// * [`HybridError::Query`] if the query's parameters are invalid.
/// * Any simulator/protocol error of the underlying algorithm.
pub fn solve(net: &mut HybridNet<'_>, query: &Query, seed: u64) -> Result<Report, HybridError> {
    solve_inner(net, query, seed, Prep::Cold)
}

/// The dispatcher behind both [`solve`] (cold preprocessing) and
/// [`crate::session::Session::solve`] (preprocessing served from the
/// session's [`crate::session::Prepared`] artifact).
pub(crate) fn solve_inner(
    net: &mut HybridNet<'_>,
    query: &Query,
    seed: u64,
    prep: Prep<'_>,
) -> Result<Report, HybridError> {
    query.validate().map_err(HybridError::Query)?;
    let faulty = net.has_faults();
    if faulty {
        // A non-trivial fault plan routes every protocol phase through the
        // reliable ack/retransmission layer: lost messages are recovered
        // (paying extra rounds), crashed nodes are detected and declared
        // dead instead of silently starving the protocol.
        net.set_reliable(true);
    }
    let rounds_before = net.metrics().rounds;
    let messages_before = net.metrics().global_messages;
    let dropped_before = net.metrics().dropped_messages;
    let suppressed_before = net.metrics().suppressed_by_crash;
    let phases_before = net.metrics().phases.clone();
    if net.tracing() {
        net.trace_span_begin(&format!("solve:{}", query.label()));
    }
    let primary = run_query(net, query, seed, prep);
    // Crash impact: the reliable layer suppressed messages to/from crashed
    // nodes during this solve, so the primary answer may silently miss their
    // contributions — even if the protocol "completed".
    let crash_hit = faulty && net.metrics().suppressed_by_crash > suppressed_before;
    let mut report = match primary {
        Ok(report) if !crash_hit => report,
        Ok(_) => degraded_report(net, query, seed, DegradeCause::CrashDetected, rounds_before),
        Err(err) if !faulty => {
            if net.tracing() {
                net.trace_span_end(&format!("solve:{}", query.label()));
            }
            return Err(err);
        }
        Err(_) => {
            let cause =
                if crash_hit { DegradeCause::CrashDetected } else { DegradeCause::ProtocolFault };
            degraded_report(net, query, seed, cause, rounds_before)
        }
    };
    report.global_messages = net.metrics().global_messages - messages_before;
    report.dropped_messages = net.metrics().dropped_messages - dropped_before;
    report.phases = phase_delta(&phases_before, &net.metrics().phases);
    if net.tracing() {
        net.trace_span_end(&format!("solve:{}", query.label()));
    }
    Ok(report)
}

/// The per-phase rounds/messages attributable to one solve: the entry-wise
/// difference of the net's phase table across the solve, dropping phases
/// with no activity. `BTreeMap` iteration keeps the order deterministic.
fn phase_delta(
    before: &std::collections::BTreeMap<String, PhaseStats>,
    after: &std::collections::BTreeMap<String, PhaseStats>,
) -> Vec<(String, PhaseStats)> {
    let mut out = Vec::new();
    for (phase, stats) in after {
        let prior = before.get(phase).copied().unwrap_or_default();
        let delta = PhaseStats {
            rounds: stats.rounds - prior.rounds,
            messages: stats.messages - prior.messages,
        };
        if delta.rounds > 0 || delta.messages > 0 {
            out.push((phase.clone(), delta));
        }
    }
    out
}

/// The single dispatch from a [`Query`] to the underlying paper algorithm.
/// Message/drop accounting is filled in by [`solve_inner`] afterwards.
fn run_query(
    net: &mut HybridNet<'_>,
    query: &Query,
    seed: u64,
    prep: Prep<'_>,
) -> Result<Report, HybridError> {
    let report = match query {
        Query::Apsp { variant, xi } => {
            let out = match variant {
                ApspVariant::Thm11 => exact_apsp_prepared(net, ApspConfig { xi: *xi }, seed, prep)?,
                ApspVariant::Soda20 => {
                    exact_apsp_soda20_prepared(net, ApspConfig { xi: *xi }, seed, prep)?
                }
                ApspVariant::LocalFlood => apsp_local_only(net),
            };
            Report {
                query: query.clone(),
                answer: Answer::Distances(out.dist),
                guarantee: Guarantee::Exact,
                rounds: out.rounds,
                global_messages: 0,
                dropped_messages: 0,
                skeleton_size: out.skeleton_size,
                h: out.h,
                coverage_fallbacks: out.coverage_fallbacks,
                phases: Vec::new(),
            }
        }
        Query::Sssp { variant, source, xi } => {
            let cfg = SsspConfig { xi: *xi };
            let out = match variant {
                SsspVariant::Thm13 => exact_sssp_prepared(net, *source, cfg, seed, prep)?,
                SsspVariant::LocalBellmanFord => sssp_local_bellman_ford(net, *source),
                SsspVariant::ApproxSoda20 { eps } => {
                    approx_sssp_soda20_prepared(net, *source, *eps, cfg, seed, prep)?
                }
            };
            let guarantee = if out.guaranteed_factor > 1.0 {
                Guarantee::Stretch { factor: out.guaranteed_factor }
            } else {
                Guarantee::Exact
            };
            Report {
                query: query.clone(),
                answer: Answer::DistanceRow { source: out.source, dist: out.dist },
                guarantee,
                rounds: out.rounds,
                global_messages: 0,
                dropped_messages: 0,
                skeleton_size: out.skeleton_size,
                h: out.h,
                coverage_fallbacks: 0,
                phases: Vec::new(),
            }
        }
        Query::Kssp { cor, sources, eps, xi } => {
            let resolved = sources.resolve(net.n(), seed);
            let cfg = KsspConfig { xi: *xi };
            let out = match cor {
                KsspCorollary::Cor46 => kssp_cor46_prepared(net, &resolved, *eps, cfg, seed, prep)?,
                KsspCorollary::Cor47 => kssp_cor47_prepared(net, &resolved, *eps, cfg, seed, prep)?,
                KsspCorollary::Cor48 => kssp_cor48_prepared(net, &resolved, *eps, cfg, seed, prep)?,
            };
            let unweighted = net.graph().max_weight() == 1;
            let factor = out.guaranteed_factor(unweighted);
            Report {
                query: query.clone(),
                answer: Answer::DistanceRows { sources: out.sources, est: out.est },
                guarantee: Guarantee::Stretch { factor },
                rounds: out.rounds,
                global_messages: 0,
                dropped_messages: 0,
                skeleton_size: out.skeleton_size,
                h: out.h,
                coverage_fallbacks: out.coverage_fallbacks,
                phases: Vec::new(),
            }
        }
        Query::Diameter { cor, eps, xi } => {
            let cfg = DiameterConfig { xi: *xi };
            let out = match cor {
                DiameterCorollary::Cor52 => diameter_cor52_prepared(net, *eps, cfg, seed, prep)?,
                DiameterCorollary::Cor53 => diameter_cor53_prepared(net, *eps, cfg, seed, prep)?,
            };
            let factor = out.guaranteed_factor();
            Report {
                query: query.clone(),
                answer: Answer::Diameter { estimate: out.estimate, exact_local: out.exact_local },
                guarantee: Guarantee::DiameterFactor { factor },
                rounds: out.rounds,
                global_messages: 0,
                dropped_messages: 0,
                skeleton_size: out.skeleton_size,
                h: out.h,
                coverage_fallbacks: 0,
                phases: Vec::new(),
            }
        }
    };
    Ok(report)
}

/// Runs the LOCAL-mode fallback for `query` on the (still faulty) net and
/// wraps the answer in a [`Guarantee::Degraded`] report.
///
/// LOCAL-mode algorithms use only the local edge channel, which the fault
/// plan never touches, so the fallback cannot fail and its distances are
/// exact on the full graph. `rounds` is the round-clock delta since the
/// solve started — the failed primary attempt (including every
/// retransmission wave) stays on the bill; recovery is charged, never
/// discounted.
fn degraded_report(
    net: &mut HybridNet<'_>,
    query: &Query,
    seed: u64,
    cause: DegradeCause,
    rounds_before: u64,
) -> Report {
    let from = query.label();
    let (answer, to, skeleton_size, h, coverage_fallbacks) = match query {
        Query::Apsp { .. } => {
            let out = apsp_local_only(net);
            (
                Answer::Distances(out.dist),
                "apsp-local-flood",
                out.skeleton_size,
                out.h,
                out.coverage_fallbacks,
            )
        }
        Query::Sssp { source, .. } => {
            let out = sssp_local_bellman_ford(net, *source);
            (
                Answer::DistanceRow { source: out.source, dist: out.dist },
                "sssp-local-bf",
                out.skeleton_size,
                out.h,
                0,
            )
        }
        Query::Kssp { sources, .. } => {
            let resolved = sources.resolve(net.n(), seed);
            let out = apsp_local_only(net);
            let est: Vec<Vec<Distance>> = resolved
                .iter()
                .map(|&s| net.graph().nodes().map(|v| out.dist.get(s, v)).collect())
                .collect();
            (
                Answer::DistanceRows { sources: resolved, est },
                "apsp-local-flood",
                out.skeleton_size,
                out.h,
                out.coverage_fallbacks,
            )
        }
        Query::Diameter { .. } => {
            let out = apsp_local_only(net);
            let mut estimate: Distance = 0;
            for u in net.graph().nodes() {
                for v in net.graph().nodes() {
                    let d = out.dist.get(u, v);
                    if d != INFINITY {
                        estimate = estimate.max(d);
                    }
                }
            }
            (
                Answer::Diameter { estimate, exact_local: true },
                "apsp-local-flood",
                out.skeleton_size,
                out.h,
                out.coverage_fallbacks,
            )
        }
    };
    Report {
        query: query.clone(),
        answer,
        guarantee: Guarantee::Degraded { from, to, cause },
        rounds: net.metrics().rounds - rounds_before,
        global_messages: 0,
        dropped_messages: 0,
        skeleton_size,
        h,
        coverage_fallbacks,
        phases: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators::{erdos_renyi_connected, grid};
    use hybrid_sim::HybridConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builders_validate_parameters() {
        assert!(Query::apsp().xi(1.5).build().is_ok());
        assert!(matches!(Query::apsp().xi(0.0).build(), Err(QueryError::NonPositiveXi { .. })));
        assert!(matches!(
            Query::apsp().xi(f64::NAN).build(),
            Err(QueryError::NonPositiveXi { .. })
        ));
        assert!(matches!(
            Query::sssp(NodeId::new(0)).xi(-1.0).build(),
            Err(QueryError::NonPositiveXi { .. })
        ));
        assert!(matches!(
            Query::kssp(KsspCorollary::Cor47).random_sources(4).eps(1.0).build(),
            Err(QueryError::EpsOutOfRange { .. })
        ));
        assert!(matches!(
            Query::kssp(KsspCorollary::Cor47).eps(0.5).build(),
            Err(QueryError::NoSources)
        ));
        assert!(matches!(
            Query::kssp(KsspCorollary::Cor46).random_sources(0).build(),
            Err(QueryError::NoSources)
        ));
        assert!(matches!(
            Query::diameter(DiameterCorollary::Cor52).eps(0.0).build(),
            Err(QueryError::EpsOutOfRange { .. })
        ));
        // The LOCAL baselines ignore ξ, so any value passes.
        assert!(Query::apsp().variant(ApspVariant::LocalFlood).xi(-3.0).build().is_ok());
        assert!(Query::sssp(NodeId::new(1))
            .variant(SsspVariant::LocalBellmanFord)
            .xi(0.0)
            .build()
            .is_ok());
    }

    #[test]
    fn corollary_numbers_round_trip_and_reject_unknowns() {
        for n in [46u8, 47, 48] {
            assert_eq!(KsspCorollary::try_from(n).unwrap().number(), n);
        }
        for n in [52u8, 53] {
            assert_eq!(DiameterCorollary::try_from(n).unwrap().number(), n);
        }
        assert_eq!(KsspCorollary::try_from(49), Err(QueryError::UnknownKsspCorollary { cor: 49 }));
        assert_eq!(
            DiameterCorollary::try_from(54),
            Err(QueryError::UnknownDiameterCorollary { cor: 54 })
        );
    }

    #[test]
    fn labels_are_canonical() {
        assert_eq!(Query::apsp().build().unwrap().label(), "apsp-thm11");
        assert_eq!(
            Query::apsp().variant(ApspVariant::Soda20).build().unwrap().label(),
            "apsp-soda20"
        );
        assert_eq!(Query::sssp(NodeId::new(0)).build().unwrap().label(), "sssp-thm13");
        assert_eq!(
            Query::kssp(KsspCorollary::Cor48).random_sources(2).build().unwrap().label(),
            "kssp-cor48"
        );
        assert_eq!(
            Query::diameter(DiameterCorollary::Cor53).build().unwrap().label(),
            "diameter-cor53"
        );
    }

    #[test]
    fn solve_rejects_hand_built_invalid_queries_with_structured_error() {
        let g = grid(4, 4, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let bad = Query::Apsp { variant: ApspVariant::Thm11, xi: -1.0 };
        let err = solve(&mut net, &bad, 1).unwrap_err();
        assert!(matches!(err, HybridError::Query(QueryError::NonPositiveXi { .. })), "{err:?}");
        assert_eq!(net.rounds(), 0, "validation must reject before any protocol phase");
    }

    #[test]
    fn solve_apsp_is_exact_and_accounts_messages() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_connected(60, 0.1, 4, &mut rng).unwrap();
        let exact = hybrid_graph::apsp::apsp(&g);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let report = solve(&mut net, &Query::apsp().build().unwrap(), 11).unwrap();
        assert_eq!(report.guarantee, Guarantee::Exact);
        let m = report.distances().expect("matrix answer");
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(m.get(u, v), exact.get(u, v));
            }
        }
        assert_eq!(report.global_messages, net.metrics().global_messages);
        assert_eq!(report.dropped_messages, 0);
        assert!(report.skeleton_size > 0 && report.h > 0);
    }

    #[test]
    fn solve_recovers_from_drops_with_an_exact_answer() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = erdos_renyi_connected(40, 0.15, 4, &mut rng).unwrap();
        let exact = hybrid_graph::apsp::apsp(&g);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        net.inject_faults(&hybrid_sim::FaultPlan::drops(0.25, 99)).unwrap();
        let report = solve(&mut net, &Query::apsp().build().unwrap(), 11).unwrap();
        // Reliable delivery recovers every lost message: the answer is the
        // healthy answer and the guarantee is undowngraded …
        assert_eq!(report.guarantee, Guarantee::Exact);
        let m = report.distances().expect("matrix answer");
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(m.get(u, v), exact.get(u, v));
            }
        }
        // … but the recovery work is visible and charged.
        assert!(report.dropped_messages > 0, "the lossy plan fired");
        assert!(net.metrics().retransmissions > 0, "losses were retransmitted");
        assert!(net.metrics().recovered_messages > 0);
        assert_eq!(net.metrics().declared_dead, 0, "nobody crashed");
    }

    #[test]
    fn solve_degrades_explicitly_on_detected_crashes() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = erdos_renyi_connected(40, 0.15, 4, &mut rng).unwrap();
        let exact = hybrid_graph::apsp::apsp(&g);
        let plan = hybrid_sim::FaultPlan::node_crashes(vec![hybrid_sim::Crash {
            node: NodeId::new(7),
            at_round: 0,
        }]);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        net.inject_faults(&plan).unwrap();
        let report = solve(&mut net, &Query::apsp().build().unwrap(), 11).unwrap();
        match report.guarantee {
            Guarantee::Degraded { from, to, cause } => {
                assert_eq!(from, "apsp-thm11");
                assert_eq!(to, "apsp-local-flood");
                assert_eq!(cause, DegradeCause::CrashDetected);
            }
            other => panic!("expected an explicit downgrade, got {other:?}"),
        }
        assert!(!report.guarantee.is_exact(), "Degraded is a distinct contract");
        assert_eq!(report.guarantee.factor(), 1.0, "the LOCAL fallback is exact");
        // The fallback runs on the untouched local channel: exact distances.
        let m = report.distances().expect("matrix answer");
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(m.get(u, v), exact.get(u, v));
            }
        }
        assert!(report.dropped_messages > 0, "crash suppressions are accounted");
        assert!(report.rounds > 0, "the failed attempt plus fallback stay on the bill");
    }

    #[test]
    fn degraded_diameter_and_kssp_fall_back_to_local_matrices() {
        let g = grid(6, 6, 2).unwrap();
        let exact = hybrid_graph::apsp::apsp(&g);
        let truth = (0..g.len())
            .flat_map(|u| (0..g.len()).map(move |v| (u, v)))
            .map(|(u, v)| exact.get(NodeId::new(u), NodeId::new(v)))
            .filter(|&d| d != INFINITY)
            .max()
            .unwrap();
        let plan = hybrid_sim::FaultPlan::node_crashes(vec![hybrid_sim::Crash {
            node: NodeId::new(5),
            at_round: 0,
        }]);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        net.inject_faults(&plan).unwrap();
        let q = Query::diameter(DiameterCorollary::Cor52).build().unwrap();
        let report = solve(&mut net, &q, 9).unwrap();
        assert!(matches!(report.guarantee, Guarantee::Degraded { .. }), "{:?}", report.guarantee);
        assert_eq!(report.diameter_estimate(), Some(truth));

        let mut net = HybridNet::new(&g, HybridConfig::default());
        net.inject_faults(&plan).unwrap();
        let q = Query::kssp(KsspCorollary::Cor46)
            .sources(vec![NodeId::new(0), NodeId::new(8)])
            .build()
            .unwrap();
        let report = solve(&mut net, &q, 9).unwrap();
        assert!(matches!(report.guarantee, Guarantee::Degraded { .. }), "{:?}", report.guarantee);
        let (sources, est) = report.distance_rows().expect("rows answer");
        assert_eq!(sources, &[NodeId::new(0), NodeId::new(8)]);
        for (s, row) in sources.iter().zip(est) {
            for (v, &d) in row.iter().enumerate() {
                assert_eq!(d, exact.get(*s, NodeId::new(v)));
            }
        }
    }

    #[test]
    fn errors_without_faults_still_propagate() {
        // A hand-built invalid query fails validation even on a faulty net —
        // degradation only applies to *protocol* failures under faults.
        let g = grid(4, 4, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        net.inject_faults(&hybrid_sim::FaultPlan::drops(0.1, 3)).unwrap();
        let bad = Query::Apsp { variant: ApspVariant::Thm11, xi: -1.0 };
        assert!(solve(&mut net, &bad, 1).is_err());
    }

    #[test]
    fn solve_sssp_variants_agree_with_ground_truth() {
        let g = grid(7, 7, 2).unwrap();
        let source = NodeId::new(3);
        let truth = hybrid_graph::dijkstra::dijkstra(&g, source);
        for variant in [SsspVariant::Thm13, SsspVariant::LocalBellmanFord] {
            let mut net = HybridNet::new(&g, HybridConfig::default());
            let q = Query::sssp(source).variant(variant).build().unwrap();
            let report = solve(&mut net, &q, 5).unwrap();
            let (s, dist) = report.distance_row().expect("row answer");
            assert_eq!(s, source);
            assert_eq!(dist, truth.as_slice());
            assert_eq!(report.guarantee, Guarantee::Exact);
        }
    }

    #[test]
    fn solve_kssp_random_sources_resolve_deterministically() {
        let g = grid(8, 8, 1).unwrap();
        let q = Query::kssp(KsspCorollary::Cor47).random_sources(5).eps(0.5).build().unwrap();
        let mut n1 = HybridNet::new(&g, HybridConfig::default());
        let a = solve(&mut n1, &q, 9).unwrap();
        let mut n2 = HybridNet::new(&g, HybridConfig::default());
        let b = solve(&mut n2, &q, 9).unwrap();
        let (sa, ea) = a.distance_rows().unwrap();
        let (sb, eb) = b.distance_rows().unwrap();
        assert_eq!(sa, sb);
        assert_eq!(ea, eb);
        assert_eq!(sa, random_sources(64, 5, 9).as_slice());
        assert!(matches!(a.guarantee, Guarantee::Stretch { factor } if factor >= 1.0));
    }

    #[test]
    fn solve_diameter_carries_thm51_guarantee() {
        let g = hybrid_graph::generators::cycle(120, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let q = Query::diameter(DiameterCorollary::Cor52).xi(1.2).build().unwrap();
        let report = solve(&mut net, &q, 5).unwrap();
        let d = hybrid_graph::bfs::unweighted_diameter(&g);
        let est = report.diameter_estimate().expect("diameter answer");
        assert!(est >= d);
        assert!(est as f64 <= report.guarantee.factor() * d as f64 + 1e-9);
    }

    #[test]
    fn report_phases_sum_to_rounds_and_exclude_prior_runs() {
        let g = grid(6, 6, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let q = Query::apsp().build().unwrap();
        let report = solve(&mut net, &q, 7).unwrap();
        assert!(!report.phases.is_empty());
        let sum: u64 = report.phases.iter().map(|(_, s)| s.rounds).sum();
        assert_eq!(sum, report.rounds, "phase rounds attribute the full bill");
        // A second solve on the same net must only see its own delta.
        let report2 = solve(&mut net, &q, 7).unwrap();
        let sum2: u64 = report2.phases.iter().map(|(_, s)| s.rounds).sum();
        assert_eq!(sum2, report2.rounds);
        assert!(report2.phases.windows(2).all(|w| w[0].0 < w[1].0), "lexicographic order");
    }

    #[test]
    fn traced_solve_reconciles_and_wraps_a_span() {
        let g = grid(6, 6, 1).unwrap();
        let q = Query::apsp().build().unwrap();
        let mut plain = HybridNet::new(&g, HybridConfig::default());
        let baseline = solve(&mut plain, &q, 7).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        net.set_trace(hybrid_sim::Recorder::new());
        let report = solve(&mut net, &q, 7).unwrap();
        // Tracing never changes the answer or the bill.
        assert_eq!(report.rounds, baseline.rounds);
        assert_eq!(report.global_messages, baseline.global_messages);
        let rec = net.take_trace().unwrap();
        rec.reconcile(net.metrics()).expect("trace totals match metrics");
        let events = rec.events();
        assert!(matches!(
            &events[0],
            hybrid_sim::TraceEvent::SpanBegin { name, .. } if name == "solve:apsp-thm11"
        ));
        assert!(matches!(
            events.last().unwrap(),
            hybrid_sim::TraceEvent::SpanEnd { name, .. } if name == "solve:apsp-thm11"
        ));
    }

    #[test]
    fn random_sources_are_distinct_sorted_deterministic() {
        let a = random_sources(50, 10, 3);
        assert_eq!(a, random_sources(50, 10, 3));
        assert_eq!(a.len(), 10);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(random_sources(5, 99, 1).len(), 5, "k clamps to n");
    }
}
