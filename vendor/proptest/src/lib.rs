//! Offline stub of the `proptest` API surface used by `tests/property_based.rs`.
//!
//! Supports the subset this workspace consumes: the [`proptest!`] macro with a
//! `#![proptest_config(..)]` header, range and tuple strategies, `prop_map`,
//! [`any`], and the `prop_assert*` macros. Cases are generated from a
//! deterministic per-case seed; there is **no shrinking** — a failing case
//! reports its case index so it can be replayed by reading the seed from the
//! panic message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Re-exports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Test-runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Per-case value source handed to strategies.
#[derive(Debug)]
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Creates the runner for one case. The seed mixes a fixed constant with
    /// the case index so cases differ but runs are reproducible.
    pub fn for_case(case: u64) -> Self {
        TestRunner { rng: StdRng::seed_from_u64(0x5eed_0000_0000_0000 ^ case) }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A value generator (the stub keeps proptest's name and `prop_map` combinator,
/// minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical arbitrary-value strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize);

/// Strategy over all values of `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// Property assertion (stub: plain `assert!` — panics carry the case index via
/// the harness message).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` test-block macro (config header + `arg in strategy`
/// parameter lists). Each property becomes a `#[test]` looping over the
/// configured number of generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut runner = $crate::TestRunner::for_case(case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut runner);)*
                    let run = move || -> () { $body };
                    run();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 1u64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn mapped_strategy_applies(e in evens(), b in any::<bool>()) {
            prop_assert_eq!(e % 2, 0);
            let _ = b;
        }
    }
}
