//! Token dissemination (Lemma B.1 — Theorem 2.1 of Augustine et al. \[3\]):
//! broadcast `k` tokens, held by arbitrary owners with at most `ℓ` per node, to
//! *every* node in `Õ(√k + ℓ)` rounds.
//!
//! Concrete protocol (DESIGN.md §3, substitution 3):
//!
//! 1. Tokens are split into `c = ⌈√k⌉` **color classes**; nodes are colored by a
//!    random permutation (`⌊n/c⌋` or more nodes per color).
//! 2. **Intake**: each owner ships each token to a random member of the token's
//!    color class over the global network (paced to the send cap; `Õ(ℓ + k/n)`
//!    rounds).
//! 3. **Tree phase**: the members of each color class form a binary broadcast
//!    tree (by ID rank). Tokens are pipelined up to the root and back down, so
//!    every member of class `c` learns all `≈ k/c = √k` tokens of its color
//!    (`Õ(√k)` rounds; per-node load per round stays `O(log n)`).
//! 4. **Local spread**: every ball of radius `R ∈ Õ(√k)` contains a member of
//!    every color w.h.p., so `R` rounds of LOCAL flooding teach every node all
//!    `k` tokens. The simulator computes the *exact* radius needed (adaptive,
//!    honest) rather than trusting the w.h.p. bound.

use hybrid_graph::bfs::multi_source_bfs;
use hybrid_graph::{NodeId, INFINITY};
use hybrid_sim::{derive_seed, par, Envelope, FlatInboxes, HybridNet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::HybridError;

/// Outcome of a dissemination run. The semantic postcondition is *every node
/// knows every token*; callers keep using their own token list as the global
/// knowledge, and this report carries the cost breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisseminationReport {
    /// Number of tokens broadcast.
    pub k: usize,
    /// Number of color classes used (`⌈√k⌉`, clamped to `n`).
    pub colors: usize,
    /// The local flooding radius that completed the broadcast.
    pub local_radius: u64,
    /// Rounds consumed by this dissemination (all phases).
    pub rounds: u64,
}

/// Disseminates `tokens` (given as `(owner, opaque token id)` pairs — payload
/// content is irrelevant to routing and stays with the caller) to all nodes.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn disseminate(
    net: &mut HybridNet<'_>,
    owners: &[NodeId],
    seed: u64,
    phase: &str,
) -> Result<DisseminationReport, HybridError> {
    let start_rounds = net.rounds();
    let n = net.n();
    let k = owners.len();
    if k == 0 || n == 1 {
        return Ok(DisseminationReport { k, colors: 0, local_radius: 0, rounds: 0 });
    }
    let c = ((k as f64).sqrt().ceil() as usize).clamp(1, n);
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0xD155));

    // Random-permutation coloring: every color class is non-empty.
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    let color_of_node: Vec<usize> = perm.iter().map(|&p| p % c).collect();
    let mut class_members: Vec<Vec<NodeId>> = vec![Vec::new(); c];
    for v in 0..n {
        class_members[color_of_node[v]].push(NodeId::new(v));
    }
    for members in &mut class_members {
        members.sort_unstable();
    }

    // Token colors and entry nodes.
    let color_of_token = |j: usize| j % c;
    let entries: Vec<NodeId> = (0..k)
        .map(|j| *class_members[color_of_token(j)].choose(&mut rng).expect("non-empty class"))
        .collect();

    // Intake: owner → entry node, paced.
    let mut queues: Vec<Vec<Envelope<u32>>> = (0..n).map(|_| Vec::new()).collect();
    for (j, &owner) in owners.iter().enumerate() {
        if owner != entries[j] {
            queues[owner.index()].push(Envelope::new(owner, entries[j], j as u32));
        }
    }
    let inboxes = net.drain_queues(&format!("{phase}:intake"), queues)?;
    let mut holding: Vec<Vec<u32>> = (0..n).map(|_| Vec::new()).collect();
    for (j, &owner) in owners.iter().enumerate() {
        if owner == entries[j] {
            holding[owner.index()].push(j as u32);
        }
    }
    for (v, msgs) in inboxes.into_iter().enumerate() {
        for (_, j) in msgs {
            holding[v].push(j);
        }
    }

    // Rank of each node within its class (position in the class binary tree).
    let mut rank = vec![0usize; n];
    for members in &class_members {
        for (i, &v) in members.iter().enumerate() {
            rank[v.index()] = i;
        }
    }
    let cap = net.send_cap();

    // Up phase: pipeline tokens to class roots. One reusable outbox, one
    // flat-inbox arena, and one set of pre-split shard buffers serve every
    // round — the per-round loop is allocation-free in steady state, and the
    // per-node outbox construction runs sharded across the round-engine
    // worker budget (every node acts simultaneously; shard order reproduces
    // the sequential `v = 0..n` outbox exactly).
    let threads = net.round_threads();
    let mut up: Vec<Vec<u32>> = holding;
    let mut at_root: Vec<Vec<u32>> = vec![Vec::new(); c];
    // Roots keep their own tokens immediately.
    for v in 0..n {
        if rank[v] == 0 {
            at_root[color_of_node[v]].append(&mut up[v]);
        }
    }
    let up_phase = format!("{phase}:tree-up");
    let mut outbox: Vec<Envelope<u32>> = Vec::new();
    let mut flat: FlatInboxes<u32> = FlatInboxes::new();
    let mut shard_bufs: Vec<Vec<Envelope<u32>>> = Vec::new();
    loop {
        outbox.clear();
        par::extend_sharded(threads, &mut up, &mut outbox, &mut shard_bufs, |start, shard, buf| {
            for (i, q) in shard.iter_mut().enumerate() {
                if q.is_empty() {
                    continue;
                }
                let v = start + i;
                let parent_rank = (rank[v] - 1) / 2;
                let parent = class_members[color_of_node[v]][parent_rank];
                let take = cap.min(q.len());
                for j in q.drain(..take) {
                    buf.push(Envelope::new(NodeId::new(v), parent, j));
                }
            }
        });
        if outbox.is_empty() {
            break;
        }
        net.exchange_into(&up_phase, &mut outbox, &mut flat)?;
        flat.drain_into(|v, (_, j)| {
            if rank[v] == 0 {
                at_root[color_of_node[v]].push(j);
            } else {
                up[v].push(j);
            }
        });
    }

    // Down phase: roots pipeline all class tokens to both children; every
    // internal node forwards.
    let mut down: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut known: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (col, mut t) in at_root.into_iter().enumerate() {
        let root = class_members[col][0];
        t.sort_unstable();
        t.dedup();
        known[root.index()] = t.clone();
        down[root.index()] = t;
    }
    let per_child = (cap / 2).max(1);
    let down_phase = format!("{phase}:tree-down");
    loop {
        outbox.clear();
        par::extend_sharded(
            threads,
            &mut down,
            &mut outbox,
            &mut shard_bufs,
            |start, shard, buf| {
                for (i, q) in shard.iter_mut().enumerate() {
                    if q.is_empty() {
                        continue;
                    }
                    let v = start + i;
                    let members = &class_members[color_of_node[v]];
                    let kid_a = 2 * rank[v] + 1;
                    let kid_b = 2 * rank[v] + 2;
                    if kid_a >= members.len() {
                        q.clear();
                        continue;
                    }
                    let take = per_child.min(q.len());
                    for j in q.drain(..take) {
                        buf.push(Envelope::new(NodeId::new(v), members[kid_a], j));
                        if kid_b < members.len() {
                            buf.push(Envelope::new(NodeId::new(v), members[kid_b], j));
                        }
                    }
                }
            },
        );
        if outbox.is_empty() {
            break;
        }
        net.exchange_into(&down_phase, &mut outbox, &mut flat)?;
        flat.drain_into(|v, (_, j)| {
            known[v].push(j);
            down[v].push(j);
        });
    }

    // Local spread: smallest radius R such that every node has every color
    // within R hops (computed exactly; Õ(√k) w.h.p.).
    let g = net.graph();
    let mut radius = 0u64;
    for members in &class_members {
        let reach = multi_source_bfs(g, members);
        for &(_, d) in &reach {
            if d == INFINITY {
                return Err(HybridError::InvariantViolation(
                    "dissemination requires a connected graph".into(),
                ));
            }
            radius = radius.max(d);
        }
    }
    net.charge_local(radius, &format!("{phase}:local-spread"));

    Ok(DisseminationReport {
        k,
        colors: c,
        local_radius: radius,
        rounds: net.rounds() - start_rounds,
    })
}

/// Correctness oracle for tests: recomputes which tokens each class root
/// gathered and checks the tree phase made all class members whole. (The
/// simulator's `disseminate` already enforces this internally through the
/// exchange mechanics; this is an external re-derivation used by the test
/// suite.)
#[cfg(test)]
fn class_coverage_radius(g: &hybrid_graph::Graph, members: &[NodeId]) -> u64 {
    multi_source_bfs(g, members).iter().map(|&(_, d)| d).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators::{erdos_renyi_connected, grid, path};
    use hybrid_sim::HybridConfig;
    use rand::Rng;

    fn owners_random(n: usize, k: usize, seed: u64) -> Vec<NodeId> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k).map(|_| NodeId::new(rng.gen_range(0..n))).collect()
    }

    #[test]
    fn small_instance_completes() {
        let g = path(40, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let owners = owners_random(40, 25, 1);
        let rep = disseminate(&mut net, &owners, 7, "diss").unwrap();
        assert_eq!(rep.k, 25);
        assert_eq!(rep.colors, 5);
        assert_eq!(rep.rounds, net.rounds());
        assert!(rep.rounds > 0);
    }

    #[test]
    fn scales_sublinearly_in_k() {
        // Õ(√k): quadrupling k should far less than quadruple the rounds.
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi_connected(200, 0.04, 1, &mut rng).unwrap();
        let r1 = {
            let mut net = HybridNet::new(&g, HybridConfig::default());
            disseminate(&mut net, &owners_random(200, 100, 3), 7, "d").unwrap().rounds
        };
        let r2 = {
            let mut net = HybridNet::new(&g, HybridConfig::default());
            disseminate(&mut net, &owners_random(200, 400, 3), 7, "d").unwrap().rounds
        };
        assert!((r2 as f64) < 3.0 * r1 as f64, "4x tokens should cost ≈2x rounds: {r1} -> {r2}");
    }

    #[test]
    fn empty_tokens_are_free() {
        let g = path(10, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let rep = disseminate(&mut net, &[], 1, "d").unwrap();
        assert_eq!(rep.rounds, 0);
        assert_eq!(net.rounds(), 0);
    }

    #[test]
    fn single_node_is_free() {
        let g = hybrid_graph::GraphBuilder::new(1).build().unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let rep = disseminate(&mut net, &[NodeId::new(0); 5], 1, "d").unwrap();
        assert_eq!(rep.rounds, 0);
    }

    #[test]
    fn skewed_owners_pay_ell() {
        // One node owns all k tokens: intake alone needs ≈ k / cap rounds (the
        // `ℓ` term of Lemma B.1).
        let g = path(64, 1).unwrap(); // cap = 6
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let owners = vec![NodeId::new(0); 60];
        let rep = disseminate(&mut net, &owners, 3, "d").unwrap();
        assert!(rep.rounds >= 10, "ℓ/cap = 10 intake rounds, got {}", rep.rounds);
    }

    #[test]
    fn local_radius_covers_all_colors() {
        let g = grid(10, 10, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let owners = owners_random(100, 49, 5);
        let rep = disseminate(&mut net, &owners, 11, "d").unwrap();
        // Re-derive the coloring and check the radius claim for at least the
        // trivial bound: radius ≤ diameter.
        assert!(rep.local_radius <= 18);
        let mut rng = StdRng::seed_from_u64(derive_seed(11, 0xD155));
        let mut perm: Vec<usize> = (0..100).collect();
        perm.shuffle(&mut rng);
        let c = rep.colors;
        let mut classes: Vec<Vec<NodeId>> = vec![Vec::new(); c];
        for v in 0..100 {
            classes[perm[v] % c].push(NodeId::new(v));
        }
        let derived = classes.iter().map(|m| class_coverage_radius(&g, m)).max().unwrap();
        assert_eq!(rep.local_radius, derived);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = path(50, 1).unwrap();
        let owners = owners_random(50, 30, 9);
        let mut n1 = HybridNet::new(&g, HybridConfig::default());
        let mut n2 = HybridNet::new(&g, HybridConfig::default());
        let r1 = disseminate(&mut n1, &owners, 5, "d").unwrap();
        let r2 = disseminate(&mut n2, &owners, 5, "d").unwrap();
        assert_eq!(r1, r2);
    }
}
