//! Reference all-pairs shortest paths, weighted diameter, and eccentricities.
//!
//! These sequential computations are the correctness oracle for the distributed
//! APSP / k-SSP / diameter algorithms (§3–§5 of the paper) and the "paper column"
//! in the experiment tables.

use crate::dijkstra::{dijkstra, par_dist_rows, par_map_dist_rows};
use crate::dist::{Distance, INFINITY};
use crate::graph::Graph;
use crate::ids::NodeId;

/// Dense all-pairs distance matrix.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<Distance>,
}

impl DistanceMatrix {
    /// Builds a matrix filled with [`INFINITY`] (diagonal zero).
    pub fn new(n: usize) -> Self {
        let mut dist = vec![INFINITY; n * n];
        for i in 0..n {
            dist[i * n + i] = 0;
        }
        DistanceMatrix { n, dist }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is over zero nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `d(u, v)`.
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> Distance {
        self.dist[u.index() * self.n + v.index()]
    }

    /// Sets `d(u, v)` (one direction only; callers maintain symmetry).
    #[inline]
    pub fn set(&mut self, u: NodeId, v: NodeId, d: Distance) {
        self.dist[u.index() * self.n + v.index()] = d;
    }

    /// Row of distances from `u`, indexed by node.
    pub fn row(&self, u: NodeId) -> &[Distance] {
        &self.dist[u.index() * self.n..(u.index() + 1) * self.n]
    }

    /// Mutable row of distances from `u`, indexed by node.
    pub fn row_mut(&mut self, u: NodeId) -> &mut [Distance] {
        &mut self.dist[u.index() * self.n..(u.index() + 1) * self.n]
    }

    /// The whole matrix as a flat row-major slice (`n * n` entries) — the
    /// direct-write target of the parallel multi-source Dijkstra drivers.
    pub fn as_flat_mut(&mut self) -> &mut [Distance] {
        &mut self.dist
    }

    /// The whole matrix as a flat row-major slice.
    pub fn as_flat(&self) -> &[Distance] {
        &self.dist
    }

    /// Largest finite entry (the weighted diameter if the graph is connected).
    pub fn max_finite(&self) -> Distance {
        self.dist.iter().copied().filter(|&d| d != INFINITY).max().unwrap_or(0)
    }

    /// Whether any entry is [`INFINITY`] (graph disconnected).
    pub fn has_unreachable_pair(&self) -> bool {
        self.dist.contains(&INFINITY)
    }

    /// Maximum relative error of `self` w.r.t. the exact matrix `exact`, i.e.
    /// `max over reachable pairs of self(u,v) / exact(u,v)` (treating `0/0` as 1).
    ///
    /// Used by the approximation experiments; assumes `self(u,v) ≥ exact(u,v)` as the
    /// paper's approximations never underestimate.
    pub fn max_ratio_vs(&self, exact: &DistanceMatrix) -> f64 {
        assert_eq!(self.n, exact.n, "matrices must have the same size");
        let mut worst: f64 = 1.0;
        for i in 0..self.n * self.n {
            let (a, e) = (self.dist[i], exact.dist[i]);
            if e == INFINITY || a == INFINITY {
                continue;
            }
            if e == 0 {
                continue;
            }
            worst = worst.max(a as f64 / e as f64);
        }
        worst
    }
}

/// Derives next-hop routing tables from a distance matrix — the application
/// the paper's introduction motivates ("learning the topology of the local
/// network … for efficient IP-routing"). `table[u][v]` is the neighbor of `u`
/// on a minimum-weight `u`–`v` path (ties towards the smaller neighbor ID),
/// `None` for `u == v` or unreachable pairs.
///
/// Works with any matrix whose entries satisfy the shortest-path recurrence —
/// in particular the output of the distributed APSP algorithms.
pub fn next_hop_table(g: &Graph, dist: &DistanceMatrix) -> Vec<Vec<Option<NodeId>>> {
    let n = g.len();
    let mut table = vec![vec![None; n]; n];
    for u in g.nodes() {
        for v in g.nodes() {
            if u == v || dist.get(u, v) == INFINITY {
                continue;
            }
            let mut best: Option<NodeId> = None;
            for (w, wt) in g.neighbors(u) {
                let via = dist.get(w, v).checked_add(wt).unwrap_or(INFINITY);
                if via == dist.get(u, v) && best.is_none_or(|b| w < b) {
                    best = Some(w);
                }
            }
            table[u.index()][v.index()] = best;
        }
    }
    table
}

/// Follows a next-hop table from `u` to `v`; returns the node sequence, or
/// `None` if the table does not lead there (diagnostic helper for routing
/// experiments).
pub fn follow_route(
    table: &[Vec<Option<NodeId>>],
    u: NodeId,
    v: NodeId,
    max_hops: usize,
) -> Option<Vec<NodeId>> {
    let mut path = vec![u];
    let mut cur = u;
    for _ in 0..max_hops {
        if cur == v {
            return Some(path);
        }
        cur = table[cur.index()][v.index()]?;
        path.push(cur);
    }
    (cur == v).then_some(path)
}

/// Exact APSP via `n` Dijkstra runs — parallelized across cores, rows written
/// directly into the flat matrix (see [`crate::dijkstra::par_dist_rows`]).
pub fn apsp(g: &Graph) -> DistanceMatrix {
    let mut m = DistanceMatrix::new(g.len());
    let sources: Vec<NodeId> = g.nodes().collect();
    par_dist_rows(g, &sources, m.as_flat_mut());
    m
}

/// Weighted eccentricity `e(v) = max_u d(v, u)`; [`INFINITY`] if `v` does not reach
/// every node.
pub fn eccentricity(g: &Graph, v: NodeId) -> Distance {
    let sp = dijkstra(g, v);
    let mut ecc = 0;
    for u in g.nodes() {
        let d = sp.dist(u);
        if d == INFINITY {
            return INFINITY;
        }
        ecc = ecc.max(d);
    }
    ecc
}

/// All weighted eccentricities, one parallel Dijkstra per node (no `n × n`
/// matrix is materialized): `out[v] = e(v)`, [`INFINITY`] where `v` does not
/// reach every node.
pub fn eccentricities(g: &Graph) -> Vec<Distance> {
    let sources: Vec<NodeId> = g.nodes().collect();
    par_map_dist_rows(g, &sources, |_, _, dist| {
        let mut ecc = 0;
        for &d in dist {
            if d == INFINITY {
                return INFINITY;
            }
            ecc = ecc.max(d);
        }
        ecc
    })
}

/// Weighted diameter `max_{u,v} d(u, v)`; [`INFINITY`] for disconnected graphs.
///
/// Note the paper defines `D(G)` over *hop* distances (see
/// [`crate::bfs::unweighted_diameter`]); the weighted diameter is what the weighted
/// lower bound of §7 (Lemma 7.1) argues about.
pub fn weighted_diameter(g: &Graph) -> Distance {
    eccentricities(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, path};
    use crate::graph::GraphBuilder;

    #[test]
    fn apsp_on_weighted_path() {
        let g = path(4, 3).unwrap();
        let m = apsp(&g);
        assert_eq!(m.get(NodeId::new(0), NodeId::new(3)), 9);
        assert_eq!(m.get(NodeId::new(3), NodeId::new(0)), 9);
        assert_eq!(m.get(NodeId::new(1), NodeId::new(1)), 0);
    }

    #[test]
    fn matrix_symmetry_on_cycle() {
        let g = cycle(9, 2).unwrap();
        let m = apsp(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(m.get(u, v), m.get(v, u));
            }
        }
    }

    #[test]
    fn diameter_matches_manual() {
        let g = cycle(6, 5).unwrap();
        assert_eq!(weighted_diameter(&g), 15); // 3 hops * weight 5
    }

    #[test]
    fn disconnected_diameter() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId::new(0), NodeId::new(1), 1).unwrap();
        b.add_edge(NodeId::new(2), NodeId::new(3), 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(weighted_diameter(&g), INFINITY);
        assert!(apsp(&g).has_unreachable_pair());
    }

    #[test]
    fn eccentricity_of_center() {
        let g = path(5, 1).unwrap();
        assert_eq!(eccentricity(&g, NodeId::new(2)), 2);
        assert_eq!(eccentricity(&g, NodeId::new(0)), 4);
    }

    #[test]
    fn ratio_vs_exact() {
        let g = path(3, 1).unwrap();
        let exact = apsp(&g);
        let mut approx = exact.clone();
        approx.set(NodeId::new(0), NodeId::new(2), 3); // exact 2, approx 3
        let r = approx.max_ratio_vs(&exact);
        assert!((r - 1.5).abs() < 1e-9);
    }

    #[test]
    fn eccentricities_match_per_node_computation() {
        let g = cycle(11, 3).unwrap();
        let all = eccentricities(&g);
        for v in g.nodes() {
            assert_eq!(all[v.index()], eccentricity(&g, v));
        }
        assert_eq!(weighted_diameter(&g), all.into_iter().max().unwrap());
    }

    #[test]
    fn next_hops_route_optimally() {
        let g = cycle(9, 2).unwrap();
        let m = apsp(&g);
        let table = next_hop_table(&g, &m);
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    assert!(table[u.index()][v.index()].is_none());
                    continue;
                }
                let route = follow_route(&table, u, v, g.len()).expect("route exists");
                // The followed route realizes the exact distance.
                let mut total = 0;
                for w in route.windows(2) {
                    total += g.edge_weight(w[0], w[1]).unwrap();
                }
                assert_eq!(total, m.get(u, v));
            }
        }
    }

    #[test]
    fn next_hops_handle_disconnection() {
        let mut b = crate::GraphBuilder::new(4);
        b.add_edge(NodeId::new(0), NodeId::new(1), 1).unwrap();
        b.add_edge(NodeId::new(2), NodeId::new(3), 1).unwrap();
        let g = b.build().unwrap();
        let table = next_hop_table(&g, &apsp(&g));
        assert_eq!(table[0][2], None);
        assert_eq!(table[0][1], Some(NodeId::new(1)));
        assert!(follow_route(&table, NodeId::new(0), NodeId::new(2), 4).is_none());
    }

    #[test]
    fn triangle_inequality_holds() {
        let g = cycle(7, 3).unwrap();
        let m = apsp(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                for c in g.nodes() {
                    assert!(m.get(a, c) <= m.get(a, b) + m.get(b, c));
                }
            }
        }
    }
}
