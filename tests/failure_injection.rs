//! Failure-injection tests: the simulator's congestion machinery, the
//! low-probability failure events of the randomized lemmas, and the overflow
//! policies under pressure.

use hybrid_shortest_paths::core::apsp::{exact_apsp, ApspConfig};
use hybrid_shortest_paths::core::diameter::diameter_cor52;
use hybrid_shortest_paths::core::ksssp::KsspConfig;
use hybrid_shortest_paths::core::skeleton_ops::compute_representatives;
use hybrid_shortest_paths::core::token_routing::{route_tokens, RoutingRates, Token};
use hybrid_shortest_paths::core::HybridError;
use hybrid_shortest_paths::graph::generators::{cycle, erdos_renyi_connected, path};
use hybrid_shortest_paths::graph::skeleton::Skeleton;
use hybrid_shortest_paths::graph::{NodeId, INFINITY};
use hybrid_shortest_paths::sim::{Envelope, HybridConfig, HybridNet, OverflowPolicy, SimError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A config with absurdly small caps to force congestion.
fn starved(overflow: OverflowPolicy) -> HybridConfig {
    HybridConfig { send_cap_factor: 0.01, recv_cap_factor: 0.01, overflow }
}

#[test]
fn strict_policy_surfaces_send_overflow_from_protocols() {
    // With send cap 1 and strict failure, token routing must abort with a
    // simulator error rather than silently mis-charge.
    let g = path(40, 1).unwrap();
    let mut net = HybridNet::new(&g, starved(OverflowPolicy::Fail));
    let tokens: Vec<Token<u8>> =
        (0..20).map(|i| Token::new(NodeId::new(0), NodeId::new(30), i, 0)).collect();
    let err = route_tokens(
        &mut net,
        tokens,
        &[NodeId::new(0)],
        &[NodeId::new(30)],
        RoutingRates::dense(),
        1,
        "tr",
    )
    .unwrap_err();
    assert!(
        matches!(err, HybridError::Sim(SimError::RecvCapExceeded { .. }))
            || matches!(err, HybridError::Sim(SimError::SendCapExceeded { .. })),
        "got {err:?}"
    );
}

#[test]
fn stretch_policy_pays_rounds_instead_of_failing() {
    // Same starved instance under Stretch: completes correctly, just slower.
    let g = path(40, 1).unwrap();
    let mut generous = HybridNet::new(&g, HybridConfig::default());
    let mk = || -> Vec<Token<u8>> {
        (0..20).map(|i| Token::new(NodeId::new(0), NodeId::new(30), i, 0)).collect()
    };
    let fast = route_tokens(
        &mut generous,
        mk(),
        &[NodeId::new(0)],
        &[NodeId::new(30)],
        RoutingRates::dense(),
        1,
        "tr",
    )
    .unwrap();
    let mut slow_net = HybridNet::new(&g, starved(OverflowPolicy::Stretch));
    let slow = route_tokens(
        &mut slow_net,
        mk(),
        &[NodeId::new(0)],
        &[NodeId::new(30)],
        RoutingRates::dense(),
        1,
        "tr",
    )
    .unwrap();
    assert_eq!(slow.len(), 20, "all tokens still delivered");
    assert!(
        slow.rounds > fast.rounds,
        "starved net must pay more rounds ({} vs {})",
        slow.rounds,
        fast.rounds
    );
    assert!(slow_net.metrics().stretched_exchanges > 0);
}

#[test]
fn direct_exchange_overflow_errors_are_precise() {
    let g = path(8, 1).unwrap();
    let mut net = HybridNet::new(&g, starved(OverflowPolicy::Fail));
    // Send cap is 1: two messages from one node must fail with the node named.
    let err = net
        .exchange(
            "t",
            vec![
                Envelope::new(NodeId::new(2), NodeId::new(3), 0u8),
                Envelope::new(NodeId::new(2), NodeId::new(4), 1u8),
            ],
        )
        .unwrap_err();
    match err {
        SimError::SendCapExceeded { node, sent, cap } => {
            assert_eq!(node, NodeId::new(2));
            assert_eq!(sent, 2);
            assert_eq!(cap, 1);
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn skeleton_undersampling_degrades_gracefully() {
    // A skeleton whose h is far below the sampling gaps: the diameter
    // framework must not panic; it reports a (useless but safe) over-estimate,
    // possibly saturated at INFINITY when the skeleton is disconnected.
    let g = cycle(200, 1).unwrap();
    let mut net = HybridNet::new(&g, HybridConfig::default());
    let out = diameter_cor52(&mut net, 0.25, KsspConfig { xi: 0.05 }, 5).unwrap();
    assert!(out.estimate >= 100, "never underestimates D = 100");
}

#[test]
fn apsp_survives_aggressive_xi_via_fallbacks() {
    // With ξ far below the Lemma C.1 regime the APSP run must still terminate
    // and never *under*estimate; exactness may be lost (that is the Monte
    // Carlo failure event) but the fallback accounting must kick in.
    let g = cycle(150, 1).unwrap();
    let mut net = HybridNet::new(&g, HybridConfig::default());
    let out = exact_apsp(&mut net, ApspConfig { xi: 0.1 }, 3).unwrap();
    let exact = hybrid_shortest_paths::graph::apsp::apsp(&g);
    for u in g.nodes() {
        for v in g.nodes() {
            let got = out.dist.get(u, v);
            assert!(got >= exact.get(u, v), "no underestimates even on failure");
            assert!(got < INFINITY, "connected graph: something must be found");
        }
    }
}

#[test]
fn representative_fallback_charges_extra_exploration() {
    let g = path(60, 1).unwrap();
    let mut net = HybridNet::new(&g, HybridConfig::default());
    // Skeleton = {0} with tiny h: the far source must fall back.
    let skel = Skeleton::from_nodes(&g, vec![NodeId::new(0)], 2).unwrap();
    let (reps, fallbacks) =
        compute_representatives(&mut net, &skel, &[NodeId::new(59)], 1, "reps").unwrap();
    assert_eq!(fallbacks, 1);
    assert_eq!(reps[0].dist, 59);
    assert!(net.rounds() >= 57);
}

#[test]
fn halved_caps_roughly_double_global_phase_rounds() {
    // The (λ, γ) story quantitatively: global-bound phases scale inversely
    // with the cap, local phases are untouched.
    let mut rng = StdRng::seed_from_u64(4);
    let g = erdos_renyi_connected(150, 0.06, 3, &mut rng).unwrap();
    let full = {
        let mut net = HybridNet::new(&g, HybridConfig::default());
        exact_apsp(&mut net, ApspConfig { xi: 1.0 }, 7).unwrap();
        net.into_metrics()
    };
    let halved_cfg = HybridConfig {
        send_cap_factor: 0.5,
        recv_cap_factor: 2.0,
        overflow: OverflowPolicy::Stretch,
    };
    let halved = {
        let mut net = HybridNet::new(&g, halved_cfg);
        exact_apsp(&mut net, ApspConfig { xi: 1.0 }, 7).unwrap();
        net.into_metrics()
    };
    assert_eq!(full.local_rounds, halved.local_rounds, "local mode unaffected");
    assert!(
        halved.global_rounds > full.global_rounds,
        "global rounds must grow when γ shrinks ({} vs {})",
        halved.global_rounds,
        full.global_rounds
    );
}

#[test]
fn zero_weight_and_duplicate_edges_rejected_at_the_source() {
    use hybrid_shortest_paths::graph::{GraphBuilder, GraphError};
    let mut b = GraphBuilder::new(3);
    assert!(matches!(
        b.add_edge(NodeId::new(0), NodeId::new(1), 0),
        Err(GraphError::ZeroWeight { .. })
    ));
    b.add_edge(NodeId::new(0), NodeId::new(1), 2).unwrap();
    assert!(matches!(
        b.add_edge(NodeId::new(1), NodeId::new(0), 3),
        Err(GraphError::DuplicateEdge { .. })
    ));
}
