//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic 64-bit generator (xoshiro256++, SplitMix64-seeded).
///
/// Stands in for `rand::rngs::StdRng`; the exact stream differs from upstream
/// `StdRng` but every consumer in this workspace only relies on seeds being
/// reproducible within the workspace itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = StdRng::seed_from_u64(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, y);
    }
}
