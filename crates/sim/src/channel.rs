//! Message envelopes for the global (NCC) channel.

use hybrid_graph::NodeId;

/// One `O(log n)`-bit message in flight over the global network.
///
/// The payload type `M` must itself fit the model's `O(log n)`-bit budget — in
/// this codebase every payload is a small tuple of node IDs and distances, which
/// (weights being polynomial in `n`, §1.3) is `O(log n)` bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node (any node — the global mode is a clique).
    pub dst: NodeId,
    /// Message payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// Creates an envelope.
    pub fn new(src: NodeId, dst: NodeId, msg: M) -> Self {
        Envelope { src, dst, msg }
    }
}

/// Per-node inboxes produced by an exchange: `inboxes[v]` holds the
/// `(sender, message)` pairs delivered to node `v`, in deterministic order
/// (sorted by sender, then arrival order).
pub type Inboxes<M> = Vec<Vec<(NodeId, M)>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_construction() {
        let e = Envelope::new(NodeId::new(1), NodeId::new(2), "hi");
        assert_eq!(e.src, NodeId::new(1));
        assert_eq!(e.dst, NodeId::new(2));
        assert_eq!(e.msg, "hi");
    }
}
