//! Dijkstra's algorithm — the sequential ground truth for every distance the
//! distributed algorithms of the paper compute.
//!
//! Besides plain single-source shortest paths this module provides the
//! lexicographic `(distance, hops)` variant needed for the *shortest path diameter*
//! `SPD(G)` (the paper compares its SSSP algorithm against the `Õ(√SPD)` algorithm
//! of \[3\], so experiments need `SPD` as a workload parameter).
//!
//! # Hot path
//!
//! Multi-source consumers (reference APSP, eccentricities, `SPD(G)`, the
//! skeleton fallback of `hybrid-core`) run one Dijkstra per source. Two layers
//! make that fast:
//!
//! * [`DijkstraWorkspace`] — a reusable arena (recycled distance/hop/
//!   predecessor arrays and binary heap) that eliminates all per-run
//!   allocation. Reset is a bulk `fill` of the distance row: measured against
//!   an epoch-tagged visited array, the bulk reset wins because it keeps the
//!   per-edge relaxation free of an extra mark load and branch.
//! * [`par_map_rows`] / [`par_dist_rows`] / [`par_lex_rows_with`] — a
//!   multi-source driver that partitions the sources across OS threads
//!   (`std::thread::scope`; one workspace per worker) and writes rows straight
//!   into caller-provided flat buffers. Thread count follows
//!   `std::thread::available_parallelism`, overridable with the
//!   `HYBRID_DIJKSTRA_THREADS` environment variable. Outputs are exact
//!   distances, so results are bit-identical regardless of parallelism.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::dist::{dist_add, Distance, INFINITY};
use crate::graph::Graph;
use crate::ids::NodeId;

/// Shortest-path distances (and predecessors) from one source.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<Distance>,
    pred: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// The source of the computation.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// `d(source, v)`, or [`INFINITY`] if unreachable.
    pub fn dist(&self, v: NodeId) -> Distance {
        self.dist[v.index()]
    }

    /// The raw distance array indexed by node.
    pub fn as_slice(&self) -> &[Distance] {
        &self.dist
    }

    /// Predecessor of `v` on a shortest path from the source.
    pub fn predecessor(&self, v: NodeId) -> Option<NodeId> {
        self.pred[v.index()]
    }

    /// Reconstructs a shortest path `source -> v` (inclusive), if `v` is reachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[v.index()] == INFINITY {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.pred[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Largest finite distance from the source (weighted eccentricity).
    pub fn eccentricity(&self) -> Distance {
        self.dist.iter().copied().filter(|&d| d != INFINITY).max().unwrap_or(0)
    }
}

/// Reusable state for repeated Dijkstra runs on graphs of (up to) a fixed
/// size: recycled distance/hop/predecessor arrays and a recycled heap — no
/// allocation per run. Predecessors are validated through the distance row
/// (`dist[v] == INFINITY` ⇒ `pred[v]` is stale), so only the touched arrays
/// are reset per run.
///
/// Two relaxations share the workspace: the plain distance-only run (SSSP
/// rows, eccentricities, truncated searches) and the lexicographic
/// `(distance, hops)` run (`dijkstra_lex`, `SPD`) — the hop tie-break is kept
/// out of the plain path because it forces extra equal-distance relaxations
/// on tie-heavy graphs.
#[derive(Debug, Default)]
pub struct DijkstraWorkspace {
    dist: Vec<Distance>,
    hops: Vec<Distance>,
    pred: Vec<u32>,
    /// Heap for the plain run (compact 16-byte entries).
    heap: BinaryHeap<Reverse<(Distance, u32)>>,
    /// Heap for the lexicographic run (carries the hop count).
    heap_lex: BinaryHeap<Reverse<(Distance, Distance, u32)>>,
    /// Circular buckets for Dial's queue (plain runs on graphs with small
    /// maximum edge weight).
    buckets: Vec<Vec<u32>>,
}

/// Largest maximum edge weight for which the plain run uses Dial's bucket
/// queue (`W + 1` circular buckets, `O(m + D)`) instead of a binary heap.
const DIAL_MAX_WEIGHT: u64 = 64;

/// Largest *transformed* edge weight (`w · K + 1` in the packed lexicographic
/// encoding) for which the lex run uses Dial's bucket queue. The bucket array
/// has this many entries, so the bound also caps the memory of the queue.
const LEX_DIAL_MAX_WEIGHT: u64 = 1 << 14;

impl DijkstraWorkspace {
    /// Creates an empty workspace; arrays are sized lazily on first use.
    pub fn new() -> Self {
        DijkstraWorkspace::default()
    }

    /// Starts a new run: sizes the arrays for `n` nodes and resets the
    /// distance row (`hops` is reset by the lexicographic run only).
    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, INFINITY);
            self.hops.resize(n, INFINITY);
            self.pred.resize(n, u32::MAX);
        }
        self.dist[..n].fill(INFINITY);
        self.heap.clear();
        self.heap_lex.clear();
    }

    /// Core plain run: distance-only Dijkstra from `source`, truncated at
    /// weighted radius `max_dist` ([`INFINITY`] for unbounded). Leaves `hops`
    /// untouched (consumers of the plain run never read it) — skipping the
    /// hop tie-break avoids the extra relaxations the lexicographic variant
    /// performs on tie-heavy graphs.
    fn run_plain(&mut self, g: &Graph, source: NodeId, max_dist: Distance) {
        if g.max_weight() <= DIAL_MAX_WEIGHT && g.len() > 1 {
            self.run_dial(g, source, max_dist);
            return;
        }
        self.begin(g.len());
        let s = source.index();
        self.dist[s] = 0;
        self.pred[s] = u32::MAX;
        self.heap.push(Reverse((0, source.raw())));
        while let Some(Reverse((d, v_raw))) = self.heap.pop() {
            let v = v_raw as usize;
            if d > self.dist[v] {
                continue; // stale entry
            }
            for (u, w) in g.neighbors(NodeId::from(v_raw)) {
                let nd = dist_add(d, w);
                if nd > max_dist {
                    continue;
                }
                let ui = u.index();
                if nd < self.dist[ui] {
                    self.dist[ui] = nd;
                    self.pred[ui] = v_raw;
                    self.heap.push(Reverse((nd, u.raw())));
                }
            }
        }
    }

    /// Dial's algorithm: plain Dijkstra with a circular bucket queue of
    /// `W + 1` buckets — `O(m + D)` and heap-free for the small integer
    /// weights every generator in this workspace produces. Stale bucket
    /// entries are skipped via the `dist` check; since `w ≥ 1`, a relaxation
    /// never lands in the bucket currently being drained.
    fn run_dial(&mut self, g: &Graph, source: NodeId, max_dist: Distance) {
        // W ≤ DIAL_MAX_WEIGHT keeps the key span ≤ 64n, so the plain run
        // never needs the cursor budget.
        self.run_dial_core(g, source, max_dist, 1, 0, INFINITY);
    }

    /// Shared Dial core over *affinely transformed* weights: every edge weight
    /// `w` is relaxed as `w · wmul + wadd`. `(1, 0)` is the plain run;
    /// `(K, 1)` is the packed lexicographic run (key `dist · K + hops`, see
    /// [`DijkstraWorkspace::run_lex`]). The circular queue has
    /// `W · wmul + wadd + 1` buckets; the bucket cursor and relaxation targets
    /// are maintained incrementally (no division on the hot path).
    ///
    /// The cursor sweeps every key value up to the largest settled key, so
    /// Dial's total cost is `O(m + span)` where `span` is the weighted
    /// eccentricity times `wmul` — unknowable up front. `cursor_budget` caps
    /// the sweep: when `cur` exceeds it the run bails out (returns `false`,
    /// with the touched buckets cleared for reuse) so the caller can fall
    /// back to the heap. The bail decision depends only on the graph and
    /// source, keeping results deterministic.
    fn run_dial_core(
        &mut self,
        g: &Graph,
        source: NodeId,
        max_dist: Distance,
        wmul: u64,
        wadd: u64,
        cursor_budget: Distance,
    ) -> bool {
        self.begin(g.len());
        let nb = (g.max_weight() * wmul + wadd) as usize + 1;
        if self.buckets.len() < nb {
            self.buckets.resize(nb, Vec::new());
        }
        let s = source.index();
        self.dist[s] = 0;
        self.pred[s] = u32::MAX;
        self.buckets[0].push(source.raw());
        let mut remaining = 1usize;
        let mut cur: Distance = 0;
        let mut cb = 0usize; // cur % nb, maintained incrementally
        while remaining > 0 {
            if cur > cursor_budget {
                for b in self.buckets[..nb].iter_mut() {
                    b.clear();
                }
                return false;
            }
            while let Some(v_raw) = self.buckets[cb].pop() {
                remaining -= 1;
                let v = v_raw as usize;
                if self.dist[v] != cur {
                    continue; // stale entry
                }
                for (u, w) in g.neighbors(NodeId::from(v_raw)) {
                    let nd = cur + w * wmul + wadd;
                    if nd > max_dist {
                        continue;
                    }
                    let ui = u.index();
                    if nd < self.dist[ui] {
                        self.dist[ui] = nd;
                        self.pred[ui] = v_raw;
                        // nd - cur ≤ W · wmul + wadd < nb: one wrap suffices.
                        let mut target = cb + (nd - cur) as usize;
                        if target >= nb {
                            target -= nb;
                        }
                        self.buckets[target].push(u.raw());
                        remaining += 1;
                    }
                }
            }
            cur += 1;
            cb += 1;
            if cb == nb {
                cb = 0;
            }
        }
        true
    }

    /// The key factor `K` for the packed lexicographic run, if the graph's
    /// weights permit it: every *relaxation candidate* `key + w · K + 1` must
    /// stay below [`INFINITY`] without wrapping. Weights are ≥ 1, so paths are
    /// simple and `hops ≤ n − 1 < K = n`; the largest settled key is at most
    /// `(n − 1) · W · K + (n − 1)`, and one further relaxation adds at most
    /// `W · K + 1` — so the guard bounds `n · W · K + n`, the worst candidate,
    /// not just the worst settled key.
    fn lex_pack_factor(g: &Graph) -> Option<u64> {
        let n = g.len() as u64;
        if n < 2 {
            return Some(2);
        }
        let k = n;
        let max_cand_dist = n.checked_mul(g.max_weight())?;
        let max_cand_key = max_cand_dist.checked_mul(k)?.checked_add(n)?;
        (max_cand_key < INFINITY).then_some(k)
    }

    /// Core lexicographic run: `(dist, hops)` Dijkstra from `source`.
    ///
    /// Fast path (taken whenever `(n − 1) · W · n` fits below [`INFINITY`],
    /// i.e. for every polynomially-weighted graph the paper considers): pack
    /// the pair into the single key `dist · K + hops` with `K = n > max hops`
    /// — key order is exactly the lexicographic order, so the run degenerates
    /// to a plain Dijkstra over transformed edge weights `w · K + 1`, halving
    /// heap-entry traffic and tuple comparisons. `self.dist` holds packed
    /// keys afterwards; [`DijkstraWorkspace::lex_into`] decodes. The general
    /// two-key loop remains as fallback for extreme weights.
    fn run_lex(&mut self, g: &Graph, source: NodeId) -> Option<u64> {
        if let Some(k) = Self::lex_pack_factor(g) {
            // Dial fast path on the packed keys: the transformed weights
            // `w · K + 1` are still small integers for every generator-scale
            // graph, so the bucket queue replaces the binary heap here too
            // (identical exact results, no `O(log n)` heap traffic). The
            // cursor budget keeps high-diameter graphs (key span ≈ weighted
            // eccentricity × K, e.g. long cycles) off this path: once the
            // sweep exceeds roughly what a heap run would cost, Dial bails
            // and the heap path below runs instead.
            if g.max_weight() * k < LEX_DIAL_MAX_WEIGHT && g.len() > 1 {
                let budget = 32 * (g.len() as u64 + g.num_edges() as u64);
                if self.run_dial_core(g, source, INFINITY, k, 1, budget) {
                    return Some(k);
                }
            }
            self.begin(g.len());
            let s = source.index();
            self.dist[s] = 0;
            self.pred[s] = u32::MAX;
            self.heap.push(Reverse((0, source.raw())));
            while let Some(Reverse((key, v_raw))) = self.heap.pop() {
                let v = v_raw as usize;
                if key > self.dist[v] {
                    continue; // stale entry
                }
                for (u, w) in g.neighbors(NodeId::from(v_raw)) {
                    let nk = key + w * k + 1;
                    let ui = u.index();
                    if nk < self.dist[ui] {
                        self.dist[ui] = nk;
                        self.pred[ui] = v_raw;
                        self.heap.push(Reverse((nk, u.raw())));
                    }
                }
            }
            return Some(k);
        }
        self.begin(g.len());
        let n = g.len();
        self.hops[..n].fill(INFINITY);
        let s = source.index();
        self.dist[s] = 0;
        self.hops[s] = 0;
        self.pred[s] = u32::MAX;
        self.heap_lex.push(Reverse((0, 0, source.raw())));
        while let Some(Reverse((d, h, v_raw))) = self.heap_lex.pop() {
            let v = v_raw as usize;
            if (d, h) > (self.dist[v], self.hops[v]) {
                continue; // stale entry
            }
            for (u, w) in g.neighbors(NodeId::from(v_raw)) {
                let nd = dist_add(d, w);
                let nh = h + 1;
                let ui = u.index();
                if (nd, nh) < (self.dist[ui], self.hops[ui]) {
                    self.dist[ui] = nd;
                    self.hops[ui] = nh;
                    self.pred[ui] = v_raw;
                    self.heap_lex.push(Reverse((nd, nh, u.raw())));
                }
            }
        }
        None
    }

    /// Runs from `source` and writes the distance row into `out`
    /// (`out.len() == g.len()`; unreachable nodes get [`INFINITY`]).
    pub fn dist_into(&mut self, g: &Graph, source: NodeId, out: &mut [Distance]) {
        assert_eq!(out.len(), g.len(), "output row must have one slot per node");
        self.run_plain(g, source, INFINITY);
        out.copy_from_slice(&self.dist[..g.len()]);
    }

    /// Runs from `source` and writes both the distance and the minimum-hop
    /// rows (the [`dijkstra_lex`] relaxation) into `dist_out` / `hops_out`.
    pub fn lex_into(
        &mut self,
        g: &Graph,
        source: NodeId,
        dist_out: &mut [Distance],
        hops_out: &mut [Distance],
    ) {
        assert_eq!(dist_out.len(), g.len(), "output row must have one slot per node");
        assert_eq!(hops_out.len(), g.len(), "output row must have one slot per node");
        match self.run_lex(g, source) {
            Some(k) => {
                for v in 0..g.len() {
                    let key = self.dist[v];
                    if key == INFINITY {
                        dist_out[v] = INFINITY;
                        hops_out[v] = INFINITY;
                    } else {
                        dist_out[v] = key / k;
                        hops_out[v] = key % k;
                    }
                }
            }
            None => {
                dist_out.copy_from_slice(&self.dist[..g.len()]);
                hops_out.copy_from_slice(&self.hops[..g.len()]);
            }
        }
    }

    /// Weighted eccentricity of `source` ([`INFINITY`] if `source` does not
    /// reach every node), without materializing a row.
    pub fn eccentricity(&mut self, g: &Graph, source: NodeId) -> Distance {
        self.run_plain(g, source, INFINITY);
        let mut ecc = 0;
        for &d in &self.dist[..g.len()] {
            if d == INFINITY {
                return INFINITY;
            }
            ecc = ecc.max(d);
        }
        ecc
    }

    fn extract(&self, g: &Graph, source: NodeId) -> ShortestPaths {
        let n = g.len();
        let dist = self.dist[..n].to_vec();
        let mut pred: Vec<Option<NodeId>> = vec![None; n];
        for v in 0..n {
            // `pred` entries are only meaningful where this run settled the
            // node; stale values from earlier runs hide behind INFINITY.
            if dist[v] != INFINITY && self.pred[v] != u32::MAX {
                pred[v] = Some(NodeId::from(self.pred[v]));
            }
        }
        ShortestPaths { source, dist, pred }
    }
}

/// Single-source shortest paths in `O((n + m) log n)`.
pub fn dijkstra(g: &Graph, source: NodeId) -> ShortestPaths {
    let mut ws = DijkstraWorkspace::new();
    ws.run_plain(g, source, INFINITY);
    ws.extract(g, source)
}

/// Dijkstra truncated at weighted radius `max_dist`: nodes with `d(source, v) >
/// max_dist` keep [`INFINITY`].
pub fn dijkstra_within(g: &Graph, source: NodeId, max_dist: Distance) -> ShortestPaths {
    let mut ws = DijkstraWorkspace::new();
    ws.run_plain(g, source, max_dist);
    ws.extract(g, source)
}

/// Lexicographic shortest paths: minimizes `(w(P), |P|)`, i.e. among all shortest
/// paths prefers one with the fewest hops.
///
/// Returns `(dist, hops)` per node where `hops[v]` is the minimum hop count over all
/// minimum-weight `source`–`v` paths. `hops` is [`INFINITY`] iff `dist` is.
pub fn dijkstra_lex(g: &Graph, source: NodeId) -> (Vec<Distance>, Vec<Distance>) {
    let n = g.len();
    let mut dist = vec![INFINITY; n];
    let mut hops = vec![INFINITY; n];
    let mut ws = DijkstraWorkspace::new();
    ws.lex_into(g, source, &mut dist, &mut hops);
    (dist, hops)
}

/// Number of Dijkstra workers for a `k`-source batch: the smaller of the
/// available cores (or the `HYBRID_DIJKSTRA_THREADS` override) and `k`.
fn worker_count(k: usize) -> usize {
    let hw = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let configured = std::env::var("HYBRID_DIJKSTRA_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&t| t > 0);
    configured.unwrap_or(hw).min(k).max(1)
}

/// Runs one lexicographic Dijkstra per source — in parallel across OS threads,
/// one reusable [`DijkstraWorkspace`] per worker — and maps each `(dist, hops)`
/// row pair through `f`, returning the results in source order.
///
/// `f` receives `(source index, source, dist row, hops row)`; the rows are
/// worker-local buffers overwritten by the next source, so `f` must extract
/// what it needs. Exact distances make the output independent of the thread
/// count.
pub fn par_map_rows<T, F>(g: &Graph, sources: &[NodeId], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, NodeId, &[Distance], &[Distance]) -> T + Sync,
{
    let n = g.len();
    let k = sources.len();
    if k == 0 {
        return Vec::new();
    }
    let threads = worker_count(k);
    if threads <= 1 {
        let mut ws = DijkstraWorkspace::new();
        let mut dist = vec![INFINITY; n];
        let mut hops = vec![INFINITY; n];
        return sources
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                ws.lex_into(g, s, &mut dist, &mut hops);
                f(i, s, &dist, &hops)
            })
            .collect();
    }
    let chunk = k.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = sources
            .chunks(chunk)
            .enumerate()
            .map(|(ci, srcs)| {
                scope.spawn(move || {
                    let mut ws = DijkstraWorkspace::new();
                    let mut dist = vec![INFINITY; n];
                    let mut hops = vec![INFINITY; n];
                    srcs.iter()
                        .enumerate()
                        .map(|(j, &s)| {
                            ws.lex_into(g, s, &mut dist, &mut hops);
                            f(ci * chunk + j, s, &dist, &hops)
                        })
                        .collect::<Vec<T>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("dijkstra worker panicked")).collect()
    })
}

/// Runs one lexicographic Dijkstra per source in parallel, splitting `out`
/// into `sources.len()` rows of `g.len()` entries and invoking
/// `f(source index, source, dist row, hops row, out row)` to fill each one.
///
/// This is the direct-write driver behind [`par_dist_rows`] and the
/// `hybrid-core` APSP assembly: rows land in the final flat matrix without an
/// intermediate copy.
pub fn par_lex_rows_with<F>(g: &Graph, sources: &[NodeId], out: &mut [Distance], f: F)
where
    F: Fn(usize, NodeId, &[Distance], &[Distance], &mut [Distance]) + Sync,
{
    let n = g.len();
    let k = sources.len();
    assert_eq!(out.len(), n * k, "output must hold one row per source");
    if k == 0 {
        return;
    }
    let threads = worker_count(k);
    if threads <= 1 {
        let mut ws = DijkstraWorkspace::new();
        let mut dist = vec![INFINITY; n];
        let mut hops = vec![INFINITY; n];
        for (i, (&s, row)) in sources.iter().zip(out.chunks_mut(n)).enumerate() {
            ws.lex_into(g, s, &mut dist, &mut hops);
            f(i, s, &dist, &hops, row);
        }
        return;
    }
    let chunk = k.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for ((ci, srcs), rows) in sources.chunks(chunk).enumerate().zip(out.chunks_mut(chunk * n)) {
            scope.spawn(move || {
                let mut ws = DijkstraWorkspace::new();
                let mut dist = vec![INFINITY; n];
                let mut hops = vec![INFINITY; n];
                for (j, (&s, row)) in srcs.iter().zip(rows.chunks_mut(n)).enumerate() {
                    ws.lex_into(g, s, &mut dist, &mut hops);
                    f(ci * chunk + j, s, &dist, &hops, row);
                }
            });
        }
    });
}

/// Fills `out` (row-major, one row of `g.len()` distances per source) with
/// exact single-source distances, one parallel Dijkstra per source.
///
/// Uses the plain (distance-only) relaxation — cheaper than the lexicographic
/// drivers on tie-heavy graphs since no equal-distance re-relaxations occur.
pub fn par_dist_rows(g: &Graph, sources: &[NodeId], out: &mut [Distance]) {
    let n = g.len();
    let k = sources.len();
    assert_eq!(out.len(), n * k, "output must hold one row per source");
    if k == 0 {
        return;
    }
    let threads = worker_count(k);
    if threads <= 1 {
        let mut ws = DijkstraWorkspace::new();
        for (&s, row) in sources.iter().zip(out.chunks_mut(n)) {
            ws.dist_into(g, s, row);
        }
        return;
    }
    let chunk = k.div_ceil(threads);
    std::thread::scope(|scope| {
        for (srcs, rows) in sources.chunks(chunk).zip(out.chunks_mut(chunk * n)) {
            scope.spawn(move || {
                let mut ws = DijkstraWorkspace::new();
                for (&s, row) in srcs.iter().zip(rows.chunks_mut(n)) {
                    ws.dist_into(g, s, row);
                }
            });
        }
    });
}

/// Like [`par_map_rows`] but with the plain (distance-only) relaxation: maps
/// each source's distance row through `f` without computing hop counts.
pub fn par_map_dist_rows<T, F>(g: &Graph, sources: &[NodeId], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, NodeId, &[Distance]) -> T + Sync,
{
    let n = g.len();
    let k = sources.len();
    if k == 0 {
        return Vec::new();
    }
    let threads = worker_count(k);
    if threads <= 1 {
        let mut ws = DijkstraWorkspace::new();
        let mut dist = vec![INFINITY; n];
        return sources
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                ws.dist_into(g, s, &mut dist);
                f(i, s, &dist)
            })
            .collect();
    }
    let chunk = k.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = sources
            .chunks(chunk)
            .enumerate()
            .map(|(ci, srcs)| {
                scope.spawn(move || {
                    let mut ws = DijkstraWorkspace::new();
                    let mut dist = vec![INFINITY; n];
                    srcs.iter()
                        .enumerate()
                        .map(|(j, &s)| {
                            ws.dist_into(g, s, &mut dist);
                            f(ci * chunk + j, s, &dist)
                        })
                        .collect::<Vec<T>>()
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("dijkstra worker panicked")).collect()
    })
}

/// The *shortest path diameter* `SPD(G)`: the maximum, over all pairs `u, v`, of the
/// minimum hop length of a minimum-weight `u`–`v` path.
///
/// For unweighted graphs `SPD(G) = D(G)`. Returns [`INFINITY`] for disconnected
/// graphs. Cost: `n` lexicographic Dijkstra runs, parallelized across cores.
pub fn shortest_path_diameter(g: &Graph) -> Distance {
    let sources: Vec<NodeId> = g.nodes().collect();
    let per_source = par_map_rows(g, &sources, |_, _, dist, hops| {
        let mut worst = 0;
        for v in 0..dist.len() {
            if dist[v] == INFINITY {
                return INFINITY; // disconnected: propagate
            }
            worst = worst.max(hops[v]);
        }
        worst
    });
    per_source.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, erdos_renyi_connected, grid, path, weighted_cycle_with_chord};
    use crate::graph::GraphBuilder;
    use rand::SeedableRng;

    fn diamond() -> Graph {
        // 0 -1- 1 -1- 3   and   0 -3- 2 -3- 3 ; plus heavy direct edge 0-3.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId::new(0), NodeId::new(1), 1).unwrap();
        b.add_edge(NodeId::new(1), NodeId::new(3), 1).unwrap();
        b.add_edge(NodeId::new(0), NodeId::new(2), 3).unwrap();
        b.add_edge(NodeId::new(2), NodeId::new(3), 3).unwrap();
        b.add_edge(NodeId::new(0), NodeId::new(3), 10).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn picks_light_path() {
        let g = diamond();
        let sp = dijkstra(&g, NodeId::new(0));
        assert_eq!(sp.dist(NodeId::new(3)), 2);
        assert_eq!(
            sp.path_to(NodeId::new(3)).unwrap(),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)]
        );
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId::new(0), NodeId::new(1), 1).unwrap();
        let g = b.build().unwrap();
        let sp = dijkstra(&g, NodeId::new(0));
        assert_eq!(sp.dist(NodeId::new(2)), INFINITY);
        assert!(sp.path_to(NodeId::new(2)).is_none());
    }

    #[test]
    fn truncated_respects_radius() {
        let g = path(6, 2).unwrap(); // weights 2, distances 0,2,4,...
        let sp = dijkstra_within(&g, NodeId::new(0), 5);
        assert_eq!(sp.dist(NodeId::new(2)), 4);
        assert_eq!(sp.dist(NodeId::new(3)), INFINITY);
    }

    #[test]
    fn lex_prefers_fewer_hops() {
        // Two shortest paths of weight 4: 0-1-2-3 (3 hops) and the direct edge.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId::new(0), NodeId::new(1), 1).unwrap();
        b.add_edge(NodeId::new(1), NodeId::new(2), 1).unwrap();
        b.add_edge(NodeId::new(2), NodeId::new(3), 2).unwrap();
        b.add_edge(NodeId::new(0), NodeId::new(3), 4).unwrap();
        let g = b.build().unwrap();
        let (dist, hops) = dijkstra_lex(&g, NodeId::new(0));
        assert_eq!(dist[3], 4);
        assert_eq!(hops[3], 1); // prefers the direct edge
    }

    #[test]
    fn spd_exceeds_diameter_on_weighted_cycle() {
        // A cycle with a heavy chord: shortest paths go the long way around, so SPD
        // is much larger than the hop diameter.
        let g = weighted_cycle_with_chord(12, 1, 100).unwrap();
        let spd = shortest_path_diameter(&g);
        assert!(spd >= 6, "spd = {spd}");
    }

    #[test]
    fn spd_equals_diameter_unweighted() {
        let g = path(7, 1).unwrap();
        assert_eq!(shortest_path_diameter(&g), 6);
    }

    #[test]
    fn spd_disconnected_is_infinite() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId::new(0), NodeId::new(1), 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(shortest_path_diameter(&g), INFINITY);
    }

    #[test]
    fn eccentricity_on_path() {
        let g = path(5, 3).unwrap();
        assert_eq!(dijkstra(&g, NodeId::new(0)).eccentricity(), 12);
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        // One workspace across many sources (and two graphs of different
        // sizes) must reproduce fresh per-source runs exactly.
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let big = erdos_renyi_connected(60, 0.08, 7, &mut rng).unwrap();
        let small = grid(4, 4, 2).unwrap();
        let mut ws = DijkstraWorkspace::new();
        for g in [&big, &small, &big] {
            let n = g.len();
            let mut dist = vec![0; n];
            let mut hops = vec![0; n];
            for v in g.nodes() {
                ws.lex_into(g, v, &mut dist, &mut hops);
                let (fresh_d, fresh_h) = dijkstra_lex(g, v);
                assert_eq!(dist, fresh_d, "dist from {v}");
                assert_eq!(hops, fresh_h, "hops from {v}");
                assert_eq!(ws.eccentricity(g, v), dijkstra(g, v).eccentricity());
            }
        }
    }

    #[test]
    fn par_rows_match_sequential_dijkstra() {
        // Driver equivalence on the three workload families named by the
        // acceptance criteria: seeded Erdős–Rényi, grid, and path.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let families = vec![
            erdos_renyi_connected(72, 0.07, 9, &mut rng).unwrap(),
            grid(8, 7, 3).unwrap(),
            path(50, 2).unwrap(),
        ];
        for g in &families {
            let n = g.len();
            let sources: Vec<NodeId> = g.nodes().collect();
            let mut rows = vec![0; n * n];
            par_dist_rows(g, &sources, &mut rows);
            let mapped =
                par_map_rows(g, &sources, |_, _, dist, hops| (dist.to_vec(), hops.to_vec()));
            for (i, &s) in sources.iter().enumerate() {
                let (exact_d, exact_h) = dijkstra_lex(g, s);
                assert_eq!(&rows[i * n..(i + 1) * n], &exact_d[..], "row {s}");
                assert_eq!(mapped[i].0, exact_d, "mapped dist {s}");
                assert_eq!(mapped[i].1, exact_h, "mapped hops {s}");
            }
        }
    }

    #[test]
    fn lex_fallback_on_huge_weights_matches_packed_semantics() {
        // Weights near u64::MAX/2 make the packed key overflow, forcing the
        // general two-key loop; the lexicographic contract must be identical.
        let big = u64::MAX / 4;
        {
            // Boundary audit: a graph whose worst *settled* key fits but whose
            // worst relaxation candidate would wrap must be rejected too.
            let n = 16u64;
            // In the window where the worst settled key (240·w) fits but the
            // worst relaxation candidate (256·w) wraps:
            let w = u64::MAX / 250;
            let mut b = GraphBuilder::new(n as usize);
            for i in 0..(n as usize - 1) {
                b.add_edge(NodeId::new(i), NodeId::new(i + 1), w).unwrap();
            }
            let g = b.build().unwrap();
            assert!(
                DijkstraWorkspace::lex_pack_factor(&g).is_none(),
                "candidate-overflow graphs must use the fallback"
            );
            // And the fallback still computes correct saturating distances.
            let (dist, hops) = dijkstra_lex(&g, NodeId::new(0));
            assert_eq!(dist[1], w);
            assert_eq!(hops[15], 15);
        }
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId::new(0), NodeId::new(1), big).unwrap();
        b.add_edge(NodeId::new(1), NodeId::new(2), 1).unwrap();
        b.add_edge(NodeId::new(0), NodeId::new(2), big + 1).unwrap(); // same total, 1 hop
        let g = b.build().unwrap();
        assert!(DijkstraWorkspace::lex_pack_factor(&g).is_none(), "must take the fallback");
        let (dist, hops) = dijkstra_lex(&g, NodeId::new(0));
        assert_eq!(dist[2], big + 1);
        assert_eq!(hops[2], 1, "lex prefers the 1-hop path of equal weight");
        assert_eq!(dist[3], INFINITY);
        assert_eq!(hops[3], INFINITY);
    }

    #[test]
    fn heap_path_matches_dial_path() {
        // The same graph shape with weights just beyond the Dial threshold
        // must produce identical distances via the binary-heap plain run.
        let scale = super::DIAL_MAX_WEIGHT + 1; // pushes max weight past Dial
        let small = path(12, 3).unwrap();
        let mut b = GraphBuilder::new(12);
        for e in small.edges() {
            b.add_edge(e.u, e.v, e.w * scale).unwrap();
        }
        let heavy = b.build().unwrap();
        for v in small.nodes() {
            let d_small = dijkstra(&small, v);
            let d_heavy = dijkstra(&heavy, v);
            for u in small.nodes() {
                assert_eq!(d_small.dist(u) * scale, d_heavy.dist(u));
            }
        }
    }

    #[test]
    fn lex_dial_matches_heap_packed_path() {
        // Same topology, weights scaled so the packed key still fits but the
        // transformed weight W·K+1 exceeds the Dial bucket bound: the heap
        // path must agree with the Dial path up to the uniform weight scale
        // (identical hop tie-breaks, scaled distances).
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let small = erdos_renyi_connected(40, 0.12, 8, &mut rng).unwrap();
        assert!(small.max_weight() * (small.len() as u64) < super::LEX_DIAL_MAX_WEIGHT);
        let scale = 520u64;
        let mut b = GraphBuilder::new(small.len());
        for e in small.edges() {
            b.add_edge(e.u, e.v, e.w * scale).unwrap();
        }
        let heavy = b.build().unwrap();
        assert!(
            heavy.max_weight() * heavy.len() as u64 + 1 > super::LEX_DIAL_MAX_WEIGHT,
            "heavy graph must take the heap path"
        );
        assert!(DijkstraWorkspace::lex_pack_factor(&heavy).is_some(), "still packable");
        for v in small.nodes() {
            let (d_small, h_small) = dijkstra_lex(&small, v);
            let (d_heavy, h_heavy) = dijkstra_lex(&heavy, v);
            for u in small.nodes() {
                assert_eq!(d_small[u.index()] * scale, d_heavy[u.index()]);
                assert_eq!(h_small[u.index()], h_heavy[u.index()]);
            }
        }
    }

    #[test]
    fn lex_dial_bails_to_heap_on_high_diameter() {
        // A long unit cycle: Dial would sweep ≈ (n/2)·n key values, far past
        // the cursor budget, so the run must bail to the heap path — and the
        // closed-form cycle distances pin that the fallback is correct.
        let n = 2000usize;
        let g = cycle(n, 1).unwrap();
        assert!(
            g.max_weight() * (g.len() as u64) < super::LEX_DIAL_MAX_WEIGHT,
            "cycle is Dial-eligible by the weight guard alone"
        );
        let (dist, hops) = dijkstra_lex(&g, NodeId::new(0));
        for v in [1usize, 7, n / 2, n - 3] {
            let expect = v.min(n - v) as u64;
            assert_eq!(dist[v], expect, "node {v}");
            assert_eq!(hops[v], expect, "node {v}");
        }
    }

    #[test]
    fn par_map_rows_preserves_source_order() {
        let g = path(20, 1).unwrap();
        let sources: Vec<NodeId> = vec![NodeId::new(3), NodeId::new(17), NodeId::new(0)];
        let ids = par_map_rows(&g, &sources, |i, s, _, _| (i, s));
        assert_eq!(ids, vec![(0, NodeId::new(3)), (1, NodeId::new(17)), (2, NodeId::new(0))]);
    }

    #[test]
    fn par_rows_empty_sources() {
        let g = path(5, 1).unwrap();
        let mut out: Vec<Distance> = Vec::new();
        par_dist_rows(&g, &[], &mut out);
        assert!(par_map_rows(&g, &[], |_, _, _, _| 0u8).is_empty());
    }
}
