//! Golden verification: every scenario run is checked against ground truth
//! computed with the sequential reference algorithms (`hybrid_graph`'s
//! parallel multi-source Dijkstra).
//!
//! Three contracts, chosen by the scenario's fault plan and tags:
//!
//! * **Strict** (healthy or merely degraded-bandwidth networks): exact suites
//!   must match the reference distances pairwise; approximate suites must stay
//!   within the run's own guaranteed factor (Theorem 4.1 / Theorem 5.1) and
//!   never underestimate.
//! * **Lossy** (drop/crash faults, tolerance mode): faults only *remove*
//!   messages, so a run that completes must never underestimate a distance (an
//!   estimate can only miss improvements, not invent shortcuts), and a run
//!   that aborts must do so with a structured [`HybridError`] — never a silent
//!   wrong answer. A clean fault-triggered error is a *pass*: the fault
//!   surfaced.
//! * **Must-recover** (the `chaos-*` family): aborting is no longer
//!   acceptable. The run must *complete* with a correct answer for its
//!   declared — possibly [`Guarantee::Degraded`] — guarantee; degraded
//!   answers come from the exact LOCAL fallbacks and are held to pairwise
//!   equality with the reference.

use hybrid_core::solver::{Answer, Guarantee, Report};
use hybrid_core::HybridError;
use hybrid_graph::apsp::{apsp, eccentricities, DistanceMatrix};
use hybrid_graph::dijkstra::dijkstra;
use hybrid_graph::{Distance, Graph, NodeId, INFINITY};

/// The verification contract a scenario run is held to (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contract {
    /// Healthy network: answers must meet their guarantee exactly; any error
    /// is a defect.
    Strict,
    /// Lossy faults, tolerance mode: completed runs must never underestimate;
    /// a structured abort after a real drop is a pass.
    Lossy,
    /// Chaos recovery mode: the run must complete with a verified answer for
    /// its declared (possibly degraded) guarantee; aborting is a failure.
    MustRecover,
}

impl Contract {
    /// Whether completed answers may overestimate (the message-loss
    /// allowance). Degraded answers are exempt: their LOCAL fallbacks are
    /// exact and are checked as such.
    fn tolerates_overestimates(self) -> bool {
        !matches!(self, Contract::Strict)
    }

    /// Lower-case label for report details and tables.
    pub fn label(self) -> &'static str {
        match self {
            Contract::Strict => "strict",
            Contract::Lossy => "lossy",
            Contract::MustRecover => "must-recover",
        }
    }
}

/// Outcome of verifying one scenario run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The run honored its contract.
    Pass,
    /// The run violated its contract (wrong distances, broken guarantee, an
    /// unexpected error, or a panic).
    Fail,
}

impl Verdict {
    /// Lower-case label for tables and JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Fail => "fail",
        }
    }
}

/// A verdict plus the human-readable reason recorded in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verification {
    /// Pass/fail.
    pub verdict: Verdict,
    /// What was checked / what went wrong.
    pub detail: String,
}

impl Verification {
    pub(crate) fn pass(detail: impl Into<String>) -> Self {
        Verification { verdict: Verdict::Pass, detail: detail.into() }
    }

    pub(crate) fn fail(detail: impl Into<String>) -> Self {
        Verification { verdict: Verdict::Fail, detail: detail.into() }
    }
}

/// Verifies a solver [`Report`] against ground truth using the contract the
/// report itself carries ([`Report::guarantee`]) — the verification layer no
/// longer re-derives per-algorithm approximation math.
pub fn check_report(g: &Graph, report: &Report, contract: Contract) -> Verification {
    // Attribution integrity first: the per-phase breakdown must account for
    // every simulated round the report bills, whatever the contract.
    let phase_rounds: u64 = report.phases.iter().map(|(_, s)| s.rounds).sum();
    if phase_rounds != report.rounds {
        return Verification::fail(format!(
            "phase attribution broken: per-phase rounds sum to {phase_rounds} \
             but the report bills {} rounds",
            report.rounds
        ));
    }
    let lossy = contract.tolerates_overestimates();
    if let Guarantee::Degraded { from, to, cause } = &report.guarantee {
        if contract == Contract::Strict {
            return Verification::fail(format!(
                "degraded guarantee ({from} → {to}, {cause}) on a healthy network"
            ));
        }
        // The downgrade is explicit and its fallback is a LOCAL-mode exact
        // algorithm: hold the answer to pairwise equality with the reference.
        let inner = match &report.answer {
            Answer::Distances(m) => check_matrix(g, m, false),
            Answer::DistanceRow { source, dist } => check_sssp(g, *source, dist, false),
            Answer::DistanceRows { sources, est } => check_kssp_rows(g, sources, est, 1.0, false),
            Answer::Diameter { estimate, .. } => check_diameter(g, *estimate, 1.0, false),
        };
        let detail = format!("degraded {from} → {to} ({cause}): {}", inner.detail);
        return Verification { verdict: inner.verdict, detail };
    }
    match (&report.answer, &report.guarantee) {
        (Answer::Distances(m), Guarantee::Exact) => check_matrix(g, m, lossy),
        (Answer::Distances(_), _) => {
            Verification::fail("approximate full-matrix answers carry no verification contract")
        }
        (Answer::DistanceRow { source, dist }, Guarantee::Exact) => {
            check_sssp(g, *source, dist, lossy)
        }
        (Answer::DistanceRow { source, dist }, guarantee) => check_kssp_rows(
            g,
            std::slice::from_ref(source),
            std::slice::from_ref(dist),
            guarantee.factor(),
            lossy,
        ),
        (Answer::DistanceRows { sources, est }, guarantee) => {
            check_kssp_rows(g, sources, est, guarantee.factor(), lossy)
        }
        (Answer::Diameter { estimate, .. }, guarantee) => {
            check_diameter(g, *estimate, guarantee.factor(), lossy)
        }
    }
}

/// Checks a full distance matrix against ground truth.
///
/// `lossy = false` demands pairwise equality; `lossy = true` demands
/// no-underestimates (the message-loss contract).
pub fn check_matrix(g: &Graph, got: &DistanceMatrix, lossy: bool) -> Verification {
    let truth = apsp(g);
    let mut overestimates = 0usize;
    for u in g.nodes() {
        for v in g.nodes() {
            let (a, e) = (got.get(u, v), truth.get(u, v));
            if a < e {
                return Verification::fail(format!("underestimate d({u},{v}): got {a}, truth {e}"));
            }
            if a > e {
                if !lossy {
                    return Verification::fail(format!("inexact d({u},{v}): got {a}, truth {e}"));
                }
                overestimates += 1;
            }
        }
    }
    if overestimates > 0 {
        Verification::pass(format!(
            "lossy run: {overestimates} overestimated pairs, no underestimates"
        ))
    } else {
        Verification::pass(format!("exact on all {} pairs", g.len() * g.len()))
    }
}

/// Checks one SSSP distance vector (from `source`) against ground truth.
pub fn check_sssp(g: &Graph, source: NodeId, got: &[Distance], lossy: bool) -> Verification {
    let truth = dijkstra(g, source);
    let mut overestimates = 0usize;
    for v in g.nodes() {
        let (a, e) = (got[v.index()], truth.dist(v));
        if a < e {
            return Verification::fail(format!(
                "underestimate d({source},{v}): got {a}, truth {e}"
            ));
        }
        if a > e {
            if !lossy {
                return Verification::fail(format!("inexact d({source},{v}): got {a}, truth {e}"));
            }
            overestimates += 1;
        }
    }
    if overestimates > 0 {
        Verification::pass(format!("lossy run: {overestimates} overestimated nodes"))
    } else {
        Verification::pass(format!("exact on all {} nodes", g.len()))
    }
}

/// Checks k-SSP estimate rows: never underestimate, and (strict contract)
/// worst ratio within `factor`.
pub fn check_kssp_rows(
    g: &Graph,
    sources: &[NodeId],
    est: &[Vec<Distance>],
    factor: f64,
    lossy: bool,
) -> Verification {
    let mut worst: f64 = 1.0;
    for (row, &s) in est.iter().zip(sources) {
        let truth = dijkstra(g, s);
        for v in g.nodes() {
            let (a, e) = (row[v.index()], truth.dist(v));
            if a < e {
                return Verification::fail(format!("underestimate d({s},{v}): got {a}, truth {e}"));
            }
            if !lossy {
                // Ratio accumulation skips the degenerate pairs below, so the
                // strict contract must reject them explicitly: a reachable
                // node estimated unreachable, or a nonzero self-distance.
                if e < INFINITY && a == INFINITY {
                    return Verification::fail(format!(
                        "estimate INFINITY for reachable pair d({s},{v}), truth {e}"
                    ));
                }
                if e == 0 && a != 0 {
                    return Verification::fail(format!(
                        "nonzero self-distance d({s},{s}): got {a}"
                    ));
                }
            }
            if e > 0 && e < INFINITY && a < INFINITY {
                worst = worst.max(a as f64 / e as f64);
            }
        }
    }
    if !lossy && worst > factor + 1e-9 {
        return Verification::fail(format!(
            "approximation guarantee broken: worst ratio {worst:.3} > factor {factor:.3}"
        ));
    }
    Verification::pass(format!("worst ratio {worst:.3} (guarantee {factor:.3})"))
}

/// Checks a diameter estimate: `D ≤ estimate`, and (strict contract)
/// `estimate ≤ factor · D`.
pub fn check_diameter(g: &Graph, estimate: Distance, factor: f64, lossy: bool) -> Verification {
    let d = eccentricities(g).into_iter().max().unwrap_or(0);
    if d == INFINITY {
        return Verification::fail("ground-truth diameter is infinite (disconnected graph?)");
    }
    if estimate < d {
        return Verification::fail(format!("diameter underestimated: got {estimate}, D = {d}"));
    }
    if !lossy && (estimate as f64) > factor * d as f64 + 1e-9 {
        return Verification::fail(format!(
            "diameter guarantee broken: got {estimate}, D = {d}, factor {factor:.3}"
        ));
    }
    Verification::pass(format!("estimate {estimate} vs D = {d} (factor {factor:.3})"))
}

/// Classifies an algorithm error under the scenario's contract: expected (and
/// therefore a pass) only under [`Contract::Lossy`] **when the plan actually
/// removed messages** — an error on a run where nothing was dropped is an
/// algorithm defect hiding behind the fault-tolerance contract. Under
/// [`Contract::MustRecover`] an abort is always a failure: chaos workloads
/// must complete (possibly degraded), never bail out.
pub fn check_error(err: &HybridError, contract: Contract, dropped_messages: u64) -> Verification {
    match contract {
        Contract::MustRecover => Verification::fail(format!(
            "aborted under the must-recover contract ({dropped_messages} dropped messages): {err}"
        )),
        Contract::Lossy if dropped_messages > 0 => Verification::pass(format!(
            "fault surfaced as structured error after {dropped_messages} dropped messages: {err}"
        )),
        Contract::Lossy => Verification::fail(format!(
            "error under a lossy plan but no message was dropped — defect, not fault: {err}"
        )),
        Contract::Strict => {
            Verification::fail(format!("unexpected error on healthy network: {err}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators::path;

    #[test]
    fn strict_matrix_detects_inexactness_and_underestimates() {
        let g = path(4, 2).unwrap();
        let truth = apsp(&g);
        assert_eq!(check_matrix(&g, &truth, false).verdict, Verdict::Pass);

        let mut over = truth.clone();
        over.set(NodeId::new(0), NodeId::new(3), 100);
        assert_eq!(check_matrix(&g, &over, false).verdict, Verdict::Fail);
        // The lossy contract tolerates overestimates…
        assert_eq!(check_matrix(&g, &over, true).verdict, Verdict::Pass);

        let mut under = truth.clone();
        under.set(NodeId::new(0), NodeId::new(3), 1);
        // …but never underestimates.
        assert_eq!(check_matrix(&g, &under, true).verdict, Verdict::Fail);
    }

    #[test]
    fn sssp_and_kssp_checks() {
        let g = path(5, 1).unwrap();
        let truth = dijkstra(&g, NodeId::new(0));
        assert_eq!(check_sssp(&g, NodeId::new(0), truth.as_slice(), false).verdict, Verdict::Pass);
        let mut wrong = truth.as_slice().to_vec();
        wrong[4] = 2;
        assert_eq!(check_sssp(&g, NodeId::new(0), &wrong, true).verdict, Verdict::Fail);

        let sources = vec![NodeId::new(0), NodeId::new(2)];
        let est: Vec<Vec<Distance>> = sources
            .iter()
            .map(|&s| dijkstra(&g, s).as_slice().iter().map(|&d| d * 2).collect())
            .collect();
        // Doubling every distance is a ratio-2 approximation.
        assert_eq!(check_kssp_rows(&g, &sources, &est, 2.0, false).verdict, Verdict::Pass);
        assert_eq!(check_kssp_rows(&g, &sources, &est, 1.5, false).verdict, Verdict::Fail);
        assert_eq!(check_kssp_rows(&g, &sources, &est, 1.5, true).verdict, Verdict::Pass);
    }

    #[test]
    fn diameter_check() {
        let g = path(6, 1).unwrap(); // D = 5
        assert_eq!(check_diameter(&g, 5, 1.5, false).verdict, Verdict::Pass);
        assert_eq!(check_diameter(&g, 7, 1.5, false).verdict, Verdict::Pass);
        assert_eq!(check_diameter(&g, 4, 1.5, false).verdict, Verdict::Fail);
        assert_eq!(check_diameter(&g, 20, 1.5, false).verdict, Verdict::Fail);
        assert_eq!(check_diameter(&g, 20, 1.5, true).verdict, Verdict::Pass);
    }

    #[test]
    fn errors_pass_only_under_lossy_plans_with_real_drops() {
        let err = HybridError::MissingTokens { receiver: NodeId::new(1), expected: 3, got: 1 };
        assert_eq!(check_error(&err, Contract::Lossy, 7).verdict, Verdict::Pass);
        assert_eq!(
            check_error(&err, Contract::Lossy, 0).verdict,
            Verdict::Fail,
            "no drop, no excuse"
        );
        assert_eq!(check_error(&err, Contract::Strict, 7).verdict, Verdict::Fail);
        assert_eq!(check_error(&err, Contract::Strict, 0).verdict, Verdict::Fail);
        // The chaos contract never accepts an abort, dropped messages or not.
        assert_eq!(check_error(&err, Contract::MustRecover, 7).verdict, Verdict::Fail);
        assert_eq!(check_error(&err, Contract::MustRecover, 0).verdict, Verdict::Fail);
    }

    #[test]
    fn check_report_applies_the_carried_guarantee() {
        use hybrid_core::solver::{solve, Query};
        use hybrid_sim::{HybridConfig, HybridNet};

        let g = path(6, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let report = solve(&mut net, &Query::apsp().build().unwrap(), 3).unwrap();
        assert_eq!(report.guarantee, Guarantee::Exact);
        assert_eq!(check_report(&g, &report, Contract::Strict).verdict, Verdict::Pass);

        // A doctored report with a broken answer must fail under its own
        // contract.
        let mut bad = report.clone();
        if let Answer::Distances(m) = &mut bad.answer {
            m.set(NodeId::new(0), NodeId::new(5), 1);
        }
        assert_eq!(check_report(&g, &bad, Contract::Strict).verdict, Verdict::Fail);

        // A diameter report is checked inside [D, factor·D] from its own
        // guarantee — no per-corollary re-derivation.
        let diam = Report {
            answer: Answer::Diameter { estimate: 7, exact_local: false },
            guarantee: Guarantee::DiameterFactor { factor: 1.5 },
            ..report.clone()
        };
        assert_eq!(check_report(&g, &diam, Contract::Strict).verdict, Verdict::Pass);
        let diam_bad = Report {
            answer: Answer::Diameter { estimate: 20, exact_local: false },
            guarantee: Guarantee::DiameterFactor { factor: 1.5 },
            ..report
        };
        assert_eq!(check_report(&g, &diam_bad, Contract::Strict).verdict, Verdict::Fail);
    }

    #[test]
    fn check_report_rejects_broken_phase_attribution() {
        use hybrid_core::solver::{solve, Query};
        use hybrid_sim::{HybridConfig, HybridNet};

        let g = path(6, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let report = solve(&mut net, &Query::apsp().build().unwrap(), 3).unwrap();
        assert!(report.rounds > 0);
        let mut tampered = report.clone();
        tampered.phases.clear();
        let v = check_report(&g, &tampered, Contract::Strict);
        assert_eq!(v.verdict, Verdict::Fail);
        assert!(v.detail.contains("phase attribution"), "{}", v.detail);
    }

    #[test]
    fn degraded_reports_are_held_to_exactness_and_rejected_on_healthy_nets() {
        use hybrid_core::solver::{solve, DegradeCause, Query};
        use hybrid_sim::{HybridConfig, HybridNet};

        let g = path(6, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let report = solve(&mut net, &Query::apsp().build().unwrap(), 3).unwrap();
        let degraded = Report {
            guarantee: Guarantee::Degraded {
                from: "apsp-thm11",
                to: "apsp-local-flood",
                cause: DegradeCause::CrashDetected,
            },
            ..report.clone()
        };
        // An exact fallback answer passes under both fault contracts …
        for contract in [Contract::Lossy, Contract::MustRecover] {
            let v = check_report(&g, &degraded, contract);
            assert_eq!(v.verdict, Verdict::Pass, "{}", v.detail);
            assert!(v.detail.contains("degraded apsp-thm11 → apsp-local-flood"), "{}", v.detail);
        }
        // … is rejected on a healthy network (nothing may degrade there) …
        assert_eq!(check_report(&g, &degraded, Contract::Strict).verdict, Verdict::Fail);
        // … and the degraded answer itself gets no loss allowance: an
        // overestimate fails even under the lossy contract.
        let mut bad = degraded.clone();
        if let Answer::Distances(m) = &mut bad.answer {
            m.set(NodeId::new(0), NodeId::new(5), 100);
        }
        assert_eq!(check_report(&g, &bad, Contract::Lossy).verdict, Verdict::Fail);
    }

    #[test]
    fn strict_kssp_rejects_degenerate_estimates() {
        let g = path(4, 1).unwrap();
        let sources = vec![NodeId::new(0)];
        let mut est = vec![dijkstra(&g, NodeId::new(0)).as_slice().to_vec()];
        est[0][3] = INFINITY; // reachable node estimated unreachable
        let v = check_kssp_rows(&g, &sources, &est, 10.0, false);
        assert_eq!(v.verdict, Verdict::Fail);
        assert!(v.detail.contains("INFINITY"), "{}", v.detail);
        // The lossy contract tolerates it (a lost message can cost coverage).
        assert_eq!(check_kssp_rows(&g, &sources, &est, 10.0, true).verdict, Verdict::Pass);

        let mut est = vec![dijkstra(&g, NodeId::new(0)).as_slice().to_vec()];
        est[0][0] = 5; // nonzero self-distance
        assert_eq!(check_kssp_rows(&g, &sources, &est, 10.0, false).verdict, Verdict::Fail);
    }
}
