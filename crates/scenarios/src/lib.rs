//! Scenario engine for the HYBRID-model reproduction: a declarative workload
//! registry with fault injection, a parallel runner, and golden verification.
//!
//! A [`Scenario`] is pure data —
//! `GraphFamily × WeightModel × FaultPlan × AlgorithmSuite × Seed` — and the
//! static [`registry()`] names every workload the project ships (`"e2-er"`,
//! `"sparse-grid-thm11"`, `"faulty-soda20"`, …). The [`run_scenarios`] runner
//! executes batches on scoped worker threads with deterministic per-scenario
//! RNG streams, and every run is checked against ground-truth Dijkstra (exact,
//! the run's own α-approximation guarantee, or the lossy no-silent-corruption
//! contract for drop/crash fault plans) before a structured
//! [`ScenarioReport`] is emitted.
//!
//! # Example
//!
//! ```
//! use hybrid_scenarios::{find, registry, run_scenario};
//!
//! // Run one named workload at smoke size and verify it against ground truth.
//! let scenario = find("sparse-grid-thm11").expect("registered");
//! let report = run_scenario(scenario, 36);
//! assert!(report.passed(), "{}", report.detail);
//! assert!(report.rounds > 0);
//!
//! // The registry spans many families; filter it by tag.
//! assert!(registry().len() >= 10);
//! assert!(hybrid_scenarios::by_tag("faulty").len() >= 2);
//! ```

#![warn(missing_docs)]

pub mod churn;
pub mod model;
pub mod registry;
pub mod runner;
pub mod verify;
pub mod workloads;

pub use hybrid_core::solver::{DiameterCorollary, KsspCorollary, Query, QueryError};
pub use model::{AlgorithmSuite, ChurnPlan, FaultPlan, GraphFamily, Scenario, WeightModel};
pub use registry::{all_tags, by_tag, find, registry};
pub use runner::{
    run_scenario, run_scenario_traced, run_scenario_with, run_scenarios, run_scenarios_with,
    Engine, ScenarioReport,
};
pub use verify::{check_report, Contract, Verdict, Verification};
