//! Proves the acceptance criterion of the hot-path overhaul: a steady-state
//! `exchange_into` performs **zero heap allocations** per call.
//!
//! A counting global allocator tallies every `alloc`/`realloc`; after a warm-up
//! call (which sizes the scratch arenas, the inbox arena, and interns the phase
//! label) repeated exchanges with the same shape must not allocate at all.

// Per-node `for v in 0..n` index loops mirror the message-passing idiom of
// the simulator (v *is* the node).
#![allow(clippy::needless_range_loop)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hybrid_graph::generators::path;
use hybrid_graph::NodeId;
use hybrid_sim::{Envelope, FlatInboxes, HybridConfig, HybridNet};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The allocation counter is process-global, so measured windows of the
/// tests in this binary must never overlap: every test holds this lock.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Refills `outbox` with a fixed all-to-some pattern (stays within existing
/// capacity after the first fill).
fn fill_outbox(outbox: &mut Vec<Envelope<u64>>, n: usize, round: u64) {
    for s in 0..n {
        for j in 0..3 {
            let d = (s * 5 + j * 7 + 1) % n;
            outbox.push(Envelope::new(NodeId::new(s), NodeId::new(d), round * 1000 + j as u64));
        }
    }
}

#[test]
fn steady_state_exchange_into_is_allocation_free() {
    let _guard = serial();
    let g = path(64, 1).expect("graph");
    let mut net = HybridNet::new(&g, HybridConfig::default());
    let mut outbox: Vec<Envelope<u64>> = Vec::new();
    let mut inbox: FlatInboxes<u64> = FlatInboxes::new();

    // Warm-up: grows outbox/arena capacity, sizes the permutation scratch,
    // interns the phase label, and sizes the receive-load histogram.
    for round in 0..3 {
        fill_outbox(&mut outbox, 64, round);
        net.exchange_into("steady", &mut outbox, &mut inbox).expect("exchange");
    }

    let before = allocations();
    for round in 3..103 {
        fill_outbox(&mut outbox, 64, round);
        net.exchange_into("steady", &mut outbox, &mut inbox).expect("exchange");
        assert_eq!(inbox.len(), 64 * 3);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state exchange_into must not allocate (got {} allocations over 100 calls)",
        after - before
    );
    assert_eq!(net.rounds(), 103);
}

/// A *trivial* fault plan (no drops, no crashes) plus an enabled reliable
/// layer must leave the hot path untouched: the trivial plan installs no
/// fault state, the reliable mode stays inert, and steady-state exchanges
/// stay allocation-free — the reliability scratch lives on the net, sized
/// once, never re-allocated per call.
#[test]
fn trivial_plan_with_reliable_mode_stays_allocation_free() {
    let _guard = serial();
    let g = path(64, 1).expect("graph");
    let mut net = HybridNet::new(&g, HybridConfig::default());
    net.inject_faults(&hybrid_sim::FaultPlan::default()).expect("trivial plan is valid");
    net.set_reliable(true);
    assert!(!net.has_faults(), "a trivial plan installs no fault state");
    let mut outbox: Vec<Envelope<u64>> = Vec::new();
    let mut inbox: FlatInboxes<u64> = FlatInboxes::new();

    for round in 0..3 {
        fill_outbox(&mut outbox, 64, round);
        net.exchange_into("steady", &mut outbox, &mut inbox).expect("exchange");
    }

    let before = allocations();
    for round in 3..103 {
        fill_outbox(&mut outbox, 64, round);
        net.exchange_into("steady", &mut outbox, &mut inbox).expect("exchange");
        assert_eq!(inbox.len(), 64 * 3);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "trivial-plan reliable-mode exchange must not allocate (got {} over 100 calls)",
        after - before
    );
    assert_eq!(net.rounds(), 103);
    assert_eq!(net.metrics().retransmissions, 0, "reliable mode stays inert without faults");
}

/// The k-SSP framework spends its simulated-CLIQUE rounds in token routing's
/// Algorithm 4 loop: a *request* exchange answered by a *response* exchange,
/// both paced to the send cap, round after round. This test drives that exact
/// ping-pong shape on the raw engine — two phase labels, two outbox/arena
/// pairs, per-round response construction from the delivered requests — and
/// pins it allocation-free in steady state.
#[test]
fn steady_state_ksssp_request_response_round_is_allocation_free() {
    let _guard = serial();
    let g = path(64, 1).expect("graph");
    let mut net = HybridNet::new(&g, HybridConfig::default());
    let mut req_outbox: Vec<Envelope<u32>> = Vec::new();
    let mut req_flat: FlatInboxes<u32> = FlatInboxes::new();
    let mut resp_outbox: Vec<Envelope<(u32, u64)>> = Vec::new();
    let mut resp_flat: FlatInboxes<(u32, u64)> = FlatInboxes::new();
    let mut received: Vec<(usize, u64)> = Vec::with_capacity(64 * 4);

    let mut round_trip = |round: u64, net: &mut HybridNet<'_>| {
        // Requests: every node asks a pseudo-random intermediate for a label.
        for v in 0..64usize {
            for j in 0..3u32 {
                let mid = (v * 11 + j as usize * 17 + round as usize) % 64;
                req_outbox.push(Envelope::new(NodeId::new(v), NodeId::new(mid), j));
            }
        }
        net.exchange_into("kssp:requests", &mut req_outbox, &mut req_flat).expect("requests");
        // Responses: intermediates answer each request in the next exchange.
        for (mid, msgs) in req_flat.iter() {
            for &(requester, lab) in msgs {
                resp_outbox.push(Envelope::new(
                    NodeId::new(mid),
                    requester,
                    (lab, (mid as u64) << 8 | lab as u64),
                ));
            }
        }
        net.exchange_into("kssp:responses", &mut resp_outbox, &mut resp_flat).expect("responses");
        received.clear();
        resp_flat.drain_into(|dst, (_, (_, payload))| received.push((dst, payload)));
        assert_eq!(received.len(), 64 * 3);
    };

    for round in 0..3 {
        round_trip(round, &mut net);
    }
    let before = allocations();
    for round in 3..53 {
        round_trip(round, &mut net);
    }
    let after = allocations();
    assert_eq!(after - before, 0, "steady-state request/response round must not allocate");
    assert_eq!(net.rounds(), 2 * 53);
}

/// The diameter framework's global rounds are tree traffic: convergecast up a
/// binary tree over node IDs, then broadcast back down (Lemma B.2), plus the
/// dissemination tree phases — every round each node talks to its parent or
/// children. This test drives repeated up/down sweeps over a reused outbox
/// and arena and pins the steady-state rounds allocation-free.
#[test]
fn steady_state_diameter_tree_round_is_allocation_free() {
    let _guard = serial();
    let g = path(64, 1).expect("graph");
    let mut net = HybridNet::new(&g, HybridConfig::default());
    let mut outbox: Vec<Envelope<u64>> = Vec::new();
    let mut flat: FlatInboxes<u64> = FlatInboxes::new();
    let mut acc: Vec<u64> = (0..64).map(|v| v as u64).collect();

    let mut sweep = |net: &mut HybridNet<'_>| {
        // Convergecast: children send their running values to their parents.
        for v in 1..64usize {
            outbox.push(Envelope::new(NodeId::new(v), NodeId::new((v - 1) / 2), acc[v]));
        }
        net.exchange_into("diam:aggregate-up", &mut outbox, &mut flat).expect("up");
        flat.drain_into(|dst, (_, val)| acc[dst] = acc[dst].max(val));
        // Broadcast: parents push the maximum back down.
        for v in 0..64usize {
            for c in [2 * v + 1, 2 * v + 2] {
                if c < 64 {
                    outbox.push(Envelope::new(NodeId::new(v), NodeId::new(c), acc[v]));
                }
            }
        }
        net.exchange_into("diam:aggregate-down", &mut outbox, &mut flat).expect("down");
        flat.drain_into(|dst, (_, val)| acc[dst] = acc[dst].max(val));
    };

    for _ in 0..3 {
        sweep(&mut net);
    }
    let before = allocations();
    for _ in 0..50 {
        sweep(&mut net);
    }
    let after = allocations();
    assert_eq!(after - before, 0, "steady-state tree round must not allocate");
    assert_eq!(acc[63], 63, "aggregate reached every node");
}

/// Tracing must be pay-for-what-you-use: with no sink installed the per-site
/// cost is one `Option` branch, and a past `set_trace`/`take_trace` cycle
/// must leave no residue — steady-state exchanges stay allocation-free both
/// before any tracing and after tracing has been switched off again.
#[test]
fn exchange_with_tracing_disabled_stays_allocation_free() {
    let _guard = serial();
    let g = path(64, 1).expect("graph");
    let mut net = HybridNet::new(&g, HybridConfig::default());
    let mut outbox: Vec<Envelope<u64>> = Vec::new();
    let mut inbox: FlatInboxes<u64> = FlatInboxes::new();

    for round in 0..3 {
        fill_outbox(&mut outbox, 64, round);
        net.exchange_into("steady", &mut outbox, &mut inbox).expect("exchange");
    }

    // Trace a few exchanges, then detach the recorder again.
    net.set_trace(hybrid_sim::Recorder::new());
    for round in 3..6 {
        fill_outbox(&mut outbox, 64, round);
        net.exchange_into("steady", &mut outbox, &mut inbox).expect("exchange");
    }
    let rec = net.take_trace().expect("recorder was installed");
    assert_eq!(rec.events().len(), 3, "one Exchange event per traced call");
    assert!(!net.tracing());

    let before = allocations();
    for round in 6..106 {
        fill_outbox(&mut outbox, 64, round);
        net.exchange_into("steady", &mut outbox, &mut inbox).expect("exchange");
        assert_eq!(inbox.len(), 64 * 3);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "exchange with tracing disabled must not allocate (got {} over 100 calls)",
        after - before
    );
    assert_eq!(net.rounds(), 106);
}

/// `drain_queues` pools its pacing scratch (outbox + inbox arena) on the net
/// per payload type: a repeat drain of the same shape must allocate strictly
/// less than the cold first call — only the caller-visible queue and result
/// vectors remain.
#[test]
fn drain_queues_repeat_calls_reuse_pooled_scratch() {
    let _guard = serial();
    let g = path(64, 1).expect("graph");
    let mut net = HybridNet::new(&g, HybridConfig::default());
    let mk_queues = || -> Vec<Vec<Envelope<u64>>> {
        let mut queues: Vec<Vec<Envelope<u64>>> = vec![Vec::new(); 64];
        for v in 0..64usize {
            for j in 0..20u64 {
                queues[v].push(Envelope::new(NodeId::new(v), NodeId::new((v * 7 + 3) % 64), j));
            }
        }
        queues
    };
    let queues = mk_queues();
    let before = allocations();
    net.drain_queues("drain", queues).expect("cold");
    let cold = allocations() - before;
    let queues = mk_queues();
    let before = allocations();
    net.drain_queues("drain", queues).expect("warm");
    let warm = allocations() - before;
    assert!(
        warm < cold,
        "pooled pacing scratch must shrink repeat-call allocations (cold {cold}, warm {warm})"
    );
}

#[test]
fn steady_state_drain_round_is_allocation_free() {
    let _guard = serial();
    // The drain loop's per-round work (pacing bookkeeping + exchange_into +
    // arena drain) must also be allocation-free; the nested-Vec result of the
    // public `drain_queues` is the only allocating part, so this test drives
    // the same building blocks the way `drain_queues`'s inner loop does.
    let g = path(64, 1).expect("graph");
    let mut net = HybridNet::new(&g, HybridConfig::default());
    let mut outbox: Vec<Envelope<u64>> = Vec::new();
    let mut inbox: FlatInboxes<u64> = FlatInboxes::new();
    let mut sink: Vec<(usize, NodeId, u64)> = Vec::with_capacity(64 * 4);

    for round in 0..3 {
        fill_outbox(&mut outbox, 64, round);
        net.exchange_into("drain", &mut outbox, &mut inbox).expect("exchange");
        sink.clear();
        inbox.drain_into(|dst, (src, msg)| sink.push((dst, src, msg)));
    }

    let before = allocations();
    for round in 3..53 {
        fill_outbox(&mut outbox, 64, round);
        net.exchange_into("drain", &mut outbox, &mut inbox).expect("exchange");
        sink.clear();
        inbox.drain_into(|dst, (src, msg)| sink.push((dst, src, msg)));
        assert_eq!(sink.len(), 64 * 3);
    }
    let after = allocations();
    assert_eq!(after - before, 0, "steady-state drain round must not allocate");
}
