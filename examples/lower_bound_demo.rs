//! Demonstrates the paper's two lower-bound constructions (§6, §7).
//!
//! 1. Figure 2 / Lemmas 7.1–7.2: the diameter of `Γ^{a,b}_{k,ℓ,W}` encodes
//!    2-party set disjointness — we build instances and show the diameter gap.
//! 2. Figure 1 / Theorem 1.5: node `b` must learn `Ω(k)` bits through an
//!    `L`-hop bottleneck — we run a real k-SSP algorithm on the construction
//!    and measure the information that actually crosses the cut.
//!
//! Unlike the workload examples, this one does not draw from the scenario
//! registry: the lower-bound harnesses build their adversarial constructions
//! (and their nets) internally, so there is no graph/config setup to share.
//!
//! ```sh
//! cargo run --release --example lower_bound_demo
//! ```

use hybrid_shortest_paths::core::lower_bound_experiments::{
    run_diameter_lower_bound, run_kssp_lower_bound,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Diameter lower bound (Theorem 1.6, Figure 2) ==");
    println!("   k | ell |  W  | instance     | diameter | lemma says | implied LB (rounds)");
    println!("-----+-----+-----+--------------+----------+------------+--------------------");
    for k in [3usize, 5, 7] {
        for disjoint in [true, false] {
            let rep = run_diameter_lower_bound(k, 4, 16, disjoint, 0.5, 11)?;
            println!(
                "{k:>4} | {ell:>3} | {w:>3} | {kind:<12} | {diam:>8} | {lemma:>10} | {lb:>19.4}",
                ell = rep.ell,
                w = rep.w,
                kind = if disjoint { "disjoint" } else { "intersecting" },
                diam = rep.true_diameter,
                lemma = rep.lemma_diameter,
                lb = rep.implied_round_lb,
            );
            assert!(rep.true_diameter <= rep.lemma_diameter);
        }
    }
    println!("\nThe gap (W+2l vs 2W+l) is what any exact/(2-eps)-approximate algorithm");
    println!("must resolve — hence the Ω̃(n^{{1/3}}) bound of Theorem 1.6.\n");

    println!("== k-SSP lower bound (Theorem 1.5, Figure 1) ==");
    println!(
        "   k |  L  | entropy bits | cut bits/round | predicted LB | measured rounds | cut msgs"
    );
    println!(
        "-----+-----+--------------+----------------+--------------+-----------------+---------"
    );
    for k in [8usize, 16, 32] {
        let l = (k as f64).sqrt().ceil() as usize;
        let rep = run_kssp_lower_bound(6 * l, l, k, 0.5, 5)?;
        println!(
            "{k:>4} | {l:>3} | {e:>12.1} | {c:>14.0} | {p:>12.4} | {m:>15} | {cm:>8}",
            e = rep.entropy_bits,
            c = rep.cut_capacity_bits_per_round,
            p = rep.predicted_round_lb,
            m = rep.measured_rounds,
            cm = rep.measured_cut_messages,
        );
        assert!(rep.b_decodes_assignment, "the algorithm must actually solve the instance");
    }
    println!("\nThe real algorithm's round count always sits above the information-");
    println!("theoretic prediction, and b provably learned the Ω(k)-bit assignment.");
    Ok(())
}
