//! Workload graph generators.
//!
//! The experiments sweep the paper's algorithms over standard families: sparse
//! random graphs (Erdős–Rényi), geometric graphs (the "local radio network" picture
//! motivating the HYBRID model), grids, power-law graphs (Barabási–Albert),
//! small worlds (Watts–Strogatz), and adversarial shapes (long paths, heavy
//! hubs) that stress specific parameters (`D`, `SPD`, skeleton sizes).
//!
//! All generators return connected graphs (random families are patched to
//! connectivity by linking components, which is standard practice for
//! distributed-algorithm benchmarks) and take explicit weights or an RNG so runs are
//! reproducible.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dist::Distance;
use crate::graph::{Graph, GraphBuilder, GraphError};
use crate::ids::NodeId;

/// Path `0 – 1 – … – (n-1)` with uniform edge weight `w`.
pub fn path(n: usize, w: Distance) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId::new(i - 1), NodeId::new(i), w)?;
    }
    b.build()
}

/// Cycle on `n ≥ 3` nodes with uniform edge weight `w`.
pub fn cycle(n: usize, w: Distance) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId::new(i - 1), NodeId::new(i), w)?;
    }
    if n > 2 {
        b.add_edge(NodeId::new(n - 1), NodeId::new(0), w)?;
    }
    b.build()
}

/// `rows × cols` grid with uniform edge weight `w`.
pub fn grid(rows: usize, cols: usize, w: Distance) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| NodeId::new(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1), w)?;
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c), w)?;
            }
        }
    }
    b.build()
}

/// Complete graph `K_n` with uniform edge weight `w`.
pub fn complete(n: usize, w: Distance) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(NodeId::new(i), NodeId::new(j), w)?;
        }
    }
    b.build()
}

/// Star with center `0` and `n-1` leaves, uniform edge weight `w`.
pub fn star(n: usize, w: Distance) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId::new(0), NodeId::new(i), w)?;
    }
    b.build()
}

/// Balanced binary tree on `n` nodes (heap indexing), uniform edge weight `w`.
pub fn binary_tree(n: usize, w: Distance) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId::new((i - 1) / 2), NodeId::new(i), w)?;
    }
    b.build()
}

/// Caterpillar: a spine path of `spine` nodes, each carrying `legs` pendant leaves.
/// Total nodes: `spine * (1 + legs)`.
pub fn caterpillar(spine: usize, legs: usize, w: Distance) -> Result<Graph, GraphError> {
    let n = spine * (1 + legs);
    let mut b = GraphBuilder::new(n);
    for i in 1..spine {
        b.add_edge(NodeId::new(i - 1), NodeId::new(i), w)?;
    }
    for s in 0..spine {
        for l in 0..legs {
            b.add_edge(NodeId::new(s), NodeId::new(spine + s * legs + l), w)?;
        }
    }
    b.build()
}

/// Barbell: two cliques of size `k` joined by a path of `bridge` intermediate nodes.
/// Total nodes: `2k + bridge`.
pub fn barbell(k: usize, bridge: usize, w: Distance) -> Result<Graph, GraphError> {
    let n = 2 * k + bridge;
    let mut b = GraphBuilder::new(n);
    for i in 0..k {
        for j in (i + 1)..k {
            b.add_edge(NodeId::new(i), NodeId::new(j), w)?;
        }
    }
    for i in k..2 * k {
        for j in (i + 1)..2 * k {
            b.add_edge(NodeId::new(i), NodeId::new(j), w)?;
        }
    }
    // Bridge path between node 0 (left clique) and node k (right clique).
    let mut prev = NodeId::new(0);
    for t in 0..bridge {
        let mid = NodeId::new(2 * k + t);
        b.add_edge(prev, mid, w)?;
        prev = mid;
    }
    b.add_edge(prev, NodeId::new(k), w)?;
    b.build()
}

/// Cycle of `n` nodes with uniform weight `cycle_w` plus one heavy chord
/// `{0, n/2}` of weight `chord_w`. With `chord_w` large the chord shrinks hop
/// distances but never lies on a weighted shortest path, driving `SPD > D`.
pub fn weighted_cycle_with_chord(
    n: usize,
    cycle_w: Distance,
    chord_w: Distance,
) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(NodeId::new(i - 1), NodeId::new(i), cycle_w)?;
    }
    b.add_edge(NodeId::new(n - 1), NodeId::new(0), cycle_w)?;
    b.add_edge_if_absent(NodeId::new(0), NodeId::new(n / 2), chord_w)?;
    b.build()
}

/// A unit-weight path of `n-1` nodes plus a hub adjacent to every path node with
/// heavy weight `hub_w ≥ n`. Hop diameter is 2, but all weighted shortest paths
/// follow the path, so `SPD(G) = n - 2`. This is the family where the paper's
/// `Õ(n^{2/5})` SSSP (Theorem 1.3) beats the `Õ(√SPD)` algorithm of \[3\].
pub fn path_with_heavy_hub(n: usize, hub_w: Distance) -> Result<Graph, GraphError> {
    assert!(n >= 3, "need at least 2 path nodes and a hub");
    let mut b = GraphBuilder::new(n);
    // Nodes 0..n-1 form the path; node n-1 is the hub.
    for i in 1..n - 1 {
        b.add_edge(NodeId::new(i - 1), NodeId::new(i), 1)?;
    }
    for i in 0..n - 1 {
        b.add_edge(NodeId::new(n - 1), NodeId::new(i), hub_w)?;
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` with weights uniform in `[1, max_w]`, patched to
/// connectivity by chaining component representatives (extra edges get weight
/// `max_w`).
pub fn erdos_renyi_connected<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    max_w: Distance,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(max_w >= 1);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                let w = rng.gen_range(1..=max_w);
                b.add_edge(NodeId::new(i), NodeId::new(j), w)?;
            }
        }
    }
    connect_components(&mut b, max_w, rng)?;
    b.build()
}

/// Random geometric graph: `n` points uniform in the unit square, edges between
/// points at Euclidean distance `≤ radius`, weight `1 + ⌊dist · max_w⌋` (close nodes
/// get light edges — the hybrid-network story of cheap short-range links). Patched
/// to connectivity.
pub fn random_geometric_connected<R: Rng + ?Sized>(
    n: usize,
    radius: f64,
    max_w: Distance,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    assert!(radius > 0.0);
    assert!(max_w >= 1);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = pts[i].0 - pts[j].0;
            let dy = pts[i].1 - pts[j].1;
            let d = (dx * dx + dy * dy).sqrt();
            if d <= radius {
                let w = 1 + (d / radius * (max_w.saturating_sub(1)) as f64).floor() as Distance;
                b.add_edge(NodeId::new(i), NodeId::new(j), w.max(1))?;
            }
        }
    }
    connect_components(&mut b, max_w, rng)?;
    b.build()
}

/// The "enterprise WAN" topology of the paper's introduction: `clusters`
/// dense local networks (Erdős–Rényi with edge probability `intra_p`, light
/// weights in `[1, local_w]`) joined by a sparse random backbone of heavier
/// links (weight `link_w`): each cluster gets backbone edges to the next
/// cluster (ring, guaranteeing connectivity) plus `extra_links` random
/// cross-cluster edges.
pub fn clustered_network<R: Rng + ?Sized>(
    clusters: usize,
    cluster_size: usize,
    intra_p: f64,
    local_w: Distance,
    link_w: Distance,
    extra_links: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    assert!(clusters >= 1 && cluster_size >= 1);
    assert!(local_w >= 1 && link_w >= 1);
    let n = clusters * cluster_size;
    let mut b = GraphBuilder::new(n);
    let node = |c: usize, i: usize| NodeId::new(c * cluster_size + i);
    // Dense local networks, patched to intra-cluster connectivity by a chain.
    for c in 0..clusters {
        for i in 0..cluster_size {
            for j in (i + 1)..cluster_size {
                if rng.gen_bool(intra_p) {
                    b.add_edge(node(c, i), node(c, j), rng.gen_range(1..=local_w))?;
                }
            }
        }
        for i in 1..cluster_size {
            b.add_edge_if_absent(node(c, i - 1), node(c, i), local_w)?;
        }
    }
    // Backbone ring plus random extra links.
    for c in 0..clusters {
        let next = (c + 1) % clusters;
        if clusters > 1 && (c != next) && (clusters > 2 || c < next) {
            b.add_edge_if_absent(
                node(c, rng.gen_range(0..cluster_size)),
                node(next, rng.gen_range(0..cluster_size)),
                link_w,
            )?;
        }
    }
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < extra_links && attempts < 50 * (extra_links + 1) {
        attempts += 1;
        let c1 = rng.gen_range(0..clusters);
        let c2 = rng.gen_range(0..clusters);
        if c1 == c2 {
            continue;
        }
        let u = node(c1, rng.gen_range(0..cluster_size));
        let v = node(c2, rng.gen_range(0..cluster_size));
        if b.add_edge_if_absent(u, v, link_w)? {
            added += 1;
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment on `n` nodes: a power-law degree
/// distribution with a few heavy hubs — the "Internet-like overlay" family the
/// sparse-graph hybrid literature (Feldmann–Hinnenthal–Scheideler) evaluates
/// on. Starts from a star on `attach + 1` nodes; every further node attaches
/// to `attach` distinct existing nodes chosen proportionally to their degree.
/// Weights uniform in `[1, max_w]`. Connected by construction, and every node
/// outside the seed star has degree ≥ `attach`.
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    attach: usize,
    max_w: Distance,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    assert!(attach >= 1, "each new node must attach somewhere");
    assert!(n > attach, "need more nodes than attachment edges");
    assert!(max_w >= 1);
    let mut b = GraphBuilder::new(n);
    // `endpoints` holds one entry per edge endpoint, so uniform sampling from
    // it is degree-proportional sampling of nodes.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * attach * n);
    for leaf in 1..=attach {
        b.add_edge(NodeId::new(0), NodeId::new(leaf), rng.gen_range(1..=max_w))?;
        endpoints.push(0);
        endpoints.push(leaf);
    }
    for v in attach + 1..n {
        let mut picked = 0usize;
        let base = endpoints.len();
        while picked < attach {
            let t = endpoints[rng.gen_range(0..base)];
            if b.add_edge_if_absent(NodeId::new(v), NodeId::new(t), rng.gen_range(1..=max_w))? {
                endpoints.push(v);
                endpoints.push(t);
                picked += 1;
            }
        }
    }
    b.build()
}

/// Watts–Strogatz small world on `n` nodes: a ring lattice where every node is
/// linked to its `k / 2` nearest neighbors on each side (`k` even), with every
/// lattice edge rewired to a uniform random endpoint with probability `beta`.
/// High clustering with a logarithmic diameter — the regime between the cycle
/// (`beta = 0`) and Erdős–Rényi-like graphs (`beta = 1`). Weights uniform in
/// `[1, max_w]`; patched to connectivity (rewiring can disconnect the ring).
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    max_w: Distance,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and ≥ 2");
    assert!(n > k, "ring lattice needs n > k");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    assert!(max_w >= 1);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in 1..=k / 2 {
            let lattice = (i + j) % n;
            let w = rng.gen_range(1..=max_w);
            if rng.gen_bool(beta) {
                // Rewire: keep the source, resample the far endpoint.
                let mut done = false;
                for _ in 0..32 {
                    let t = rng.gen_range(0..n);
                    if t != i && b.add_edge_if_absent(NodeId::new(i), NodeId::new(t), w)? {
                        done = true;
                        break;
                    }
                }
                if done {
                    continue;
                }
            }
            b.add_edge_if_absent(NodeId::new(i), NodeId::new(lattice), w)?;
        }
    }
    connect_components(&mut b, max_w, rng)?;
    b.build()
}

/// Random tree (uniform attachment) on `n` nodes with weights in `[1, max_w]`.
pub fn random_tree<R: Rng + ?Sized>(
    n: usize,
    max_w: Distance,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        let w = rng.gen_range(1..=max_w);
        b.add_edge(NodeId::new(parent), NodeId::new(i), w)?;
    }
    b.build()
}

/// Links the connected components of the edges accumulated in `b` by adding a
/// spanning chain between shuffled component representatives.
fn connect_components<R: Rng + ?Sized>(
    b: &mut GraphBuilder,
    w: Distance,
    rng: &mut R,
) -> Result<(), GraphError> {
    let n = b.len();
    if n == 0 {
        return Ok(());
    }
    // Union-find over the staged edges.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut c = x;
        while parent[c] != r {
            let next = parent[c];
            parent[c] = r;
            c = next;
        }
        r
    }
    // GraphBuilder doesn't expose staged edges; rebuild reachability via has_edge is
    // quadratic — instead track unions as edges were added. To keep the builder API
    // minimal we simply re-scan all pairs (only used at generation time, and the
    // generators above are already Θ(n²)).
    for i in 0..n {
        for j in (i + 1)..n {
            if b.has_edge(NodeId::new(i), NodeId::new(j)) {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut reps: Vec<usize> = (0..n).filter(|&i| find(&mut parent, i) == i).collect();
    reps.shuffle(rng);
    for k in 1..reps.len() {
        b.add_edge_if_absent(NodeId::new(reps[k - 1]), NodeId::new(reps[k]), w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::unweighted_diameter;
    use crate::dijkstra::shortest_path_diameter;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_shape() {
        let g = path(6, 2).unwrap();
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.degree(NodeId::new(3)), 2);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(5, 1).unwrap();
        assert_eq!(g.num_edges(), 5);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4, 1).unwrap();
        assert_eq!(g.len(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(unweighted_diameter(&g), 5);
    }

    #[test]
    fn complete_shape() {
        let g = complete(6, 1).unwrap();
        assert_eq!(g.num_edges(), 15);
        assert_eq!(unweighted_diameter(&g), 1);
    }

    #[test]
    fn star_and_tree() {
        let g = star(7, 1).unwrap();
        assert_eq!(unweighted_diameter(&g), 2);
        let t = binary_tree(15, 1).unwrap();
        assert!(t.is_connected());
        assert_eq!(t.num_edges(), 14);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 2, 1).unwrap();
        assert_eq!(g.len(), 12);
        assert!(g.is_connected());
        assert_eq!(g.degree(NodeId::new(0)), 3); // one spine neighbor + 2 legs
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 3, 1).unwrap();
        assert_eq!(g.len(), 11);
        assert!(g.is_connected());
        assert_eq!(unweighted_diameter(&g), 6); // clique + 4-edge bridge + clique
    }

    #[test]
    fn heavy_hub_spd() {
        let g = path_with_heavy_hub(12, 100).unwrap();
        assert_eq!(unweighted_diameter(&g), 2);
        assert_eq!(shortest_path_diameter(&g), 10);
    }

    #[test]
    fn er_is_connected_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(42);
        let g1 = erdos_renyi_connected(50, 0.05, 8, &mut rng).unwrap();
        assert!(g1.is_connected());
        let mut rng2 = StdRng::seed_from_u64(42);
        let g2 = erdos_renyi_connected(50, 0.05, 8, &mut rng2).unwrap();
        assert_eq!(g1.num_edges(), g2.num_edges());
    }

    #[test]
    fn geometric_is_connected() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = random_geometric_connected(60, 0.18, 5, &mut rng).unwrap();
        assert!(g.is_connected());
        assert!(g.max_weight() <= 5);
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_tree(30, 4, &mut rng).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.num_edges(), 29);
    }

    #[test]
    fn clustered_network_shape() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = clustered_network(4, 15, 0.3, 2, 20, 3, &mut rng).unwrap();
        assert_eq!(g.len(), 60);
        assert!(g.is_connected());
        // Heavy links exist (backbone) and light intra-cluster edges dominate.
        let heavy = g.edges().iter().filter(|e| e.w == 20).count();
        assert!(heavy >= 4, "backbone ring plus extras, got {heavy}");
        assert!(g.edges().iter().filter(|e| e.w <= 2).count() > heavy);
    }

    #[test]
    fn clustered_network_single_cluster() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = clustered_network(1, 10, 0.5, 3, 9, 0, &mut rng).unwrap();
        assert_eq!(g.len(), 10);
        assert!(g.is_connected());
    }

    #[test]
    fn barabasi_albert_shape() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = barabasi_albert(80, 3, 4, &mut rng).unwrap();
        assert!(g.is_connected());
        assert_eq!(g.num_edges(), 3 + 3 * (80 - 4)); // star + attach per node
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        let min_new = g.nodes().skip(4).map(|v| g.degree(v)).min().unwrap();
        assert!(min_new >= 3, "every attached node has degree ≥ attach");
        assert!(max_deg >= 12, "preferential attachment grows hubs, got {max_deg}");
    }

    #[test]
    fn barabasi_albert_deterministic() {
        let g1 = barabasi_albert(60, 2, 5, &mut StdRng::seed_from_u64(77)).unwrap();
        let g2 = barabasi_albert(60, 2, 5, &mut StdRng::seed_from_u64(77)).unwrap();
        assert_eq!(g1.edges(), g2.edges());
    }

    #[test]
    fn watts_strogatz_shape() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = watts_strogatz(100, 4, 0.2, 3, &mut rng).unwrap();
        assert!(g.is_connected());
        // Rewiring preserves the edge count up to rare collisions and the
        // connectivity patch.
        assert!((190..=210).contains(&g.num_edges()), "got {}", g.num_edges());
        // The small-world regime: much smaller diameter than the beta = 0
        // lattice (n / k = 25).
        assert!(unweighted_diameter(&g) <= 15);
    }

    #[test]
    fn watts_strogatz_beta_zero_is_lattice() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = watts_strogatz(20, 4, 0.0, 1, &mut rng).unwrap();
        assert_eq!(g.num_edges(), 40);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn sparse_er_still_connected() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi_connected(40, 0.0, 3, &mut rng).unwrap();
        assert!(g.is_connected()); // pure chain of representatives
        assert_eq!(g.num_edges(), 39);
    }
}
