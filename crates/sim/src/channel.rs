//! Message envelopes and inbox containers for the global (NCC) channel.

use hybrid_graph::NodeId;

/// One `O(log n)`-bit message in flight over the global network.
///
/// The payload type `M` must itself fit the model's `O(log n)`-bit budget — in
/// this codebase every payload is a small tuple of node IDs and distances, which
/// (weights being polynomial in `n`, §1.3) is `O(log n)` bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sending node.
    pub src: NodeId,
    /// Destination node (any node — the global mode is a clique).
    pub dst: NodeId,
    /// Message payload.
    pub msg: M,
}

impl<M> Envelope<M> {
    /// Creates an envelope.
    pub fn new(src: NodeId, dst: NodeId, msg: M) -> Self {
        Envelope { src, dst, msg }
    }
}

/// Per-node inboxes produced by an exchange: `inboxes[v]` holds the
/// `(sender, message)` pairs delivered to node `v`, in deterministic order
/// (sorted by sender, then arrival order).
pub type Inboxes<M> = Vec<Vec<(NodeId, M)>>;

/// Arena-style inboxes: all delivered messages of one exchange in a single
/// contiguous buffer, grouped by destination, plus per-destination boundaries.
///
/// This is the allocation-free counterpart of [`Inboxes`]: the buffer is owned
/// by the caller and reused across exchanges ([`FlatInboxes::clear`] keeps
/// capacity), so a steady-state [`crate::HybridNet::exchange_into`] performs no
/// heap allocation at all. The ordering contract is identical: within each
/// destination, messages are sorted by `(sender, insertion order)`.
#[derive(Debug, Clone, Default)]
pub struct FlatInboxes<M> {
    /// All `(sender, message)` pairs, grouped by destination.
    msgs: Vec<(NodeId, M)>,
    /// `starts[v]..starts[v + 1]` delimits destination `v`'s slice of `msgs`
    /// (`n + 1` entries once populated; empty before the first exchange).
    starts: Vec<usize>,
}

impl<M> FlatInboxes<M> {
    /// Creates an empty container (no capacity reserved yet).
    pub fn new() -> Self {
        FlatInboxes { msgs: Vec::new(), starts: Vec::new() }
    }

    /// Number of destinations the last exchange delivered to (the network
    /// size), or 0 before the first exchange.
    pub fn num_nodes(&self) -> usize {
        self.starts.len().saturating_sub(1)
    }

    /// Total delivered messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether no message was delivered.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// The messages delivered to node `v`, sorted by `(sender, insertion
    /// order)`. Empty for nodes beyond the last exchange's network size.
    pub fn node(&self, v: usize) -> &[(NodeId, M)] {
        if v + 1 < self.starts.len() {
            &self.msgs[self.starts[v]..self.starts[v + 1]]
        } else {
            &[]
        }
    }

    /// The messages delivered to `v` (see [`FlatInboxes::node`]).
    pub fn for_node(&self, v: NodeId) -> &[(NodeId, M)] {
        self.node(v.index())
    }

    /// Iterates `(destination, &[messages])` over all non-empty destinations.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[(NodeId, M)])> {
        (0..self.num_nodes()).map(move |v| (v, self.node(v))).filter(|(_, m)| !m.is_empty())
    }

    /// Empties the container, keeping both buffers' capacity for reuse.
    pub fn clear(&mut self) {
        self.msgs.clear();
        self.starts.clear();
    }

    /// Drains every message, invoking `f(destination, (sender, message))` in
    /// delivery order. Keeps capacity (the container is empty afterwards).
    pub fn drain_into(&mut self, mut f: impl FnMut(usize, (NodeId, M))) {
        let starts = std::mem::take(&mut self.starts);
        if starts.is_empty() {
            debug_assert!(self.msgs.is_empty());
            self.starts = starts;
            return;
        }
        let mut dst = 0usize;
        for (i, pair) in self.msgs.drain(..).enumerate() {
            while starts[dst + 1] <= i {
                dst += 1;
            }
            f(dst, pair);
        }
        // Hand the (now stale) boundary buffer back for reuse.
        self.starts = starts;
        self.starts.clear();
    }

    /// Converts into the nested [`Inboxes`] representation (allocates — the
    /// compatibility path used by [`crate::HybridNet::exchange`]).
    pub fn into_inboxes(mut self) -> Inboxes<M> {
        let n = self.num_nodes();
        let mut out: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
        self.drain_into(|dst, pair| out[dst].push(pair));
        out
    }

    /// Direct access to the underlying buffers: `(msgs, starts)`.
    ///
    /// `starts` has `n + 1` entries; destination `v` owns
    /// `msgs[starts[v]..starts[v + 1]]`.
    pub fn as_parts(&self) -> (&[(NodeId, M)], &[usize]) {
        (&self.msgs, &self.starts)
    }

    /// Internal: mutable access for the exchange engine.
    pub(crate) fn parts_mut(&mut self) -> (&mut Vec<(NodeId, M)>, &mut Vec<usize>) {
        (&mut self.msgs, &mut self.starts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_construction() {
        let e = Envelope::new(NodeId::new(1), NodeId::new(2), "hi");
        assert_eq!(e.src, NodeId::new(1));
        assert_eq!(e.dst, NodeId::new(2));
        assert_eq!(e.msg, "hi");
    }

    #[test]
    fn flat_inboxes_roundtrip() {
        let mut f = FlatInboxes::new();
        {
            let (msgs, starts) = f.parts_mut();
            msgs.push((NodeId::new(2), 'a'));
            msgs.push((NodeId::new(5), 'b'));
            msgs.push((NodeId::new(0), 'c'));
            starts.extend_from_slice(&[0, 0, 2, 3, 3]); // n = 4
        }
        assert_eq!(f.num_nodes(), 4);
        assert_eq!(f.len(), 3);
        assert_eq!(f.node(0), &[]);
        assert_eq!(f.node(1), &[(NodeId::new(2), 'a'), (NodeId::new(5), 'b')]);
        assert_eq!(f.for_node(NodeId::new(2)), &[(NodeId::new(0), 'c')]);
        assert_eq!(f.node(99), &[]);
        let pairs: Vec<(usize, usize)> = f.iter().map(|(v, m)| (v, m.len())).collect();
        assert_eq!(pairs, vec![(1, 2), (2, 1)]);
        let nested = f.into_inboxes();
        assert_eq!(nested.len(), 4);
        assert_eq!(nested[1], vec![(NodeId::new(2), 'a'), (NodeId::new(5), 'b')]);
        assert_eq!(nested[3], vec![]);
    }

    #[test]
    fn drain_into_empties_but_keeps_capacity() {
        let mut f = FlatInboxes::new();
        {
            let (msgs, starts) = f.parts_mut();
            msgs.push((NodeId::new(1), 10u32));
            msgs.push((NodeId::new(2), 20u32));
            starts.extend_from_slice(&[0, 1, 2]);
        }
        let cap_before = f.msgs.capacity();
        let mut seen = Vec::new();
        f.drain_into(|dst, (src, m)| seen.push((dst, src.index(), m)));
        assert_eq!(seen, vec![(0, 1, 10), (1, 2, 20)]);
        assert!(f.is_empty());
        assert_eq!(f.num_nodes(), 0);
        assert_eq!(f.msgs.capacity(), cap_before);
    }

    #[test]
    fn drain_on_fresh_container_is_noop() {
        let mut f: FlatInboxes<u8> = FlatInboxes::new();
        let mut called = false;
        f.drain_into(|_, _| called = true);
        assert!(!called);
    }
}
