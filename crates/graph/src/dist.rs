//! Distances and distance arithmetic.
//!
//! The paper (§1.3) assigns edge weights `w : E → [W]` with `W` polynomial in `n`, so
//! any simple-path length fits comfortably in a `u64`. Unreachability (and the paper's
//! `d_h(u,v) := ∞` when no `≤ h`-hop path exists) is modelled by the sentinel
//! [`INFINITY`]; all additions must go through [`dist_add`] which saturates at the
//! sentinel instead of wrapping.

/// A distance or path length. `u64::MAX` is reserved as [`INFINITY`].
pub type Distance = u64;

/// Sentinel for "no path" / the paper's `d_h(u,v) = ∞`.
pub const INFINITY: Distance = u64::MAX;

/// Adds two distances, treating [`INFINITY`] as absorbing.
///
/// # Example
///
/// ```
/// use hybrid_graph::{dist_add, INFINITY};
/// assert_eq!(dist_add(2, 3), 5);
/// assert_eq!(dist_add(INFINITY, 3), INFINITY);
/// assert_eq!(dist_add(7, INFINITY), INFINITY);
/// ```
#[inline]
pub fn dist_add(a: Distance, b: Distance) -> Distance {
    if a == INFINITY || b == INFINITY {
        INFINITY
    } else {
        a.checked_add(b).unwrap_or(INFINITY)
    }
}

/// Returns the minimum of two distances (`INFINITY` is the identity).
#[inline]
pub fn dist_min(a: Distance, b: Distance) -> Distance {
    a.min(b)
}

/// Formats a distance for experiment tables: `∞` for the sentinel.
pub fn display_dist(d: Distance) -> String {
    if d == INFINITY {
        "∞".to_string()
    } else {
        d.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_finite() {
        assert_eq!(dist_add(0, 0), 0);
        assert_eq!(dist_add(10, 32), 42);
    }

    #[test]
    fn add_absorbs_infinity() {
        assert_eq!(dist_add(INFINITY, INFINITY), INFINITY);
        assert_eq!(dist_add(INFINITY, 0), INFINITY);
        assert_eq!(dist_add(0, INFINITY), INFINITY);
    }

    #[test]
    fn add_saturates_on_overflow() {
        assert_eq!(dist_add(u64::MAX - 1, 5), INFINITY);
    }

    #[test]
    fn min_prefers_finite() {
        assert_eq!(dist_min(INFINITY, 3), 3);
        assert_eq!(dist_min(2, 3), 2);
    }

    #[test]
    fn display() {
        assert_eq!(display_dist(5), "5");
        assert_eq!(display_dist(INFINITY), "∞");
    }
}
