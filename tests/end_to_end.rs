//! End-to-end integration tests: the distributed algorithms against the
//! sequential ground truth, across graph families.

use hybrid_shortest_paths::core::apsp::{exact_apsp, exact_apsp_soda20, ApspConfig};
use hybrid_shortest_paths::core::diameter::{diameter_cor52, diameter_cor53};
use hybrid_shortest_paths::core::ksssp::{kssp_cor46, kssp_cor47, kssp_cor48, KsspConfig};
use hybrid_shortest_paths::core::sssp::{exact_sssp, sssp_local_bellman_ford};
use hybrid_shortest_paths::graph::apsp::apsp;
use hybrid_shortest_paths::graph::bfs::unweighted_diameter;
use hybrid_shortest_paths::graph::dijkstra::dijkstra;
use hybrid_shortest_paths::graph::generators::{
    barbell, caterpillar, erdos_renyi_connected, grid, random_geometric_connected, random_tree,
};
use hybrid_shortest_paths::graph::{Distance, Graph, NodeId};
use hybrid_shortest_paths::sim::{HybridConfig, HybridNet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn families(seed: u64) -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        ("erdos-renyi", erdos_renyi_connected(90, 0.06, 5, &mut rng).unwrap()),
        ("geometric", random_geometric_connected(80, 0.2, 4, &mut rng).unwrap()),
        ("grid", grid(8, 10, 3).unwrap()),
        ("tree", random_tree(70, 6, &mut rng).unwrap()),
        ("caterpillar", caterpillar(20, 2, 2).unwrap()),
        ("barbell", barbell(15, 10, 1).unwrap()),
    ]
}

#[test]
fn apsp_exact_across_families() {
    for (name, g) in families(1) {
        let exact = apsp(&g);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let out = exact_apsp(&mut net, ApspConfig { xi: 2.0 }, 17).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(out.dist.get(u, v), exact.get(u, v), "{name}: pair ({u}, {v})");
            }
        }
    }
}

#[test]
fn apsp_baseline_exact_across_families() {
    for (name, g) in families(2) {
        let exact = apsp(&g);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let out = exact_apsp_soda20(&mut net, ApspConfig { xi: 2.0 }, 23).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(out.dist.get(u, v), exact.get(u, v), "{name}: pair ({u}, {v})");
            }
        }
    }
}

#[test]
fn sssp_exact_across_families() {
    for (name, g) in families(3) {
        let source = NodeId::new(g.len() / 3);
        let exact = dijkstra(&g, source);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let out = exact_sssp(&mut net, source, KsspConfig { xi: 2.0 }, 29).unwrap();
        assert_eq!(out.dist.as_slice(), exact.as_slice(), "{name}");
        // Local BF agrees too.
        let mut net2 = HybridNet::new(&g, HybridConfig::default());
        let bf = sssp_local_bellman_ford(&mut net2, source);
        assert_eq!(bf.dist.as_slice(), exact.as_slice(), "{name} (local BF)");
    }
}

#[test]
fn kssp_guarantees_across_families() {
    for (name, g) in families(4) {
        let n = g.len();
        let mut rng = StdRng::seed_from_u64(5);
        let mut sources: Vec<NodeId> = (0..5).map(|_| NodeId::new(rng.gen_range(0..n))).collect();
        sources.sort_unstable();
        sources.dedup();
        let exact = apsp(&g);
        let exact_rows: Vec<Vec<Distance>> =
            sources.iter().map(|&s| exact.row(s).to_vec()).collect();
        let unweighted = g.is_unweighted();

        let mut net = HybridNet::new(&g, HybridConfig::default());
        let out47 = kssp_cor47(&mut net, &sources, 0.5, KsspConfig { xi: 2.0 }, 31).unwrap();
        let ratio = out47.max_ratio_vs(&exact_rows);
        assert!(
            ratio <= out47.guaranteed_factor(unweighted) + 1e-9,
            "{name}: cor47 ratio {ratio} > {}",
            out47.guaranteed_factor(unweighted)
        );

        let mut net = HybridNet::new(&g, HybridConfig::default());
        let out48 = kssp_cor48(&mut net, &sources, 0.3, KsspConfig { xi: 2.0 }, 37).unwrap();
        let ratio = out48.max_ratio_vs(&exact_rows);
        assert!(ratio <= out48.guaranteed_factor(unweighted) + 1e-9, "{name}: cor48 ratio {ratio}");
    }
}

#[test]
fn kssp_cor46_source_capacity_and_guarantee() {
    let g = grid(10, 12, 1).unwrap();
    let sources = vec![NodeId::new(0), NodeId::new(59), NodeId::new(119)];
    let exact = apsp(&g);
    let exact_rows: Vec<Vec<Distance>> = sources.iter().map(|&s| exact.row(s).to_vec()).collect();
    let mut net = HybridNet::new(&g, HybridConfig::default());
    let out = kssp_cor46(&mut net, &sources, 0.5, KsspConfig { xi: 2.0 }, 41).unwrap();
    assert!(out.max_ratio_vs(&exact_rows) <= out.guaranteed_factor(true) + 1e-9);
}

#[test]
fn diameter_guarantees_across_unweighted_families() {
    let gs: Vec<(&str, Graph)> = vec![
        ("grid", grid(6, 25, 1).unwrap()),
        ("caterpillar", caterpillar(40, 1, 1).unwrap()),
        ("barbell", barbell(12, 30, 1).unwrap()),
    ];
    for (name, g) in gs {
        let d = unweighted_diameter(&g);
        for (tag, seed, use52) in [("cor52", 43u64, true), ("cor53", 47, false)] {
            let mut net = HybridNet::new(&g, HybridConfig::default());
            let out = if use52 {
                diameter_cor52(&mut net, 0.5, KsspConfig { xi: 1.5 }, seed).unwrap()
            } else {
                diameter_cor53(&mut net, 0.5, KsspConfig { xi: 1.5 }, seed).unwrap()
            };
            assert!(out.estimate >= d, "{name}/{tag}: undershoot");
            let ratio = out.estimate as f64 / d as f64;
            assert!(
                ratio <= out.guaranteed_factor() + 1e-9,
                "{name}/{tag}: ratio {ratio} > {}",
                out.guaranteed_factor()
            );
        }
    }
}

#[test]
fn strict_congestion_policy_holds_on_moderate_instances() {
    // The w.h.p. congestion bounds (Lemma D.2) must hold under the failing
    // policy for a realistic APSP run.
    let mut rng = StdRng::seed_from_u64(9);
    let g = erdos_renyi_connected(120, 0.05, 3, &mut rng).unwrap();
    let exact = apsp(&g);
    let mut net = HybridNet::new(&g, HybridConfig::strict());
    let out = exact_apsp(&mut net, ApspConfig { xi: 2.0 }, 53).unwrap();
    for u in g.nodes() {
        for v in g.nodes() {
            assert_eq!(out.dist.get(u, v), exact.get(u, v));
        }
    }
    assert!(net.metrics().max_recv_load <= net.recv_cap());
}
