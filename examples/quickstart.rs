//! Quickstart: simulate the HYBRID model on a random geometric network and run
//! the paper's flagship algorithms through the solver facade.
//!
//! The workload comes from the scenario registry (`geo-mesh-kssp47`): the
//! registry owns graph construction, simulator configuration, and seeds, so
//! every example and benchmark exercises the same reproducible instances. The
//! algorithms are addressed as typed [`Query`]s — validated at construction —
//! and every run returns the uniform [`hybrid_shortest_paths::Report`] with
//! its answer, round/message accounting, and paper-level guarantee.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hybrid_shortest_paths::graph::apsp::apsp as reference_apsp;
use hybrid_shortest_paths::graph::dijkstra::dijkstra;
use hybrid_shortest_paths::graph::NodeId;
use hybrid_shortest_paths::scenarios;
use hybrid_shortest_paths::{solve, Guarantee, Query};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 150-node wireless-style network: nodes talk locally to radio neighbors
    // (the LOCAL mode) and globally through the cell infrastructure (NCC mode).
    let scenario = scenarios::find("geo-mesh-kssp47").expect("registered scenario");
    let g = scenario.graph(150);
    println!(
        "scenario {:?}: {} nodes, {} edges, max weight {}",
        scenario.name,
        g.len(),
        g.num_edges(),
        g.max_weight()
    );

    // --- Exact SSSP in Õ(n^{2/5}) rounds (Theorem 1.3) -----------------------
    let source = NodeId::new(0);
    let mut net = scenario.net(&g);
    let sssp = solve(&mut net, &Query::sssp(source).build()?, scenario.seed)?;
    let reference = dijkstra(&g, source);
    assert_eq!(sssp.guarantee, Guarantee::Exact, "Thm 1.3 promises exactness");
    let (_, dist) = sssp.distance_row().expect("SSSP answers with a row");
    assert_eq!(dist, reference.as_slice(), "SSSP must be exact");
    println!(
        "SSSP from {source}: exact in {} simulated rounds (skeleton of {} nodes)",
        sssp.rounds, sssp.skeleton_size
    );

    // --- Exact APSP in Õ(√n) rounds (Theorem 1.1) ---------------------------
    let mut net = scenario.net(&g);
    let report = solve(&mut net, &Query::apsp().build()?, scenario.seed)?;
    let out = report.distances().expect("APSP answers with a matrix");
    let exact = reference_apsp(&g);
    for u in g.nodes() {
        for v in g.nodes() {
            assert_eq!(out.get(u, v), exact.get(u, v), "APSP must be exact");
        }
    }
    println!(
        "APSP [{}]: exact in {} simulated rounds (skeleton {} nodes, h = {})",
        report.label(),
        report.rounds,
        report.skeleton_size,
        report.h
    );
    let m = net.metrics();
    println!(
        "      local rounds {}, global rounds {}, global messages {}, max receive load {}",
        m.local_rounds, m.global_rounds, m.global_messages, m.max_recv_load
    );
    println!("      per-phase breakdown:");
    for (phase, stats) in &m.phases {
        println!("        {phase:<28} {:>6} rounds {:>8} msgs", stats.rounds, stats.messages);
    }

    // --- The same scenario through the engine's own runner ------------------
    let report = scenarios::run_scenario(scenario, 150);
    println!(
        "scenario runner: {} [{}] in {} rounds — {}",
        report.scenario,
        report.verdict.as_str(),
        report.rounds,
        report.detail
    );
    assert!(report.passed());
    Ok(())
}
