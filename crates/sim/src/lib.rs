//! Round-faithful simulator of the **HYBRID network model** of Augustine et al.
//! (SODA 2020), as used by Kuhn & Schneider (PODC 2020).
//!
//! The model: `n` nodes, synchronous rounds, two communication modes per round:
//!
//! * **Local mode** (the LOCAL model): arbitrary-size messages over the edges of
//!   the local graph `G`. Unbounded bandwidth means only the *number of rounds* of
//!   a local phase is observable; the simulator therefore charges local phases on
//!   the round clock and lets algorithms compute the resulting `d`-hop knowledge
//!   directly (see [`HybridNet::charge_local`] and the `hybrid-graph` reference
//!   routines).
//! * **Global mode** (the node-capacitated clique, NCC): every node can send and
//!   receive `O(log n)` messages of `O(log n)` bits to/from *arbitrary* nodes per
//!   round. This is where all congestion arguments of the paper live, so the
//!   global mode is simulated message-by-message with explicit per-node send and
//!   receive caps ([`HybridNet::exchange`]).
//!
//! The `(λ, γ)` parametrization of hybrid networks (footnote 2 of the paper) is
//! captured by [`HybridConfig`]: the default is `LOCAL + NCC` (`λ = ∞`,
//! `γ = Θ(log² n)` bits); restricting `γ` further scales the per-round message
//! caps.
//!
//! Adversarial network behavior (random global-message loss, node crashes) is
//! injected through a declarative [`FaultPlan`]
//! ([`HybridNet::inject_faults`]) — the hooks live inside the exchange engine,
//! so every protocol built on the simulator can be exercised under faults
//! without touching its code.
//!
//! # Example
//!
//! ```
//! use hybrid_graph::generators::path;
//! use hybrid_graph::NodeId;
//! use hybrid_sim::{Envelope, HybridConfig, HybridNet};
//!
//! # fn main() -> Result<(), hybrid_sim::SimError> {
//! let g = path(8, 1).expect("valid graph");
//! let mut net = HybridNet::new(&g, HybridConfig::default());
//! // One global round: node 0 sends a token to node 7 (far away in G).
//! let inboxes = net.exchange("demo", vec![Envelope::new(
//!     NodeId::new(0),
//!     NodeId::new(7),
//!     42u64,
//! )])?;
//! assert_eq!(inboxes[7], vec![(NodeId::new(0), 42)]);
//! assert_eq!(net.rounds(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
// Per-node `for v in 0..n` index loops are the message-passing idiom here
// (v *is* the node); the clippy range-loop suggestion would obscure that.
#![allow(clippy::needless_range_loop)]

pub mod channel;
pub mod config;
pub mod fault;
pub mod metrics;
pub mod net;
pub mod par;
pub mod rng;
pub mod trace;

pub use channel::{Envelope, FlatInboxes, Inboxes};
pub use config::{HybridConfig, OverflowPolicy};
pub use fault::{Crash, FaultPlan};
pub use metrics::{Metrics, PhaseStats};
pub use net::{HybridNet, SimError};
pub use rng::derive_seed;
pub use trace::{Recorder, TraceEvent, TraceSink};
