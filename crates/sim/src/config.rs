//! Simulator configuration: the `(λ, γ)` hybrid-network parametrization and the
//! congestion-overflow policy.

use hybrid_graph::graph::log2_ceil;

use crate::net::SimError;

/// What to do when a global exchange exceeds the per-round caps.
///
/// The paper's protocols guarantee w.h.p. that no node receives more than
/// `O(log n)` messages per round (Lemma D.2); the policy decides how the simulator
/// reacts if that budget is ever exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Return an error — used by tests to *prove* the w.h.p. bounds hold.
    Fail,
    /// Deliver everything but charge the honest number of rounds the batch needs,
    /// i.e. `max_v ⌈sent_v / send_cap⌉` and `max_v ⌈recv_v / recv_cap⌉`. This
    /// models a capacitated network that simply takes longer, and is the default
    /// for benchmarks.
    #[default]
    Stretch,
}

/// Configuration of a [`crate::HybridNet`].
///
/// In the paper's parametrization (footnote 2): `λ` (local bits per edge per
/// round) is always `∞` here — LOCAL mode; `γ` (global bits per node per round)
/// equals `send_cap · O(log n)` bits, i.e. `send_cap_factor = 1` gives the
/// standard NCC budget `γ = Θ(log² n)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridConfig {
    /// Per-node global *send* budget per round, in multiples of `⌈log2 n⌉`
    /// messages. The NCC default is 1.0.
    pub send_cap_factor: f64,
    /// Per-node global *receive* budget per round, in multiples of `⌈log2 n⌉`
    /// messages. The paper's `ρ ∈ Θ(log n)` (Lemma D.2) allows a larger constant
    /// than the send side; default 4.0.
    pub recv_cap_factor: f64,
    /// Overflow policy.
    pub overflow: OverflowPolicy,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            send_cap_factor: 1.0,
            recv_cap_factor: 4.0,
            overflow: OverflowPolicy::Stretch,
        }
    }
}

impl HybridConfig {
    /// Config with the [`OverflowPolicy::Fail`] policy (for tests that assert the
    /// w.h.p. congestion bounds).
    pub fn strict() -> Self {
        HybridConfig { overflow: OverflowPolicy::Fail, ..Self::default() }
    }

    /// A starved network: the smallest valid caps (1 message per round at any
    /// `n`), used by fault-injection tests and degraded-network scenarios to
    /// force congestion while staying a *valid* configuration.
    pub fn starved(overflow: OverflowPolicy) -> Self {
        HybridConfig { send_cap_factor: 0.01, recv_cap_factor: 0.01, overflow }
    }

    /// Config with explicitly scaled cap factors under
    /// [`OverflowPolicy::Stretch`] (the degraded-but-correct regime: every
    /// message still arrives, the round clock pays for the thinner pipe).
    pub fn degraded(send_cap_factor: f64, recv_cap_factor: f64) -> Self {
        HybridConfig { send_cap_factor, recv_cap_factor, overflow: OverflowPolicy::Stretch }
    }

    /// Validates the configuration: both cap factors must be finite and
    /// strictly positive. A zero/negative/NaN factor describes a network that
    /// can never deliver anything — paced drains would spin forever — so it is
    /// rejected at construction ([`crate::HybridNet::try_new`]) instead of
    /// surfacing as a hang deep inside a protocol.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] naming the degenerate factor.
    pub fn validate(&self) -> Result<(), SimError> {
        for (name, factor) in
            [("send_cap_factor", self.send_cap_factor), ("recv_cap_factor", self.recv_cap_factor)]
        {
            if !factor.is_finite() || factor <= 0.0 {
                return Err(SimError::InvalidConfig {
                    reason: format!(
                        "{name} must be finite and > 0, got {factor} \
                         (a 0-messages/round cap would livelock paced exchanges)"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Per-node send cap in messages per round for a graph on `n` nodes
    /// (`⌈factor · ⌈log2 n⌉⌉`, at least 1).
    pub fn send_cap(&self, n: usize) -> usize {
        cap(self.send_cap_factor, n)
    }

    /// Per-node receive cap in messages per round for a graph on `n` nodes.
    pub fn recv_cap(&self, n: usize) -> usize {
        cap(self.recv_cap_factor, n)
    }
}

fn cap(factor: f64, n: usize) -> usize {
    ((factor * log2_ceil(n) as f64).ceil() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_caps_scale_logarithmically() {
        let c = HybridConfig::default();
        assert_eq!(c.send_cap(2), 1);
        assert_eq!(c.send_cap(1024), 10);
        assert_eq!(c.recv_cap(1024), 40);
        assert!(c.send_cap(1_000_000) >= 20);
    }

    #[test]
    fn caps_never_zero() {
        let c = HybridConfig {
            send_cap_factor: 0.01,
            recv_cap_factor: 0.01,
            overflow: OverflowPolicy::Fail,
        };
        assert_eq!(c.send_cap(4), 1);
        assert_eq!(c.recv_cap(4), 1);
    }

    #[test]
    fn strict_uses_fail() {
        assert_eq!(HybridConfig::strict().overflow, OverflowPolicy::Fail);
        assert_eq!(HybridConfig::default().overflow, OverflowPolicy::Stretch);
    }

    #[test]
    fn starved_is_valid_and_minimal() {
        let c = HybridConfig::starved(OverflowPolicy::Stretch);
        assert!(c.validate().is_ok());
        assert_eq!(c.send_cap(1 << 20), 1);
        assert_eq!(c.recv_cap(1 << 20), 1);
    }

    #[test]
    fn validate_rejects_degenerate_factors() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            for cfg in [
                HybridConfig { send_cap_factor: bad, ..HybridConfig::default() },
                HybridConfig { recv_cap_factor: bad, ..HybridConfig::default() },
            ] {
                let err = cfg.validate().unwrap_err();
                assert!(matches!(err, SimError::InvalidConfig { .. }), "factor {bad}");
                assert!(err.to_string().contains("cap_factor"), "factor {bad}");
            }
        }
        assert!(HybridConfig::default().validate().is_ok());
        assert!(HybridConfig::degraded(0.25, 1.0).validate().is_ok());
    }
}
