//! The static scenario registry: every named workload the project ships,
//! addressable by name or tag.
//!
//! Spanning set (what the registry must always cover, enforced by tests):
//! ≥ 10 scenarios, ≥ 4 graph families, ≥ 2 distinct fault plans, and at
//! least one scenario per algorithm suite. All of them verify `Pass` at
//! smoke size (`n ≤ 64`) — see `tests/registry_smoke.rs`.

use crate::model::{AlgorithmSuite, ChurnPlan, FaultPlan, GraphFamily, Scenario, WeightModel};
use hybrid_core::solver::{DiameterCorollary, KsspCorollary};

/// The standard degraded-network plan: a quarter of the NCC send budget.
const DEGRADED: FaultPlan = FaultPlan::Degraded { send_factor: 0.25, recv_factor: 1.0 };

static REGISTRY: &[Scenario] = &[
    // --- Healthy networks: the paper's flagship results -------------------
    Scenario {
        name: "e2-er",
        tags: &["apsp", "er", "e2"],
        family: GraphFamily::ErdosRenyi { avg_deg: 12.0 },
        weights: WeightModel::Uniform { max: 4 },
        faults: FaultPlan::None,
        suite: AlgorithmSuite::Apsp { xi: 1.5 },
        seed: 3,
        default_n: 200,
        churn: None,
    },
    Scenario {
        name: "e2-er-soda20",
        tags: &["apsp", "er", "e2", "baseline"],
        family: GraphFamily::ErdosRenyi { avg_deg: 12.0 },
        weights: WeightModel::Uniform { max: 4 },
        faults: FaultPlan::None,
        suite: AlgorithmSuite::ApspSoda20 { xi: 1.5 },
        seed: 3,
        default_n: 200,
        churn: None,
    },
    Scenario {
        name: "sparse-grid-thm11",
        tags: &["apsp", "grid", "sparse"],
        family: GraphFamily::SquareGrid,
        weights: WeightModel::Unit,
        faults: FaultPlan::None,
        suite: AlgorithmSuite::Apsp { xi: 1.5 },
        seed: 17,
        default_n: 225,
        churn: None,
    },
    Scenario {
        name: "smallworld-ws-apsp",
        tags: &["apsp", "small-world", "sparse"],
        family: GraphFamily::WattsStrogatz { k: 4, beta: 0.15 },
        weights: WeightModel::Uniform { max: 3 },
        faults: FaultPlan::None,
        suite: AlgorithmSuite::Apsp { xi: 1.5 },
        seed: 23,
        default_n: 200,
        churn: None,
    },
    Scenario {
        name: "wan-clustered-apsp",
        tags: &["apsp", "wan", "clustered"],
        family: GraphFamily::Clustered { clusters: 4, intra_p: 0.35, link_w: 16, extra_links: 3 },
        weights: WeightModel::Uniform { max: 3 },
        faults: FaultPlan::None,
        suite: AlgorithmSuite::Apsp { xi: 1.5 },
        seed: 29,
        default_n: 240,
        churn: None,
    },
    Scenario {
        name: "ba-powerlaw-apsp",
        tags: &["apsp", "power-law", "sparse"],
        family: GraphFamily::BarabasiAlbert { attach: 3 },
        weights: WeightModel::Uniform { max: 4 },
        faults: FaultPlan::None,
        suite: AlgorithmSuite::Apsp { xi: 1.5 },
        seed: 31,
        default_n: 200,
        churn: None,
    },
    Scenario {
        name: "ba-powerlaw-sssp",
        tags: &["sssp", "power-law", "sparse"],
        family: GraphFamily::BarabasiAlbert { attach: 2 },
        weights: WeightModel::Uniform { max: 5 },
        faults: FaultPlan::None,
        suite: AlgorithmSuite::Sssp { xi: 2.0 },
        seed: 37,
        default_n: 300,
        churn: None,
    },
    Scenario {
        name: "heavy-hub-sssp-thm13",
        tags: &["sssp", "adversarial", "high-spd"],
        family: GraphFamily::HeavyHubPath,
        weights: WeightModel::Unit,
        faults: FaultPlan::None,
        suite: AlgorithmSuite::Sssp { xi: 3.0 },
        seed: 41,
        default_n: 400,
        churn: None,
    },
    Scenario {
        name: "geo-mesh-kssp47",
        tags: &["kssp", "geometric", "mesh"],
        family: GraphFamily::RandomGeometric { avg_deg: 9.0 },
        weights: WeightModel::Uniform { max: 5 },
        faults: FaultPlan::None,
        suite: AlgorithmSuite::Kssp { cor: KsspCorollary::Cor47, k: 8, eps: 0.5, xi: 1.5 },
        seed: 43,
        default_n: 180,
        churn: None,
    },
    Scenario {
        name: "grid-kssp46",
        tags: &["kssp", "grid", "sparse"],
        family: GraphFamily::SquareGrid,
        weights: WeightModel::Unit,
        faults: FaultPlan::None,
        suite: AlgorithmSuite::Kssp { cor: KsspCorollary::Cor46, k: 3, eps: 0.5, xi: 1.5 },
        seed: 47,
        default_n: 225,
        churn: None,
    },
    Scenario {
        name: "cycle-diam-32",
        tags: &["diameter", "cycle", "e5"],
        family: GraphFamily::Cycle,
        weights: WeightModel::Unit,
        faults: FaultPlan::None,
        suite: AlgorithmSuite::Diameter { cor: DiameterCorollary::Cor52, eps: 0.5, xi: 1.2 },
        seed: 53,
        default_n: 300,
        churn: None,
    },
    Scenario {
        name: "cycle-diam-1eps",
        tags: &["diameter", "cycle", "e5"],
        family: GraphFamily::Cycle,
        weights: WeightModel::Unit,
        faults: FaultPlan::None,
        suite: AlgorithmSuite::Diameter { cor: DiameterCorollary::Cor53, eps: 0.5, xi: 1.2 },
        seed: 53,
        default_n: 300,
        churn: None,
    },
    Scenario {
        name: "datacenter-thin-grid",
        tags: &["diameter", "grid", "datacenter"],
        family: GraphFamily::ThinGrid { rows: 4 },
        weights: WeightModel::Unit,
        faults: FaultPlan::None,
        suite: AlgorithmSuite::Diameter { cor: DiameterCorollary::Cor52, eps: 0.5, xi: 0.5 },
        seed: 99,
        default_n: 1000,
        churn: None,
    },
    // --- Degraded / faulty networks --------------------------------------
    Scenario {
        name: "faulty-soda20",
        tags: &["apsp", "faulty", "degraded", "baseline"],
        family: GraphFamily::ErdosRenyi { avg_deg: 10.0 },
        weights: WeightModel::Uniform { max: 4 },
        faults: DEGRADED,
        suite: AlgorithmSuite::ApspSoda20 { xi: 1.5 },
        seed: 61,
        default_n: 150,
        churn: None,
    },
    Scenario {
        name: "faulty-degraded-sssp",
        tags: &["sssp", "faulty", "degraded"],
        family: GraphFamily::RandomGeometric { avg_deg: 9.0 },
        weights: WeightModel::Uniform { max: 4 },
        faults: DEGRADED,
        suite: AlgorithmSuite::Sssp { xi: 2.0 },
        seed: 67,
        default_n: 150,
        churn: None,
    },
    Scenario {
        name: "faulty-drop-apsp",
        tags: &["apsp", "faulty", "lossy"],
        family: GraphFamily::ErdosRenyi { avg_deg: 10.0 },
        weights: WeightModel::Uniform { max: 4 },
        faults: FaultPlan::DropGlobal { prob: 0.02 },
        suite: AlgorithmSuite::Apsp { xi: 1.5 },
        seed: 71,
        default_n: 150,
        churn: None,
    },
    Scenario {
        name: "crash-mid-run-apsp",
        tags: &["apsp", "faulty", "lossy", "crash"],
        family: GraphFamily::ErdosRenyi { avg_deg: 10.0 },
        weights: WeightModel::Uniform { max: 4 },
        faults: FaultPlan::CrashNodes { count: 2, at_round: 40 },
        suite: AlgorithmSuite::Apsp { xi: 1.5 },
        seed: 73,
        default_n: 150,
        churn: None,
    },
    // --- Chaos: the must-recover family -----------------------------------
    // These run under `Contract::MustRecover` (see `crate::verify`): with
    // drop_prob ≤ 0.3 and a connected survivor set, aborting is a failure —
    // the reliable exchange layer must deliver (charging retransmission
    // rounds) and detected crashes must degrade explicitly, never corrupt.
    Scenario {
        name: "chaos-drop-p10-apsp",
        tags: &["chaos", "faulty", "lossy", "apsp"],
        family: GraphFamily::ErdosRenyi { avg_deg: 10.0 },
        weights: WeightModel::Uniform { max: 4 },
        faults: FaultPlan::DropGlobal { prob: 0.1 },
        suite: AlgorithmSuite::Apsp { xi: 1.5 },
        seed: 101,
        default_n: 150,
        churn: None,
    },
    Scenario {
        name: "chaos-drop-p20-sssp",
        tags: &["chaos", "faulty", "lossy", "sssp"],
        family: GraphFamily::WattsStrogatz { k: 4, beta: 0.15 },
        weights: WeightModel::Uniform { max: 3 },
        faults: FaultPlan::DropGlobal { prob: 0.2 },
        suite: AlgorithmSuite::Sssp { xi: 2.0 },
        seed: 103,
        default_n: 150,
        churn: None,
    },
    Scenario {
        name: "chaos-drop-p30-apsp",
        tags: &["chaos", "faulty", "lossy", "apsp"],
        family: GraphFamily::ErdosRenyi { avg_deg: 10.0 },
        weights: WeightModel::Uniform { max: 4 },
        faults: FaultPlan::DropGlobal { prob: 0.3 },
        suite: AlgorithmSuite::Apsp { xi: 1.5 },
        seed: 107,
        default_n: 150,
        churn: None,
    },
    Scenario {
        name: "chaos-crash-storm-apsp",
        tags: &["chaos", "faulty", "lossy", "crash", "apsp"],
        family: GraphFamily::ErdosRenyi { avg_deg: 10.0 },
        weights: WeightModel::Uniform { max: 4 },
        faults: FaultPlan::CrashNodes { count: 5, at_round: 30 },
        suite: AlgorithmSuite::Apsp { xi: 1.5 },
        seed: 109,
        default_n: 150,
        churn: None,
    },
    Scenario {
        name: "chaos-drop-crash-diam",
        tags: &["chaos", "faulty", "lossy", "crash", "diameter"],
        family: GraphFamily::SquareGrid,
        weights: WeightModel::Unit,
        faults: FaultPlan::DropAndCrash { prob: 0.2, count: 3, at_round: 25 },
        suite: AlgorithmSuite::Diameter { cor: DiameterCorollary::Cor52, eps: 0.5, xi: 1.2 },
        seed: 113,
        default_n: 225,
        churn: None,
    },
    Scenario {
        name: "chaos-drop-crash-kssp",
        tags: &["chaos", "faulty", "lossy", "crash", "kssp"],
        family: GraphFamily::ErdosRenyi { avg_deg: 10.0 },
        weights: WeightModel::Uniform { max: 4 },
        faults: FaultPlan::DropAndCrash { prob: 0.3, count: 4, at_round: 20 },
        suite: AlgorithmSuite::Kssp { cor: KsspCorollary::Cor46, k: 4, eps: 0.5, xi: 1.5 },
        seed: 127,
        default_n: 150,
        churn: None,
    },
    // --- Churn: dynamic graphs under epoch-versioned sessions --------------
    // Each replays a deterministic update/query interleaving (see
    // `crate::churn`): every query is verified under the scenario's contract
    // *and* bit-identical to a cold solve on the graph version live at that
    // point. The bounded-growth families (grids, cycle) are where incremental
    // repair genuinely patches; the chaos members run the same replay with
    // lossy fault plans under the must-recover contract.
    Scenario {
        name: "churn-grid-apsp",
        tags: &["churn", "apsp", "grid", "sparse"],
        family: GraphFamily::SquareGrid,
        weights: WeightModel::Unit,
        faults: FaultPlan::None,
        suite: AlgorithmSuite::Apsp { xi: 1.5 },
        seed: 131,
        default_n: 225,
        churn: Some(ChurnPlan { steps: 3, ops_per_step: 3 }),
    },
    Scenario {
        name: "churn-cycle-diam",
        tags: &["churn", "diameter", "cycle"],
        family: GraphFamily::Cycle,
        weights: WeightModel::Unit,
        faults: FaultPlan::None,
        suite: AlgorithmSuite::Diameter { cor: DiameterCorollary::Cor52, eps: 0.5, xi: 1.2 },
        seed: 137,
        default_n: 300,
        churn: Some(ChurnPlan { steps: 3, ops_per_step: 2 }),
    },
    Scenario {
        name: "churn-thin-sssp",
        tags: &["churn", "sssp", "grid", "datacenter"],
        family: GraphFamily::ThinGrid { rows: 4 },
        weights: WeightModel::Unit,
        faults: FaultPlan::None,
        suite: AlgorithmSuite::Sssp { xi: 2.0 },
        seed: 139,
        default_n: 200,
        churn: Some(ChurnPlan { steps: 3, ops_per_step: 3 }),
    },
    Scenario {
        name: "churn-chaos-drop-apsp",
        tags: &["churn", "chaos", "faulty", "lossy", "apsp"],
        family: GraphFamily::ErdosRenyi { avg_deg: 10.0 },
        weights: WeightModel::Uniform { max: 4 },
        faults: FaultPlan::DropGlobal { prob: 0.2 },
        suite: AlgorithmSuite::Apsp { xi: 1.5 },
        seed: 149,
        default_n: 150,
        churn: Some(ChurnPlan { steps: 2, ops_per_step: 3 }),
    },
    Scenario {
        name: "churn-chaos-drop-crash-diam",
        tags: &["churn", "chaos", "faulty", "lossy", "crash", "diameter"],
        family: GraphFamily::SquareGrid,
        weights: WeightModel::Unit,
        faults: FaultPlan::DropAndCrash { prob: 0.2, count: 3, at_round: 25 },
        suite: AlgorithmSuite::Diameter { cor: DiameterCorollary::Cor52, eps: 0.5, xi: 1.2 },
        seed: 151,
        default_n: 225,
        churn: Some(ChurnPlan { steps: 2, ops_per_step: 2 }),
    },
];

/// The full scenario registry.
pub fn registry() -> &'static [Scenario] {
    REGISTRY
}

/// Looks a scenario up by its unique name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// All scenarios carrying `tag`.
pub fn by_tag(tag: &str) -> Vec<&'static Scenario> {
    REGISTRY.iter().filter(|s| s.has_tag(tag)).collect()
}

/// The sorted set of all tags in the registry.
pub fn all_tags() -> Vec<&'static str> {
    let mut tags: Vec<&'static str> =
        REGISTRY.iter().flat_map(|s| s.tags.iter().copied()).collect();
    tags.sort_unstable();
    tags.dedup();
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn names_are_unique() {
        let names: BTreeSet<&str> = REGISTRY.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), REGISTRY.len());
    }

    #[test]
    fn spanning_requirements() {
        assert!(REGISTRY.len() >= 10, "registry must ship ≥ 10 scenarios");
        let families: BTreeSet<&str> = REGISTRY.iter().map(|s| s.family.label()).collect();
        assert!(families.len() >= 4, "≥ 4 graph families, got {families:?}");
        let faults: BTreeSet<&str> = REGISTRY.iter().map(|s| s.faults.label()).collect();
        assert!(
            faults.len() >= 3, // none + degraded + at least one lossy plan
            "≥ 2 non-trivial fault plans, got {faults:?}"
        );
        let suites: BTreeSet<&str> = REGISTRY.iter().map(|s| s.suite.label()).collect();
        for required in ["apsp-thm11", "apsp-soda20", "sssp-thm13", "diameter-cor52"] {
            assert!(suites.contains(required), "missing suite {required}");
        }
    }

    #[test]
    fn lookup_by_name_and_tag() {
        assert_eq!(find("e2-er").unwrap().name, "e2-er");
        assert!(find("no-such-scenario").is_none());
        let faulty = by_tag("faulty");
        assert!(faulty.len() >= 3);
        assert!(faulty.iter().all(|s| s.has_tag("faulty")));
        assert!(all_tags().contains(&"apsp"));
    }

    #[test]
    fn chaos_family_spans_the_required_regimes() {
        use crate::verify::Contract;
        let chaos = by_tag("chaos");
        assert!(chaos.len() >= 5, "chaos family must span the sweep, got {}", chaos.len());
        assert!(chaos
            .iter()
            .all(|s| s.name.starts_with("chaos-") || s.name.starts_with("churn-chaos-")));
        assert!(chaos.iter().all(|s| s.contract() == Contract::MustRecover));
        assert!(chaos.iter().all(|s| s.has_tag("faulty")), "chaos workloads are faulty workloads");
        // Drop sweep up to (and including) p = 0.3, never beyond.
        let max_prob = chaos
            .iter()
            .filter_map(|s| match s.faults {
                FaultPlan::DropGlobal { prob } | FaultPlan::DropAndCrash { prob, .. } => Some(prob),
                _ => None,
            })
            .fold(0.0f64, f64::max);
        assert_eq!(max_prob, 0.3, "the sweep must reach its contractual ceiling");
        // Crash storms and the combined regime are present.
        assert!(chaos.iter().any(|s| matches!(s.faults, FaultPlan::CrashNodes { .. })));
        assert!(chaos.iter().any(|s| matches!(s.faults, FaultPlan::DropAndCrash { .. })));
    }
}
