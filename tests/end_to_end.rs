//! End-to-end integration tests: the distributed algorithms against the
//! sequential ground truth, across graph families — all driven through the
//! solver facade (`Query` → `solve` → `Report`), the same entry point the
//! scenario engine and the benchmarks use.

use hybrid_shortest_paths::graph::apsp::apsp;
use hybrid_shortest_paths::graph::bfs::unweighted_diameter;
use hybrid_shortest_paths::graph::dijkstra::dijkstra;
use hybrid_shortest_paths::graph::generators::{
    barbell, caterpillar, erdos_renyi_connected, grid, random_geometric_connected, random_tree,
};
use hybrid_shortest_paths::graph::{Distance, Graph, NodeId};
use hybrid_shortest_paths::sim::{HybridConfig, HybridNet};
use hybrid_shortest_paths::{
    solve, ApspVariant, DiameterCorollary, Guarantee, KsspCorollary, Query, SsspVariant,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn families(seed: u64) -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        ("erdos-renyi", erdos_renyi_connected(90, 0.06, 5, &mut rng).unwrap()),
        ("geometric", random_geometric_connected(80, 0.2, 4, &mut rng).unwrap()),
        ("grid", grid(8, 10, 3).unwrap()),
        ("tree", random_tree(70, 6, &mut rng).unwrap()),
        ("caterpillar", caterpillar(20, 2, 2).unwrap()),
        ("barbell", barbell(15, 10, 1).unwrap()),
    ]
}

#[test]
fn apsp_exact_across_families() {
    let query = Query::apsp().xi(2.0).build().unwrap();
    for (name, g) in families(1) {
        let exact = apsp(&g);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let report = solve(&mut net, &query, 17).unwrap();
        assert_eq!(report.guarantee, Guarantee::Exact, "{name}");
        let out = report.distances().expect("matrix answer");
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(out.get(u, v), exact.get(u, v), "{name}: pair ({u}, {v})");
            }
        }
    }
}

#[test]
fn apsp_baseline_exact_across_families() {
    let query = Query::apsp().variant(ApspVariant::Soda20).xi(2.0).build().unwrap();
    for (name, g) in families(2) {
        let exact = apsp(&g);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let report = solve(&mut net, &query, 23).unwrap();
        let out = report.distances().expect("matrix answer");
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(out.get(u, v), exact.get(u, v), "{name}: pair ({u}, {v})");
            }
        }
    }
}

#[test]
fn sssp_exact_across_families() {
    for (name, g) in families(3) {
        let source = NodeId::new(g.len() / 3);
        let exact = dijkstra(&g, source);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let report = solve(&mut net, &Query::sssp(source).xi(2.0).build().unwrap(), 29).unwrap();
        let (s, dist) = report.distance_row().expect("row answer");
        assert_eq!(s, source, "{name}");
        assert_eq!(dist, exact.as_slice(), "{name}");
        // Local BF agrees too — same facade, different variant.
        let bf = Query::sssp(source).variant(SsspVariant::LocalBellmanFord).build().unwrap();
        let mut net2 = HybridNet::new(&g, HybridConfig::default());
        let report = solve(&mut net2, &bf, 29).unwrap();
        assert_eq!(report.distance_row().unwrap().1, exact.as_slice(), "{name} (local BF)");
    }
}

#[test]
fn kssp_guarantees_across_families() {
    for (name, g) in families(4) {
        let n = g.len();
        let mut rng = StdRng::seed_from_u64(5);
        let mut sources: Vec<NodeId> = (0..5).map(|_| NodeId::new(rng.gen_range(0..n))).collect();
        sources.sort_unstable();
        sources.dedup();
        let exact = apsp(&g);
        let exact_rows: Vec<Vec<Distance>> =
            sources.iter().map(|&s| exact.row(s).to_vec()).collect();

        for (cor, eps, seed) in
            [(KsspCorollary::Cor47, 0.5, 31u64), (KsspCorollary::Cor48, 0.3, 37)]
        {
            let query = Query::kssp(cor).sources(sources.clone()).eps(eps).xi(2.0).build().unwrap();
            let mut net = HybridNet::new(&g, HybridConfig::default());
            let report = solve(&mut net, &query, seed).unwrap();
            let ratio = report.max_ratio_vs(&exact_rows);
            // The report carries the Theorem 4.1 factor for this run — no
            // per-corollary math on the caller side.
            assert!(
                ratio <= report.guarantee.factor() + 1e-9,
                "{name}: cor{} ratio {ratio} > {}",
                cor.number(),
                report.guarantee.factor()
            );
        }
    }
}

#[test]
fn kssp_corollary46_source_capacity_and_guarantee() {
    let g = grid(10, 12, 1).unwrap();
    let sources = vec![NodeId::new(0), NodeId::new(59), NodeId::new(119)];
    let exact = apsp(&g);
    let exact_rows: Vec<Vec<Distance>> = sources.iter().map(|&s| exact.row(s).to_vec()).collect();
    let query = Query::kssp(KsspCorollary::Cor46).sources(sources).xi(2.0).build().unwrap();
    let mut net = HybridNet::new(&g, HybridConfig::default());
    let report = solve(&mut net, &query, 41).unwrap();
    assert!(report.max_ratio_vs(&exact_rows) <= report.guarantee.factor() + 1e-9);
}

#[test]
fn diameter_guarantees_across_unweighted_families() {
    let gs: Vec<(&str, Graph)> = vec![
        ("grid", grid(6, 25, 1).unwrap()),
        ("caterpillar", caterpillar(40, 1, 1).unwrap()),
        ("barbell", barbell(12, 30, 1).unwrap()),
    ];
    for (name, g) in gs {
        let d = unweighted_diameter(&g);
        for (cor, seed) in [(DiameterCorollary::Cor52, 43u64), (DiameterCorollary::Cor53, 47)] {
            let query = Query::diameter(cor).eps(0.5).xi(1.5).build().unwrap();
            let mut net = HybridNet::new(&g, HybridConfig::default());
            let report = solve(&mut net, &query, seed).unwrap();
            let estimate = report.diameter_estimate().expect("diameter answer");
            assert!(estimate >= d, "{name}/cor{}: undershoot", cor.number());
            let ratio = estimate as f64 / d as f64;
            assert!(
                ratio <= report.guarantee.factor() + 1e-9,
                "{name}/cor{}: ratio {ratio} > {}",
                cor.number(),
                report.guarantee.factor()
            );
        }
    }
}

#[test]
fn strict_congestion_policy_holds_on_moderate_instances() {
    // The w.h.p. congestion bounds (Lemma D.2) must hold under the failing
    // policy for a realistic APSP run.
    let mut rng = StdRng::seed_from_u64(9);
    let g = erdos_renyi_connected(120, 0.05, 3, &mut rng).unwrap();
    let exact = apsp(&g);
    let mut net = HybridNet::new(&g, HybridConfig::strict());
    let report = solve(&mut net, &Query::apsp().xi(2.0).build().unwrap(), 53).unwrap();
    let out = report.distances().expect("matrix answer");
    for u in g.nodes() {
        for v in g.nodes() {
            assert_eq!(out.get(u, v), exact.get(u, v));
        }
    }
    assert!(net.metrics().max_recv_load <= net.recv_cap());
    assert_eq!(report.global_messages, net.metrics().global_messages);
}
