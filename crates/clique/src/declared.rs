//! Declared-complexity wrappers for the CLIQUE algorithms of Censor-Hillel et
//! al. [7, 8] that the paper plugs into Theorem 4.1.
//!
//! These algorithms (sparse matrix multiplication, algebraic distance products
//! with exponent `ρ < 0.15715`, `Õ(1/ε)`-round hopset constructions) are
//! paper-scale systems of their own; reimplementing them is out of scope
//! (DESIGN.md §3, substitution 1). The framework of Theorem 4.1 only consumes
//! their *input-output contract* — an `(α, β)`-approximation for `n^γ` sources —
//! and their *round complexity* `T_A = Õ(η n^δ)`. The wrappers therefore:
//!
//! * produce estimates satisfying exactly the declared contract
//!   `d(s,v) ≤ d̃(s,v) ≤ α·d(s,v) + β`, with seeded random noise filling the
//!   allowed slack (so the HYBRID framework's error compounding is genuinely
//!   exercised rather than fed exact values), and
//! * charge `⌈η · n^δ⌉` CLIQUE rounds on the net.

use hybrid_graph::dijkstra::dijkstra;
use hybrid_graph::{Distance, Graph, NodeId, INFINITY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::net::{CliqueError, CliqueNet};
use crate::traits::{Beta, CliqueKsspAlgorithm, KsspEstimates, SourceCapacity};

/// A declared-complexity k-SSP CLIQUE algorithm (see module docs).
#[derive(Debug, Clone)]
pub struct DeclaredKssp {
    name: &'static str,
    capacity: SourceCapacity,
    delta: f64,
    eta: f64,
    alpha: f64,
    beta: Beta,
    /// Seed for the noise filling the `(α, β)` slack; `None` returns exact
    /// distances (still a valid `(α, β)`-approximation).
    noise_seed: Option<u64>,
}

impl DeclaredKssp {
    /// \[7\] Theorem 1.2 with `γ = 1/2`: `(1+ε)`-approximate `√n`-source shortest
    /// paths in `Õ(1/ε)` rounds (used by Corollary 4.6).
    pub fn censor_hillel_sqrt_sources(eps: f64, seed: u64) -> Self {
        assert!(eps > 0.0);
        DeclaredKssp {
            name: "CKKL19-Thm1.2(γ=1/2)",
            capacity: SourceCapacity::Exponent(0.5),
            delta: 0.0,
            eta: (1.0 / eps).max(1.0),
            alpha: 1.0 + eps,
            beta: Beta::Zero,
            noise_seed: Some(seed),
        }
    }

    /// \[7\] Theorem 1.1: `(2+ε, (1+ε)·w_{uv})`-approximate APSP in `Õ(1/ε)` rounds
    /// (used by Corollary 4.7). The additive term is bounded by `(1+ε)·W_S`.
    pub fn censor_hillel_apsp(eps: f64, seed: u64) -> Self {
        assert!(eps > 0.0);
        DeclaredKssp {
            name: "CKKL19-Thm1.1(APSP)",
            capacity: SourceCapacity::Apsp,
            delta: 0.0,
            eta: (1.0 / eps).max(1.0),
            alpha: 2.0 + eps,
            beta: Beta::MaxWeight(1.0 + eps),
            noise_seed: Some(seed),
        }
    }

    /// \[8\]: `(1+o(1))`-approximate APSP in `Õ(n^ρ)` rounds, `ρ ≤ 0.15715`
    /// (used by Corollary 4.8). The `o(1)` is modelled as the given `eps`.
    pub fn algebraic_apsp(eps: f64, seed: u64) -> Self {
        assert!(eps >= 0.0);
        DeclaredKssp {
            name: "CKKLPS19-algebraic-APSP",
            capacity: SourceCapacity::Apsp,
            delta: 0.15715,
            eta: 1.0,
            alpha: 1.0 + eps,
            beta: Beta::Zero,
            noise_seed: (eps > 0.0).then_some(seed),
        }
    }

    /// \[7\] Theorem 5.2: *exact* SSSP in `Õ(n^{1/6})` rounds (used by
    /// Corollary 4.9 / Theorem 1.3).
    pub fn exact_sssp() -> Self {
        DeclaredKssp {
            name: "CKKL19-Thm5.2(exact-SSSP)",
            capacity: SourceCapacity::SingleSource,
            delta: 1.0 / 6.0,
            eta: 1.0,
            alpha: 1.0,
            beta: Beta::Zero,
            noise_seed: None,
        }
    }

    /// A custom declared algorithm (for ablation experiments over the
    /// `(γ, δ, η, α, β)` space).
    pub fn custom(
        name: &'static str,
        capacity: SourceCapacity,
        delta: f64,
        eta: f64,
        alpha: f64,
        beta: Beta,
        noise_seed: Option<u64>,
    ) -> Self {
        assert!(delta >= 0.0 && eta >= 1.0 && alpha >= 1.0);
        DeclaredKssp { name, capacity, delta, eta, alpha, beta, noise_seed }
    }

    /// The declared round count on a clique of `n` nodes: `⌈η · n^δ⌉`.
    pub fn declared_rounds(&self, n: usize) -> u64 {
        ((self.eta * (n as f64).powf(self.delta)).ceil() as u64).max(1)
    }
}

/// Applies `(α, β)`-noise to an exact distance: uniform in
/// `[d, α·d + β]`, with `0` and `∞` preserved exactly at the lower end.
fn apply_noise(d: Distance, alpha: f64, beta_bound: f64, rng: &mut StdRng) -> Distance {
    if d == INFINITY {
        return INFINITY;
    }
    let hi = alpha * d as f64 + beta_bound;
    let lo = d as f64;
    if hi <= lo {
        return d;
    }
    let v = rng.gen_range(lo..=hi);
    (v.floor() as Distance).max(d)
}

impl CliqueKsspAlgorithm for DeclaredKssp {
    fn name(&self) -> &'static str {
        self.name
    }

    fn capacity(&self) -> SourceCapacity {
        self.capacity
    }

    fn delta(&self) -> f64 {
        self.delta
    }

    fn eta(&self) -> f64 {
        self.eta
    }

    fn alpha(&self) -> f64 {
        self.alpha
    }

    fn beta(&self) -> Beta {
        self.beta
    }

    fn run(
        &self,
        net: &mut CliqueNet,
        g: &Graph,
        sources: &[NodeId],
    ) -> Result<KsspEstimates, CliqueError> {
        self.check_sources(net.len(), sources)?;
        net.charge_rounds(self.declared_rounds(net.len()));
        let beta_bound = self.beta.bound(g.max_weight());
        let mut rng = self.noise_seed.map(StdRng::seed_from_u64);
        let est = sources
            .iter()
            .map(|&s| {
                let sp = dijkstra(g, s);
                g.nodes()
                    .map(|v| {
                        let d = sp.dist(v);
                        if v == s {
                            return 0;
                        }
                        match rng.as_mut() {
                            Some(r) => apply_noise(d, self.alpha, beta_bound, r),
                            None => d,
                        }
                    })
                    .collect()
            })
            .collect();
        Ok(KsspEstimates { sources: sources.to_vec(), est })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::apsp::apsp;
    use hybrid_graph::generators::erdos_renyi_connected;
    use rand::rngs::StdRng;

    fn graph(seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        erdos_renyi_connected(40, 0.12, 6, &mut rng).unwrap()
    }

    #[test]
    fn exact_sssp_returns_exact() {
        let g = graph(1);
        let exact = apsp(&g);
        let alg = DeclaredKssp::exact_sssp();
        let mut net = CliqueNet::new(g.len());
        let out = alg.run(&mut net, &g, &[NodeId::new(3)]).unwrap();
        for v in g.nodes() {
            assert_eq!(out.get(0, v), exact.get(NodeId::new(3), v));
        }
        assert_eq!(net.rounds(), alg.declared_rounds(g.len()));
    }

    #[test]
    fn sssp_rejects_two_sources() {
        let g = graph(2);
        let mut net = CliqueNet::new(g.len());
        let err = DeclaredKssp::exact_sssp()
            .run(&mut net, &g, &[NodeId::new(0), NodeId::new(1)])
            .unwrap_err();
        assert!(matches!(err, CliqueError::TooManySources { .. }));
    }

    #[test]
    fn noisy_estimates_respect_contract() {
        let g = graph(3);
        let exact = apsp(&g);
        let eps = 0.25;
        let alg = DeclaredKssp::censor_hillel_apsp(eps, 99);
        let mut net = CliqueNet::new(g.len());
        let sources: Vec<NodeId> = g.nodes().collect();
        let out = alg.run(&mut net, &g, &sources).unwrap();
        let w = g.max_weight() as f64;
        let mut saw_inexact = false;
        for (s_idx, &s) in sources.iter().enumerate() {
            for v in g.nodes() {
                let d = exact.get(s, v) as f64;
                let e = out.get(s_idx, v) as f64;
                assert!(e >= d, "never underestimates");
                assert!(e <= (2.0 + eps) * d + (1.0 + eps) * w + 1.0, "within (α, β)");
                if e > d {
                    saw_inexact = true;
                }
            }
        }
        assert!(saw_inexact, "noise must actually exercise the slack");
    }

    #[test]
    fn declared_rounds_formula() {
        let alg = DeclaredKssp::algebraic_apsp(0.0, 0);
        // n = 1024: 1024^0.15715 ≈ 2.97 ⇒ 3 rounds.
        assert_eq!(alg.declared_rounds(1024), 3);
        let fast = DeclaredKssp::censor_hillel_sqrt_sources(0.1, 0);
        assert_eq!(fast.declared_rounds(1024), 10); // η = 1/ε = 10, δ = 0
    }

    #[test]
    fn sqrt_capacity_enforced() {
        let g = graph(4);
        let alg = DeclaredKssp::censor_hillel_sqrt_sources(0.5, 1);
        let mut net = CliqueNet::new(g.len());
        // 40 nodes: cap = 4·⌈√40⌉ ≥ 26; all 40 sources must be rejected.
        let sources: Vec<NodeId> = g.nodes().collect();
        let err = alg.run(&mut net, &g, &sources).unwrap_err();
        assert!(matches!(err, CliqueError::TooManySources { .. }));
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let g = graph(5);
        let alg = DeclaredKssp::censor_hillel_apsp(0.5, 7);
        let mut n1 = CliqueNet::new(g.len());
        let mut n2 = CliqueNet::new(g.len());
        let s = vec![NodeId::new(0)];
        let a = alg.run(&mut n1, &g, &s).unwrap();
        let b = alg.run(&mut n2, &g, &s).unwrap();
        assert_eq!(a.est, b.est);
    }
}
