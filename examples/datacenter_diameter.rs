//! Scenario: a datacenter augments its wired rack fabric (local mode) with a
//! limited-bandwidth optical/wireless overlay (global mode) — the Helios /
//! Flyways setting the paper's introduction cites. The operator wants to track
//! the *hop diameter* of the wired fabric (a proxy for worst-case in-fabric
//! latency) without waiting `Θ(D)` rounds for a purely local sweep.
//!
//! We compare the paper's two diameter approximations (Corollaries 5.2, 5.3)
//! against the exact diameter on the registry's `datacenter-thin-grid`
//! scenario at growing sizes.
//!
//! ```sh
//! cargo run --release --example datacenter_diameter
//! ```

use hybrid_shortest_paths::graph::bfs::unweighted_diameter;
use hybrid_shortest_paths::scenarios;
use hybrid_shortest_paths::{solve, DiameterCorollary, Query};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = scenarios::find("datacenter-thin-grid").expect("registered scenario");
    println!("       n |    D | alg        | estimate | ratio | rounds | D-rounds saved");
    println!("---------+------+------------+----------+-------+--------+---------------");
    for n in [1000usize, 1500, 2000] {
        // Long-haul rack fabric: a thin 4×cols grid of ToR switches — large
        // hop diameter, exactly where a purely local Θ(D)-round sweep hurts.
        let g = scenario.graph(n);
        let d = unweighted_diameter(&g);
        for (name, cor) in
            [("3/2+eps", DiameterCorollary::Cor52), ("1+eps", DiameterCorollary::Cor53)]
        {
            let mut net = scenario.net(&g);
            let query = Query::diameter(cor).eps(0.5).xi(0.5).build()?;
            let out = solve(&mut net, &query, scenario.seed)?;
            let estimate = out.diameter_estimate().expect("diameter answer");
            let exact_local = out.guarantee.is_exact();
            let ratio = estimate as f64 / d as f64;
            let saved = d as i64 - out.rounds as i64;
            println!(
                "{n:>8} | {d:>4} | {name:<10} | {est:>8} | {ratio:>5.2} | {rounds:>6} | {saved:>+6} {note}",
                est = estimate,
                rounds = out.rounds,
                note = if exact_local { "(exact: D fit in the local horizon)" } else { "" },
            );
            assert!(estimate >= d, "estimates never undershoot");
            assert!(ratio <= out.guarantee.factor() + 1e-9, "Theorem 5.1 guarantee");
        }
    }
    println!("\nBoth algorithms honor the Theorem 5.1 guarantee; the (1+eps) variant");
    println!("pays more rounds (larger skeleton exponent) for a tighter estimate.");
    Ok(())
}
