//! Helper sets (§2.1, Definition 2.1, Algorithm 1, Lemma 2.2).
//!
//! Token routing boosts each sender's/receiver's global bandwidth by a factor
//! `µ` by recruiting `µ` nearby helper nodes. Algorithm 1 computes a family of
//! helper sets `{H_w | w ∈ W}` from a `(2µ+1, 2µ⌈log n⌉)`-ruling set: nodes
//! cluster around their closest ruler (clusters have ≥ µ nodes by the pairwise
//! ruler separation, and hop diameter `O(µ log n)` by the domination radius),
//! then every cluster member joins each `H_w` of a `w ∈ W` in its cluster with
//! probability `q = min(2µ/|C|, 1)`.
//!
//! Deviation from the paper (documented in DESIGN.md §3): at simulable `n` the
//! binomial concentration behind `|H_w| ≥ µ` w.h.p. is not yet sharp, so after
//! sampling we *top up* any deficient `H_w` with the hop-closest cluster members
//! (and always include `w` itself). This enforces the Lemma 2.2 invariants
//! deterministically without changing the asymptotic round cost.

use hybrid_graph::bfs::{bfs, multi_source_bfs};
use hybrid_graph::graph::log2_ceil;
use hybrid_graph::NodeId;
use hybrid_sim::{derive_seed, HybridNet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ruling_set::ruling_set;

/// A family of helper sets for a node set `W` (Definition 2.1).
///
/// Node IDs are dense, so the family is a flat per-node table: `sets[w]` is
/// `H_w` for members of `W` and empty for non-members (a real helper set is
/// never empty — it always contains `w` itself).
#[derive(Debug, Clone)]
pub struct HelperSets {
    /// The `µ` parameter the family was built for.
    pub mu: usize,
    /// Helper set per node (each member's set contains `w` itself, sorted by
    /// ID; empty for nodes outside `W`).
    sets: Vec<Vec<NodeId>>,
    /// Number of members of `W` (the number of non-empty entries of `sets`).
    members: usize,
    /// `membership[v]` = number of helper sets `v` belongs to (property (3)).
    pub membership: Vec<usize>,
    /// Closest ruler per node (the clustering).
    pub cluster_of: Vec<NodeId>,
    /// The *measured* maximum cluster radius (hops from any node to its
    /// ruler). The worst-case bound is the domination radius `2µ⌈log n⌉`, but
    /// typical values are far smaller; all intra-cluster floodings
    /// (preparation, collection) are charged at `2 ×` this radius, which the
    /// nodes agree on through one `O(log n)` aggregation.
    pub radius: usize,
}

impl HelperSets {
    /// The degenerate family for `µ = 1`: every node is its own (only) helper.
    /// Costs zero rounds — no ruling set, clustering, or flooding is needed,
    /// because there is no bandwidth to pool.
    pub fn trivial(w_set: &[NodeId], n: usize) -> HelperSets {
        let mut sets: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut membership = vec![0usize; n];
        let mut members = 0;
        for &w in w_set {
            if sets[w.index()].is_empty() {
                members += 1;
            }
            sets[w.index()] = vec![w];
            membership[w.index()] = 1;
        }
        HelperSets {
            mu: 1,
            sets,
            members,
            membership,
            cluster_of: (0..n).map(NodeId::new).collect(),
            radius: 0,
        }
    }

    /// The helper set `H_w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` was not in the `W` the family was built for.
    pub fn helpers(&self, w: NodeId) -> &[NodeId] {
        let h = self.sets.get(w.index()).map(Vec::as_slice).unwrap_or(&[]);
        assert!(!h.is_empty(), "w must be a member of W");
        h
    }

    /// Iterates over `(w, H_w)` pairs, in node-ID order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[NodeId])> {
        self.sets
            .iter()
            .enumerate()
            .filter(|(_, h)| !h.is_empty())
            .map(|(w, h)| (NodeId::new(w), h.as_slice()))
    }

    /// Number of sets in the family (`|W|`).
    pub fn len(&self) -> usize {
        self.members
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.members == 0
    }

    /// Largest membership count over all nodes (Lemma 2.2 property (3) says this
    /// is `Õ(1)` w.h.p.).
    pub fn max_membership(&self) -> usize {
        self.membership.iter().copied().max().unwrap_or(0)
    }
}

/// Runs Algorithm 1: computes helper sets for `w_set` with parameter `mu`,
/// charging `O(µ log n)` local rounds on `net`.
///
/// # Panics
///
/// Panics if `mu == 0` or `w_set` contains out-of-range nodes.
pub fn compute_helpers(
    net: &mut HybridNet<'_>,
    w_set: &[NodeId],
    mu: usize,
    seed: u64,
    phase: &str,
) -> HelperSets {
    assert!(mu >= 1, "µ must be positive");
    let g = net.graph();
    let n = g.len();
    let log = log2_ceil(n);

    // Step 1: ruling set (charges O(µ log n) rounds itself).
    let rs = ruling_set(net, mu, phase);

    // Step 2: clustering — every node joins its closest ruler (ties toward
    // the smaller ruler ID). The paper charges the worst-case domination
    // radius `2µ⌈log n⌉`; we flood adaptively and charge the *measured*
    // radius, then spend one `O(log n)` global aggregation so all nodes agree
    // on it (Lemma B.2) — same Õ class, far smaller constant.
    let reach = multi_source_bfs(g, &rs.rulers);
    let cluster_of: Vec<NodeId> = reach
        .iter()
        .map(|&(owner, _)| owner.expect("connected graph: every node reaches a ruler"))
        .collect();
    let radius = reach.iter().map(|&(_, d)| d).max().unwrap_or(0) as usize;
    debug_assert!(radius <= 2 * mu * log, "domination radius bound (Lemma 2.1)");
    net.charge_local(radius as u64, phase);
    net.charge_global_rounds(2 * log as u64, phase);

    // Step 3: cluster members learn each other — a flood over the cluster
    // diameter (≤ 2 × the clustering radius). Rulers are nodes, so the
    // cluster table is a flat per-node vector.
    net.charge_local((2 * radius) as u64, phase);
    let mut cluster_members: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for v in 0..n {
        cluster_members[cluster_of[v].index()].push(NodeId::new(v));
    }

    // Step 4: randomized helper subscription with q = min(2µ/|C|, 1).
    let mut rng = StdRng::seed_from_u64(derive_seed(seed, 0x48454C50));
    let mut sets: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut members = 0usize;
    let mut membership = vec![0usize; n];
    for &w in w_set {
        let cluster = &cluster_members[cluster_of[w.index()].index()];
        let q = ((2 * mu) as f64 / cluster.len() as f64).min(1.0);
        let mut h: Vec<NodeId> =
            cluster.iter().copied().filter(|&v| v == w || rng.gen_bool(q)).collect();
        // Top-up: enforce |H_w| ≥ µ (bounded by the cluster size) with the
        // hop-closest cluster members.
        if h.len() < mu.min(cluster.len()) {
            let d = bfs(g, w);
            let mut by_dist: Vec<NodeId> = cluster.clone();
            by_dist.sort_by_key(|&v| (d.dist(v), v));
            for &v in &by_dist {
                if h.len() >= mu.min(cluster.len()) {
                    break;
                }
                if !h.contains(&v) {
                    h.push(v);
                }
            }
        }
        h.sort_unstable();
        h.dedup();
        for &v in &h {
            membership[v.index()] += 1;
        }
        if sets[w.index()].is_empty() {
            members += 1;
        }
        sets[w.index()] = h;
    }
    HelperSets { mu, sets, members, membership, cluster_of, radius }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators::{erdos_renyi_connected, grid, path};
    use hybrid_graph::Graph;
    use hybrid_sim::HybridConfig;
    use rand::seq::SliceRandom;

    fn random_subset(g: &Graph, p: f64, seed: u64) -> Vec<NodeId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w: Vec<NodeId> = g.nodes().filter(|_| rng.gen_bool(p)).collect();
        if w.is_empty() {
            w.push(*g.nodes().collect::<Vec<_>>().choose(&mut rng).unwrap());
        }
        w
    }

    fn check_family(g: &Graph, w_set: &[NodeId], mu: usize, hs: &HelperSets) {
        let log = log2_ceil(g.len());
        for &w in w_set {
            let h = hs.helpers(w);
            // Property (1): size ≥ µ (bounded by the w's cluster size).
            let cluster_size =
                hs.cluster_of.iter().filter(|&&r| r == hs.cluster_of[w.index()]).count();
            assert!(
                h.len() >= mu.min(cluster_size),
                "|H_w| = {} < µ = {mu} (cluster {cluster_size})",
                h.len()
            );
            // Property (2): helpers within O(µ log n) hops (cluster diameter
            // bound: 2β = 4µ⌈log n⌉).
            let d = bfs(g, w);
            for &x in h {
                assert!(
                    d.dist(x) <= (4 * mu * log) as u64,
                    "helper {x} at distance {} from {w}",
                    d.dist(x)
                );
            }
        }
    }

    #[test]
    fn on_path() {
        let g = path(60, 1).unwrap();
        let w = random_subset(&g, 0.2, 1);
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let hs = compute_helpers(&mut net, &w, 2, 42, "helpers");
        check_family(&g, &w, 2, &hs);
        assert!(net.rounds() > 0);
    }

    #[test]
    fn on_grid_and_random() {
        let g = grid(9, 9, 1).unwrap();
        let w = random_subset(&g, 0.15, 2);
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let hs = compute_helpers(&mut net, &w, 3, 7, "helpers");
        check_family(&g, &w, 3, &hs);

        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi_connected(80, 0.05, 1, &mut rng).unwrap();
        let w = random_subset(&g, 0.25, 3);
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let hs = compute_helpers(&mut net, &w, 2, 9, "helpers");
        check_family(&g, &w, 2, &hs);
    }

    #[test]
    fn w_is_own_helper() {
        let g = path(30, 1).unwrap();
        let w = vec![NodeId::new(4), NodeId::new(20)];
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let hs = compute_helpers(&mut net, &w, 2, 0, "helpers");
        for &x in &w {
            assert!(hs.helpers(x).contains(&x));
        }
        assert_eq!(hs.len(), 2);
    }

    #[test]
    fn membership_stays_moderate() {
        // Property (3): with |W| sampled at rate compatible with µ, nodes join
        // O(log n) sets. We assert a generous bound and report the max.
        let mut rng = StdRng::seed_from_u64(6);
        let g = erdos_renyi_connected(100, 0.05, 1, &mut rng).unwrap();
        let w = random_subset(&g, 0.3, 4);
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let mu = 3; // ≈ min(√k, n/|W|) for moderate workloads
        let hs = compute_helpers(&mut net, &w, mu, 11, "helpers");
        check_family(&g, &w, mu, &hs);
        assert!(
            hs.max_membership() <= 8 * log2_ceil(g.len()),
            "max membership {} too large",
            hs.max_membership()
        );
    }

    #[test]
    fn rounds_scale_with_mu() {
        let g = path(100, 1).unwrap();
        let w = random_subset(&g, 0.2, 8);
        let mut small = HybridNet::new(&g, HybridConfig::strict());
        compute_helpers(&mut small, &w, 1, 0, "h");
        let mut large = HybridNet::new(&g, HybridConfig::strict());
        compute_helpers(&mut large, &w, 4, 0, "h");
        assert!(large.rounds() > small.rounds());
        // The ruling set dominates: 2µ·⌈log n⌉ rounds; clustering/member
        // floodings are charged at the measured radius plus one aggregation.
        let log = log2_ceil(100) as u64;
        assert!(large.rounds() >= 2 * 4 * log);
        assert!(large.rounds() <= 14 * 4 * log);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grid(5, 5, 1).unwrap();
        let w = random_subset(&g, 0.3, 10);
        let mut n1 = HybridNet::new(&g, HybridConfig::strict());
        let mut n2 = HybridNet::new(&g, HybridConfig::strict());
        let h1 = compute_helpers(&mut n1, &w, 2, 33, "h");
        let h2 = compute_helpers(&mut n2, &w, 2, 33, "h");
        for &x in &w {
            assert_eq!(h1.helpers(x), h2.helpers(x));
        }
    }
}
