//! Criterion wall-clock wrapper for E2 (Theorem 1.1 vs SODA20 baseline) (see EXPERIMENTS.md; the round-count
//! tables come from the `experiments` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use hybrid_bench::experiments::e2_apsp;
use hybrid_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bench_apsp");
    group.sample_size(10);
    group.bench_function("e2_small", |b| b.iter(|| e2_apsp(Scale::Small)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
