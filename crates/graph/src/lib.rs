//! Graph substrate for the reproduction of Kuhn & Schneider,
//! *Computing Shortest Paths and Diameter in the Hybrid Network Model* (PODC 2020).
//!
//! This crate contains everything the distributed algorithms of the paper need to
//! stand on, but nothing about the communication model itself:
//!
//! * [`Graph`] — a weighted, undirected, connected-checkable graph in CSR form,
//!   built through [`GraphBuilder`].
//! * [`generators`] — workload graph families (paths, cycles, grids, trees,
//!   Erdős–Rényi, random geometric, caterpillars, barbells, …).
//! * Reference (sequential) algorithms used as ground truth by the test- and
//!   benchmark-suites: [`dijkstra`], [`bfs`], [`limited`] (the paper's `h`-limited
//!   distances `d_h`), [`apsp`].
//! * [`skeleton`] — skeleton graphs à la Appendix C of the paper (and originally
//!   Ullman & Yannakakis), with the sampling lemmas' invariants exposed for testing.
//! * [`minplus`] — the shared blocked min-plus kernel (cache-tiled, branch-free,
//!   thread-parallel row driver) behind the skeleton merges, the CLIQUE semiring
//!   squaring, and eccentricity assembly.
//! * [`lower_bounds`] — the two worst-case constructions of the paper:
//!   the k-SSP path construction (Figure 1) and the set-disjointness diameter
//!   construction `Γ^{a,b}_{k,ℓ,W}` (Figure 2).
//!
//! # Example
//!
//! ```
//! use hybrid_graph::{GraphBuilder, NodeId};
//! use hybrid_graph::dijkstra::dijkstra;
//!
//! # fn main() -> Result<(), hybrid_graph::GraphError> {
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(NodeId::new(0), NodeId::new(1), 2)?;
//! b.add_edge(NodeId::new(1), NodeId::new(2), 3)?;
//! b.add_edge(NodeId::new(0), NodeId::new(3), 1)?;
//! b.add_edge(NodeId::new(3), NodeId::new(2), 1)?;
//! let g = b.build()?;
//! let d = dijkstra(&g, NodeId::new(0));
//! assert_eq!(d.dist(NodeId::new(2)), 2); // 0 -3-> 2 with weight 1+1
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod apsp;
pub mod bfs;
pub mod delta;
pub mod dijkstra;
pub mod dist;
pub mod export;
pub mod generators;
pub mod graph;
pub mod ids;
pub mod limited;
pub mod lower_bounds;
pub mod minplus;
pub mod skeleton;

pub use delta::{DeltaBatch, DeltaError, GraphDelta};
pub use dist::{dist_add, Distance, INFINITY};
pub use graph::{Graph, GraphBuilder, GraphError};
pub use ids::NodeId;
