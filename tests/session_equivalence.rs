//! Session-vs-fresh equivalence: the serving layer's core contract.
//!
//! A [`Session`] must answer every query bit-identically to a fresh
//! `solve()` — distances, rounds, guarantees, message accounting, and
//! structured errors under faults — while amortizing the shared preamble.
//! This suite pins that contract over the whole scenario registry, the two
//! pinned E2 perf instances, the thread-sharded round engine, and closes
//! with the cold-vs-amortized ratio assertion (ratio-based, so a noisy box
//! can't fake or break it).

use hybrid_shortest_paths::core::session::{Session, SessionConfig};
use hybrid_shortest_paths::graph::NodeId;
use hybrid_shortest_paths::scenarios::workloads;
use hybrid_shortest_paths::scenarios::{registry, run_scenario_with, Engine};
use hybrid_shortest_paths::sim::{HybridConfig, HybridNet};
use hybrid_shortest_paths::{
    solve, Answer, ApspVariant, DiameterCorollary, KsspCorollary, Query, Report, SsspVariant,
};

/// The benchmark's mixed serving batch (mirrors
/// `hybrid_bench::experiments::mixed_query_batch`): 8 distinct paper queries
/// cycled to 32 — the repeat-heavy shape of serving traffic.
fn mixed_batch_32() -> Vec<Query> {
    let base = [
        Query::apsp().xi(1.5).build().unwrap(),
        Query::apsp().variant(ApspVariant::Soda20).xi(1.5).build().unwrap(),
        Query::sssp(NodeId::new(0)).xi(1.5).build().unwrap(),
        Query::sssp(NodeId::new(1))
            .variant(SsspVariant::ApproxSoda20 { eps: 0.5 })
            .xi(1.5)
            .build()
            .unwrap(),
        Query::kssp(KsspCorollary::Cor46).random_sources(2).eps(0.5).xi(1.5).build().unwrap(),
        Query::kssp(KsspCorollary::Cor47).random_sources(8).eps(0.5).xi(1.5).build().unwrap(),
        Query::diameter(DiameterCorollary::Cor52).eps(0.5).xi(1.5).build().unwrap(),
        Query::diameter(DiameterCorollary::Cor53).eps(0.5).xi(1.5).build().unwrap(),
    ];
    (0..32).map(|i| base[i % base.len()].clone()).collect()
}

/// Full-report equality, answers compared payload-by-payload.
fn assert_reports_identical(fresh: &Report, served: &Report, context: &str) {
    assert_eq!(fresh.rounds, served.rounds, "{context}: rounds");
    assert_eq!(fresh.global_messages, served.global_messages, "{context}: global messages");
    assert_eq!(fresh.dropped_messages, served.dropped_messages, "{context}: dropped messages");
    assert_eq!(fresh.skeleton_size, served.skeleton_size, "{context}: skeleton size");
    assert_eq!(fresh.h, served.h, "{context}: h");
    assert_eq!(fresh.coverage_fallbacks, served.coverage_fallbacks, "{context}: fallbacks");
    assert_eq!(fresh.guarantee, served.guarantee, "{context}: guarantee");
    match (&fresh.answer, &served.answer) {
        (Answer::Distances(a), Answer::Distances(b)) => {
            assert_eq!(a.as_flat(), b.as_flat(), "{context}: distance matrix")
        }
        (Answer::DistanceRow { dist: a, .. }, Answer::DistanceRow { dist: b, .. }) => {
            assert_eq!(a, b, "{context}: distance row")
        }
        (
            Answer::DistanceRows { sources: sa, est: a },
            Answer::DistanceRows { sources: sb, est: b },
        ) => {
            assert_eq!(sa, sb, "{context}: sources");
            assert_eq!(a, b, "{context}: estimate rows");
        }
        (
            Answer::Diameter { estimate: a, exact_local: xa },
            Answer::Diameter { estimate: b, exact_local: xb },
        ) => {
            assert_eq!(a, b, "{context}: diameter estimate");
            assert_eq!(xa, xb, "{context}: exact-local flag");
        }
        _ => panic!("{context}: answer shapes differ"),
    }
}

/// Every registry scenario — healthy, degraded, lossy, crashing — must
/// produce the identical deterministic report through the session engine,
/// including structured-error verdicts (the runner compares partial rounds
/// and message counts too).
#[test]
fn every_registry_scenario_is_bit_identical_via_session() {
    for sc in registry() {
        let fresh = run_scenario_with(sc, 48, Engine::Fresh);
        let served = run_scenario_with(sc, 48, Engine::Session);
        assert_eq!(
            fresh.deterministic_key(),
            served.deterministic_key(),
            "scenario {} diverged between engines",
            sc.name
        );
    }
}

/// Direct report comparison (not just runner verdicts) for a healthy, a
/// lossy, and a crashing scenario: distances and error values themselves.
#[test]
fn scenario_reports_compare_payload_by_payload() {
    for name in ["e2-er", "faulty-drop-apsp", "crash-mid-run-apsp", "sparse-grid-thm11"] {
        let sc = hybrid_shortest_paths::scenarios::find(name).expect("registered scenario");
        let g = sc.graph(48);
        let query = sc.suite.query();
        let mut net = sc.net(&g);
        let fresh = solve(&mut net, &query, sc.seed);
        let session = Session::new(
            &g,
            SessionConfig {
                xi: sc.suite.xi(),
                net: sc.faults.config(),
                faults: sc.faults.sim_plan(g.len(), sc.seed),
                ..SessionConfig::new(sc.seed)
            },
        )
        .expect("session");
        let served = session.solve(&query);
        match (fresh, served) {
            (Ok(a), Ok(b)) => assert_reports_identical(&a, &b, name),
            (Err(a), Err(b)) => assert_eq!(a, b, "{name}: structured errors must match"),
            (a, b) => panic!("{name}: outcomes diverged: fresh {a:?} vs session {b:?}"),
        }
    }
}

/// The two pinned E2 perf instances (n = 200 and n = 400, both APSP
/// algorithms) answer bit-identically through a session — and the session
/// keeps billing the pinned round counts recorded since PR 3.
#[test]
fn pinned_e2_instances_answer_bit_identically() {
    let pinned_rounds = [(200usize, 306u64, 305u64), (400, 529, 529)];
    for (n, thm11_rounds, soda20_rounds) in pinned_rounds {
        let g = workloads::er(n, 12.0, 4, 3);
        let session = Session::new(&g, SessionConfig::new(5)).expect("session");
        for (query, rounds) in [
            (Query::apsp().xi(1.5).build().unwrap(), thm11_rounds),
            (Query::apsp().variant(ApspVariant::Soda20).xi(1.5).build().unwrap(), soda20_rounds),
        ] {
            let mut net = HybridNet::new(&g, HybridConfig::default());
            let fresh = solve(&mut net, &query, 5).expect("fresh solve");
            let served = session.solve(&query).expect("session solve");
            assert_reports_identical(&fresh, &served, &format!("E2 n={n} {}", query.label()));
            assert_eq!(served.rounds, rounds, "E2 n={n} {} pinned rounds", query.label());
        }
    }
}

/// Equivalence holds under the thread-sharded round engine: a session pinned
/// to `round_threads = 4` answers identically to the default fresh path
/// (which PR 4's determinism suite proves thread-invariant).
#[test]
fn session_under_four_round_threads_is_bit_identical() {
    for sc in registry().iter().filter(|sc| !sc.faults.is_lossy()) {
        let g = sc.graph(48);
        let query = sc.suite.query();
        let mut net = sc.net(&g);
        let fresh = solve(&mut net, &query, sc.seed).expect("healthy scenarios solve");
        let session = Session::new(
            &g,
            SessionConfig {
                xi: sc.suite.xi(),
                net: sc.faults.config(),
                round_threads: Some(4),
                ..SessionConfig::new(sc.seed)
            },
        )
        .expect("session");
        let served = session.solve(&query).expect("session solve");
        assert_reports_identical(&fresh, &served, &format!("{} @ 4 round threads", sc.name));
    }
}

/// Batch amortization, ratio-based (satellite of the serving-layer PR): a
/// q=32 mixed batch on one E2 graph must be at least 2× faster through a
/// session than 32 cold solves. The recorded benchmark
/// (`BENCH_throughput.json`, E2 n = 400) shows ≈3.4–4.3×; the looser bound
/// here keeps the guard robust to a noisy box, and the session side runs
/// *sequentially* (plain `solve` per query, no batch workers) so multi-core
/// threading can never mask an amortization regression. The structural
/// assertions below pin the sharing itself, independent of wall clocks.
#[test]
fn amortized_mixed_batch_beats_cold_by_ratio() {
    let n = 200;
    let g = workloads::er(n, 12.0, 4, 3);
    let queries = mixed_batch_32();
    let seed = 7;

    let cold_start = std::time::Instant::now();
    let mut cold_rounds = 0u64;
    for q in &queries {
        let mut net = HybridNet::new(&g, HybridConfig::default());
        cold_rounds += solve(&mut net, q, seed).expect("cold solve").rounds;
    }
    let cold = cold_start.elapsed();

    let session = Session::new(&g, SessionConfig::new(seed)).expect("session");
    let warm_start = std::time::Instant::now();
    let mut warm_rounds = 0u64;
    for q in &queries {
        warm_rounds += session.solve(q).expect("session solve").rounds;
    }
    let warm = warm_start.elapsed();

    // Amortization never discounts the simulated bill …
    assert_eq!(cold_rounds, warm_rounds, "simulated rounds must be identical");
    // … only the wall clock.
    let ratio = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
    assert!(
        ratio >= 2.0,
        "q={} mixed batch amortization regressed: cold {:?} vs session {:?} (ratio {ratio:.2})",
        queries.len(),
        cold,
        warm,
    );

    // Structural sharing pins (wall-clock independent): 32 inputs = 8 unique
    // queries (24 repeats served from the report memo), and the 8 unique
    // preambles collapse onto 6 prepared skeletons — Cor 4.6, 4.7 and 5.2
    // share the x = 2/3 key; thm11, soda20, thm13 (forced source 0), the
    // approximate SSSP (forced source 1), and Cor 5.3 each get their own.
    // A regression that silently stops sharing (every query preparing its
    // own skeleton, or the warm path falling back to cold) breaks these
    // counts even on a machine where dedup alone still wins the ratio.
    let stats = session.stats();
    assert_eq!(stats.queries, 32);
    assert_eq!(stats.report_hits, 24, "24 of 32 mixed queries are repeats");
    assert_eq!(stats.skeletons_prepared, 6, "8 unique preambles share 6 skeletons");
}
