//! Criterion wall-clock wrapper for E4 (Theorem 1.3) (see EXPERIMENTS.md; the round-count
//! tables come from the `experiments` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use hybrid_bench::experiments::e4_sssp;
use hybrid_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bench_sssp");
    group.sample_size(10);
    group.bench_function("e4_small", |b| b.iter(|| e4_sssp(Scale::Small)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
