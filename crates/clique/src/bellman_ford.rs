//! Genuine distributed Bellman–Ford on the congested clique.
//!
//! Exact k-source shortest paths: every node keeps a distance estimate per
//! source; in each iteration the nodes whose estimates improved send the updates
//! to their *graph* neighbors (routed over the clique), and everyone relaxes.
//! The iteration count is the shortest-path diameter of the input graph, so this
//! is only fast on low-`SPD` cliques — which skeleton graphs typically are (their
//! edges contract `h`-hop paths). It serves as the fully-simulated counterpart to
//! the declared wrappers of [`crate::declared`].

use hybrid_graph::{dist_add, Distance, Graph, NodeId, INFINITY};

use crate::net::{CliqueError, CliqueMsg, CliqueNet};
use crate::traits::{Beta, CliqueKsspAlgorithm, KsspEstimates, SourceCapacity};

/// Exact k-source Bellman–Ford (any number of sources, `α = 1`, `β = 0`).
///
/// Declared runtime exponent is the trivial `δ = 1` (its real cost is
/// `O(SPD(S))` iterations whose per-iteration Lenzen cost depends on update
/// volume); the simulated round count is what experiments report.
#[derive(Debug, Clone, Default)]
pub struct BellmanFordKSsp;

impl BellmanFordKSsp {
    /// Creates the algorithm.
    pub fn new() -> Self {
        BellmanFordKSsp
    }
}

impl CliqueKsspAlgorithm for BellmanFordKSsp {
    fn name(&self) -> &'static str {
        "bellman-ford-kssp"
    }

    fn capacity(&self) -> SourceCapacity {
        SourceCapacity::Apsp
    }

    fn delta(&self) -> f64 {
        1.0
    }

    fn eta(&self) -> f64 {
        1.0
    }

    fn alpha(&self) -> f64 {
        1.0
    }

    fn beta(&self) -> Beta {
        Beta::Zero
    }

    fn run(
        &self,
        net: &mut CliqueNet,
        g: &Graph,
        sources: &[NodeId],
    ) -> Result<KsspEstimates, CliqueError> {
        self.check_sources(net.len(), sources)?;
        let n = g.len();
        let k = sources.len();
        // dist[v][s_idx]
        let mut dist = vec![vec![INFINITY; k]; n];
        for (s_idx, &s) in sources.iter().enumerate() {
            dist[s.index()][s_idx] = 0;
        }
        // Initially every source's own estimate is "fresh".
        let mut fresh: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (s_idx, &s) in sources.iter().enumerate() {
            fresh[s.index()].push(s_idx);
        }
        loop {
            let mut batch: Vec<CliqueMsg<(u32, Distance)>> = Vec::new();
            for v in 0..n {
                if fresh[v].is_empty() {
                    continue;
                }
                for &s_idx in &fresh[v] {
                    let d = dist[v][s_idx];
                    for (u, _) in g.neighbors(NodeId::new(v)) {
                        batch.push(CliqueMsg::new(NodeId::new(v), u, (s_idx as u32, d)));
                    }
                }
                fresh[v].clear();
            }
            if batch.is_empty() {
                break;
            }
            let inboxes = net.route(batch)?;
            for (u, msgs) in inboxes.into_iter().enumerate() {
                for (sender, (s_idx, d)) in msgs {
                    let w = g
                        .edge_weight(NodeId::new(u), sender)
                        .expect("updates travel along graph edges");
                    let cand = dist_add(d, w);
                    let s_idx = s_idx as usize;
                    if cand < dist[u][s_idx] {
                        dist[u][s_idx] = cand;
                        if !fresh[u].contains(&s_idx) {
                            fresh[u].push(s_idx);
                        }
                    }
                }
            }
        }
        // Transpose into per-source rows.
        let est = (0..k).map(|s_idx| (0..n).map(|v| dist[v][s_idx]).collect()).collect();
        Ok(KsspEstimates { sources: sources.to_vec(), est })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::apsp::apsp;
    use hybrid_graph::generators::{erdos_renyi_connected, path};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_on_path() {
        let g = path(6, 3).unwrap();
        let mut net = CliqueNet::new(6);
        let alg = BellmanFordKSsp::new();
        let out = alg.run(&mut net, &g, &[NodeId::new(0)]).unwrap();
        for v in 0..6 {
            assert_eq!(out.get(0, NodeId::new(v)), 3 * v as u64);
        }
        assert!(net.rounds() >= 5, "BF needs ≥ SPD iterations, got {}", net.rounds());
    }

    #[test]
    fn matches_reference_apsp_multi_source() {
        let mut rng = StdRng::seed_from_u64(77);
        let g = erdos_renyi_connected(30, 0.15, 7, &mut rng).unwrap();
        let exact = apsp(&g);
        let sources: Vec<NodeId> = (0..30).step_by(5).map(NodeId::new).collect();
        let mut net = CliqueNet::new(30);
        let out = BellmanFordKSsp::new().run(&mut net, &g, &sources).unwrap();
        for (s_idx, &s) in sources.iter().enumerate() {
            for v in g.nodes() {
                assert_eq!(out.get(s_idx, v), exact.get(s, v));
            }
        }
    }

    #[test]
    fn rejects_empty_sources() {
        let g = path(3, 1).unwrap();
        let mut net = CliqueNet::new(3);
        let err = BellmanFordKSsp::new().run(&mut net, &g, &[]).unwrap_err();
        assert_eq!(err, CliqueError::NoSources);
    }

    #[test]
    fn unreachable_nodes_stay_infinite() {
        // Clique net over a disconnected graph (the skeleton could in principle be
        // disconnected if h is too small): estimates must stay ∞, not garbage.
        let mut b = hybrid_graph::GraphBuilder::new(4);
        b.add_edge(NodeId::new(0), NodeId::new(1), 2).unwrap();
        b.add_edge(NodeId::new(2), NodeId::new(3), 2).unwrap();
        let g = b.build().unwrap();
        let mut net = CliqueNet::new(4);
        let out = BellmanFordKSsp::new().run(&mut net, &g, &[NodeId::new(0)]).unwrap();
        assert_eq!(out.get(0, NodeId::new(1)), 2);
        assert_eq!(out.get(0, NodeId::new(2)), INFINITY);
    }
}
