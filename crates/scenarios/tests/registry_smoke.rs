//! Registry smoke test: every shipped scenario runs at `n ≤ 64` through the
//! parallel runner, verifies `Pass` against ground truth, and reproduces
//! deterministically from `(scenario, seed)`.

use hybrid_scenarios::{registry, run_scenarios, Scenario};

const SMOKE_N: usize = 48;

#[test]
fn full_registry_passes_at_smoke_size() {
    let batch: Vec<&Scenario> = registry().iter().collect();
    let reports = run_scenarios(&batch, SMOKE_N);
    assert_eq!(reports.len(), registry().len());
    for r in &reports {
        assert!(
            r.passed(),
            "{} [{} / {} / {}]: {}",
            r.scenario,
            r.family,
            r.faults,
            r.suite,
            r.detail
        );
        assert!(r.n <= 64);
    }
    // The lossy plans actually bit: at least one faulty scenario lost
    // messages (otherwise the fault machinery silently did nothing).
    let dropped: u64 = reports.iter().map(|r| r.dropped_messages).sum();
    assert!(dropped > 0, "drop/crash plans must remove messages at smoke size");
    // Degraded-cap scenarios still deliver everything.
    for r in reports.iter().filter(|r| r.faults == "degraded-caps") {
        assert_eq!(r.dropped_messages, 0, "{}", r.scenario);
    }
}

#[test]
fn runs_are_deterministic_from_scenario_and_seed() {
    let batch: Vec<&Scenario> = registry().iter().collect();
    let first = run_scenarios(&batch, SMOKE_N);
    let second = run_scenarios(&batch, SMOKE_N);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            a.deterministic_key(),
            b.deterministic_key(),
            "{} must reproduce bit-identically",
            a.scenario
        );
    }
}
