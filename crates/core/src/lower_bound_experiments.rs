//! Empirical companions to the paper's lower bounds (§6: Theorem 1.5, §7:
//! Theorem 1.6).
//!
//! Lower bounds cannot be "run", but their *mechanisms* can be measured:
//!
//! * **k-SSP (Figure 1)**: the `Ω(k)`-bit random source assignment must reach
//!   node `b` through the `L`-hop path prefix whose global receive capacity is
//!   `O(L log² n)` bits per round. We build the construction, register the
//!   prefix as a cut in the simulator, run a real k-SSP algorithm, check `b`
//!   learns the right distances, and compare the measured cut traffic and round
//!   count against the predicted `Ω̃(√k)` bound.
//! * **Diameter (Figure 2)**: the diameter of `Γ^{a,b}_{k,ℓ,W}` distinguishes
//!   disjoint from intersecting set-disjointness instances (Lemmas 7.1 / 7.2),
//!   and any algorithm that resolves it must push `Ω(k²)` bits across the
//!   column cut whose capacity is `Õ(n)` bits per round — hence
//!   `Ω̃(n^{1/3})` rounds. We verify the diameter gap, measure what our actual
//!   approximation algorithms see, and tabulate the implied bound.

use hybrid_graph::apsp::weighted_diameter;
use hybrid_graph::bfs::unweighted_diameter;
use hybrid_graph::graph::log2_ceil;
use hybrid_graph::lower_bounds::{GammaGraph, KsspLowerBound, SetDisjointness};
use hybrid_graph::{Distance, INFINITY};
use hybrid_sim::{HybridConfig, HybridNet};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::HybridError;
use crate::ksssp::{kssp_cor47, KsspConfig};

/// Measurement report for the k-SSP lower bound (Theorem 1.5 / Figure 1).
#[derive(Debug, Clone)]
pub struct KsspLbReport {
    /// Number of sources `k`.
    pub k: usize,
    /// Prefix length `L` (the paper sets `L ∈ Θ̃(√k)`).
    pub l: usize,
    /// Network size of the construction.
    pub n: usize,
    /// Entropy of the source assignment in bits (`≈ k`).
    pub entropy_bits: f64,
    /// Global-receive capacity of the prefix in bits per round
    /// (`L · recv_cap · ⌈log₂ n⌉`).
    pub cut_capacity_bits_per_round: f64,
    /// The implied round lower bound `entropy / capacity`.
    pub predicted_round_lb: f64,
    /// Rounds the real algorithm took.
    pub measured_rounds: u64,
    /// Global messages that crossed the prefix cut.
    pub measured_cut_messages: u64,
    /// Whether node `b` learned every source distance exactly enough to decode
    /// the assignment (approximation factor below the paper's `α'`).
    pub b_decodes_assignment: bool,
}

/// Builds the Figure-1 construction and measures a real k-SSP run against the
/// information-theoretic bound.
///
/// # Errors
///
/// Propagates algorithm errors.
pub fn run_kssp_lower_bound(
    path_len: usize,
    l: usize,
    k: usize,
    eps: f64,
    seed: u64,
) -> Result<KsspLbReport, HybridError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let lb = KsspLowerBound::random(path_len, l, k, &mut rng)?;
    let g = &lb.graph;
    let n = g.len();
    let mut net = HybridNet::new(g, HybridConfig::default());
    // The cut: the L-hop prefix of the path (Alice's side is everything else).
    let side: Vec<bool> = g.nodes().map(|v| lb.on_b_side(v, l)).collect();
    net.set_cut(side);

    let out = kssp_cor47(&mut net, &lb.sources, eps, KsspConfig { xi: 0.3 }, seed)?;

    // b decodes the assignment iff its estimate for every source distinguishes
    // "near v1" (distance l+1) from "near v2" (distance path_len): the
    // approximation must stay below α' ∈ Θ(n/√k) — here simply: the estimate
    // for a near source must be smaller than the true far distance.
    let far = lb.path_nodes.len() as Distance;
    let b_decodes = lb.sources.iter().enumerate().all(|(i, _)| {
        let est = out.get(i, lb.b);
        if lb.assignment[i] {
            est < far // near sources must not be confused with far ones
        } else {
            est >= far
        }
    });

    let log = log2_ceil(n);
    let capacity = (l as f64) * net.recv_cap() as f64 * log as f64;
    let entropy = lb.assignment_entropy_bits();
    Ok(KsspLbReport {
        k,
        l,
        n,
        entropy_bits: entropy,
        cut_capacity_bits_per_round: capacity,
        predicted_round_lb: entropy / capacity,
        measured_rounds: out.rounds,
        measured_cut_messages: net.metrics().cut_messages,
        b_decodes_assignment: b_decodes,
    })
}

/// Measurement report for the diameter lower bound (Theorem 1.6 / Figure 2).
#[derive(Debug, Clone)]
pub struct DiameterLbReport {
    /// Clique size `k` (universe `k²`).
    pub k: usize,
    /// Path parameter `ℓ`.
    pub ell: usize,
    /// Heavy weight `W`.
    pub w: Distance,
    /// Network size `n = 4k + 2 + (2k+1)(ℓ-1)`.
    pub n: usize,
    /// Whether the encoded instance is disjoint.
    pub disjoint: bool,
    /// The reference diameter of the construction (weighted for `W > 1`).
    pub true_diameter: Distance,
    /// The diameter value Lemma 7.1/7.2 predicts for this instance class.
    pub lemma_diameter: Distance,
    /// Entropy that must cross the cut to resolve disjointness (`k²` bits).
    pub entropy_bits: f64,
    /// Global capacity of the whole network in bits per round (`n·recv_cap·log n`).
    pub capacity_bits_per_round: f64,
    /// The implied exact-diameter round bound `Ω(k² / (n log² n))`.
    pub implied_round_lb: f64,
    /// Rounds our (approximate!) diameter algorithm took — approximation is how
    /// upper bounds duck under the exact-computation lower bound.
    pub approx_rounds: u64,
    /// The approximate algorithm's estimate.
    pub approx_estimate: Distance,
    /// Messages crossing the middle column cut during the approximate run.
    pub cut_messages: u64,
}

/// Builds `Γ^{a,b}` for a random (dis)joint instance, verifies the Lemma 7.1 /
/// 7.2 diameter gap, and measures an approximate-diameter run across the cut.
///
/// # Errors
///
/// Propagates algorithm errors.
pub fn run_diameter_lower_bound(
    k: usize,
    ell: usize,
    w: Distance,
    disjoint: bool,
    eps: f64,
    seed: u64,
) -> Result<DiameterLbReport, HybridError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let inst = if disjoint {
        SetDisjointness::random_disjoint(k, &mut rng)
    } else {
        SetDisjointness::random_intersecting(k, &mut rng)
    };
    let gamma = GammaGraph::build(inst, ell, w)?;
    let g = &gamma.graph;
    let n = g.len();

    // Reference diameter and the lemma's prediction.
    let true_diameter = if w == 1 { unweighted_diameter(g) } else { weighted_diameter(g) };
    let lemma_diameter =
        if disjoint { gamma.disjoint_diameter() } else { gamma.intersecting_diameter() };
    if true_diameter == INFINITY {
        return Err(HybridError::InvariantViolation("Γ graph must be connected".into()));
    }

    // Run an approximation with the middle column cut registered. For the
    // unweighted case (W = 1) the (3/2+ε) hop-diameter algorithm applies; for
    // the weighted case we use the paper's (2+o(1)) weighted upper bound (the
    // eccentricity trick after Theorem 1.6) — precisely the factor the (2-ε)
    // lower bound shows to be optimal.
    let mut net = HybridNet::new(g, HybridConfig::default());
    let side: Vec<bool> = g.nodes().map(|v| gamma.on_alice_side(v, ell / 2)).collect();
    net.set_cut(side);
    let cfg = crate::diameter::DiameterConfig { xi: 0.3 };
    let out = if w == 1 {
        crate::diameter::diameter_cor52(&mut net, eps, cfg, seed)?
    } else {
        crate::diameter::weighted_diameter_2approx(&mut net, eps, cfg, seed)?
    };

    let log = log2_ceil(n) as f64;
    let entropy = (k * k) as f64;
    let capacity = n as f64 * net.recv_cap() as f64 * log;
    Ok(DiameterLbReport {
        k,
        ell,
        w,
        n,
        disjoint,
        true_diameter,
        lemma_diameter,
        entropy_bits: entropy,
        capacity_bits_per_round: capacity,
        implied_round_lb: entropy / capacity,
        approx_rounds: out.rounds,
        approx_estimate: out.estimate,
        cut_messages: net.metrics().cut_messages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kssp_lb_reports_consistent_numbers() {
        let rep = run_kssp_lower_bound(24, 6, 12, 0.5, 3).unwrap();
        assert_eq!(rep.k, 12);
        assert_eq!(rep.n, 24 + 12);
        assert!(rep.entropy_bits > 6.0);
        assert!(rep.predicted_round_lb > 0.0);
        assert!(rep.measured_rounds > 0);
        assert!(rep.measured_cut_messages > 0, "the algorithm must talk across the cut");
        assert!(rep.b_decodes_assignment, "the upper bound must actually solve the instance");
    }

    #[test]
    fn diameter_lb_gap_detected_weighted() {
        let dis = run_diameter_lower_bound(3, 3, 12, true, 0.4, 1).unwrap();
        assert!(dis.true_diameter <= dis.lemma_diameter);
        let int = run_diameter_lower_bound(3, 3, 12, false, 0.4, 1).unwrap();
        assert_eq!(int.true_diameter, int.lemma_diameter);
        assert!(
            int.true_diameter > dis.true_diameter,
            "intersecting instances have strictly larger diameter"
        );
    }

    #[test]
    fn diameter_lb_gap_detected_unweighted() {
        let dis = run_diameter_lower_bound(3, 4, 1, true, 0.4, 2).unwrap();
        let int = run_diameter_lower_bound(3, 4, 1, false, 0.4, 2).unwrap();
        assert_eq!(int.true_diameter, (int.ell + 2) as u64);
        assert!(dis.true_diameter <= (dis.ell + 1) as u64);
    }

    #[test]
    fn implied_bound_grows_with_k() {
        let small = run_diameter_lower_bound(2, 3, 8, true, 0.4, 3).unwrap();
        let large = run_diameter_lower_bound(6, 3, 8, true, 0.4, 3).unwrap();
        assert!(large.implied_round_lb > small.implied_round_lb);
    }
}
