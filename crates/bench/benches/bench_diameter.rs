//! Criterion wall-clock wrapper for E5 (Theorem 1.4) (see EXPERIMENTS.md; the round-count
//! tables come from the `experiments` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use hybrid_bench::experiments::e5_diameter;
use hybrid_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bench_diameter");
    group.sample_size(10);
    group.bench_function("e5_small", |b| b.iter(|| e5_diameter(Scale::Small)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
