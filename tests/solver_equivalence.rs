//! Equivalence suite: `solve(Query::…)` is **bit-identical** to the legacy
//! per-algorithm entry points — same distances, same simulated rounds, same
//! global message counts — across graph families, on the pinned E2 benchmark
//! instances, and under a lossy fault plan.
//!
//! This file is the one sanctioned caller of the legacy free functions
//! outside `hybrid-core` itself: its whole purpose is to pin the facade
//! against them.

use hybrid_shortest_paths::core::apsp::{exact_apsp, exact_apsp_soda20, ApspConfig};
use hybrid_shortest_paths::core::diameter::{diameter_cor52, diameter_cor53, DiameterConfig};
use hybrid_shortest_paths::core::ksssp::{kssp_cor46, kssp_cor47, kssp_cor48, KsspConfig};
use hybrid_shortest_paths::core::sssp::{exact_sssp, SsspConfig};
use hybrid_shortest_paths::graph::apsp::DistanceMatrix;
use hybrid_shortest_paths::graph::generators::{barabasi_albert, grid};
use hybrid_shortest_paths::graph::{Graph, NodeId};
use hybrid_shortest_paths::scenarios::workloads::{er, random_nodes};
use hybrid_shortest_paths::sim::{HybridConfig, HybridNet};
use hybrid_shortest_paths::{solve, ApspVariant, DiameterCorollary, KsspCorollary, Query, Report};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The three families the suite sweeps: ER, grid, and Barabási–Albert.
fn families() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(12);
    vec![
        ("er", er(80, 9.0, 4, 6)),
        ("grid", grid(9, 9, 2).unwrap()),
        ("ba", barabasi_albert(80, 3, 4, &mut rng).unwrap()),
    ]
}

fn assert_matrices_identical(name: &str, a: &DistanceMatrix, b: &DistanceMatrix, n: usize) {
    for u in 0..n {
        for v in 0..n {
            let (u, v) = (NodeId::new(u), NodeId::new(v));
            assert_eq!(a.get(u, v), b.get(u, v), "{name}: d({u},{v}) differs");
        }
    }
}

/// Runs `query` through the facade and the legacy closure on twin nets of the
/// same graph, asserting identical rounds and global message counts; returns
/// both results for answer comparison.
fn run_twin<T>(
    g: &Graph,
    query: &Query,
    seed: u64,
    legacy: impl FnOnce(&mut HybridNet<'_>) -> T,
) -> (Report, T) {
    let mut net_a = HybridNet::new(g, HybridConfig::default());
    let report = solve(&mut net_a, query, seed).expect("solve");
    let mut net_b = HybridNet::new(g, HybridConfig::default());
    let out = legacy(&mut net_b);
    assert_eq!(net_a.rounds(), net_b.rounds(), "round clocks diverged [{}]", query.label());
    assert_eq!(
        net_a.metrics().global_messages,
        net_b.metrics().global_messages,
        "global message counts diverged [{}]",
        query.label()
    );
    assert_eq!(report.global_messages, net_a.metrics().global_messages);
    (report, out)
}

#[test]
fn apsp_variants_bit_identical_across_families() {
    for (name, g) in families() {
        let q = Query::apsp().xi(1.5).build().unwrap();
        let (report, legacy) =
            run_twin(&g, &q, 17, |net| exact_apsp(net, ApspConfig { xi: 1.5 }, 17).unwrap());
        assert_eq!(report.rounds, legacy.rounds, "{name}");
        assert_eq!(report.skeleton_size, legacy.skeleton_size, "{name}");
        assert_eq!(report.h, legacy.h, "{name}");
        assert_eq!(report.coverage_fallbacks, legacy.coverage_fallbacks, "{name}");
        assert_matrices_identical(name, report.distances().unwrap(), &legacy.dist, g.len());

        let q = Query::apsp().variant(ApspVariant::Soda20).xi(1.5).build().unwrap();
        let (report, legacy) =
            run_twin(&g, &q, 17, |net| exact_apsp_soda20(net, ApspConfig { xi: 1.5 }, 17).unwrap());
        assert_eq!(report.rounds, legacy.rounds, "{name} (soda20)");
        assert_matrices_identical(name, report.distances().unwrap(), &legacy.dist, g.len());
    }
}

#[test]
fn sssp_bit_identical_across_families() {
    for (name, g) in families() {
        let source = NodeId::new(g.len() / 4);
        let q = Query::sssp(source).xi(1.5).build().unwrap();
        let (report, legacy) = run_twin(&g, &q, 29, |net| {
            exact_sssp(net, source, SsspConfig { xi: 1.5 }, 29).unwrap()
        });
        assert_eq!(report.rounds, legacy.rounds, "{name}");
        assert_eq!(report.distance_row().unwrap().1, legacy.dist.as_slice(), "{name}");
    }
}

#[test]
fn kssp_corollaries_bit_identical_with_both_source_specs() {
    for (name, g) in families() {
        let k = 4;
        let seed = 31;
        let sources = random_nodes(g.len(), k, seed);
        for cor in [KsspCorollary::Cor46, KsspCorollary::Cor47, KsspCorollary::Cor48] {
            // `SourceSet::Random { k }` must resolve to the exact nodes the
            // legacy callers pick with `workloads::random_nodes`.
            let q = Query::kssp(cor).random_sources(k).eps(0.5).xi(1.5).build().unwrap();
            let cfg = KsspConfig { xi: 1.5 };
            let (report, legacy) = run_twin(&g, &q, seed, |net| match cor {
                KsspCorollary::Cor46 => kssp_cor46(net, &sources, 0.5, cfg, seed).unwrap(),
                KsspCorollary::Cor47 => kssp_cor47(net, &sources, 0.5, cfg, seed).unwrap(),
                KsspCorollary::Cor48 => kssp_cor48(net, &sources, 0.5, cfg, seed).unwrap(),
            });
            let (got_sources, got_est) = report.distance_rows().unwrap();
            assert_eq!(got_sources, sources.as_slice(), "{name}/cor{}", cor.number());
            assert_eq!(got_est, legacy.est.as_slice(), "{name}/cor{}", cor.number());
            assert_eq!(report.rounds, legacy.rounds, "{name}/cor{}", cor.number());
            let unweighted = g.max_weight() == 1;
            assert_eq!(
                report.guarantee.factor(),
                legacy.guaranteed_factor(unweighted),
                "{name}/cor{}: carried guarantee must equal the legacy math",
                cor.number()
            );
        }
    }
}

#[test]
fn diameter_corollaries_bit_identical() {
    let g = hybrid_shortest_paths::graph::generators::cycle(150, 1).unwrap();
    for cor in [DiameterCorollary::Cor52, DiameterCorollary::Cor53] {
        let q = Query::diameter(cor).eps(0.5).xi(1.2).build().unwrap();
        let cfg = DiameterConfig { xi: 1.2 };
        let (report, legacy) = run_twin(&g, &q, 5, |net| match cor {
            DiameterCorollary::Cor52 => diameter_cor52(net, 0.5, cfg, 5).unwrap(),
            DiameterCorollary::Cor53 => diameter_cor53(net, 0.5, cfg, 5).unwrap(),
        });
        assert_eq!(report.diameter_estimate().unwrap(), legacy.estimate, "cor{}", cor.number());
        assert_eq!(report.rounds, legacy.rounds, "cor{}", cor.number());
        assert_eq!(report.guarantee.factor(), legacy.guaranteed_factor(), "cor{}", cor.number());
    }
}

#[test]
fn pinned_e2_instances_bit_identical() {
    // The E2 benchmark instances recorded in BENCH_apsp.json since PR 1:
    // `e2-er` at n ∈ {200, 400}, ξ = 1.5, seed 5. The facade must reproduce
    // the legacy runs bit-for-bit here, or the perf trajectory stops being
    // comparable across the API redesign.
    let scenario = hybrid_shortest_paths::scenarios::find("e2-er").expect("registered");
    for (n, recorded_thm11, recorded_soda20) in [(200usize, 306u64, 305u64), (400, 529, 529)] {
        let g = scenario.graph(n);
        let q = Query::apsp().xi(1.5).build().unwrap();
        let (report, legacy) =
            run_twin(&g, &q, 5, |net| exact_apsp(net, ApspConfig { xi: 1.5 }, 5).unwrap());
        assert_eq!(report.rounds, legacy.rounds, "e2 n={n}");
        assert_eq!(
            report.rounds, recorded_thm11,
            "e2 n={n}: thm11 rounds drifted from the BENCH_apsp.json recording"
        );
        assert_matrices_identical("e2", report.distances().unwrap(), &legacy.dist, g.len());

        let q = Query::apsp().variant(ApspVariant::Soda20).xi(1.5).build().unwrap();
        let (report, legacy) =
            run_twin(&g, &q, 5, |net| exact_apsp_soda20(net, ApspConfig { xi: 1.5 }, 5).unwrap());
        assert_eq!(report.rounds, legacy.rounds, "e2 n={n} (soda20)");
        assert_eq!(
            report.rounds, recorded_soda20,
            "e2 n={n}: soda20 rounds drifted from the BENCH_apsp.json recording"
        );
        assert_matrices_identical("e2", report.distances().unwrap(), &legacy.dist, g.len());
    }
}

#[test]
fn faulty_scenario_bit_identical_including_errors() {
    // Under the registry's lossy drop plan the facade and the legacy call
    // must agree on *everything*: the same outcome variant, the same dropped
    // message accounting, and — when both complete — the same distances.
    // `solve` switches a faulty net into the reliable exchange engine, so the
    // legacy protocol call runs under the same engine for the comparison.
    let sc = hybrid_shortest_paths::scenarios::find("faulty-drop-apsp").expect("registered");
    let g = sc.graph(48);
    let q = Query::apsp().xi(1.5).build().unwrap();

    let mut net_a = sc.net(&g);
    let facade = solve(&mut net_a, &q, sc.seed);
    let mut net_b = sc.net(&g);
    net_b.set_reliable(true);
    let legacy = exact_apsp(&mut net_b, ApspConfig { xi: 1.5 }, sc.seed);

    assert_eq!(net_a.rounds(), net_b.rounds(), "round clocks diverged under faults");
    assert_eq!(net_a.metrics().dropped_messages, net_b.metrics().dropped_messages);
    assert_eq!(net_a.metrics().global_messages, net_b.metrics().global_messages);
    match (facade, legacy) {
        (Ok(report), Ok(out)) => {
            assert_eq!(report.rounds, out.rounds);
            assert_eq!(report.dropped_messages, net_b.metrics().dropped_messages);
            assert_matrices_identical("faulty", report.distances().unwrap(), &out.dist, g.len());
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "both paths must fail identically"),
        (a, b) => panic!("outcome variants diverged: facade {a:?} vs legacy {b:?}"),
    }
}
