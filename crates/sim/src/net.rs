//! The simulated HYBRID network: round clock, local-phase accounting, and the
//! congestion-enforcing global channel.
//!
//! # Hot path
//!
//! [`HybridNet::exchange_into`] is the steady-state-allocation-free engine
//! behind every global communication step: per-node send/receive counters live
//! in a persistent scratch arena, message placement is a two-pass counting
//! sort (stable radix by sender then destination — `O(m + n)` instead of the
//! former `O(m log m)` comparison sort), and delivered messages land in a
//! caller-reused [`FlatInboxes`] arena. The nested-`Vec` [`HybridNet::exchange`]
//! remains as a convenience wrapper with identical observable behavior.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;

use hybrid_graph::{Graph, NodeId};

use crate::channel::{Envelope, FlatInboxes, Inboxes};
use crate::config::{HybridConfig, OverflowPolicy};
use crate::fault::{FaultPlan, FaultState};
use crate::metrics::Metrics;
use crate::par;
use crate::trace::{Recorder, ShardTrace, TraceEvent};

/// Errors of a simulated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Under [`OverflowPolicy::Fail`]: a node tried to send more global messages
    /// in one exchange than the per-round cap allows.
    SendCapExceeded {
        /// The offending node.
        node: NodeId,
        /// Messages it attempted to send.
        sent: usize,
        /// The per-round cap.
        cap: usize,
    },
    /// Under [`OverflowPolicy::Fail`]: a node would receive more global messages
    /// in one round than the cap — the event the paper's Lemma D.2 excludes w.h.p.
    RecvCapExceeded {
        /// The overloaded node.
        node: NodeId,
        /// Messages addressed to it.
        received: usize,
        /// The per-round cap.
        cap: usize,
    },
    /// An envelope addressed a node outside `0..n`.
    AddressOutOfRange {
        /// The bad destination.
        node: NodeId,
        /// Network size.
        n: usize,
    },
    /// A [`HybridConfig`] or [`FaultPlan`] was rejected at construction —
    /// degenerate caps (e.g. a non-finite or non-positive cap factor, which
    /// would starve `exchange` pacing into a livelock) or an out-of-range
    /// fault probability.
    InvalidConfig {
        /// Human-readable description of the rejected field.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SendCapExceeded { node, sent, cap } => {
                write!(f, "node {node} sent {sent} global messages, cap is {cap}")
            }
            SimError::RecvCapExceeded { node, received, cap } => {
                write!(f, "node {node} would receive {received} global messages, cap is {cap}")
            }
            SimError::AddressOutOfRange { node, n } => {
                write!(f, "destination {node} out of range for network of {n} nodes")
            }
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Persistent per-net scratch buffers for the exchange engine. Sized once for
/// `n` at construction; the permutation buffers grow to the largest batch seen
/// and are reused afterwards, so steady-state exchanges never allocate.
#[derive(Debug, Default)]
struct ExchangeScratch {
    /// Per-node send counters (reused each exchange).
    sent: Vec<u32>,
    /// Per-node receive counters (reused each exchange).
    recv: Vec<u32>,
    /// Counting-sort offsets, `n + 1` entries.
    offs: Vec<u32>,
    /// First-pass permutation (message indices stable-sorted by sender).
    perm1: Vec<u32>,
    /// Shard cut points (node boundaries) of the thread-sharded scatter.
    cuts: Vec<u32>,
    /// Per-destination budget bookkeeping for [`HybridNet::drain_queues`].
    drain_recv: Vec<u32>,
}

impl ExchangeScratch {
    fn for_n(n: usize) -> Self {
        ExchangeScratch {
            sent: vec![0; n],
            recv: vec![0; n],
            offs: vec![0; n + 1],
            perm1: Vec::new(),
            cuts: Vec::new(),
            drain_recv: vec![0; n],
        }
    }
}

/// Messages a scatter shard must own before the thread-sharded exchange path
/// engages; below `2 ×` this the per-exchange `std::thread::scope` overhead
/// outweighs the scatter work and the engine stays on the (allocation-free)
/// sequential path.
const PAR_MIN_SHARD_MESSAGES: usize = 512;

/// Transmission attempts the reliable layer makes to an unacknowledged
/// destination before its failure detector declares the node dead. The bound
/// only applies to destinations that are *actually* crashed — a lost message
/// to a live node is always retried (its ack would have arrived otherwise),
/// so reliable exchange eventually delivers to every live node.
const RELIABLE_MAX_ATTEMPTS: u8 = 8;

/// Cap (in simulated rounds) on the reliable layer's per-wave exponential
/// backoff: retry wave `w` waits `min(2^(w-2), 8)` rounds first.
const RELIABLE_MAX_BACKOFF: u64 = 8;

/// Persistent wave state of the reliable exchange layer (see
/// [`HybridNet::set_reliable`]): sequence numbers awaiting an ack, the
/// current wave's wire batch, per-message attempt counts, and delivery flags.
/// Lives on the net so steady-state reliable exchanges reuse their buffers
/// instead of allocating per call — and so the trivial-plan path never touches
/// them at all.
#[derive(Debug, Default)]
struct ReliableScratch {
    /// Sequence numbers (outbox indices) still awaiting delivery.
    pending: Vec<u32>,
    /// The current wave's attempted (on-wire) subset of `pending`.
    attempted: Vec<u32>,
    /// Per-message transmission attempts (saturating).
    attempts: Vec<u8>,
    /// Per-message delivery flags.
    delivered: Vec<bool>,
}

/// Shared mutable base pointer for provably disjoint shard writes. Every
/// unsafe use below is justified by a partition argument: shard `t` only
/// touches indices derived from node buckets in its own cut range, and the
/// cut ranges partition `0..n`.
struct ShardPtr<T>(*mut T);

impl<T> Clone for ShardPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ShardPtr<T> {}
impl<T> ShardPtr<T> {
    /// Pointer to slot `i`. Taking `self` by value makes closures capture the
    /// whole (Send + Sync) wrapper rather than the raw pointer field.
    unsafe fn at(self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}
// SAFETY: the pointer is only dereferenced at indices owned by exactly one
// shard (see the partition arguments at each use site).
unsafe impl<T: Send> Send for ShardPtr<T> {}
unsafe impl<T: Send> Sync for ShardPtr<T> {}

/// Shared read-only base pointer from which each message index is *moved out*
/// exactly once across all shards.
struct TakePtr<T>(*const T);

impl<T> Clone for TakePtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TakePtr<T> {}
impl<T> TakePtr<T> {
    /// Pointer to slot `i` (see [`ShardPtr::at`]).
    unsafe fn at(self, i: usize) -> *const T {
        unsafe { self.0.add(i) }
    }
}
// SAFETY: see [`ShardPtr`]; additionally each slot is `ptr::read` at most once.
unsafe impl<T: Send> Send for TakePtr<T> {}
unsafe impl<T: Send> Sync for TakePtr<T> {}

/// Splits the node buckets of a counting-sort prefix array into `shards`
/// contiguous node ranges of roughly equal *message* counts. `prefix[v]` is
/// the first slot of bucket `v`; the cut points (node indices, `shards + 1`
/// entries) are appended to `cuts`.
fn balanced_node_cuts(prefix: &[u32], n: usize, m: usize, shards: usize, cuts: &mut Vec<u32>) {
    cuts.clear();
    cuts.push(0);
    let mut v = 0usize;
    for s in 1..shards {
        let target = (m * s / shards) as u32;
        while v < n && prefix[v] < target {
            v += 1;
        }
        cuts.push(v as u32);
    }
    cuts.push(n as u32);
}

/// Per-call pacing scratch of [`HybridNet::drain_queues`] — the reusable
/// outbox and inbox arena of the drain loop. Pooled per payload type on the
/// net (see [`DrainPool`]), so repeated drains reuse their buffers across
/// calls instead of reallocating per invocation.
struct DrainScratch<M> {
    outbox: Vec<Envelope<M>>,
    flat: FlatInboxes<M>,
}

impl<M> Default for DrainScratch<M> {
    fn default() -> Self {
        DrainScratch { outbox: Vec::new(), flat: FlatInboxes::new() }
    }
}

/// Type-keyed pool of [`DrainScratch`] buffers, one per payload type `M` ever
/// drained on this net.
#[derive(Default)]
struct DrainPool(HashMap<TypeId, Box<dyn Any + Send>>);

impl DrainPool {
    fn take<M: Send + 'static>(&mut self) -> Box<DrainScratch<M>> {
        self.0
            .remove(&TypeId::of::<DrainScratch<M>>())
            .and_then(|b| b.downcast::<DrainScratch<M>>().ok())
            .unwrap_or_default()
    }

    fn put<M: Send + 'static>(&mut self, scratch: Box<DrainScratch<M>>) {
        self.0.insert(TypeId::of::<DrainScratch<M>>(), scratch);
    }
}

impl fmt::Debug for DrainPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DrainPool({} payload types)", self.0.len())
    }
}

/// A simulated HYBRID network over a fixed local graph.
///
/// See the crate docs for the fidelity contract: global messages are routed and
/// cap-checked individually; local phases are charged on the clock.
#[derive(Debug)]
pub struct HybridNet<'g> {
    graph: &'g Graph,
    config: HybridConfig,
    metrics: Metrics,
    cut: Option<Vec<bool>>,
    scratch: ExchangeScratch,
    faults: Option<FaultState>,
    /// Worker budget of the thread-sharded exchange path (read from
    /// `HYBRID_ROUND_THREADS` at construction; `1` = sequential engine).
    round_threads: usize,
    /// Pooled [`HybridNet::drain_queues`] scratch buffers, per payload type.
    drain_pool: DrainPool,
    /// Routes exchanges through the ack/retransmission layer when a
    /// non-trivial fault plan is installed (see [`HybridNet::set_reliable`]).
    reliable: bool,
    /// Wave state of the reliable layer (untouched on the trivial-plan path).
    rel: ReliableScratch,
    /// Buffered trace sink (see [`HybridNet::set_trace`]); `None` — the
    /// default — keeps every emission site a single branch, so the
    /// steady-state exchange path stays allocation-free when not tracing.
    trace: Option<Recorder>,
}

impl<'g> HybridNet<'g> {
    /// Creates a network over `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is degenerate (see [`HybridConfig::validate`]); use
    /// [`HybridNet::try_new`] to handle that as an error instead.
    pub fn new(graph: &'g Graph, config: HybridConfig) -> Self {
        Self::try_new(graph, config).expect("valid HybridConfig")
    }

    /// Creates a network over `graph`, rejecting degenerate configurations.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if a cap factor is non-finite or
    /// non-positive (a 0-messages-per-round budget would livelock paced
    /// protocols instead of erroring).
    pub fn try_new(graph: &'g Graph, config: HybridConfig) -> Result<Self, SimError> {
        config.validate()?;
        Ok(HybridNet {
            graph,
            config,
            metrics: Metrics::new(),
            cut: None,
            scratch: ExchangeScratch::for_n(graph.len()),
            faults: None,
            round_threads: par::round_threads(),
            drain_pool: DrainPool::default(),
            reliable: false,
            rel: ReliableScratch::default(),
            trace: None,
        })
    }

    /// Worker budget of the thread-sharded exchange engine (see
    /// [`HybridNet::set_round_threads`]).
    pub fn round_threads(&self) -> usize {
        self.round_threads
    }

    /// Overrides the round-engine worker budget for this net (the
    /// `HYBRID_ROUND_THREADS` environment variable sets the initial value at
    /// construction). `1` forces the sequential, allocation-free engine;
    /// larger budgets let big exchanges shard their counting-sort scatter
    /// across OS threads. Results are bit-identical either way.
    pub fn set_round_threads(&mut self, threads: usize) {
        self.round_threads = threads.max(1);
    }

    /// Installs a [`FaultPlan`]: from now on every global exchange drops
    /// messages per the plan's probability (deterministic stream) and silences
    /// crashed endpoints. Replaces any previously installed plan; dropped
    /// messages are counted in [`Metrics::dropped_messages`].
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the plan is invalid for this network
    /// (see [`FaultPlan::validate_for`]) — an out-of-range drop probability,
    /// or a crash schedule that kills every node at round 0.
    pub fn inject_faults(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        plan.validate_for(self.n())?;
        self.faults =
            if plan.is_trivial() { None } else { Some(FaultState::install(plan, self.n())) };
        Ok(())
    }

    /// Removes any installed fault plan.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// `true` if a non-trivial fault plan is currently installed.
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// Turns the reliable exchange layer on or off.
    ///
    /// While enabled *and* a non-trivial fault plan is installed, every
    /// global exchange runs an ack/retransmission protocol instead of the
    /// fire-and-forget step: each message carries a sequence number (its
    /// outbox index), unacknowledged messages are re-sent in waves under a
    /// bounded exponential backoff, and a destination that never acks is
    /// declared dead after `RELIABLE_MAX_ATTEMPTS` (8) attempts. Every wave is
    /// billed honestly — the wire rounds, one ack round, and the backoff
    /// rounds all advance the clock (recovery is charged, never discounted) —
    /// and all retry decisions are made sequentially from the plan's
    /// deterministic streams, so runs stay bit-identical across thread
    /// budgets. Without faults (or with a trivial plan) the flag is inert and
    /// exchanges behave exactly as before.
    pub fn set_reliable(&mut self, on: bool) {
        self.reliable = on;
    }

    /// Is the reliable exchange layer enabled? (See
    /// [`HybridNet::set_reliable`]; it only takes effect while a non-trivial
    /// fault plan is installed.)
    pub fn reliable(&self) -> bool {
        self.reliable
    }

    /// Nodes the reliable layer's failure detector has declared dead so far
    /// (empty without faults, or before any declaration).
    pub fn declared_dead_nodes(&self) -> Vec<NodeId> {
        self.faults.as_ref().map(FaultState::declared_dead_nodes).unwrap_or_default()
    }

    /// Installs a trace recorder: from now on every charge and every
    /// exchange emits a structured [`TraceEvent`] into it (see
    /// [`crate::trace`]). Tracing is strictly observational — answers,
    /// guarantees, and the round bill are bit-identical with or without it —
    /// and with no recorder installed the emission sites cost one branch and
    /// zero allocations. Replaces any previously installed recorder.
    pub fn set_trace(&mut self, rec: Recorder) {
        self.trace = Some(rec);
    }

    /// Removes and returns the installed trace recorder, if any; the net
    /// stops emitting events.
    pub fn take_trace(&mut self) -> Option<Recorder> {
        self.trace.take()
    }

    /// `true` while a trace recorder is installed.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Opens a named trace span at the current simulated round (no-op
    /// without a recorder). Used by the solver layers to scope `solve`,
    /// `prepare`, and session items.
    pub fn trace_span_begin(&mut self, name: &str) {
        let round = self.metrics.rounds;
        if let Some(t) = self.trace.as_mut() {
            t.span_begin(name, round);
        }
    }

    /// Closes a named trace span at the current simulated round (no-op
    /// without a recorder).
    pub fn trace_span_end(&mut self, name: &str) {
        let round = self.metrics.rounds;
        if let Some(t) = self.trace.as_mut() {
            t.span_end(name, round);
        }
    }

    /// Records a cache-visibility marker (no-op without a recorder): `hit`
    /// is `true` when `name` was served from a warm cache, `false` for a
    /// cold build.
    pub fn trace_cache(&mut self, name: &str, hit: bool) {
        if let Some(t) = self.trace.as_mut() {
            t.record(TraceEvent::Cache { name: name.to_string(), hit });
        }
    }

    /// The local communication graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.graph.len()
    }

    /// The configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    /// Per-node global send cap (messages per round).
    pub fn send_cap(&self) -> usize {
        self.config.send_cap(self.graph.len())
    }

    /// Per-node global receive cap (messages per round).
    pub fn recv_cap(&self) -> usize {
        self.config.recv_cap(self.graph.len())
    }

    /// Total rounds elapsed.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// Execution metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Consumes the network and returns its metrics.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }

    /// Merges metrics of a sub-execution (e.g. a nested protocol run on its own
    /// net) into this one. Under tracing the sub-run's totals are folded into
    /// the trace as one [`TraceEvent::Absorb`] event, so reconciliation stays
    /// exact even though the sub-run itself was not traced.
    pub fn absorb_metrics(&mut self, other: &Metrics) {
        if let Some(t) = self.trace.as_mut() {
            t.record(TraceEvent::Absorb {
                rounds: other.rounds,
                local_rounds: other.local_rounds,
                messages: other.global_messages,
                lost: other.dropped_by_loss,
                suppressed: other.suppressed_by_crash,
                corrupted: other.corrupted_messages,
                retransmissions: other.retransmissions,
                recovered: other.recovered_messages,
                declared_dead: other.declared_dead,
                stretched: other.stretched_exchanges,
                phases: other.phases.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            });
        }
        self.metrics.absorb(other);
    }

    /// Registers a node bipartition; subsequent global messages whose endpoints
    /// lie on different sides are counted in [`Metrics::cut_messages`]. Used by
    /// the lower-bound experiments (§6, §7) to measure Alice↔Bob information flow.
    ///
    /// # Panics
    ///
    /// Panics if `side.len() != n`.
    pub fn set_cut(&mut self, side: Vec<bool>) {
        assert_eq!(side.len(), self.graph.len(), "cut must label every node");
        self.cut = Some(side);
    }

    /// Removes the registered cut.
    pub fn clear_cut(&mut self) {
        self.cut = None;
    }

    /// Charges `rounds` rounds of local-mode communication under `phase`.
    ///
    /// The semantics (what every node knows afterwards) are computed by the caller
    /// with the reference routines of `hybrid-graph` — in the LOCAL model, `d`
    /// rounds of flooding teach every node exactly its `d`-hop neighborhood, and
    /// bandwidth is unconstrained.
    pub fn charge_local(&mut self, rounds: u64, phase: &str) {
        self.metrics.charge_local(rounds, phase);
        if let Some(t) = self.trace.as_mut() {
            t.record(TraceEvent::Local { phase: phase.to_string(), rounds });
        }
    }

    /// Charges `rounds` global-mode rounds without routing messages. Used when a
    /// sub-protocol's cost is known (e.g. repeating an already-measured routing
    /// instance `T_A` times in the CLIQUE-on-skeleton simulation) — the rounds
    /// are honest, the message contents are not interesting.
    pub fn charge_global_rounds(&mut self, rounds: u64, phase: &str) {
        self.metrics.charge_global_rounds_only(rounds, phase);
        if let Some(t) = self.trace.as_mut() {
            t.record(TraceEvent::GlobalRounds { phase: phase.to_string(), rounds });
        }
    }

    /// Performs one global-mode communication step, delivering `outbox` into
    /// the reusable arena `out` subject to the NCC caps.
    ///
    /// This is the zero-allocation engine: with warmed buffers (same network,
    /// batch sizes no larger than previously seen, phase label already known to
    /// the metrics) a call performs **no heap allocation**. `outbox` is left
    /// empty with its capacity intact so callers can refill it for the next
    /// step; on error it is left untouched.
    ///
    /// Semantics are identical to [`HybridNet::exchange`]: under
    /// [`OverflowPolicy::Stretch`] the step is charged
    /// `max(1, ⌈max_v sent_v / send_cap⌉, ⌈max_v recv_v / recv_cap⌉)` rounds;
    /// under [`OverflowPolicy::Fail`] any cap violation is an error. Inboxes
    /// are grouped by destination and sorted by `(sender, insertion order)`.
    ///
    /// # Errors
    ///
    /// [`SimError::AddressOutOfRange`] for a bad endpoint; cap violations under
    /// [`OverflowPolicy::Fail`].
    pub fn exchange_into<M: Send + Sync>(
        &mut self,
        phase: &str,
        outbox: &mut Vec<Envelope<M>>,
        out: &mut FlatInboxes<M>,
    ) -> Result<(), SimError> {
        // Reliable mode re-sends lost messages instead of shrugging them off;
        // it only engages under a non-trivial fault plan, so the healthy path
        // is bit-identical to the fire-and-forget engine below.
        if self.reliable && self.faults.is_some() {
            return self.exchange_reliable(phase, outbox, out);
        }
        let n = self.graph.len();
        let send_cap = self.send_cap();
        let recv_cap = self.recv_cap();
        out.clear();

        // Fault hook: crashed endpoints fall silent and the drop stream loses
        // messages *before* any accounting — a lost message consumes neither
        // bandwidth nor rounds, it simply never happened on the wire. `retain`
        // is in-place, so the fault-free path stays allocation-free too.
        // Messages with out-of-range endpoints are exempt: an addressing bug
        // must always surface as [`SimError::AddressOutOfRange`] below, never
        // be swallowed by a random drop.
        let mut lost = 0u64;
        let mut suppressed = 0u64;
        let mut corrupted = 0u64;
        if let Some(faults) = &mut self.faults {
            let round = self.metrics.rounds;
            outbox.retain(|e| {
                if e.src.index() >= n || e.dst.index() >= n {
                    return true;
                }
                if !(faults.alive(e.src, round) && faults.alive(e.dst, round)) {
                    suppressed += 1;
                    return false;
                }
                if faults.drop_next() {
                    lost += 1;
                    return false;
                }
                if faults.corrupt_next() {
                    // Bit-flipped in flight; the checksum catches it on
                    // receipt and fire-and-forget has no retransmission, so
                    // the payload is discarded — never delivered corrupted.
                    corrupted += 1;
                    return false;
                }
                true
            });
            self.metrics.dropped_by_loss += lost;
            self.metrics.suppressed_by_crash += suppressed;
            self.metrics.corrupted_messages += corrupted;
            self.metrics.dropped_messages += lost + suppressed + corrupted;
        }
        let m = outbox.len();

        // Count per-node loads (and validate addresses) into the scratch arena.
        let scratch = &mut self.scratch;
        scratch.sent[..n].fill(0);
        scratch.recv[..n].fill(0);
        for e in outbox.iter() {
            if e.dst.index() >= n {
                return Err(SimError::AddressOutOfRange { node: e.dst, n });
            }
            if e.src.index() >= n {
                return Err(SimError::AddressOutOfRange { node: e.src, n });
            }
            scratch.sent[e.src.index()] += 1;
            scratch.recv[e.dst.index()] += 1;
        }

        let mut rounds_needed = 1u64;
        for v in 0..n {
            if scratch.sent[v] as usize > send_cap {
                match self.config.overflow {
                    OverflowPolicy::Fail => {
                        return Err(SimError::SendCapExceeded {
                            node: NodeId::new(v),
                            sent: scratch.sent[v] as usize,
                            cap: send_cap,
                        });
                    }
                    OverflowPolicy::Stretch => {
                        rounds_needed =
                            rounds_needed.max((scratch.sent[v] as usize).div_ceil(send_cap) as u64);
                    }
                }
            }
            if scratch.recv[v] as usize > recv_cap {
                match self.config.overflow {
                    OverflowPolicy::Fail => {
                        return Err(SimError::RecvCapExceeded {
                            node: NodeId::new(v),
                            received: scratch.recv[v] as usize,
                            cap: recv_cap,
                        });
                    }
                    OverflowPolicy::Stretch => {
                        rounds_needed =
                            rounds_needed.max((scratch.recv[v] as usize).div_ceil(recv_cap) as u64);
                    }
                }
            }
        }

        // Metrics: loads, cut traffic.
        let max_sent = scratch.sent[..n].iter().copied().max().unwrap_or(0) as usize;
        self.metrics.max_send_load = self.metrics.max_send_load.max(max_sent);
        if let Some(side) = &self.cut {
            let crossing =
                outbox.iter().filter(|e| side[e.src.index()] != side[e.dst.index()]).count();
            self.metrics.cut_messages += crossing as u64;
        }
        self.metrics.charge_global(rounds_needed, m as u64, phase);

        let st = self.scatter_into(outbox, out);
        if let Some(t) = self.trace.as_mut() {
            t.record(TraceEvent::Exchange {
                phase: phase.to_string(),
                rounds: rounds_needed,
                messages: m as u64,
                max_send_load: max_sent as u64,
                max_recv_load: st.max_recv_load,
                lost,
                suppressed,
                corrupted,
            });
        }
        Ok(())
    }

    /// The ack/retransmission engine behind [`HybridNet::set_reliable`].
    ///
    /// Messages are identified by their sequence number (outbox index) and
    /// retried in *waves*: each wave ships every still-pending message whose
    /// sender is alive and whose destination has not been declared dead,
    /// bills the wire rounds plus one ack round, and decides each message's
    /// fate sequentially (in sequence order) from the plan's deterministic
    /// drop stream — crashed destinations accumulate unacked attempts until
    /// the failure detector declares them dead, lost messages to live nodes
    /// are re-pended for the next wave after a bounded exponential backoff.
    /// Because the round clock advances between waves, mid-run crash
    /// schedules keep firing during recovery. The surviving messages are
    /// finally handed to the shared stable scatter in sequence order, so
    /// per-`(src, dst)` delivery order matches the sequence numbers exactly.
    fn exchange_reliable<M: Send + Sync>(
        &mut self,
        phase: &str,
        outbox: &mut Vec<Envelope<M>>,
        out: &mut FlatInboxes<M>,
    ) -> Result<(), SimError> {
        let n = self.graph.len();
        let send_cap = self.send_cap();
        let recv_cap = self.recv_cap();
        out.clear();

        // Validate every address upfront: an error must leave `outbox`
        // untouched, and the wave loop permanently consumes fault-stream
        // state, so nothing below may fail on a healthy configuration.
        for e in outbox.iter() {
            if e.dst.index() >= n {
                return Err(SimError::AddressOutOfRange { node: e.dst, n });
            }
            if e.src.index() >= n {
                return Err(SimError::AddressOutOfRange { node: e.src, n });
            }
        }
        let m = outbox.len();
        if m == 0 {
            // An empty exchange still costs its round, like the unreliable
            // engine.
            self.metrics.charge_global(1, 0, phase);
            if let Some(t) = self.trace.as_mut() {
                t.record(TraceEvent::Exchange {
                    phase: phase.to_string(),
                    rounds: 1,
                    messages: 0,
                    max_send_load: 0,
                    max_recv_load: 0,
                    lost: 0,
                    suppressed: 0,
                    corrupted: 0,
                });
            }
        }

        // Seed the wave state: every message pending, zero attempts.
        self.rel.pending.clear();
        self.rel.pending.extend(0..m as u32);
        self.rel.attempts.clear();
        self.rel.attempts.resize(m, 0);
        self.rel.delivered.clear();
        self.rel.delivered.resize(m, false);

        let mut wave = 0u64;
        while !self.rel.pending.is_empty() {
            wave += 1;
            if wave > 1 {
                // Bounded exponential backoff before each retry wave.
                let backoff = (1u64 << (wave - 2).min(3)).min(RELIABLE_MAX_BACKOFF);
                self.metrics.charge_global_rounds_only(backoff, phase);
                if let Some(t) = self.trace.as_mut() {
                    t.record(TraceEvent::Backoff {
                        phase: phase.to_string(),
                        wave,
                        rounds: backoff,
                    });
                }
            }
            let round = self.metrics.rounds;

            // Wire batch of this wave: pending messages with a live sender
            // and a destination not yet declared dead.
            let faults = self.faults.as_mut().expect("reliable mode requires installed faults");
            let rel = &mut self.rel;
            rel.attempted.clear();
            let mut suppressed_now = 0u64;
            for &idx in &rel.pending {
                let e = &outbox[idx as usize];
                if !faults.alive(e.src, round) || faults.is_declared_dead(e.dst) {
                    suppressed_now += 1;
                } else {
                    rel.attempted.push(idx);
                }
            }

            // Per-node loads and the cap policy, over the wire batch only.
            let scratch = &mut self.scratch;
            scratch.sent[..n].fill(0);
            scratch.recv[..n].fill(0);
            for &idx in &rel.attempted {
                let e = &outbox[idx as usize];
                scratch.sent[e.src.index()] += 1;
                scratch.recv[e.dst.index()] += 1;
            }
            let mut rounds_needed = 1u64;
            for v in 0..n {
                if scratch.sent[v] as usize > send_cap {
                    match self.config.overflow {
                        OverflowPolicy::Fail => {
                            return Err(SimError::SendCapExceeded {
                                node: NodeId::new(v),
                                sent: scratch.sent[v] as usize,
                                cap: send_cap,
                            });
                        }
                        OverflowPolicy::Stretch => {
                            rounds_needed = rounds_needed
                                .max((scratch.sent[v] as usize).div_ceil(send_cap) as u64);
                        }
                    }
                }
                if scratch.recv[v] as usize > recv_cap {
                    match self.config.overflow {
                        OverflowPolicy::Fail => {
                            return Err(SimError::RecvCapExceeded {
                                node: NodeId::new(v),
                                received: scratch.recv[v] as usize,
                                cap: recv_cap,
                            });
                        }
                        OverflowPolicy::Stretch => {
                            rounds_needed = rounds_needed
                                .max((scratch.recv[v] as usize).div_ceil(recv_cap) as u64);
                        }
                    }
                }
            }

            // Commit this wave's bill: suppressions, loads, cut traffic,
            // retransmissions, the wire rounds, and one round of acks.
            let metrics = &mut self.metrics;
            let trace = &mut self.trace;
            metrics.suppressed_by_crash += suppressed_now;
            metrics.dropped_messages += suppressed_now;
            if rel.attempted.is_empty() {
                rel.pending.clear();
                if let Some(t) = trace.as_mut() {
                    // A wave that never reached the wire charges nothing but
                    // may still have suppressed messages — mirror it so the
                    // suppression counters reconcile.
                    t.record(TraceEvent::Wave {
                        phase: phase.to_string(),
                        wave,
                        rounds: 0,
                        ack_rounds: 0,
                        messages: 0,
                        retransmissions: 0,
                        lost: 0,
                        suppressed: suppressed_now,
                        corrupted: 0,
                        recovered: 0,
                        max_send_load: 0,
                    });
                }
                break;
            }
            let max_sent = scratch.sent[..n].iter().copied().max().unwrap_or(0) as usize;
            metrics.max_send_load = metrics.max_send_load.max(max_sent);
            if let Some(side) = &self.cut {
                let crossing = rel
                    .attempted
                    .iter()
                    .map(|&idx| &outbox[idx as usize])
                    .filter(|e| side[e.src.index()] != side[e.dst.index()])
                    .count();
                metrics.cut_messages += crossing as u64;
            }
            let retrans =
                rel.attempted.iter().filter(|&&idx| rel.attempts[idx as usize] > 0).count();
            metrics.retransmissions += retrans as u64;
            metrics.charge_global(rounds_needed, rel.attempted.len() as u64, phase);
            metrics.charge_global_rounds_only(1, phase);

            // Delivery decisions, strictly in sequence order: the drop
            // stream is consumed deterministically, independent of the
            // thread budget.
            rel.pending.clear();
            let mut lost_now = 0u64;
            let mut dead_suppressed = 0u64;
            let mut corrupted_now = 0u64;
            let mut recovered_now = 0u64;
            for &idx in &rel.attempted {
                let i = idx as usize;
                let e = &outbox[i];
                rel.attempts[i] = rel.attempts[i].saturating_add(1);
                if !faults.alive(e.dst, round) {
                    // On the wire, but the destination is down: no ack. After
                    // enough unacked attempts the failure detector gives up
                    // on the node for the rest of the plan's lifetime.
                    if rel.attempts[i] >= RELIABLE_MAX_ATTEMPTS {
                        if faults.declare_dead(e.dst) {
                            metrics.declared_dead += 1;
                            if let Some(t) = trace.as_mut() {
                                t.record(TraceEvent::DeclareDead { node: e.dst.index() as u32 });
                            }
                        }
                        metrics.suppressed_by_crash += 1;
                        metrics.dropped_messages += 1;
                        dead_suppressed += 1;
                    } else {
                        rel.pending.push(idx);
                    }
                } else if faults.drop_next() {
                    metrics.dropped_by_loss += 1;
                    metrics.dropped_messages += 1;
                    lost_now += 1;
                    rel.pending.push(idx);
                } else if faults.corrupt_next() {
                    // The payload arrived bit-flipped; the per-message
                    // checksum catches it, the receiver withholds the ack,
                    // and the message is treated exactly like a loss:
                    // re-pended for the next retransmission wave. The
                    // flipped payload itself is never delivered.
                    metrics.corrupted_messages += 1;
                    metrics.dropped_messages += 1;
                    corrupted_now += 1;
                    rel.pending.push(idx);
                } else {
                    rel.delivered[i] = true;
                    if rel.attempts[i] > 1 {
                        metrics.recovered_messages += 1;
                        recovered_now += 1;
                    }
                }
            }
            if let Some(t) = trace.as_mut() {
                t.record(TraceEvent::Wave {
                    phase: phase.to_string(),
                    wave,
                    rounds: rounds_needed,
                    ack_rounds: 1,
                    messages: rel.attempted.len() as u64,
                    retransmissions: retrans as u64,
                    lost: lost_now,
                    suppressed: suppressed_now + dead_suppressed,
                    corrupted: corrupted_now,
                    recovered: recovered_now,
                    max_send_load: max_sent as u64,
                });
            }
        }

        // Compact to the delivered set in sequence order and hand it to the
        // shared stable scatter; every round was already billed wave by wave.
        let rel = &mut self.rel;
        let mut i = 0usize;
        outbox.retain(|_| {
            let keep = rel.delivered[i];
            i += 1;
            keep
        });
        let scratch = &mut self.scratch;
        scratch.recv[..n].fill(0);
        for e in outbox.iter() {
            scratch.recv[e.dst.index()] += 1;
        }
        let delivered = outbox.len() as u64;
        let st = self.scatter_into(outbox, out);
        if let Some(t) = self.trace.as_mut() {
            t.record(TraceEvent::Delivered {
                messages: delivered,
                max_recv_load: st.max_recv_load,
            });
        }
        Ok(())
    }

    /// Shared delivery engine of [`HybridNet::exchange_into`] and the
    /// reliable layer: sorts `outbox` by `(dst, src, insertion order)` and
    /// moves the payloads into `out`. Expects all addresses validated and
    /// `scratch.recv` to hold `outbox`'s per-destination counts (for
    /// receive-load recording); charges nothing. Returns the receive-side
    /// trace observations (sequential scan, or the per-shard buffers merged
    /// in shard order — bit-identical either way).
    fn scatter_into<M: Send + Sync>(
        &mut self,
        outbox: &mut Vec<Envelope<M>>,
        out: &mut FlatInboxes<M>,
    ) -> ShardTrace {
        let n = self.graph.len();
        let m = outbox.len();
        // Deliver: stable two-pass counting sort by (dst, src, insertion order)
        // — radix pass 1 orders by sender, pass 2 groups by destination and
        // moves the payloads in one fused scatter; both passes are stable, so
        // the result matches a stable comparison sort on `(dst, src)` exactly.
        //
        // For large batches (≥ 2 shards of [`PAR_MIN_SHARD_MESSAGES`]) with a
        // round-thread budget > 1, both scatters are partitioned into node
        // shards (pass 1 by sender, pass 2 by receiver) balanced by message
        // count and run under `std::thread::scope`. Each node bucket is
        // written by exactly one shard in the same scan order the sequential
        // loop uses, so the delivered arena is bit-identical. Every shard
        // scans the whole batch and filters to its own buckets — O(m) cheap
        // sequential reads per shard buys zero cross-shard coordination; at
        // the exchange sizes this simulator sees (m ≤ tens of thousands,
        // shards ≤ cores) the redundant reads are noise next to the
        // parallelized payload moves. An oversubscribed budget (more threads
        // than cores, e.g. the determinism suite on a 1-core box) does
        // strictly redundant work, which is the explicit point there.
        let shards = if self.round_threads > 1 {
            self.round_threads.min(m / PAR_MIN_SHARD_MESSAGES).max(1)
        } else {
            1
        };

        // Pass 1: message indices, stable-ordered by sender.
        let ExchangeScratch { offs, perm1, cuts, recv, .. } = &mut self.scratch;
        offs[..=n].fill(0);
        for e in outbox.iter() {
            offs[e.src.index() + 1] += 1;
        }
        for v in 0..n {
            offs[v + 1] += offs[v];
        }
        perm1.clear();
        perm1.resize(m, 0);
        if shards <= 1 {
            for (i, e) in outbox.iter().enumerate() {
                let s = e.src.index();
                perm1[offs[s] as usize] = i as u32;
                offs[s] += 1;
            }
        } else {
            balanced_node_cuts(offs, n, m, shards, cuts);
            let offs_ptr = ShardPtr(offs.as_mut_ptr());
            let perm_ptr = ShardPtr(perm1.as_mut_ptr());
            let outbox_ref: &[Envelope<M>] = outbox;
            std::thread::scope(|scope| {
                for w in cuts.windows(2) {
                    let (lo, hi) = (w[0] as usize, w[1] as usize);
                    scope.spawn(move || {
                        for (i, e) in outbox_ref.iter().enumerate() {
                            let s = e.src.index();
                            if s >= lo && s < hi {
                                // SAFETY: sender buckets `lo..hi` (cursor
                                // cells and the perm1 region they index) are
                                // owned by this shard alone.
                                unsafe {
                                    let cursor = offs_ptr.at(s);
                                    *perm_ptr.at(*cursor as usize) = i as u32;
                                    *cursor += 1;
                                }
                            }
                        }
                    });
                }
            });
        }

        // Pass 2: group by destination and move payloads into the arena.
        offs[..=n].fill(0);
        for e in outbox.iter() {
            offs[e.dst.index() + 1] += 1;
        }
        for v in 0..n {
            offs[v + 1] += offs[v];
        }
        let (msgs, starts) = out.parts_mut();
        starts.clear();
        starts.extend(offs[..=n].iter().map(|&o| o as usize));
        msgs.reserve(m);
        // SAFETY (both branches): `perm1` is a permutation of `0..m` and each
        // destination bucket is drained by exactly one scan, so every element
        // is read exactly once and every output slot in `0..m` is written
        // exactly once. `outbox`'s length is zeroed before any move and
        // `msgs`'s length is only set after all writes, so a panic leaks
        // elements instead of double-dropping them.
        let mut st = ShardTrace::default();
        unsafe {
            let base = TakePtr(outbox.as_ptr());
            outbox.set_len(0);
            let out_ptr = ShardPtr(msgs.as_mut_ptr());
            if shards <= 1 {
                for v in 0..n {
                    if recv[v] > 0 {
                        self.metrics.record_recv_load(recv[v] as usize);
                        st.observe(recv[v] as usize);
                    }
                }
                for &i in perm1.iter() {
                    let e = std::ptr::read(base.0.add(i as usize));
                    let d = e.dst.index();
                    std::ptr::write(out_ptr.0.add(offs[d] as usize), (e.src, e.msg));
                    offs[d] += 1;
                }
            } else {
                balanced_node_cuts(offs, n, m, shards, cuts);
                let offs_ptr = ShardPtr(offs.as_mut_ptr());
                let perm1_ref: &[u32] = perm1;
                let recv_ref: &[u32] = recv;
                // Each receiver shard scatters its buckets and records its
                // nodes' receive loads into a local `Metrics` plus a local
                // trace buffer; both locals are merged in shard order below,
                // which reproduces the sequential `v = 0..n` recording
                // exactly.
                let shard_metrics: Vec<(Metrics, ShardTrace)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = cuts
                        .windows(2)
                        .map(|w| {
                            let (lo, hi) = (w[0] as usize, w[1] as usize);
                            scope.spawn(move || {
                                let mut local = Metrics::new();
                                let mut local_trace = ShardTrace::default();
                                for v in lo..hi {
                                    if recv_ref[v] > 0 {
                                        local.record_recv_load(recv_ref[v] as usize);
                                        local_trace.observe(recv_ref[v] as usize);
                                    }
                                }
                                for &i in perm1_ref {
                                    // SAFETY: only the shard owning bucket
                                    // `d` moves message `i` (dst buckets
                                    // partition the messages) and writes the
                                    // slots `offs[d]..` of its own buckets;
                                    // peeking another shard's `dst` is a
                                    // plain concurrent read. (This closure is
                                    // lexically inside the delivery `unsafe`
                                    // block.)
                                    let d = (*base.at(i as usize)).dst.index();
                                    if d >= lo && d < hi {
                                        let e = std::ptr::read(base.at(i as usize));
                                        let cursor = offs_ptr.at(d);
                                        std::ptr::write(
                                            out_ptr.at(*cursor as usize),
                                            (e.src, e.msg),
                                        );
                                        *cursor += 1;
                                    }
                                }
                                (local, local_trace)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("exchange shard panicked"))
                        .collect()
                });
                for (local, local_trace) in &shard_metrics {
                    self.metrics.absorb(local);
                    st.absorb(local_trace);
                }
            }
            msgs.set_len(m);
        }
        st
    }

    /// Performs one global-mode communication step: delivers `outbox` subject to
    /// the NCC caps.
    ///
    /// Convenience wrapper over [`HybridNet::exchange_into`] returning nested
    /// per-node inboxes (allocates; hot paths use the arena API directly).
    ///
    /// Inboxes are sorted by `(sender, insertion order)` for determinism.
    ///
    /// # Errors
    ///
    /// [`SimError::AddressOutOfRange`] for a bad destination; cap violations under
    /// [`OverflowPolicy::Fail`].
    pub fn exchange<M: Send + Sync>(
        &mut self,
        phase: &str,
        outbox: Vec<Envelope<M>>,
    ) -> Result<Inboxes<M>, SimError> {
        let mut outbox = outbox;
        let mut flat = FlatInboxes::new();
        self.exchange_into(phase, &mut outbox, &mut flat)?;
        Ok(flat.into_inboxes())
    }

    /// Runs a multi-step global protocol where every node holds a queue of
    /// envelopes and sends at most `send_cap` per round, until all queues drain.
    /// This is the common "while T ≠ ∅: pick Θ(log n) tokens, send" pattern of the
    /// paper's Algorithm 4.
    ///
    /// Under [`OverflowPolicy::Stretch`] the drain is **receive-aware and
    /// round-robin**: each round starts from a rotating queue index and takes
    /// messages only while the head message's destination still has per-round
    /// receive budget (head-of-line blocking preserves per-sender FIFO
    /// order). Consequently a paced drain never triggers the stretch
    /// machinery — `stretched_exchanges` stays a congestion signal instead of
    /// conflating pacing with overload — and contended receivers are served
    /// fairly across senders.
    ///
    /// Under [`OverflowPolicy::Fail`] the drain stays deliberately
    /// receive-*blind* (every queue sends up to `send_cap` per round): the
    /// strict policy exists to *prove* the protocols' w.h.p. receive bounds
    /// (Lemma D.2), so a skewed destination assignment must surface as
    /// [`SimError::RecvCapExceeded`], not be silently paced away.
    ///
    /// Returns the concatenated inboxes (per destination, in delivery order).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the underlying exchanges.
    pub fn drain_queues<M: Send + Sync + 'static>(
        &mut self,
        phase: &str,
        queues: Vec<Vec<Envelope<M>>>,
    ) -> Result<Inboxes<M>, SimError> {
        // The pacing scratch (per-round outbox + inbox arena) is pooled on
        // the net per payload type, so repeated drains — e.g. one per
        // simulated CLIQUE round — reuse their buffers across calls instead
        // of reallocating per invocation.
        let mut scratch = self.drain_pool.take::<M>();
        let result = self.drain_queues_inner(phase, queues, &mut scratch);
        self.drain_pool.put(scratch);
        result
    }

    fn drain_queues_inner<M: Send + Sync>(
        &mut self,
        phase: &str,
        mut queues: Vec<Vec<Envelope<M>>>,
        scratch: &mut DrainScratch<M>,
    ) -> Result<Inboxes<M>, SimError> {
        let n = self.graph.len();
        let mut all: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
        let DrainScratch { outbox, flat } = scratch;
        outbox.clear();
        flat.clear();
        let cap = self.send_cap();
        let recv_cap = self.recv_cap();
        let pace_receivers = self.config.overflow == OverflowPolicy::Stretch;
        // Reverse once so FIFO pops are O(1) `pop()`s from the back.
        for q in queues.iter_mut() {
            q.reverse();
        }
        let nq = queues.len();
        let mut start_q = 0usize;
        loop {
            outbox.clear();
            {
                let drain_recv = &mut self.scratch.drain_recv;
                drain_recv[..n].fill(0);
                for k in 0..nq {
                    let q = &mut queues[(start_q + k) % nq];
                    let mut taken = 0usize;
                    while taken < cap {
                        let Some(head) = q.last() else { break };
                        let d = head.dst.index();
                        if d >= n {
                            return Err(SimError::AddressOutOfRange { node: head.dst, n });
                        }
                        if pace_receivers && drain_recv[d] as usize >= recv_cap {
                            break;
                        }
                        drain_recv[d] += 1;
                        outbox.push(q.pop().expect("head exists"));
                        taken += 1;
                    }
                }
            }
            if outbox.is_empty() {
                break;
            }
            start_q = (start_q + 1) % nq.max(1);
            self.exchange_into(phase, outbox, flat)?;
            flat.drain_into(|dst, pair| all[dst].push(pair));
        }
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators::path;

    fn net(g: &Graph) -> HybridNet<'_> {
        HybridNet::new(g, HybridConfig::default())
    }

    #[test]
    fn single_exchange_is_one_round() {
        let g = path(16, 1).unwrap();
        let mut net = net(&g);
        let inboxes =
            net.exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(15), 7u32)]).unwrap();
        assert_eq!(inboxes[15], vec![(NodeId::new(0), 7)]);
        assert_eq!(net.rounds(), 1);
        assert_eq!(net.metrics().global_messages, 1);
    }

    #[test]
    fn local_charge_accumulates() {
        let g = path(4, 1).unwrap();
        let mut net = net(&g);
        net.charge_local(10, "explore");
        assert_eq!(net.rounds(), 10);
        assert_eq!(net.metrics().local_rounds, 10);
    }

    #[test]
    fn stretch_charges_honest_rounds() {
        let g = path(16, 1).unwrap(); // send cap = ⌈log2 16⌉ = 4
        let mut net = net(&g);
        let outbox: Vec<_> =
            (0..12).map(|i| Envelope::new(NodeId::new(0), NodeId::new(1 + (i % 8)), i)).collect();
        net.exchange("t", outbox).unwrap();
        // 12 messages / cap 4 = 3 rounds.
        assert_eq!(net.rounds(), 3);
        assert_eq!(net.metrics().stretched_exchanges, 1);
    }

    #[test]
    fn fail_policy_rejects_send_overflow() {
        let g = path(16, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let outbox: Vec<_> =
            (0..5).map(|i| Envelope::new(NodeId::new(0), NodeId::new(1 + i), i)).collect();
        let err = net.exchange("t", outbox).unwrap_err();
        assert!(matches!(err, SimError::SendCapExceeded { sent: 5, cap: 4, .. }));
    }

    #[test]
    fn fail_policy_rejects_recv_overflow() {
        let g = path(16, 1).unwrap(); // recv cap = 16
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let outbox: Vec<_> = (0..15)
            .flat_map(|s| {
                (0..2).map(move |j| Envelope::new(NodeId::new(s), NodeId::new(15), (s, j)))
            })
            .collect();
        let err = net.exchange("t", outbox).unwrap_err();
        assert!(matches!(err, SimError::RecvCapExceeded { received: 30, .. }));
    }

    #[test]
    fn rejects_bad_address() {
        let g = path(4, 1).unwrap();
        let mut net = net(&g);
        let err = net
            .exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(9), 0u8)])
            .unwrap_err();
        assert!(matches!(err, SimError::AddressOutOfRange { .. }));
    }

    #[test]
    fn inboxes_sorted_by_sender() {
        let g = path(8, 1).unwrap();
        let mut net = net(&g);
        let outbox = vec![
            Envelope::new(NodeId::new(5), NodeId::new(0), 'b'),
            Envelope::new(NodeId::new(2), NodeId::new(0), 'a'),
        ];
        let inboxes = net.exchange("t", outbox).unwrap();
        assert_eq!(inboxes[0], vec![(NodeId::new(2), 'a'), (NodeId::new(5), 'b')]);
    }

    #[test]
    fn counting_sort_matches_reference_comparison_sort() {
        // Equivalence oracle: the former implementation's stable
        // `sort_by_key(|e| (e.dst, e.src))` placement, computed independently,
        // must agree byte-for-byte with the radix engine — including ties
        // (several messages with the same (src, dst) keep insertion order).
        let g = path(16, 1).unwrap();
        let mk_outbox = |salt: u64| -> Vec<Envelope<(u64, u64)>> {
            // Deterministic scramble with duplicates and self-sends.
            (0..48u64)
                .map(|i| {
                    let s = ((i * 7 + salt) % 16) as usize;
                    let d = ((i * 5 + 3 * salt) % 16) as usize;
                    Envelope::new(NodeId::new(s), NodeId::new(d), (i, salt))
                })
                .collect()
        };
        for salt in 0..8 {
            let outbox = mk_outbox(salt);
            // Reference path: stable comparison sort, grouped by destination.
            let mut reference: Inboxes<(u64, u64)> = (0..16).map(|_| Vec::new()).collect();
            let mut sorted = outbox.clone();
            sorted.sort_by_key(|e| (e.dst, e.src));
            for e in sorted {
                reference[e.dst.index()].push((e.src, e.msg));
            }
            // Engine path.
            let mut net = net(&g);
            let inboxes = net.exchange("t", outbox).unwrap();
            assert_eq!(inboxes, reference, "salt {salt}");
        }
    }

    #[test]
    fn exchange_into_reuses_buffers() {
        let g = path(16, 1).unwrap();
        let mut net = net(&g);
        let mut outbox = Vec::new();
        let mut flat = FlatInboxes::new();
        for round in 0..3u32 {
            outbox.push(Envelope::new(NodeId::new(1), NodeId::new(4), round));
            outbox.push(Envelope::new(NodeId::new(0), NodeId::new(4), round + 10));
            net.exchange_into("t", &mut outbox, &mut flat).unwrap();
            assert!(outbox.is_empty(), "outbox drained for reuse");
            assert_eq!(
                flat.for_node(NodeId::new(4)),
                &[(NodeId::new(0), round + 10), (NodeId::new(1), round)]
            );
        }
        assert_eq!(net.rounds(), 3);
    }

    #[test]
    fn exchange_into_leaves_outbox_on_error() {
        let g = path(4, 1).unwrap();
        let mut net = net(&g);
        let mut outbox = vec![Envelope::new(NodeId::new(0), NodeId::new(9), 1u8)];
        let mut flat = FlatInboxes::new();
        let err = net.exchange_into("t", &mut outbox, &mut flat).unwrap_err();
        assert!(matches!(err, SimError::AddressOutOfRange { .. }));
        assert_eq!(outbox.len(), 1, "failed exchange must not consume the outbox");
    }

    #[test]
    fn cut_counts_crossings() {
        let g = path(4, 1).unwrap();
        let mut net = net(&g);
        net.set_cut(vec![true, true, false, false]);
        let outbox = vec![
            Envelope::new(NodeId::new(0), NodeId::new(1), 0u8), // same side
            Envelope::new(NodeId::new(0), NodeId::new(3), 0u8), // crossing
            Envelope::new(NodeId::new(2), NodeId::new(1), 0u8), // crossing
        ];
        net.exchange("t", outbox).unwrap();
        assert_eq!(net.metrics().cut_messages, 2);
        net.clear_cut();
        net.exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(3), 0u8)]).unwrap();
        assert_eq!(net.metrics().cut_messages, 2);
    }

    #[test]
    fn drain_queues_paces_to_cap() {
        let g = path(16, 1).unwrap(); // cap 4
        let mut net = net(&g);
        // Node 0 queues 10 messages to distinct targets; node 1 queues 2.
        let mut queues: Vec<Vec<Envelope<u32>>> = vec![Vec::new(); 16];
        for i in 0..10 {
            queues[0].push(Envelope::new(NodeId::new(0), NodeId::new(2 + i), i as u32));
        }
        queues[1].push(Envelope::new(NodeId::new(1), NodeId::new(14), 100));
        queues[1].push(Envelope::new(NodeId::new(1), NodeId::new(15), 101));
        let inboxes = net.drain_queues("t", queues).unwrap();
        assert_eq!(net.rounds(), 3); // ⌈10/4⌉
        assert_eq!(net.metrics().global_messages, 12);
        assert_eq!(inboxes[14], vec![(NodeId::new(1), 100)]);
        assert_eq!(net.metrics().stretched_exchanges, 0); // paced, never over cap
    }

    #[test]
    fn drain_queues_paces_contended_receiver_without_stretch() {
        // Regression for the receive-blind drain: 8 senders each queue 4
        // messages for node 15 (32 total, recv cap 16). The old drain shipped
        // all 32 in one exchange, which *stretched* to 2 rounds and polluted
        // `stretched_exchanges`; the receive-aware drain paces the same load
        // over 2 clean exchanges — same honest total, distinguishable metrics.
        let g = path(16, 1).unwrap(); // send cap 4, recv cap 16
        let mut queues: Vec<Vec<Envelope<u32>>> = vec![Vec::new(); 16];
        for s in 0..8 {
            for i in 0..4 {
                queues[s].push(Envelope::new(NodeId::new(s), NodeId::new(15), (s * 4 + i) as u32));
            }
        }
        let mut net = net(&g);
        let inboxes = net.drain_queues("t", queues).unwrap();
        assert_eq!(net.rounds(), 2, "⌈32 / recv cap 16⌉ rounds");
        assert_eq!(net.metrics().stretched_exchanges, 0, "pacing must not stretch");
        assert_eq!(net.metrics().global_messages, 32);
        assert_eq!(net.metrics().max_recv_load, 16);
        assert_eq!(inboxes[15].len(), 32);
        // Per-sender FIFO order survives the head-of-line pacing.
        for s in 0..8u32 {
            let from_s: Vec<u32> = inboxes[15]
                .iter()
                .filter(|(src, _)| src.index() == s as usize)
                .map(|&(_, m)| m)
                .collect();
            assert_eq!(from_s, vec![s * 4, s * 4 + 1, s * 4 + 2, s * 4 + 3]);
        }
    }

    #[test]
    fn drain_queues_round_robin_is_fair_under_contention() {
        // 4 senders, one contended receiver with recv budget 16 and 8 messages
        // each: rotation means no sender is systematically served last.
        let g = path(16, 1).unwrap(); // send cap 4, recv cap 16
        let mut queues: Vec<Vec<Envelope<u32>>> = vec![Vec::new(); 16];
        for s in 0..8 {
            for i in 0..6 {
                queues[s].push(Envelope::new(NodeId::new(s), NodeId::new(9), (s * 6 + i) as u32));
            }
        }
        let mut net = net(&g);
        let inboxes = net.drain_queues("t", queues).unwrap();
        assert_eq!(inboxes[9].len(), 48);
        // 4 rounds: the recv budget (16/round) and the per-sender send cap
        // (4/round) interleave — the rotating start means every queue drains
        // within one round of the others instead of the last queue idling
        // until the first ones finish.
        assert_eq!(net.rounds(), 4);
        assert_eq!(net.metrics().stretched_exchanges, 0);
    }

    #[test]
    fn strict_drain_still_detects_receiver_overload() {
        // The Fail policy is the verification mode: a skewed destination
        // assignment in a drained phase must error, not be paced away —
        // receive-aware pacing applies to Stretch only.
        let g = path(16, 1).unwrap(); // send cap 4, recv cap 16
        let mut queues: Vec<Vec<Envelope<u32>>> = vec![Vec::new(); 16];
        for s in 0..8 {
            for i in 0..4 {
                queues[s].push(Envelope::new(NodeId::new(s), NodeId::new(15), (s * 4 + i) as u32));
            }
        }
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let err = net.drain_queues("t", queues).unwrap_err();
        assert!(matches!(err, SimError::RecvCapExceeded { received: 32, cap: 16, .. }));
    }

    #[test]
    fn drain_queues_rejects_bad_address() {
        let g = path(4, 1).unwrap();
        let mut queues: Vec<Vec<Envelope<u8>>> = vec![Vec::new(); 4];
        queues[0].push(Envelope::new(NodeId::new(0), NodeId::new(7), 1));
        let mut net = net(&g);
        let err = net.drain_queues("t", queues).unwrap_err();
        assert!(matches!(err, SimError::AddressOutOfRange { .. }));
    }

    #[test]
    fn sharded_exchange_is_bit_identical_to_sequential() {
        // A batch large enough to engage the thread-sharded scatter (≥ 2
        // shards of PAR_MIN_SHARD_MESSAGES) with a skewed destination mix:
        // the parallel engine must reproduce the sequential arena byte for
        // byte — same grouping, same (sender, insertion order) tie-breaks —
        // and the same metrics, including the receive-load histogram merged
        // from per-shard metrics.
        let g = path(64, 1).unwrap();
        let mk_outbox = || -> Vec<Envelope<(u32, u32)>> {
            (0..4096u32)
                .map(|i| {
                    let s = (i.wrapping_mul(13) % 64) as usize;
                    // Mix of broad traffic and a hot receiver (node 7).
                    let d = if i % 5 == 0 { 7 } else { (i.wrapping_mul(29) % 64) as usize };
                    Envelope::new(NodeId::new(s), NodeId::new(d), (i, i % 7))
                })
                .collect()
        };
        let run = |threads: usize| {
            let mut net = net(&g);
            net.set_round_threads(threads);
            let mut outbox = mk_outbox();
            let mut flat = FlatInboxes::new();
            net.exchange_into("t", &mut outbox, &mut flat).unwrap();
            let (msgs, starts) = flat.as_parts();
            (msgs.to_vec(), starts.to_vec(), net.rounds(), net.metrics().clone())
        };
        let (seq_msgs, seq_starts, seq_rounds, seq_metrics) = run(1);
        for threads in [2, 4, 7] {
            let (par_msgs, par_starts, par_rounds, par_metrics) = run(threads);
            assert_eq!(par_msgs, seq_msgs, "threads = {threads}");
            assert_eq!(par_starts, seq_starts, "threads = {threads}");
            assert_eq!(par_rounds, seq_rounds, "threads = {threads}");
            assert_eq!(par_metrics.recv_load_hist, seq_metrics.recv_load_hist);
            assert_eq!(par_metrics.max_recv_load, seq_metrics.max_recv_load);
            assert_eq!(par_metrics.max_send_load, seq_metrics.max_send_load);
            assert_eq!(par_metrics.global_messages, seq_metrics.global_messages);
        }
    }

    #[test]
    fn small_batches_stay_on_the_sequential_engine() {
        // Below the shard threshold the parallel budget must not change
        // behavior (and keeps the zero-allocation contract).
        let g = path(8, 1).unwrap();
        let mut net = net(&g);
        net.set_round_threads(8);
        assert_eq!(net.round_threads(), 8);
        let inboxes =
            net.exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(3), 1u8)]).unwrap();
        assert_eq!(inboxes[3], vec![(NodeId::new(0), 1)]);
    }

    #[test]
    fn drain_queues_scratch_pool_reuses_buffers_across_calls() {
        // Two drains with the same payload type: the second must find the
        // pooled pacing scratch (observable as retained capacity — the pool
        // is per payload type, keyed under the net).
        let g = path(16, 1).unwrap();
        let mut net = net(&g);
        let mk_queues = || -> Vec<Vec<Envelope<u32>>> {
            let mut queues: Vec<Vec<Envelope<u32>>> = vec![Vec::new(); 16];
            for i in 0..32 {
                queues[i % 4].push(Envelope::new(
                    NodeId::new(i % 4),
                    NodeId::new(8 + (i % 8)),
                    i as u32,
                ));
            }
            queues
        };
        let a = net.drain_queues("t", mk_queues()).unwrap();
        assert_eq!(net.drain_pool.0.len(), 1, "scratch pooled after the first drain");
        let b = net.drain_queues("t", mk_queues()).unwrap();
        assert_eq!(a, b);
        assert_eq!(net.drain_pool.0.len(), 1, "same payload type reuses the pooled scratch");
        // A different payload type gets its own pooled entry.
        let queues: Vec<Vec<Envelope<u8>>> =
            vec![vec![Envelope::new(NodeId::new(0), NodeId::new(1), 9u8)]; 1];
        net.drain_queues("t", queues).unwrap();
        assert_eq!(net.drain_pool.0.len(), 2);
    }

    #[test]
    fn error_display() {
        let e = SimError::RecvCapExceeded { node: NodeId::new(3), received: 9, cap: 4 };
        assert!(e.to_string().contains("receive"));
        let e = SimError::InvalidConfig { reason: "boom".into() };
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn try_new_rejects_degenerate_config() {
        let g = path(4, 1).unwrap();
        let cfg = HybridConfig { send_cap_factor: 0.0, ..HybridConfig::default() };
        let err = HybridNet::try_new(&g, cfg).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }

    #[test]
    #[should_panic(expected = "valid HybridConfig")]
    fn new_panics_on_degenerate_config() {
        let g = path(4, 1).unwrap();
        let _ =
            HybridNet::new(&g, HybridConfig { recv_cap_factor: f64::NAN, ..Default::default() });
    }

    #[test]
    fn drops_never_swallow_bad_addresses() {
        // An addressing bug must surface as an error on every seed — the
        // fault filter exempts out-of-range endpoints from the drop stream.
        use crate::fault::FaultPlan;
        let g = path(4, 1).unwrap();
        for seed in 0..8 {
            let mut net = net(&g);
            net.inject_faults(&FaultPlan::drops(0.9, seed)).unwrap();
            let err = net
                .exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(9), 0u8)])
                .unwrap_err();
            assert!(matches!(err, SimError::AddressOutOfRange { .. }), "seed {seed}");
        }
    }

    #[test]
    fn crashed_nodes_fall_silent() {
        use crate::fault::{Crash, FaultPlan};
        let g = path(8, 1).unwrap();
        let mut net = net(&g);
        net.inject_faults(&FaultPlan::node_crashes(vec![Crash {
            node: NodeId::new(3),
            at_round: 1,
        }]))
        .unwrap();
        // Round clock is 0: node 3 is still alive.
        let inboxes =
            net.exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(3), 1u8)]).unwrap();
        assert_eq!(inboxes[3], vec![(NodeId::new(0), 1)]);
        // Clock is now 1: node 3 neither receives nor sends.
        let inboxes = net
            .exchange(
                "t",
                vec![
                    Envelope::new(NodeId::new(0), NodeId::new(3), 2u8), // to crashed
                    Envelope::new(NodeId::new(3), NodeId::new(5), 3u8), // from crashed
                    Envelope::new(NodeId::new(0), NodeId::new(5), 4u8), // healthy
                ],
            )
            .unwrap();
        assert!(inboxes[3].is_empty());
        assert_eq!(inboxes[5], vec![(NodeId::new(0), 4)]);
        assert_eq!(net.metrics().dropped_messages, 2);
        assert_eq!(net.metrics().global_messages, 2, "dropped messages never hit the wire");
    }

    #[test]
    fn drop_faults_are_deterministic_and_counted() {
        use crate::fault::FaultPlan;
        let g = path(16, 1).unwrap();
        let run = || {
            let mut net = net(&g);
            net.inject_faults(&FaultPlan::drops(0.5, 99)).unwrap();
            let mut delivered = Vec::new();
            for r in 0..32u32 {
                let inboxes = net
                    .exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(1), r)])
                    .unwrap();
                delivered.extend(inboxes[1].iter().map(|&(_, m)| m));
            }
            (delivered, net.metrics().dropped_messages)
        };
        let (a, dropped_a) = run();
        let (b, dropped_b) = run();
        assert_eq!(a, b, "same plan, same drops");
        assert_eq!(dropped_a, dropped_b);
        assert_eq!(a.len() as u64 + dropped_a, 32);
        assert!(dropped_a > 0, "p = 0.5 over 32 messages");
    }

    #[test]
    fn clear_faults_restores_delivery() {
        use crate::fault::FaultPlan;
        let g = path(4, 1).unwrap();
        let mut net = net(&g);
        net.inject_faults(&FaultPlan::drops(0.999, 7)).unwrap();
        net.clear_faults();
        let inboxes =
            net.exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(2), 5u8)]).unwrap();
        assert_eq!(inboxes[2], vec![(NodeId::new(0), 5)]);
        assert_eq!(net.metrics().dropped_messages, 0);
    }

    #[test]
    fn inject_faults_validates_plan() {
        use crate::fault::FaultPlan;
        let g = path(4, 1).unwrap();
        let mut net = net(&g);
        let err = net.inject_faults(&FaultPlan::drops(1.0, 0)).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }

    #[test]
    fn loss_and_crash_suppression_are_counted_separately() {
        use crate::fault::{Crash, FaultPlan};
        let g = path(16, 1).unwrap();
        let mut net = net(&g);
        net.inject_faults(&FaultPlan {
            drop_prob: 0.5,
            corrupt_prob: 0.0,
            crashes: vec![Crash { node: NodeId::new(3), at_round: 0 }],
            seed: 11,
        })
        .unwrap();
        for r in 0..32u32 {
            let outbox = vec![
                Envelope::new(NodeId::new(0), NodeId::new(3), r), // always suppressed
                Envelope::new(NodeId::new(0), NodeId::new(1), r), // maybe lost
            ];
            net.exchange("t", outbox).unwrap();
        }
        let m = net.metrics();
        assert_eq!(m.suppressed_by_crash, 32, "every message to the crashed node");
        assert!(m.dropped_by_loss > 0, "p = 0.5 over 32 live messages");
        assert_eq!(m.dropped_messages, m.dropped_by_loss + m.suppressed_by_crash);
    }

    #[test]
    fn reliable_exchange_recovers_lost_messages() {
        use crate::fault::FaultPlan;
        let g = path(16, 1).unwrap();
        let mut net = net(&g);
        net.inject_faults(&FaultPlan::drops(0.4, 21)).unwrap();
        net.set_reliable(true);
        assert!(net.reliable() && net.has_faults());
        let outbox: Vec<_> = (0..32u32)
            .map(|i| {
                Envelope::new(NodeId::new((i % 4) as usize), NodeId::new(8 + (i % 8) as usize), i)
            })
            .collect();
        let inboxes = net.exchange("t", outbox).unwrap();
        let delivered: usize = inboxes.iter().map(Vec::len).sum();
        assert_eq!(delivered, 32, "reliable mode delivers everything to live nodes");
        let m = net.metrics();
        assert!(m.dropped_by_loss > 0, "the drop stream must bite");
        assert!(m.retransmissions > 0, "losses must be retried");
        assert!(m.recovered_messages > 0, "retries must recover messages");
        assert_eq!(m.declared_dead, 0, "a drop-only plan never kills anyone");
        assert!(net.rounds() > 2, "waves, acks and backoff are all charged");
        // Per-(src, dst) sequence order survives recovery.
        for inbox in inboxes.iter() {
            let mut last: std::collections::HashMap<NodeId, u32> = std::collections::HashMap::new();
            for &(src, seq) in inbox {
                if let Some(&prev) = last.get(&src) {
                    assert!(seq > prev, "sequence order violated: {prev} then {seq}");
                }
                last.insert(src, seq);
            }
        }
    }

    #[test]
    fn reliable_exchange_detects_and_recovers_corrupted_payloads() {
        use crate::fault::FaultPlan;
        let g = path(16, 1).unwrap();
        let mut net = net(&g);
        net.inject_faults(&FaultPlan::corruption(0.3, 33)).unwrap();
        net.set_reliable(true);
        let outbox: Vec<_> = (0..64u32)
            .map(|i| {
                Envelope::new(NodeId::new((i % 4) as usize), NodeId::new(8 + (i % 8) as usize), i)
            })
            .collect();
        let sent: Vec<u32> = outbox.iter().map(|e| e.msg).collect();
        let inboxes = net.exchange("t", outbox).unwrap();
        let delivered: usize = inboxes.iter().map(Vec::len).sum();
        assert_eq!(delivered, 64, "every corrupted payload is retransmitted until it lands");
        // Delivered payloads are exactly the sent ones: detection converts
        // corruption to loss, it never leaks a flipped payload.
        let mut got: Vec<u32> =
            inboxes.iter().flat_map(|inbox| inbox.iter().map(|&(_, p)| p)).collect();
        got.sort_unstable();
        let mut want = sent;
        want.sort_unstable();
        assert_eq!(got, want);
        let m = net.metrics();
        assert!(m.corrupted_messages > 0, "p = 0.3 over 64 messages must bite");
        assert_eq!(m.dropped_by_loss, 0, "a corruption-only plan never random-drops");
        assert_eq!(m.dropped_messages, m.corrupted_messages + m.suppressed_by_crash);
        assert!(m.retransmissions > 0 && m.recovered_messages > 0);
    }

    #[test]
    fn fire_and_forget_discards_corrupted_payloads() {
        use crate::fault::FaultPlan;
        let g = path(16, 1).unwrap();
        let mut net = net(&g);
        net.inject_faults(&FaultPlan::corruption(0.4, 9)).unwrap();
        let mut delivered = 0usize;
        for r in 0..64u32 {
            let inboxes =
                net.exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(1), r)]).unwrap();
            delivered += inboxes[1].len();
        }
        let m = net.metrics();
        assert!(m.corrupted_messages > 0, "the corruption stream must bite");
        assert_eq!(delivered as u64 + m.corrupted_messages, 64);
        assert_eq!(m.dropped_messages, m.corrupted_messages);
    }

    #[test]
    fn corruption_stream_does_not_perturb_drop_decisions() {
        use crate::fault::FaultPlan;
        let g = path(16, 1).unwrap();
        let run = |corrupt_prob: f64| {
            let mut net = net(&g);
            net.inject_faults(&FaultPlan { corrupt_prob, ..FaultPlan::drops(0.3, 17) }).unwrap();
            let mut lost_pattern = Vec::new();
            for r in 0..128u32 {
                let before = net.metrics().dropped_by_loss;
                net.exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(1), r)]).unwrap();
                lost_pattern.push(net.metrics().dropped_by_loss - before);
            }
            lost_pattern
        };
        assert_eq!(run(0.0), run(0.3), "enabling corruption must not shift the drop stream");
    }

    #[test]
    fn reliable_exchange_declares_crashed_destinations_dead() {
        use crate::fault::{Crash, FaultPlan};
        let g = path(8, 1).unwrap();
        let mut net = net(&g);
        net.inject_faults(&FaultPlan::node_crashes(vec![Crash {
            node: NodeId::new(3),
            at_round: 0,
        }]))
        .unwrap();
        net.set_reliable(true);
        let inboxes = net
            .exchange(
                "t",
                vec![
                    Envelope::new(NodeId::new(0), NodeId::new(3), 1u8),
                    Envelope::new(NodeId::new(0), NodeId::new(5), 2u8),
                ],
            )
            .unwrap();
        assert!(inboxes[3].is_empty());
        assert_eq!(inboxes[5], vec![(NodeId::new(0), 2)]);
        assert_eq!(net.metrics().declared_dead, 1, "node 3 gave up after max attempts");
        assert_eq!(net.declared_dead_nodes(), vec![NodeId::new(3)]);
        assert!(net.metrics().suppressed_by_crash > 0);
        // A second exchange to the declared-dead node is suppressed instantly:
        // no further retransmission waves are spent on it.
        let retrans_before = net.metrics().retransmissions;
        let rounds_before = net.rounds();
        let inboxes =
            net.exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(3), 9u8)]).unwrap();
        assert!(inboxes[3].is_empty());
        assert_eq!(net.metrics().retransmissions, retrans_before);
        assert!(net.rounds() - rounds_before <= 1, "no retry waves for a declared-dead node");
    }

    #[test]
    fn reliable_exchange_is_bit_identical_across_thread_budgets() {
        use crate::fault::{Crash, FaultPlan};
        let g = path(64, 1).unwrap();
        let run = |threads: usize| {
            let mut net = net(&g);
            net.set_round_threads(threads);
            net.inject_faults(&FaultPlan {
                drop_prob: 0.3,
                corrupt_prob: 0.0,
                crashes: vec![Crash { node: NodeId::new(7), at_round: 2 }],
                seed: 5,
            })
            .unwrap();
            net.set_reliable(true);
            let mut outbox: Vec<Envelope<u32>> = (0..2048u32)
                .map(|i| {
                    Envelope::new(
                        NodeId::new((i.wrapping_mul(13) % 64) as usize),
                        NodeId::new((i.wrapping_mul(29) % 64) as usize),
                        i,
                    )
                })
                .collect();
            let mut flat = FlatInboxes::new();
            net.exchange_into("t", &mut outbox, &mut flat).unwrap();
            let (msgs, starts) = flat.as_parts();
            (msgs.to_vec(), starts.to_vec(), net.rounds(), net.metrics().clone())
        };
        let (seq_msgs, seq_starts, seq_rounds, seq_m) = run(1);
        for threads in [2, 4] {
            let (par_msgs, par_starts, par_rounds, par_m) = run(threads);
            assert_eq!(par_msgs, seq_msgs, "threads = {threads}");
            assert_eq!(par_starts, seq_starts, "threads = {threads}");
            assert_eq!(par_rounds, seq_rounds, "threads = {threads}");
            assert_eq!(par_m.retransmissions, seq_m.retransmissions);
            assert_eq!(par_m.dropped_by_loss, seq_m.dropped_by_loss);
            assert_eq!(par_m.recovered_messages, seq_m.recovered_messages);
            assert_eq!(par_m.declared_dead, seq_m.declared_dead);
        }
        assert!(seq_m.recovered_messages > 0, "the instance must exercise recovery");
    }

    #[test]
    fn reliable_flag_is_inert_without_faults() {
        let g = path(8, 1).unwrap();
        let mut net = net(&g);
        net.set_reliable(true);
        let inboxes =
            net.exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(3), 1u8)]).unwrap();
        assert_eq!(inboxes[3], vec![(NodeId::new(0), 1)]);
        assert_eq!(net.rounds(), 1, "no fault plan: the fire-and-forget engine runs");
        assert_eq!(net.metrics().retransmissions, 0);
    }

    #[test]
    fn reliable_exchange_leaves_outbox_on_error_and_charges_empty_rounds() {
        use crate::fault::FaultPlan;
        let g = path(4, 1).unwrap();
        let mut net = net(&g);
        net.inject_faults(&FaultPlan::drops(0.2, 3)).unwrap();
        net.set_reliable(true);
        let mut outbox = vec![Envelope::new(NodeId::new(0), NodeId::new(9), 1u8)];
        let mut flat = FlatInboxes::new();
        let err = net.exchange_into("t", &mut outbox, &mut flat).unwrap_err();
        assert!(matches!(err, SimError::AddressOutOfRange { .. }));
        assert_eq!(outbox.len(), 1, "failed reliable exchange must not consume the outbox");
        assert_eq!(net.rounds(), 0);
        // An empty reliable exchange still costs its round.
        let mut empty: Vec<Envelope<u8>> = Vec::new();
        net.exchange_into("t", &mut empty, &mut flat).unwrap();
        assert_eq!(net.rounds(), 1);
    }

    #[test]
    fn drain_queues_under_drops_terminates() {
        use crate::fault::FaultPlan;
        let g = path(16, 1).unwrap();
        let mut net = net(&g);
        net.inject_faults(&FaultPlan::drops(0.3, 5)).unwrap();
        let mut queues: Vec<Vec<Envelope<u32>>> = vec![Vec::new(); 16];
        for i in 0..40 {
            queues[i % 4].push(Envelope::new(
                NodeId::new(i % 4),
                NodeId::new(8 + (i % 8)),
                i as u32,
            ));
        }
        let inboxes = net.drain_queues("t", queues).unwrap();
        let delivered: usize = inboxes.iter().map(Vec::len).sum();
        assert_eq!(delivered as u64 + net.metrics().dropped_messages, 40);
        assert!(net.metrics().dropped_messages > 0);
    }
}
