//! The simulated HYBRID network: round clock, local-phase accounting, and the
//! congestion-enforcing global channel.
//!
//! # Hot path
//!
//! [`HybridNet::exchange_into`] is the steady-state-allocation-free engine
//! behind every global communication step: per-node send/receive counters live
//! in a persistent scratch arena, message placement is a two-pass counting
//! sort (stable radix by sender then destination — `O(m + n)` instead of the
//! former `O(m log m)` comparison sort), and delivered messages land in a
//! caller-reused [`FlatInboxes`] arena. The nested-`Vec` [`HybridNet::exchange`]
//! remains as a convenience wrapper with identical observable behavior.

use std::fmt;

use hybrid_graph::{Graph, NodeId};

use crate::channel::{Envelope, FlatInboxes, Inboxes};
use crate::config::{HybridConfig, OverflowPolicy};
use crate::fault::{FaultPlan, FaultState};
use crate::metrics::Metrics;

/// Errors of a simulated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Under [`OverflowPolicy::Fail`]: a node tried to send more global messages
    /// in one exchange than the per-round cap allows.
    SendCapExceeded {
        /// The offending node.
        node: NodeId,
        /// Messages it attempted to send.
        sent: usize,
        /// The per-round cap.
        cap: usize,
    },
    /// Under [`OverflowPolicy::Fail`]: a node would receive more global messages
    /// in one round than the cap — the event the paper's Lemma D.2 excludes w.h.p.
    RecvCapExceeded {
        /// The overloaded node.
        node: NodeId,
        /// Messages addressed to it.
        received: usize,
        /// The per-round cap.
        cap: usize,
    },
    /// An envelope addressed a node outside `0..n`.
    AddressOutOfRange {
        /// The bad destination.
        node: NodeId,
        /// Network size.
        n: usize,
    },
    /// A [`HybridConfig`] or [`FaultPlan`] was rejected at construction —
    /// degenerate caps (e.g. a non-finite or non-positive cap factor, which
    /// would starve `exchange` pacing into a livelock) or an out-of-range
    /// fault probability.
    InvalidConfig {
        /// Human-readable description of the rejected field.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SendCapExceeded { node, sent, cap } => {
                write!(f, "node {node} sent {sent} global messages, cap is {cap}")
            }
            SimError::RecvCapExceeded { node, received, cap } => {
                write!(f, "node {node} would receive {received} global messages, cap is {cap}")
            }
            SimError::AddressOutOfRange { node, n } => {
                write!(f, "destination {node} out of range for network of {n} nodes")
            }
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Persistent per-net scratch buffers for the exchange engine. Sized once for
/// `n` at construction; the permutation buffers grow to the largest batch seen
/// and are reused afterwards, so steady-state exchanges never allocate.
#[derive(Debug, Default)]
struct ExchangeScratch {
    /// Per-node send counters (reused each exchange).
    sent: Vec<u32>,
    /// Per-node receive counters (reused each exchange).
    recv: Vec<u32>,
    /// Counting-sort offsets, `n + 1` entries.
    offs: Vec<u32>,
    /// First-pass permutation (message indices stable-sorted by sender).
    perm1: Vec<u32>,
    /// Second-pass permutation (then stable-sorted by destination).
    perm2: Vec<u32>,
    /// Per-destination budget bookkeeping for [`HybridNet::drain_queues`].
    drain_recv: Vec<u32>,
}

impl ExchangeScratch {
    fn for_n(n: usize) -> Self {
        ExchangeScratch {
            sent: vec![0; n],
            recv: vec![0; n],
            offs: vec![0; n + 1],
            perm1: Vec::new(),
            perm2: Vec::new(),
            drain_recv: vec![0; n],
        }
    }
}

/// A simulated HYBRID network over a fixed local graph.
///
/// See the crate docs for the fidelity contract: global messages are routed and
/// cap-checked individually; local phases are charged on the clock.
#[derive(Debug)]
pub struct HybridNet<'g> {
    graph: &'g Graph,
    config: HybridConfig,
    metrics: Metrics,
    cut: Option<Vec<bool>>,
    scratch: ExchangeScratch,
    faults: Option<FaultState>,
}

impl<'g> HybridNet<'g> {
    /// Creates a network over `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is degenerate (see [`HybridConfig::validate`]); use
    /// [`HybridNet::try_new`] to handle that as an error instead.
    pub fn new(graph: &'g Graph, config: HybridConfig) -> Self {
        Self::try_new(graph, config).expect("valid HybridConfig")
    }

    /// Creates a network over `graph`, rejecting degenerate configurations.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if a cap factor is non-finite or
    /// non-positive (a 0-messages-per-round budget would livelock paced
    /// protocols instead of erroring).
    pub fn try_new(graph: &'g Graph, config: HybridConfig) -> Result<Self, SimError> {
        config.validate()?;
        Ok(HybridNet {
            graph,
            config,
            metrics: Metrics::new(),
            cut: None,
            scratch: ExchangeScratch::for_n(graph.len()),
            faults: None,
        })
    }

    /// Installs a [`FaultPlan`]: from now on every global exchange drops
    /// messages per the plan's probability (deterministic stream) and silences
    /// crashed endpoints. Replaces any previously installed plan; dropped
    /// messages are counted in [`Metrics::dropped_messages`].
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the plan is invalid (see
    /// [`FaultPlan::validate`]).
    pub fn inject_faults(&mut self, plan: &FaultPlan) -> Result<(), SimError> {
        plan.validate()?;
        self.faults =
            if plan.is_trivial() { None } else { Some(FaultState::install(plan, self.n())) };
        Ok(())
    }

    /// Removes any installed fault plan.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// The local communication graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.graph.len()
    }

    /// The configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    /// Per-node global send cap (messages per round).
    pub fn send_cap(&self) -> usize {
        self.config.send_cap(self.graph.len())
    }

    /// Per-node global receive cap (messages per round).
    pub fn recv_cap(&self) -> usize {
        self.config.recv_cap(self.graph.len())
    }

    /// Total rounds elapsed.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// Execution metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Consumes the network and returns its metrics.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }

    /// Merges metrics of a sub-execution (e.g. a nested protocol run on its own
    /// net) into this one.
    pub fn absorb_metrics(&mut self, other: &Metrics) {
        self.metrics.absorb(other);
    }

    /// Registers a node bipartition; subsequent global messages whose endpoints
    /// lie on different sides are counted in [`Metrics::cut_messages`]. Used by
    /// the lower-bound experiments (§6, §7) to measure Alice↔Bob information flow.
    ///
    /// # Panics
    ///
    /// Panics if `side.len() != n`.
    pub fn set_cut(&mut self, side: Vec<bool>) {
        assert_eq!(side.len(), self.graph.len(), "cut must label every node");
        self.cut = Some(side);
    }

    /// Removes the registered cut.
    pub fn clear_cut(&mut self) {
        self.cut = None;
    }

    /// Charges `rounds` rounds of local-mode communication under `phase`.
    ///
    /// The semantics (what every node knows afterwards) are computed by the caller
    /// with the reference routines of `hybrid-graph` — in the LOCAL model, `d`
    /// rounds of flooding teach every node exactly its `d`-hop neighborhood, and
    /// bandwidth is unconstrained.
    pub fn charge_local(&mut self, rounds: u64, phase: &str) {
        self.metrics.charge_local(rounds, phase);
    }

    /// Charges `rounds` global-mode rounds without routing messages. Used when a
    /// sub-protocol's cost is known (e.g. repeating an already-measured routing
    /// instance `T_A` times in the CLIQUE-on-skeleton simulation) — the rounds
    /// are honest, the message contents are not interesting.
    pub fn charge_global_rounds(&mut self, rounds: u64, phase: &str) {
        self.metrics.charge_global_rounds_only(rounds, phase);
    }

    /// Performs one global-mode communication step, delivering `outbox` into
    /// the reusable arena `out` subject to the NCC caps.
    ///
    /// This is the zero-allocation engine: with warmed buffers (same network,
    /// batch sizes no larger than previously seen, phase label already known to
    /// the metrics) a call performs **no heap allocation**. `outbox` is left
    /// empty with its capacity intact so callers can refill it for the next
    /// step; on error it is left untouched.
    ///
    /// Semantics are identical to [`HybridNet::exchange`]: under
    /// [`OverflowPolicy::Stretch`] the step is charged
    /// `max(1, ⌈max_v sent_v / send_cap⌉, ⌈max_v recv_v / recv_cap⌉)` rounds;
    /// under [`OverflowPolicy::Fail`] any cap violation is an error. Inboxes
    /// are grouped by destination and sorted by `(sender, insertion order)`.
    ///
    /// # Errors
    ///
    /// [`SimError::AddressOutOfRange`] for a bad endpoint; cap violations under
    /// [`OverflowPolicy::Fail`].
    pub fn exchange_into<M>(
        &mut self,
        phase: &str,
        outbox: &mut Vec<Envelope<M>>,
        out: &mut FlatInboxes<M>,
    ) -> Result<(), SimError> {
        let n = self.graph.len();
        let send_cap = self.send_cap();
        let recv_cap = self.recv_cap();
        out.clear();

        // Fault hook: crashed endpoints fall silent and the drop stream loses
        // messages *before* any accounting — a lost message consumes neither
        // bandwidth nor rounds, it simply never happened on the wire. `retain`
        // is in-place, so the fault-free path stays allocation-free too.
        // Messages with out-of-range endpoints are exempt: an addressing bug
        // must always surface as [`SimError::AddressOutOfRange`] below, never
        // be swallowed by a random drop.
        if let Some(faults) = &mut self.faults {
            let round = self.metrics.rounds;
            let before = outbox.len();
            outbox.retain(|e| {
                if e.src.index() >= n || e.dst.index() >= n {
                    return true;
                }
                faults.alive(e.src, round) && faults.alive(e.dst, round) && !faults.drop_next()
            });
            self.metrics.dropped_messages += (before - outbox.len()) as u64;
        }
        let m = outbox.len();

        // Count per-node loads (and validate addresses) into the scratch arena.
        let scratch = &mut self.scratch;
        scratch.sent[..n].fill(0);
        scratch.recv[..n].fill(0);
        for e in outbox.iter() {
            if e.dst.index() >= n {
                return Err(SimError::AddressOutOfRange { node: e.dst, n });
            }
            if e.src.index() >= n {
                return Err(SimError::AddressOutOfRange { node: e.src, n });
            }
            scratch.sent[e.src.index()] += 1;
            scratch.recv[e.dst.index()] += 1;
        }

        let mut rounds_needed = 1u64;
        for v in 0..n {
            if scratch.sent[v] as usize > send_cap {
                match self.config.overflow {
                    OverflowPolicy::Fail => {
                        return Err(SimError::SendCapExceeded {
                            node: NodeId::new(v),
                            sent: scratch.sent[v] as usize,
                            cap: send_cap,
                        });
                    }
                    OverflowPolicy::Stretch => {
                        rounds_needed =
                            rounds_needed.max((scratch.sent[v] as usize).div_ceil(send_cap) as u64);
                    }
                }
            }
            if scratch.recv[v] as usize > recv_cap {
                match self.config.overflow {
                    OverflowPolicy::Fail => {
                        return Err(SimError::RecvCapExceeded {
                            node: NodeId::new(v),
                            received: scratch.recv[v] as usize,
                            cap: recv_cap,
                        });
                    }
                    OverflowPolicy::Stretch => {
                        rounds_needed =
                            rounds_needed.max((scratch.recv[v] as usize).div_ceil(recv_cap) as u64);
                    }
                }
            }
        }

        // Metrics: loads, cut traffic.
        let max_sent = scratch.sent[..n].iter().copied().max().unwrap_or(0) as usize;
        self.metrics.max_send_load = self.metrics.max_send_load.max(max_sent);
        for v in 0..n {
            if scratch.recv[v] > 0 {
                self.metrics.record_recv_load(scratch.recv[v] as usize);
            }
        }
        if let Some(side) = &self.cut {
            let crossing =
                outbox.iter().filter(|e| side[e.src.index()] != side[e.dst.index()]).count();
            self.metrics.cut_messages += crossing as u64;
        }
        self.metrics.charge_global(rounds_needed, m as u64, phase);

        // Deliver: stable two-pass counting sort by (dst, src, insertion order)
        // — radix pass 1 orders by sender, pass 2 groups by destination; both
        // are stable, so the result matches a stable comparison sort on
        // `(dst, src)` exactly.
        let offs = &mut scratch.offs;
        offs[..=n].fill(0);
        for e in outbox.iter() {
            offs[e.src.index() + 1] += 1;
        }
        for v in 0..n {
            offs[v + 1] += offs[v];
        }
        scratch.perm1.clear();
        scratch.perm1.resize(m, 0);
        for (i, e) in outbox.iter().enumerate() {
            let s = e.src.index();
            scratch.perm1[offs[s] as usize] = i as u32;
            offs[s] += 1;
        }

        offs[..=n].fill(0);
        for e in outbox.iter() {
            offs[e.dst.index() + 1] += 1;
        }
        for v in 0..n {
            offs[v + 1] += offs[v];
        }
        let (msgs, starts) = out.parts_mut();
        starts.clear();
        starts.extend(offs[..=n].iter().map(|&o| o as usize));
        scratch.perm2.clear();
        scratch.perm2.resize(m, 0);
        for &i in &scratch.perm1 {
            let d = outbox[i as usize].dst.index();
            scratch.perm2[offs[d] as usize] = i;
            offs[d] += 1;
        }

        // Move the payloads out of `outbox` in permuted order without cloning.
        // SAFETY: `perm2` is a permutation of `0..m`, so each element is read
        // exactly once; the length is zeroed first so a panic cannot cause a
        // double drop (elements would leak, never free twice).
        msgs.reserve(m);
        unsafe {
            let base = outbox.as_ptr();
            outbox.set_len(0);
            for &i in &scratch.perm2 {
                let e = std::ptr::read(base.add(i as usize));
                msgs.push((e.src, e.msg));
            }
        }
        Ok(())
    }

    /// Performs one global-mode communication step: delivers `outbox` subject to
    /// the NCC caps.
    ///
    /// Convenience wrapper over [`HybridNet::exchange_into`] returning nested
    /// per-node inboxes (allocates; hot paths use the arena API directly).
    ///
    /// Inboxes are sorted by `(sender, insertion order)` for determinism.
    ///
    /// # Errors
    ///
    /// [`SimError::AddressOutOfRange`] for a bad destination; cap violations under
    /// [`OverflowPolicy::Fail`].
    pub fn exchange<M>(
        &mut self,
        phase: &str,
        outbox: Vec<Envelope<M>>,
    ) -> Result<Inboxes<M>, SimError> {
        let mut outbox = outbox;
        let mut flat = FlatInboxes::new();
        self.exchange_into(phase, &mut outbox, &mut flat)?;
        Ok(flat.into_inboxes())
    }

    /// Runs a multi-step global protocol where every node holds a queue of
    /// envelopes and sends at most `send_cap` per round, until all queues drain.
    /// This is the common "while T ≠ ∅: pick Θ(log n) tokens, send" pattern of the
    /// paper's Algorithm 4.
    ///
    /// Under [`OverflowPolicy::Stretch`] the drain is **receive-aware and
    /// round-robin**: each round starts from a rotating queue index and takes
    /// messages only while the head message's destination still has per-round
    /// receive budget (head-of-line blocking preserves per-sender FIFO
    /// order). Consequently a paced drain never triggers the stretch
    /// machinery — `stretched_exchanges` stays a congestion signal instead of
    /// conflating pacing with overload — and contended receivers are served
    /// fairly across senders.
    ///
    /// Under [`OverflowPolicy::Fail`] the drain stays deliberately
    /// receive-*blind* (every queue sends up to `send_cap` per round): the
    /// strict policy exists to *prove* the protocols' w.h.p. receive bounds
    /// (Lemma D.2), so a skewed destination assignment must surface as
    /// [`SimError::RecvCapExceeded`], not be silently paced away.
    ///
    /// Returns the concatenated inboxes (per destination, in delivery order).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the underlying exchanges.
    pub fn drain_queues<M>(
        &mut self,
        phase: &str,
        mut queues: Vec<Vec<Envelope<M>>>,
    ) -> Result<Inboxes<M>, SimError> {
        let n = self.graph.len();
        let mut all: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
        let mut outbox: Vec<Envelope<M>> = Vec::new();
        let mut flat: FlatInboxes<M> = FlatInboxes::new();
        let cap = self.send_cap();
        let recv_cap = self.recv_cap();
        let pace_receivers = self.config.overflow == OverflowPolicy::Stretch;
        // Reverse once so FIFO pops are O(1) `pop()`s from the back.
        for q in queues.iter_mut() {
            q.reverse();
        }
        let nq = queues.len();
        let mut start_q = 0usize;
        loop {
            outbox.clear();
            {
                let drain_recv = &mut self.scratch.drain_recv;
                drain_recv[..n].fill(0);
                for k in 0..nq {
                    let q = &mut queues[(start_q + k) % nq];
                    let mut taken = 0usize;
                    while taken < cap {
                        let Some(head) = q.last() else { break };
                        let d = head.dst.index();
                        if d >= n {
                            return Err(SimError::AddressOutOfRange { node: head.dst, n });
                        }
                        if pace_receivers && drain_recv[d] as usize >= recv_cap {
                            break;
                        }
                        drain_recv[d] += 1;
                        outbox.push(q.pop().expect("head exists"));
                        taken += 1;
                    }
                }
            }
            if outbox.is_empty() {
                break;
            }
            start_q = (start_q + 1) % nq.max(1);
            self.exchange_into(phase, &mut outbox, &mut flat)?;
            flat.drain_into(|dst, pair| all[dst].push(pair));
        }
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators::path;

    fn net(g: &Graph) -> HybridNet<'_> {
        HybridNet::new(g, HybridConfig::default())
    }

    #[test]
    fn single_exchange_is_one_round() {
        let g = path(16, 1).unwrap();
        let mut net = net(&g);
        let inboxes =
            net.exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(15), 7u32)]).unwrap();
        assert_eq!(inboxes[15], vec![(NodeId::new(0), 7)]);
        assert_eq!(net.rounds(), 1);
        assert_eq!(net.metrics().global_messages, 1);
    }

    #[test]
    fn local_charge_accumulates() {
        let g = path(4, 1).unwrap();
        let mut net = net(&g);
        net.charge_local(10, "explore");
        assert_eq!(net.rounds(), 10);
        assert_eq!(net.metrics().local_rounds, 10);
    }

    #[test]
    fn stretch_charges_honest_rounds() {
        let g = path(16, 1).unwrap(); // send cap = ⌈log2 16⌉ = 4
        let mut net = net(&g);
        let outbox: Vec<_> =
            (0..12).map(|i| Envelope::new(NodeId::new(0), NodeId::new(1 + (i % 8)), i)).collect();
        net.exchange("t", outbox).unwrap();
        // 12 messages / cap 4 = 3 rounds.
        assert_eq!(net.rounds(), 3);
        assert_eq!(net.metrics().stretched_exchanges, 1);
    }

    #[test]
    fn fail_policy_rejects_send_overflow() {
        let g = path(16, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let outbox: Vec<_> =
            (0..5).map(|i| Envelope::new(NodeId::new(0), NodeId::new(1 + i), i)).collect();
        let err = net.exchange("t", outbox).unwrap_err();
        assert!(matches!(err, SimError::SendCapExceeded { sent: 5, cap: 4, .. }));
    }

    #[test]
    fn fail_policy_rejects_recv_overflow() {
        let g = path(16, 1).unwrap(); // recv cap = 16
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let outbox: Vec<_> = (0..15)
            .flat_map(|s| {
                (0..2).map(move |j| Envelope::new(NodeId::new(s), NodeId::new(15), (s, j)))
            })
            .collect();
        let err = net.exchange("t", outbox).unwrap_err();
        assert!(matches!(err, SimError::RecvCapExceeded { received: 30, .. }));
    }

    #[test]
    fn rejects_bad_address() {
        let g = path(4, 1).unwrap();
        let mut net = net(&g);
        let err = net
            .exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(9), 0u8)])
            .unwrap_err();
        assert!(matches!(err, SimError::AddressOutOfRange { .. }));
    }

    #[test]
    fn inboxes_sorted_by_sender() {
        let g = path(8, 1).unwrap();
        let mut net = net(&g);
        let outbox = vec![
            Envelope::new(NodeId::new(5), NodeId::new(0), 'b'),
            Envelope::new(NodeId::new(2), NodeId::new(0), 'a'),
        ];
        let inboxes = net.exchange("t", outbox).unwrap();
        assert_eq!(inboxes[0], vec![(NodeId::new(2), 'a'), (NodeId::new(5), 'b')]);
    }

    #[test]
    fn counting_sort_matches_reference_comparison_sort() {
        // Equivalence oracle: the former implementation's stable
        // `sort_by_key(|e| (e.dst, e.src))` placement, computed independently,
        // must agree byte-for-byte with the radix engine — including ties
        // (several messages with the same (src, dst) keep insertion order).
        let g = path(16, 1).unwrap();
        let mk_outbox = |salt: u64| -> Vec<Envelope<(u64, u64)>> {
            // Deterministic scramble with duplicates and self-sends.
            (0..48u64)
                .map(|i| {
                    let s = ((i * 7 + salt) % 16) as usize;
                    let d = ((i * 5 + 3 * salt) % 16) as usize;
                    Envelope::new(NodeId::new(s), NodeId::new(d), (i, salt))
                })
                .collect()
        };
        for salt in 0..8 {
            let outbox = mk_outbox(salt);
            // Reference path: stable comparison sort, grouped by destination.
            let mut reference: Inboxes<(u64, u64)> = (0..16).map(|_| Vec::new()).collect();
            let mut sorted = outbox.clone();
            sorted.sort_by_key(|e| (e.dst, e.src));
            for e in sorted {
                reference[e.dst.index()].push((e.src, e.msg));
            }
            // Engine path.
            let mut net = net(&g);
            let inboxes = net.exchange("t", outbox).unwrap();
            assert_eq!(inboxes, reference, "salt {salt}");
        }
    }

    #[test]
    fn exchange_into_reuses_buffers() {
        let g = path(16, 1).unwrap();
        let mut net = net(&g);
        let mut outbox = Vec::new();
        let mut flat = FlatInboxes::new();
        for round in 0..3u32 {
            outbox.push(Envelope::new(NodeId::new(1), NodeId::new(4), round));
            outbox.push(Envelope::new(NodeId::new(0), NodeId::new(4), round + 10));
            net.exchange_into("t", &mut outbox, &mut flat).unwrap();
            assert!(outbox.is_empty(), "outbox drained for reuse");
            assert_eq!(
                flat.for_node(NodeId::new(4)),
                &[(NodeId::new(0), round + 10), (NodeId::new(1), round)]
            );
        }
        assert_eq!(net.rounds(), 3);
    }

    #[test]
    fn exchange_into_leaves_outbox_on_error() {
        let g = path(4, 1).unwrap();
        let mut net = net(&g);
        let mut outbox = vec![Envelope::new(NodeId::new(0), NodeId::new(9), 1u8)];
        let mut flat = FlatInboxes::new();
        let err = net.exchange_into("t", &mut outbox, &mut flat).unwrap_err();
        assert!(matches!(err, SimError::AddressOutOfRange { .. }));
        assert_eq!(outbox.len(), 1, "failed exchange must not consume the outbox");
    }

    #[test]
    fn cut_counts_crossings() {
        let g = path(4, 1).unwrap();
        let mut net = net(&g);
        net.set_cut(vec![true, true, false, false]);
        let outbox = vec![
            Envelope::new(NodeId::new(0), NodeId::new(1), 0u8), // same side
            Envelope::new(NodeId::new(0), NodeId::new(3), 0u8), // crossing
            Envelope::new(NodeId::new(2), NodeId::new(1), 0u8), // crossing
        ];
        net.exchange("t", outbox).unwrap();
        assert_eq!(net.metrics().cut_messages, 2);
        net.clear_cut();
        net.exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(3), 0u8)]).unwrap();
        assert_eq!(net.metrics().cut_messages, 2);
    }

    #[test]
    fn drain_queues_paces_to_cap() {
        let g = path(16, 1).unwrap(); // cap 4
        let mut net = net(&g);
        // Node 0 queues 10 messages to distinct targets; node 1 queues 2.
        let mut queues: Vec<Vec<Envelope<u32>>> = vec![Vec::new(); 16];
        for i in 0..10 {
            queues[0].push(Envelope::new(NodeId::new(0), NodeId::new(2 + i), i as u32));
        }
        queues[1].push(Envelope::new(NodeId::new(1), NodeId::new(14), 100));
        queues[1].push(Envelope::new(NodeId::new(1), NodeId::new(15), 101));
        let inboxes = net.drain_queues("t", queues).unwrap();
        assert_eq!(net.rounds(), 3); // ⌈10/4⌉
        assert_eq!(net.metrics().global_messages, 12);
        assert_eq!(inboxes[14], vec![(NodeId::new(1), 100)]);
        assert_eq!(net.metrics().stretched_exchanges, 0); // paced, never over cap
    }

    #[test]
    fn drain_queues_paces_contended_receiver_without_stretch() {
        // Regression for the receive-blind drain: 8 senders each queue 4
        // messages for node 15 (32 total, recv cap 16). The old drain shipped
        // all 32 in one exchange, which *stretched* to 2 rounds and polluted
        // `stretched_exchanges`; the receive-aware drain paces the same load
        // over 2 clean exchanges — same honest total, distinguishable metrics.
        let g = path(16, 1).unwrap(); // send cap 4, recv cap 16
        let mut queues: Vec<Vec<Envelope<u32>>> = vec![Vec::new(); 16];
        for s in 0..8 {
            for i in 0..4 {
                queues[s].push(Envelope::new(NodeId::new(s), NodeId::new(15), (s * 4 + i) as u32));
            }
        }
        let mut net = net(&g);
        let inboxes = net.drain_queues("t", queues).unwrap();
        assert_eq!(net.rounds(), 2, "⌈32 / recv cap 16⌉ rounds");
        assert_eq!(net.metrics().stretched_exchanges, 0, "pacing must not stretch");
        assert_eq!(net.metrics().global_messages, 32);
        assert_eq!(net.metrics().max_recv_load, 16);
        assert_eq!(inboxes[15].len(), 32);
        // Per-sender FIFO order survives the head-of-line pacing.
        for s in 0..8u32 {
            let from_s: Vec<u32> = inboxes[15]
                .iter()
                .filter(|(src, _)| src.index() == s as usize)
                .map(|&(_, m)| m)
                .collect();
            assert_eq!(from_s, vec![s * 4, s * 4 + 1, s * 4 + 2, s * 4 + 3]);
        }
    }

    #[test]
    fn drain_queues_round_robin_is_fair_under_contention() {
        // 4 senders, one contended receiver with recv budget 16 and 8 messages
        // each: rotation means no sender is systematically served last.
        let g = path(16, 1).unwrap(); // send cap 4, recv cap 16
        let mut queues: Vec<Vec<Envelope<u32>>> = vec![Vec::new(); 16];
        for s in 0..8 {
            for i in 0..6 {
                queues[s].push(Envelope::new(NodeId::new(s), NodeId::new(9), (s * 6 + i) as u32));
            }
        }
        let mut net = net(&g);
        let inboxes = net.drain_queues("t", queues).unwrap();
        assert_eq!(inboxes[9].len(), 48);
        // 4 rounds: the recv budget (16/round) and the per-sender send cap
        // (4/round) interleave — the rotating start means every queue drains
        // within one round of the others instead of the last queue idling
        // until the first ones finish.
        assert_eq!(net.rounds(), 4);
        assert_eq!(net.metrics().stretched_exchanges, 0);
    }

    #[test]
    fn strict_drain_still_detects_receiver_overload() {
        // The Fail policy is the verification mode: a skewed destination
        // assignment in a drained phase must error, not be paced away —
        // receive-aware pacing applies to Stretch only.
        let g = path(16, 1).unwrap(); // send cap 4, recv cap 16
        let mut queues: Vec<Vec<Envelope<u32>>> = vec![Vec::new(); 16];
        for s in 0..8 {
            for i in 0..4 {
                queues[s].push(Envelope::new(NodeId::new(s), NodeId::new(15), (s * 4 + i) as u32));
            }
        }
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let err = net.drain_queues("t", queues).unwrap_err();
        assert!(matches!(err, SimError::RecvCapExceeded { received: 32, cap: 16, .. }));
    }

    #[test]
    fn drain_queues_rejects_bad_address() {
        let g = path(4, 1).unwrap();
        let mut queues: Vec<Vec<Envelope<u8>>> = vec![Vec::new(); 4];
        queues[0].push(Envelope::new(NodeId::new(0), NodeId::new(7), 1));
        let mut net = net(&g);
        let err = net.drain_queues("t", queues).unwrap_err();
        assert!(matches!(err, SimError::AddressOutOfRange { .. }));
    }

    #[test]
    fn error_display() {
        let e = SimError::RecvCapExceeded { node: NodeId::new(3), received: 9, cap: 4 };
        assert!(e.to_string().contains("receive"));
        let e = SimError::InvalidConfig { reason: "boom".into() };
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn try_new_rejects_degenerate_config() {
        let g = path(4, 1).unwrap();
        let cfg = HybridConfig { send_cap_factor: 0.0, ..HybridConfig::default() };
        let err = HybridNet::try_new(&g, cfg).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }

    #[test]
    #[should_panic(expected = "valid HybridConfig")]
    fn new_panics_on_degenerate_config() {
        let g = path(4, 1).unwrap();
        let _ =
            HybridNet::new(&g, HybridConfig { recv_cap_factor: f64::NAN, ..Default::default() });
    }

    #[test]
    fn drops_never_swallow_bad_addresses() {
        // An addressing bug must surface as an error on every seed — the
        // fault filter exempts out-of-range endpoints from the drop stream.
        use crate::fault::FaultPlan;
        let g = path(4, 1).unwrap();
        for seed in 0..8 {
            let mut net = net(&g);
            net.inject_faults(&FaultPlan::drops(0.9, seed)).unwrap();
            let err = net
                .exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(9), 0u8)])
                .unwrap_err();
            assert!(matches!(err, SimError::AddressOutOfRange { .. }), "seed {seed}");
        }
    }

    #[test]
    fn crashed_nodes_fall_silent() {
        use crate::fault::{Crash, FaultPlan};
        let g = path(8, 1).unwrap();
        let mut net = net(&g);
        net.inject_faults(&FaultPlan::node_crashes(vec![Crash {
            node: NodeId::new(3),
            at_round: 1,
        }]))
        .unwrap();
        // Round clock is 0: node 3 is still alive.
        let inboxes =
            net.exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(3), 1u8)]).unwrap();
        assert_eq!(inboxes[3], vec![(NodeId::new(0), 1)]);
        // Clock is now 1: node 3 neither receives nor sends.
        let inboxes = net
            .exchange(
                "t",
                vec![
                    Envelope::new(NodeId::new(0), NodeId::new(3), 2u8), // to crashed
                    Envelope::new(NodeId::new(3), NodeId::new(5), 3u8), // from crashed
                    Envelope::new(NodeId::new(0), NodeId::new(5), 4u8), // healthy
                ],
            )
            .unwrap();
        assert!(inboxes[3].is_empty());
        assert_eq!(inboxes[5], vec![(NodeId::new(0), 4)]);
        assert_eq!(net.metrics().dropped_messages, 2);
        assert_eq!(net.metrics().global_messages, 2, "dropped messages never hit the wire");
    }

    #[test]
    fn drop_faults_are_deterministic_and_counted() {
        use crate::fault::FaultPlan;
        let g = path(16, 1).unwrap();
        let run = || {
            let mut net = net(&g);
            net.inject_faults(&FaultPlan::drops(0.5, 99)).unwrap();
            let mut delivered = Vec::new();
            for r in 0..32u32 {
                let inboxes = net
                    .exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(1), r)])
                    .unwrap();
                delivered.extend(inboxes[1].iter().map(|&(_, m)| m));
            }
            (delivered, net.metrics().dropped_messages)
        };
        let (a, dropped_a) = run();
        let (b, dropped_b) = run();
        assert_eq!(a, b, "same plan, same drops");
        assert_eq!(dropped_a, dropped_b);
        assert_eq!(a.len() as u64 + dropped_a, 32);
        assert!(dropped_a > 0, "p = 0.5 over 32 messages");
    }

    #[test]
    fn clear_faults_restores_delivery() {
        use crate::fault::FaultPlan;
        let g = path(4, 1).unwrap();
        let mut net = net(&g);
        net.inject_faults(&FaultPlan::drops(0.999, 7)).unwrap();
        net.clear_faults();
        let inboxes =
            net.exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(2), 5u8)]).unwrap();
        assert_eq!(inboxes[2], vec![(NodeId::new(0), 5)]);
        assert_eq!(net.metrics().dropped_messages, 0);
    }

    #[test]
    fn inject_faults_validates_plan() {
        use crate::fault::FaultPlan;
        let g = path(4, 1).unwrap();
        let mut net = net(&g);
        let err = net.inject_faults(&FaultPlan::drops(1.0, 0)).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }

    #[test]
    fn drain_queues_under_drops_terminates() {
        use crate::fault::FaultPlan;
        let g = path(16, 1).unwrap();
        let mut net = net(&g);
        net.inject_faults(&FaultPlan::drops(0.3, 5)).unwrap();
        let mut queues: Vec<Vec<Envelope<u32>>> = vec![Vec::new(); 16];
        for i in 0..40 {
            queues[i % 4].push(Envelope::new(
                NodeId::new(i % 4),
                NodeId::new(8 + (i % 8)),
                i as u32,
            ));
        }
        let inboxes = net.drain_queues("t", queues).unwrap();
        let delivered: usize = inboxes.iter().map(Vec::len).sum();
        assert_eq!(delivered as u64 + net.metrics().dropped_messages, 40);
        assert!(net.metrics().dropped_messages > 0);
    }
}
