//! The scenario registry through the serving front-end: every non-lossy
//! registry workload is servable by a [`hybrid_serve::Broker`] at smoke size
//! with online bit-identity verification, and every lossy fault plan is
//! rejected at tenant registration — the broker never silently caches a
//! session whose answers depend on a lossy message stream.

use hybrid_scenarios::registry;
use hybrid_serve::{Broker, BrokerConfig, GraphCatalog, Request, ServeError, TenantConfig};

const SMOKE_N: usize = 48;

#[test]
fn non_lossy_registry_scenarios_serve_verified_through_the_broker() {
    for sc in registry::registry().iter().filter(|sc| !sc.faults.is_lossy()) {
        let g = sc.graph(SMOKE_N);
        let mut catalog = GraphCatalog::new();
        catalog.insert(sc.name, g);

        // The broker runs the scenario's own regime: its fault plan's network
        // configuration (degraded caps included) and its root seed, so the
        // cold referee reproduces exactly what the runner would execute.
        let mut cfg = BrokerConfig::new(sc.seed);
        cfg.net = sc.faults.config();
        let broker = Broker::new(&catalog, cfg);
        broker.register_tenant("engine", TenantConfig::new(2)).unwrap();

        let req = Request {
            tenant: "engine".into(),
            graph: sc.name.into(),
            seed: None,
            query: sc.suite.query(),
        };
        let resp = broker
            .serve(&req)
            .unwrap_or_else(|e| panic!("{}: broker failed to serve registry query: {e}", sc.name));
        assert!(resp.verified, "{}: response must be verified against a cold solve", sc.name);

        // A repeat is a session (and report-memo) hit with the same digest.
        let again = broker.serve(&req).unwrap();
        assert!(again.session_hit, "{}: repeat must hit the cached session", sc.name);
        assert_eq!(again.digest, resp.digest, "{}: repeat digest must match", sc.name);

        let stats = broker.stats();
        assert_eq!(stats.mismatches, 0, "{}: no bit-identity mismatches", sc.name);
        assert_eq!(stats.served, 2, "{}: both requests served", sc.name);
    }
}

#[test]
fn lossy_registry_fault_plans_are_rejected_at_registration() {
    let lossy: Vec<_> = registry::registry().iter().filter(|sc| sc.faults.is_lossy()).collect();
    assert!(!lossy.is_empty(), "registry must keep at least one lossy scenario");
    let catalog = GraphCatalog::new();
    let broker = Broker::new(&catalog, BrokerConfig::new(7));
    for sc in lossy {
        let plan = sc
            .faults
            .sim_plan(SMOKE_N, sc.seed)
            .expect("lossy scenario plans materialize a simulator fault plan");
        let mut tenant = TenantConfig::new(2);
        tenant.faults = Some(plan);
        let err = broker.register_tenant(sc.name, tenant).unwrap_err();
        assert!(
            matches!(err, ServeError::FaultySession { .. }),
            "{}: lossy plan must be a structured FaultySession rejection, got {err}",
            sc.name
        );
    }
}
