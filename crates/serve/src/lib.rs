//! Serving front-end for the HYBRID shortest-path stack: a multi-tenant
//! request [`Broker`] over [`hybrid_core::Session`], admission control, a
//! line-delimited wire protocol, and a closed-loop [load generator](loadgen).
//!
//! The paper's economics (Kuhn–Schneider, PODC '20) hinge on *shared*
//! preprocessing: Corollaries 4.6/4.7/5.2 reuse one `x = 2/3` skeleton and
//! Corollaries 4.8/5.3 another, so a serving system amortizes the expensive
//! preamble across tenants' query streams. This crate is that system's front
//! door:
//!
//! * **Byte-budgeted session cache.** The broker owns an LRU of sessions
//!   keyed by `(tenant, graph fingerprint, seed, ξ)`, charged at each
//!   session's measured `prepared_bytes` — eviction is by bytes, not entry
//!   count.
//! * **Admission control.** Each tenant has a bounded queue depth; overflow
//!   is a structured [`ServeError::Overloaded`], never a silent drop. A
//!   request carrying a deadline budget waits for a slot instead and sheds
//!   with [`ServeError::DeadlineExceeded`] only when the budget runs out.
//! * **Fault-tolerant serving.** Tenants may register *any* fault plan that
//!   passes validation — lossy, corrupting, crashing. Their queries run cold
//!   through the reliable layer, the cold referee replays the same plan, and
//!   explicit downgrades surface on the wire as
//!   `degraded=<from>:<to>:<cause>`. Per-tenant circuit breakers fail fast
//!   after consecutive failures (request-count-based half-open probes, so
//!   the state machine is deterministic), and a solve panic is contained:
//!   the session is quarantined and the client sees
//!   [`ServeError::Internal`], not a torn-down worker.
//! * **Batch coalescing.** Concurrent queries on one session are collected
//!   by a batch leader into a single [`hybrid_core::Session::solve_batch`]
//!   call, whose scoped worker pool shards the distinct queries.
//! * **Online bit-identity verification.** Every served answer is digest-
//!   compared against a memoized *cold* solve of the same request — answers,
//!   guarantees, and the simulated round bill are bit-identical by contract;
//!   only wall-clock latency is nondeterministic. This holds for faulty
//!   tenants too.
//! * **Wire protocol.** One request line in, one response line out
//!   ([`protocol`]), served in-process ([`Broker::serve_line`]) and over TCP
//!   ([`tcp::serve_tcp`] — length-capped framing, graceful
//!   [`TcpServer::drain`]).
//!
//! # Example
//!
//! ```
//! use hybrid_core::solver::Query;
//! use hybrid_graph::generators::grid;
//! use hybrid_serve::{Broker, BrokerConfig, GraphCatalog, TenantConfig};
//!
//! let mut catalog = GraphCatalog::new();
//! catalog.insert("campus", grid(5, 5, 1).unwrap());
//!
//! let broker = Broker::new(&catalog, BrokerConfig::new(7));
//! broker.register_tenant("acme", TenantConfig::new(4)).unwrap();
//!
//! // In-process line protocol: solve APSP, then hit the session memo.
//! let first = broker.serve_line("SOLVE id=1 tenant=acme graph=campus query=apsp-thm11:xi=1.5");
//! let again = broker.serve_line("SOLVE id=2 tenant=acme graph=campus query=apsp-thm11:xi=1.5");
//! assert!(first.starts_with("OK id=1 query=apsp-thm11"), "{first}");
//! // Same query, same session ⇒ the same digest, verified against a cold solve.
//! assert_eq!(first.split("digest=").nth(1), again.split("digest=").nth(1));
//! assert!(first.ends_with("verified=1"), "{first}");
//! let stats = broker.stats();
//! assert_eq!(stats.served, 2);
//! assert_eq!(stats.mismatches, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod loadgen;
pub mod protocol;
pub mod tcp;

pub use broker::{
    graph_fingerprint, report_digest, Broker, BrokerConfig, BrokerStats, CatalogUpdate,
    GraphCatalog, Request, Response, ServeError, TenantConfig, UpdateOutcome,
};
pub use loadgen::{run_load, LoadReport, LoadSpec, LoadUpdate};
pub use protocol::{
    delta_spec, guarantee_label, parse_delta_ops, parse_query_spec, parse_request, query_spec,
    WireRequest,
};
pub use tcp::{serve_tcp, TcpServer, MAX_LINE_BYTES};

#[cfg(test)]
mod tests {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};

    use hybrid_core::solver::{DiameterCorollary, Guarantee, KsspCorollary, Query, SsspVariant};
    use hybrid_graph::generators::{grid, path};
    use hybrid_graph::{DeltaBatch, NodeId};
    use hybrid_sim::{derive_seed, Crash, FaultPlan};
    use proptest::prelude::*;

    use super::*;

    fn mixed_queries() -> Vec<Query> {
        vec![
            Query::apsp().build().unwrap(),
            Query::sssp(NodeId::new(0)).build().unwrap(),
            Query::sssp(NodeId::new(1))
                .variant(SsspVariant::ApproxSoda20 { eps: 0.25 })
                .build()
                .unwrap(),
            Query::kssp(KsspCorollary::Cor46).random_sources(3).build().unwrap(),
            Query::kssp(KsspCorollary::Cor47)
                .sources(vec![NodeId::new(0), NodeId::new(4), NodeId::new(7)])
                .build()
                .unwrap(),
            Query::diameter(DiameterCorollary::Cor52).build().unwrap(),
        ]
    }

    #[test]
    fn query_specs_roundtrip() {
        for q in mixed_queries() {
            let spec = query_spec(&q);
            let parsed = parse_query_spec(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(parsed, q, "spec {spec} did not roundtrip");
        }
    }

    #[test]
    fn malformed_specs_are_structured_errors() {
        for spec in ["", "apsp-thm99", "sssp-thm13", "kssp-cor46:eps=0.5", "apsp-thm11:xi=banana"] {
            let err = parse_query_spec(spec).unwrap_err();
            assert_eq!(err.code(), "protocol", "{spec} should fail as a protocol error");
        }
    }

    #[test]
    fn zero_depth_tenant_sheds_with_structured_overload() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", path(12, 1).unwrap());
        let broker = Broker::new(&catalog, BrokerConfig::new(7));
        broker.register_tenant("busy", TenantConfig::new(0)).unwrap();
        let req = Request::new("busy", "g", Query::apsp().build().unwrap());
        let err = broker.serve(&req).unwrap_err();
        assert_eq!(err, ServeError::Overloaded { tenant: "busy".into(), depth: 0 });
        assert_eq!(broker.stats().shed, 1);
        assert_eq!(broker.tenant_shed("busy"), Some(1));
    }

    #[test]
    fn faulty_tenants_register_and_serve_verified() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", path(12, 1).unwrap());
        let broker = Broker::new(&catalog, BrokerConfig::new(7));

        // Lossy *and* corrupting: runs cold through the reliable layer, still
        // bit-identical to the cold referee replaying the same plan.
        let mut chaotic = TenantConfig::new(4);
        chaotic.faults = Some(FaultPlan { corrupt_prob: 0.2, ..FaultPlan::drops(0.2, 9) });
        broker.register_tenant("chaotic", chaotic).unwrap();
        let q = Query::sssp(NodeId::new(0)).build().unwrap();
        let first = broker.serve(&Request::new("chaotic", "g", q.clone())).unwrap();
        let again = broker.serve(&Request::new("chaotic", "g", q.clone())).unwrap();
        assert!(first.verified && again.verified);
        assert_eq!(first.digest, again.digest, "faulty serving must stay deterministic");

        // A crash plan degrades explicitly — and the downgrade is structured
        // on the wire, not hidden.
        let mut crashing = TenantConfig::new(4);
        crashing.faults =
            Some(FaultPlan::node_crashes(vec![Crash { node: NodeId::new(0), at_round: 1 }]));
        broker.register_tenant("crashy", crashing).unwrap();
        let resp = broker.serve(&Request::new("crashy", "g", q)).unwrap();
        assert!(
            matches!(resp.report.guarantee, Guarantee::Degraded { .. }),
            "a crashed source must degrade, got {:?}",
            resp.report.guarantee
        );
        let line =
            broker.serve_line("SOLVE id=4 tenant=crashy graph=g query=sssp-thm13:src=0:xi=1.5");
        assert!(line.contains("guarantee=degraded="), "{line}");
        assert!(line.contains(":crash-detected"), "{line}");

        // Structurally invalid plans still surface the session layer's error.
        let mut invalid = TenantConfig::new(4);
        invalid.faults = Some(FaultPlan::drops(1.5, 9));
        assert_eq!(broker.register_tenant("broken", invalid).unwrap_err().code(), "solve");
        let mut corrupt = TenantConfig::new(4);
        corrupt.faults = Some(FaultPlan { corrupt_prob: 0.6, ..FaultPlan::drops(0.0, 9) });
        assert_eq!(broker.register_tenant("flipper", corrupt).unwrap_err().code(), "solve");

        let s = broker.stats();
        assert_eq!(s.mismatches, 0);
        assert!(s.degraded_served >= 2, "crashy served degraded answers, got {s:?}");
    }

    #[test]
    fn deadline_budgets_shed_separately_from_overload() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", path(10, 1).unwrap());
        let broker = Broker::new(&catalog, BrokerConfig::new(7));
        broker.register_tenant("t", TenantConfig::new(0)).unwrap();
        let q = Query::apsp().build().unwrap();
        // Depth 0: the queue is always full. No deadline → instant overload.
        assert_eq!(
            broker.serve(&Request::new("t", "g", q.clone())).unwrap_err().code(),
            "overloaded"
        );
        // A deadline budget waits, then sheds on its own code.
        let mut patient = Request::new("t", "g", q.clone());
        patient.deadline_ms = Some(5);
        let err = broker.serve(&patient).unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded { tenant: "t".into(), deadline_ms: 5 });
        let s = broker.stats();
        assert_eq!((s.shed, s.deadline_shed), (1, 1), "the two shed kinds stay disjoint");
        assert_eq!(broker.tenant_shed("t"), Some(1));
        assert_eq!(broker.tenant_deadline_shed("t"), Some(1));
        // The tenant default applies when the request carries none.
        let mut dcfg = TenantConfig::new(0);
        dcfg.default_deadline_ms = Some(1);
        broker.register_tenant("d", dcfg).unwrap();
        assert_eq!(
            broker.serve(&Request::new("d", "g", q)).unwrap_err().code(),
            "deadline-exceeded"
        );
    }

    #[test]
    fn panics_are_contained_and_breaker_trips_deterministically() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", path(10, 1).unwrap());
        let broker = Broker::new(&catalog, BrokerConfig::new(7));
        let mut cfg = TenantConfig::new(4);
        cfg.breaker_threshold = Some(1);
        cfg.breaker_cooldown = 1;
        cfg.chaos_panic_every = Some(1); // every admitted request panics
        broker.register_tenant("panicky", cfg).unwrap();
        let req = Request::new("panicky", "g", Query::apsp().build().unwrap());
        // 1: the panic is contained, the session quarantined, the breaker trips.
        let e1 = broker.serve(&req).unwrap_err();
        assert_eq!(e1.code(), "internal");
        // 2: open breaker fails fast without touching a session.
        assert_eq!(broker.serve(&req).unwrap_err().code(), "breaker-open");
        // 3: the half-open probe is admitted, panics again, re-opens.
        assert_eq!(broker.serve(&req).unwrap_err().code(), "internal");
        // 4: re-opened: fail fast again.
        assert_eq!(broker.serve(&req).unwrap_err().code(), "breaker-open");
        let s = broker.stats();
        assert_eq!(s.quarantined, 2, "each contained panic quarantines its session");
        assert_eq!(s.breaker_opens, 2, "threshold trip + failed probe");
        assert_eq!(s.breaker_probes, 1);
        assert_eq!(s.served, 0);
        assert_eq!(broker.breaker_states(), vec![("panicky".to_string(), "open")]);
        let stats_line = broker.serve_line("STATS");
        assert!(stats_line.contains("quarantined=2"), "{stats_line}");
        assert!(stats_line.contains("breaker.panicky=open"), "{stats_line}");
    }

    #[test]
    fn breaker_recovers_through_a_successful_probe() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", path(10, 1).unwrap());
        let broker = Broker::new(&catalog, BrokerConfig::new(7));
        let mut cfg = TenantConfig::new(4);
        cfg.breaker_threshold = Some(1);
        cfg.breaker_cooldown = 0; // next request after a trip is the probe
        cfg.chaos_panic_every = Some(2); // even-ordinal requests panic
        broker.register_tenant("flaky", cfg).unwrap();
        let req = Request::new("flaky", "g", Query::apsp().build().unwrap());
        assert!(broker.serve(&req).is_ok(), "ordinal 1 is healthy");
        assert_eq!(broker.serve(&req).unwrap_err().code(), "internal");
        // Probe (ordinal 3) succeeds and closes the breaker.
        assert!(broker.serve(&req).is_ok(), "the probe should close the breaker");
        let s = broker.stats();
        assert_eq!((s.breaker_opens, s.breaker_probes), (1, 1));
        assert_eq!(s.served, 2);
        assert_eq!(broker.breaker_states(), vec![("flaky".to_string(), "closed")]);
    }

    #[test]
    fn unknown_names_are_structured_errors() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", path(8, 1).unwrap());
        let broker = Broker::new(&catalog, BrokerConfig::new(7));
        broker.register_tenant("t", TenantConfig::new(2)).unwrap();
        let q = Query::apsp().build().unwrap();
        let nobody = Request::new("ghost", "g", q.clone());
        assert_eq!(broker.serve(&nobody).unwrap_err().code(), "unknown-tenant");
        let nowhere = Request::new("t", "mars", q);
        assert_eq!(broker.serve(&nowhere).unwrap_err().code(), "unknown-graph");
    }

    #[test]
    fn byte_budget_evicts_lru_and_readmission_stays_bit_identical() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("a", grid(5, 5, 1).unwrap());
        catalog.insert("b", path(30, 1).unwrap());
        // A 1-byte budget forces every acquisition over budget: only the most
        // recently used session survives each settlement.
        let mut cfg = BrokerConfig::new(7);
        cfg.session_budget_bytes = 1;
        let broker = Broker::new(&catalog, cfg);
        broker.register_tenant("t", TenantConfig::new(4)).unwrap();
        let q = Query::apsp().build().unwrap();
        let serve = |graph: &str| broker.serve(&Request::new("t", graph, q.clone())).unwrap();
        let first_a = serve("a");
        let first_b = serve("b"); // evicts a
        let stats = broker.stats();
        assert_eq!(stats.resident_sessions, 1, "budget of 1 byte keeps a single session");
        assert_eq!(stats.sessions_evicted, 1);
        let again_a = serve("a"); // re-admission after eviction
        assert!(!again_a.session_hit, "a was evicted, so this is a fresh session");
        assert_eq!(again_a.digest, first_a.digest, "re-admitted session must serve identically");
        assert_eq!(broker.stats().sessions_evicted, 2);
        assert!(first_a.verified && first_b.verified && again_a.verified);
        assert_eq!(broker.stats().mismatches, 0);
    }

    #[test]
    fn stats_and_protocol_lines_agree() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", grid(4, 4, 1).unwrap());
        let broker = Broker::new(&catalog, BrokerConfig::new(7));
        broker.register_tenant("t", TenantConfig::new(4)).unwrap();
        let ok =
            broker.serve_line("SOLVE id=9 tenant=t graph=g query=diameter-cor52:eps=0.5:xi=1.5");
        assert!(ok.starts_with("OK id=9 query=diameter-cor52 rounds="), "{ok}");
        assert!(ok.contains("guarantee=diameter="), "{ok}");
        let err = broker.serve_line("SOLVE id=3 tenant=nobody graph=g query=apsp-thm11:xi=1.5");
        assert!(err.starts_with("ERR id=3 code=unknown-tenant"), "{err}");
        let garbled = broker.serve_line("FROBNICATE everything");
        assert!(garbled.starts_with("ERR id=0 code=protocol"), "{garbled}");
        let stats = broker.serve_line("STATS");
        assert!(stats.starts_with("STATS served=1 shed=0"), "{stats}");
        // serving-v2 counters extend the line append-only.
        assert!(stats.contains(" deadline_shed=0"), "{stats}");
        assert!(stats.contains(" degraded_served=0"), "{stats}");
        assert!(!stats.contains("breaker."), "no breaker-enabled tenants: {stats}");
    }

    #[test]
    fn tcp_round_trip_serves_and_shuts_down() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", grid(4, 4, 1).unwrap());
        let broker = Broker::new(&catalog, BrokerConfig::new(7));
        broker.register_tenant("t", TenantConfig::new(4)).unwrap();
        std::thread::scope(|scope| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let server = serve_tcp(scope, &broker, listener).unwrap();
            let mut conn = TcpStream::connect(server.addr()).unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            for id in 1..=2u64 {
                writeln!(conn, "SOLVE id={id} tenant=t graph=g query=apsp-thm11:xi=1.5").unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                assert!(line.starts_with(&format!("OK id={id} query=apsp-thm11")), "{line}");
                assert!(line.trim_end().ends_with("verified=1"), "{line}");
            }
            drop(conn);
            server.shutdown();
        });
        let stats = broker.stats();
        assert_eq!(stats.served, 2);
        assert_eq!((stats.session_hits, stats.sessions_admitted), (1, 1));
    }

    #[test]
    fn load_generator_is_deterministic_in_its_choices() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", grid(4, 4, 1).unwrap());
        let run = |seed: u64| {
            let broker = Broker::new(&catalog, BrokerConfig::new(7));
            broker.register_tenant("t", TenantConfig::new(8)).unwrap();
            let spec = LoadSpec {
                name: "unit".into(),
                clients: 3,
                requests_per_client: 6,
                tenants: vec!["t".into()],
                graphs: vec!["g".into()],
                queries: mixed_queries(),
                seed,
                retries: 0,
                retry_backoff_ms: 0,
                deadline_ms: None,
                updates: Vec::new(),
                update_every: 0,
            };
            run_load(&broker, &spec)
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a.issued, 18);
        assert_eq!(
            a.served + a.shed + a.deadline_shed + a.breaker_rejected + a.failed,
            a.issued,
            "every request is accounted for"
        );
        assert_eq!(a.failed, 0, "registry queries on a connected grid must not fail");
        // The request mix is seed-deterministic, so the simulated round bill
        // (unlike wall-clock latency) matches exactly across runs.
        assert_eq!(a.rounds_total, b.rounds_total);
        assert_eq!(a.served, b.served);
        assert_eq!(a.stats.mismatches, 0);
    }

    #[test]
    fn load_generator_retries_deterministically_on_overload() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", grid(4, 4, 1).unwrap());
        let broker = Broker::new(&catalog, BrokerConfig::new(7));
        // Depth 0: every attempt overloads, so the retry accounting is exact
        // regardless of timing.
        broker.register_tenant("t", TenantConfig::new(0)).unwrap();
        let spec = LoadSpec {
            name: "retry-unit".into(),
            clients: 2,
            requests_per_client: 3,
            tenants: vec!["t".into()],
            graphs: vec!["g".into()],
            queries: vec![Query::apsp().build().unwrap()],
            seed: 5,
            retries: 2,
            retry_backoff_ms: 0,
            deadline_ms: None,
            updates: Vec::new(),
            update_every: 0,
        };
        let r = run_load(&broker, &spec);
        assert_eq!((r.issued, r.served, r.shed), (6, 0, 6));
        assert_eq!(r.retries, 12, "each shed request burned its full retry budget");
    }

    #[test]
    fn delta_specs_roundtrip_and_malformed_ops_are_structured() {
        let batch = DeltaBatch::new()
            .reweight(NodeId::new(0), NodeId::new(1), 7)
            .add_edge(NodeId::new(2), NodeId::new(5), 3)
            .remove_edge(NodeId::new(1), NodeId::new(2));
        let spec = delta_spec(&batch);
        assert_eq!(spec, "~0-1:7,+2-5:3,-1-2");
        assert_eq!(parse_delta_ops(&spec).unwrap(), batch);
        for bad in ["", "x0-1:7", "+0-1", "~0:7", "+0-1:w", "~a-1:7"] {
            assert_eq!(parse_delta_ops(bad).unwrap_err().code(), "protocol", "{bad:?}");
        }
    }

    #[test]
    fn update_wire_migrates_sessions_and_serves_the_new_epoch_verified() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", grid(4, 4, 1).unwrap());
        let broker = Broker::new(&catalog, BrokerConfig::new(7));
        broker.register_tenant("t", TenantConfig::new(4)).unwrap();
        let solve = "SOLVE id=1 tenant=t graph=g query=apsp-thm11:xi=1.5";
        let before = broker.serve_line(solve);
        assert!(before.starts_with("OK id=1"), "{before}");

        // One reweight: the resident session must migrate, the catalog epoch
        // must bump, and the response line carries the new fingerprint.
        let up = broker.serve_line("UPDATE id=2 tenant=t graph=g ops=~0-1:9");
        assert!(up.starts_with("OK id=2 update=g fp="), "{up}");
        assert!(up.contains("epoch=1"), "{up}");
        assert!(up.contains("migrated=1"), "{up}");

        // The next solve runs on the post-delta graph, is verified against a
        // cold referee on *that* graph, and matches a from-scratch session.
        let after = broker.serve_line(solve.replace("id=1", "id=3").as_str());
        assert!(after.ends_with("verified=1"), "{after}");
        assert_ne!(
            before.split("digest=").nth(1),
            after.split("digest=").nth(1),
            "reweighting 0-1 changes APSP"
        );
        let batch = DeltaBatch::new().reweight(NodeId::new(0), NodeId::new(1), 9);
        let post = grid(4, 4, 1).unwrap().apply_delta(&batch).unwrap();
        let cold = hybrid_core::Session::new(
            &post,
            hybrid_core::SessionConfig { xi: 1.5, ..hybrid_core::SessionConfig::new(7) },
        )
        .unwrap();
        let report = cold.solve(&Query::apsp().xi(1.5).build().unwrap()).unwrap();
        let want = format!("digest={:016x}", report_digest(&report));
        assert!(after.contains(&want), "{after} should carry {want}");

        // Churn counters surface on the STATS line.
        let stats = broker.serve_line("STATS");
        assert!(stats.contains("deltas_applied=1"), "{stats}");
        let s = broker.stats();
        assert_eq!(s.repair_patched + s.repair_full, 1, "one preamble migrated: {s:?}");
        assert_eq!(s.mismatches, 0);

        // Structurally invalid deltas leave catalog and counters untouched.
        let err = broker.serve_line("UPDATE id=4 tenant=t graph=g ops=-0-3");
        assert!(err.starts_with("ERR id=4 code=solve"), "{err}");
        assert_eq!(broker.stats().deltas_applied, 1);
        assert_eq!(
            broker.serve_line("UPDATE id=5 tenant=ghost graph=g ops=~0-1:9"),
            "ERR id=5 code=unknown-tenant msg=unknown tenant \"ghost\""
        );
    }

    #[test]
    fn stale_fingerprint_pins_are_refused_structurally() {
        let mut catalog = GraphCatalog::new();
        let fp0 = catalog.insert("g", grid(4, 4, 1).unwrap());
        let broker = Broker::new(&catalog, BrokerConfig::new(7));
        broker.register_tenant("t", TenantConfig::new(4)).unwrap();
        let q = Query::apsp().build().unwrap();

        // A pin on the live version serves normally.
        let mut pinned = Request::new("t", "g", q.clone());
        pinned.fingerprint = Some(fp0);
        assert!(broker.serve(&pinned).unwrap().verified);

        let out = broker
            .update("t", "g", &DeltaBatch::new().reweight(NodeId::new(0), NodeId::new(1), 5))
            .unwrap();
        assert_ne!(out.fingerprint, fp0);

        // The old pin is now stale: structured refusal + counter.
        let err = broker.serve(&pinned).unwrap_err();
        assert_eq!(
            err,
            ServeError::StaleFingerprint {
                graph: "g".into(),
                requested: fp0,
                current: out.fingerprint
            }
        );
        assert_eq!(err.code(), "stale-fingerprint");
        assert_eq!(broker.stats().stale_epoch_refused, 1);

        // Wire form: an fp= pin on the new version works, the old one errs.
        let fresh = broker.serve_line(&format!(
            "SOLVE id=7 tenant=t graph=g fp={:016x} query=apsp-thm11:xi=1.5",
            out.fingerprint
        ));
        assert!(fresh.ends_with("verified=1"), "{fresh}");
        let stale = broker
            .serve_line(&format!("SOLVE id=8 tenant=t graph=g fp={fp0:016x} query=apsp-thm11"));
        assert!(stale.starts_with("ERR id=8 code=stale-fingerprint"), "{stale}");
        assert_eq!(broker.stats().stale_epoch_refused, 2);
    }

    #[test]
    fn load_generator_churn_draws_do_not_perturb_the_request_mix() {
        // Identity churn: reweighting an edge to its current weight leaves the
        // canonical graph (hence every digest and round bill) unchanged, so a
        // run with churn enabled must reproduce the no-churn run's round total
        // exactly — proving the update stream never steals a request draw.
        let run = |updates: Vec<LoadUpdate>, update_every: usize| {
            let mut catalog = GraphCatalog::new();
            catalog.insert("g", grid(4, 4, 1).unwrap());
            let broker = Broker::new(&catalog, BrokerConfig::new(7));
            broker.register_tenant("t", TenantConfig::new(8)).unwrap();
            let spec = LoadSpec {
                name: "churn-unit".into(),
                clients: 3,
                requests_per_client: 6,
                tenants: vec!["t".into()],
                graphs: vec!["g".into()],
                queries: mixed_queries(),
                seed: 11,
                retries: 0,
                retry_backoff_ms: 0,
                deadline_ms: None,
                updates,
                update_every,
            };
            run_load(&broker, &spec)
        };
        let quiet = run(Vec::new(), 0);
        let ident = DeltaBatch::new().reweight(NodeId::new(0), NodeId::new(1), 1);
        let churned =
            run(vec![LoadUpdate { tenant: "t".into(), graph: "g".into(), batch: ident }], 2);
        assert_eq!(quiet.updates_applied, 0);
        assert!(churned.updates_applied >= 9, "3 clients × 3 injections: {churned:?}");
        assert_eq!(churned.failed, 0);
        assert_eq!(churned.stats.mismatches, 0);
        assert_eq!(
            quiet.rounds_total, churned.rounds_total,
            "identity churn must leave the request mix and round bills untouched"
        );
    }

    #[test]
    fn tcp_rejects_oversized_lines_and_drains_gracefully() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", grid(4, 4, 1).unwrap());
        let broker = Broker::new(&catalog, BrokerConfig::new(7));
        broker.register_tenant("t", TenantConfig::new(4)).unwrap();
        std::thread::scope(|scope| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let server = serve_tcp(scope, &broker, listener).unwrap();
            let mut conn = TcpStream::connect(server.addr()).unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let mut line = String::new();
            // An oversized line is rejected without buffering it whole, and
            // the connection survives.
            let big = vec![b'x'; MAX_LINE_BYTES + 10];
            conn.write_all(&big[..1000]).unwrap();
            conn.write_all(&big[1000..]).unwrap();
            conn.write_all(b"\n").unwrap();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("ERR id=0 code=oversized"), "{line}");
            // A request split across writes reassembles fine.
            conn.write_all(b"SOLVE id=1 tenant=t graph=g query=apsp-").unwrap();
            conn.flush().unwrap();
            conn.write_all(b"thm11:xi=1.5\n").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("OK id=1 query=apsp-thm11"), "{line}");
            // Draining: in-flight work finished above; new requests are
            // answered with a structured refusal, echoing the id.
            server.drain();
            assert!(server.is_draining());
            writeln!(conn, "SOLVE id=3 tenant=t graph=g query=apsp-thm11:xi=1.5").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("ERR id=3 code=draining"), "{line}");
            writeln!(conn, "STATS").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("ERR id=0 code=draining"), "{line}");
            drop(conn);
            server.shutdown();
        });
        assert_eq!(broker.stats().served, 1, "only the pre-drain solve was served");
    }

    /// Deterministic junk for the protocol fuzzer: bytes biased toward the
    /// protocol alphabet (so parses get past the verb) with raw bytes mixed
    /// in, all derived from SplitMix64 streams.
    fn fuzz_line(seed: u64, len: usize) -> String {
        const ALPHABET: &[u8] =
            b"SOLVESTATS solve id=tenant graph query seed deadline_ms xi eps src k \
              apsp-thm11:0123456789.,=\t\r\x00\x7f\xff";
        let mut bytes = Vec::with_capacity(len);
        for i in 0..len {
            let d = derive_seed(seed, i as u64);
            if d & 7 == 0 {
                bytes.push((d >> 8) as u8);
            } else {
                bytes.push(ALPHABET[((d >> 8) as usize) % ALPHABET.len()]);
            }
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The wire entry point must never panic, whatever bytes arrive: it
        /// answers every line with a structured OK/ERR/STATS response.
        #[test]
        fn serve_line_never_panics_on_arbitrary_bytes(seed in any::<u64>(), len in 0usize..200) {
            let mut catalog = GraphCatalog::new();
            catalog.insert("g", path(6, 1).unwrap());
            let broker = Broker::new(&catalog, BrokerConfig::new(7));
            broker.register_tenant("t", TenantConfig::new(2)).unwrap();
            let line = fuzz_line(seed, len);
            let out = broker.serve_line(&line);
            prop_assert!(
                out.starts_with("OK ") || out.starts_with("ERR ") || out.starts_with("STATS"),
                "unstructured response {out:?} for input {line:?}"
            );
        }
    }
}
