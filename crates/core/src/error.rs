//! Unified error type for HYBRID-model algorithm executions.

use std::fmt;

use clique_sim::CliqueError;
use hybrid_graph::{DeltaError, GraphError, NodeId};
use hybrid_sim::SimError;

use crate::solver::QueryError;

/// Errors raised by the algorithms of this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum HybridError {
    /// The solver facade was handed a [`crate::solver::Query`] with invalid
    /// parameters (rejected before any protocol phase runs).
    Query(QueryError),
    /// Propagated simulator error (congestion-cap violation under the strict
    /// policy, bad address).
    Sim(SimError),
    /// Propagated CLIQUE-substrate error.
    Clique(CliqueError),
    /// Propagated graph-construction error.
    Graph(GraphError),
    /// A topology delta batch failed validation (dangling endpoint, duplicate
    /// insert, zero/overflow weight, missing edge) — surfaced structurally by
    /// [`crate::session::Session::apply_delta`], never as a panic.
    Delta(DeltaError),
    /// A node found no skeleton node within the exploration radius — the low
    /// probability failure event of Lemma C.1 (can occur at small `n` or with
    /// aggressive scaling constants).
    NoSkeletonInReach {
        /// The uncovered node.
        node: NodeId,
        /// Exploration radius `h` that failed.
        h: usize,
    },
    /// Token routing was given an instance whose labels are not unique.
    DuplicateTokenLabel {
        /// Sender of the duplicate label.
        sender: NodeId,
        /// Receiver of the duplicate label.
        receiver: NodeId,
        /// Index `i` of the duplicate label.
        index: u32,
    },
    /// A receiver did not obtain all tokens it was owed (protocol bug guard —
    /// never expected in a correct run).
    MissingTokens {
        /// The shorted receiver.
        receiver: NodeId,
        /// Tokens expected.
        expected: usize,
        /// Tokens received.
        got: usize,
    },
    /// The sampled structure (ruling set / helper sets) violated a required
    /// invariant even after remediation.
    InvariantViolation(String),
}

impl fmt::Display for HybridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HybridError::Query(e) => write!(f, "invalid query: {e}"),
            HybridError::Sim(e) => write!(f, "simulator: {e}"),
            HybridError::Clique(e) => write!(f, "clique substrate: {e}"),
            HybridError::Graph(e) => write!(f, "graph: {e}"),
            HybridError::Delta(e) => write!(f, "delta: {e}"),
            HybridError::NoSkeletonInReach { node, h } => {
                write!(f, "node {node} has no skeleton node within {h} hops")
            }
            HybridError::DuplicateTokenLabel { sender, receiver, index } => {
                write!(f, "duplicate token label ({sender}, {receiver}, {index})")
            }
            HybridError::MissingTokens { receiver, expected, got } => {
                write!(f, "receiver {receiver} got {got} of {expected} tokens")
            }
            HybridError::InvariantViolation(msg) => write!(f, "invariant violation: {msg}"),
        }
    }
}

impl std::error::Error for HybridError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HybridError::Query(e) => Some(e),
            HybridError::Sim(e) => Some(e),
            HybridError::Clique(e) => Some(e),
            HybridError::Graph(e) => Some(e),
            HybridError::Delta(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for HybridError {
    fn from(e: SimError) -> Self {
        HybridError::Sim(e)
    }
}

impl From<CliqueError> for HybridError {
    fn from(e: CliqueError) -> Self {
        HybridError::Clique(e)
    }
}

impl From<GraphError> for HybridError {
    fn from(e: GraphError) -> Self {
        HybridError::Graph(e)
    }
}

impl From<DeltaError> for HybridError {
    fn from(e: DeltaError) -> Self {
        HybridError::Delta(e)
    }
}

impl From<QueryError> for HybridError {
    fn from(e: QueryError) -> Self {
        HybridError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = HybridError::from(SimError::AddressOutOfRange { node: NodeId::new(9), n: 4 });
        assert!(e.to_string().contains("simulator"));
        assert!(std::error::Error::source(&e).is_some());
        let e = HybridError::NoSkeletonInReach { node: NodeId::new(1), h: 5 };
        assert!(e.to_string().contains("skeleton"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn conversions() {
        let g: HybridError = GraphError::Empty.into();
        assert!(matches!(g, HybridError::Graph(_)));
        let c: HybridError = CliqueError::NoSources.into();
        assert!(matches!(c, HybridError::Clique(_)));
        let d: HybridError = DeltaError::MissingEdge { op: 0, u: 1, v: 2 }.into();
        assert!(d.to_string().contains("delta"));
        assert!(std::error::Error::source(&d).is_some());
        assert!(matches!(d, HybridError::Delta(_)));
    }
}
