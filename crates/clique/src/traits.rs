//! The plugin interface Theorem 4.1 / Theorem 5.1 consume.
//!
//! The paper's framework takes "an `(α, β)`-approximation CLIQUE algorithm `A`
//! that computes weighted shortest paths for `n^γ` sources in time
//! `T_A = Õ(η n^δ)`" and turns it into a HYBRID algorithm. These traits carry
//! exactly that parameter tuple plus a runnable implementation.

use hybrid_graph::{Distance, Graph, NodeId};

use crate::net::{CliqueError, CliqueNet};

/// How many sources an algorithm supports on a clique of `n` nodes (Theorem 4.1's
/// `γ` with its two special cases).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceCapacity {
    /// `n^γ` sources for a fixed `γ ∈ [0, 1]`.
    Exponent(f64),
    /// The algorithm solves APSP: any number of sources (`γ = 1`, Lemma 4.4).
    Apsp,
    /// Single-source only (`γ = 0`, Lemma 4.5).
    SingleSource,
}

impl SourceCapacity {
    /// Maximum number of sources on a clique of `n` nodes. For
    /// [`SourceCapacity::Exponent`] the framework tolerates a constant factor
    /// above `n^γ` (Lemma 4.2: "repeat `A` a constant number of times"); we encode
    /// that tolerance factor here as 4.
    pub fn max_sources(&self, n: usize) -> usize {
        match self {
            SourceCapacity::Exponent(g) => {
                (((n as f64).powf(*g)).ceil() as usize).saturating_mul(4).max(1)
            }
            SourceCapacity::Apsp => usize::MAX,
            SourceCapacity::SingleSource => 1,
        }
    }

    /// The exponent `γ` (1 for APSP, 0 for SSSP).
    pub fn gamma(&self) -> f64 {
        match self {
            SourceCapacity::Exponent(g) => *g,
            SourceCapacity::Apsp => 1.0,
            SourceCapacity::SingleSource => 0.0,
        }
    }
}

/// Additive approximation term `β` of a CLIQUE algorithm, as a function of the
/// clique's maximum edge weight `W_S` (the forms appearing in [7, 8]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Beta {
    /// `β = 0`.
    Zero,
    /// `β = coeff · W_S` (e.g. the `(1+ε)·w_{uv}` term of \[7\] Thm 1.1, bounded by
    /// `(1+ε) W_S`, or the `+W` of the diameter algorithm).
    MaxWeight(f64),
}

impl Beta {
    /// Evaluates the bound for a clique with maximum edge weight `w_max`.
    pub fn bound(&self, w_max: Distance) -> f64 {
        match self {
            Beta::Zero => 0.0,
            Beta::MaxWeight(c) => c * w_max as f64,
        }
    }
}

/// Output of a k-SSP CLIQUE algorithm: `est[s][v]` is the distance estimate from
/// source `s` (in input order) to clique node `v`, satisfying
/// `d(s,v) ≤ est[s][v] ≤ α·d(s,v) + β`.
#[derive(Debug, Clone)]
pub struct KsspEstimates {
    /// The sources, in input order (clique-local IDs).
    pub sources: Vec<NodeId>,
    /// Row per source, indexed by clique-local node.
    pub est: Vec<Vec<Distance>>,
}

impl KsspEstimates {
    /// The estimate from `sources[s_idx]` to `v`.
    pub fn get(&self, s_idx: usize, v: NodeId) -> Distance {
        self.est[s_idx][v.index()]
    }
}

/// A CLIQUE k-source shortest-paths algorithm with Theorem-4.1 parameters.
///
/// Implementations must guarantee, for every source `s` and node `v`:
/// `d_S(s, v) ≤ est(s, v) ≤ α · d_S(s, v) + β(W_S)` (with `∞` preserved).
pub trait CliqueKsspAlgorithm {
    /// Human-readable name for experiment tables.
    fn name(&self) -> &'static str;

    /// Source capacity (`γ`).
    fn capacity(&self) -> SourceCapacity;

    /// Runtime exponent `δ ≥ 0` in `T_A = Õ(η n^δ)`.
    fn delta(&self) -> f64;

    /// Runtime multiplier `η ≥ 1` in `T_A = Õ(η n^δ)` (typically `1/ε`).
    fn eta(&self) -> f64;

    /// Multiplicative approximation factor `α ≥ 1`.
    fn alpha(&self) -> f64;

    /// Additive approximation term `β`.
    fn beta(&self) -> Beta;

    /// Runs on the clique: `g` is the clique's input graph (each node knows its
    /// incident edges), `sources` the source set (clique-local IDs). Rounds are
    /// charged on `net`.
    ///
    /// # Errors
    ///
    /// [`CliqueError::TooManySources`] if `sources` exceeds the capacity; other
    /// variants from routing.
    fn run(
        &self,
        net: &mut CliqueNet,
        g: &Graph,
        sources: &[NodeId],
    ) -> Result<KsspEstimates, CliqueError>;

    /// Validates the source count against [`CliqueKsspAlgorithm::capacity`].
    ///
    /// # Errors
    ///
    /// [`CliqueError::TooManySources`] / [`CliqueError::NoSources`].
    fn check_sources(&self, n: usize, sources: &[NodeId]) -> Result<(), CliqueError> {
        if sources.is_empty() {
            return Err(CliqueError::NoSources);
        }
        let max = self.capacity().max_sources(n);
        if sources.len() > max {
            return Err(CliqueError::TooManySources { got: sources.len(), max });
        }
        Ok(())
    }
}

/// A CLIQUE diameter algorithm with Theorem-5.1 parameters.
///
/// Implementations guarantee `D(S) ≤ est ≤ α · D(S) + β(W_S)` for the *weighted*
/// diameter of the clique graph.
pub trait CliqueDiameterAlgorithm {
    /// Human-readable name for experiment tables.
    fn name(&self) -> &'static str;

    /// Runtime exponent `δ`.
    fn delta(&self) -> f64;

    /// Runtime multiplier `η`.
    fn eta(&self) -> f64;

    /// Multiplicative approximation factor `α`.
    fn alpha(&self) -> f64;

    /// Additive approximation term `β`.
    fn beta(&self) -> Beta;

    /// Runs on the clique, returning the diameter estimate.
    ///
    /// # Errors
    ///
    /// Routing errors from the net.
    fn run(&self, net: &mut CliqueNet, g: &Graph) -> Result<Distance, CliqueError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_limits() {
        let c = SourceCapacity::Exponent(0.5);
        assert_eq!(c.max_sources(100), 40); // 4 · √100
        assert_eq!(SourceCapacity::SingleSource.max_sources(100), 1);
        assert_eq!(SourceCapacity::Apsp.max_sources(100), usize::MAX);
    }

    #[test]
    fn gammas() {
        assert_eq!(SourceCapacity::Apsp.gamma(), 1.0);
        assert_eq!(SourceCapacity::SingleSource.gamma(), 0.0);
        assert_eq!(SourceCapacity::Exponent(0.5).gamma(), 0.5);
    }

    #[test]
    fn beta_bounds() {
        assert_eq!(Beta::Zero.bound(100), 0.0);
        assert_eq!(Beta::MaxWeight(1.5).bound(10), 15.0);
    }

    #[test]
    fn estimates_indexing() {
        let est = KsspEstimates { sources: vec![NodeId::new(2)], est: vec![vec![5, 0, 7]] };
        assert_eq!(est.get(0, NodeId::new(2)), 7);
    }
}
