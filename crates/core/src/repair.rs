//! Incremental re-preparation after topology deltas.
//!
//! A [`crate::session::Session`]'s [`Prepared`] artifact is exactly the state
//! churn damages: per-skeleton-node `d_h` rows, the skeleton graph, the
//! skeleton APSP `d_S`, and the per-node near-lists. This module migrates a
//! prepared artifact across a [`DeltaBatch`] under one hard contract — the
//! migrated artifact is **bit-identical** to what a cold
//! `Session::new(post-delta graph)` would prepare for the same keys — by
//! choosing per preamble between two paths:
//!
//! * **Patch** — damage analysis: a `d_h(s, ·)` row depends only on `s`'s
//!   `h`-hop ball, so only skeleton nodes within `h` hops of an edited edge
//!   endpoint (in the old *or* new graph) are dirty. Their rows are
//!   recomputed, the skeleton graph is rebuilt from the patched table, and
//!   derived tables (`d_S`, near-lists) are carried over or patched where the
//!   analysis proves them unchanged.
//! * **Full re-prepare** — the verified fallback: re-run Algorithm 6 from the
//!   key. Taken whenever patching cannot *prove* bit-identity: the dirtied
//!   fraction exceeds the configured damage threshold, the cached skeleton
//!   was remediated (its `h` is not the cold starting radius), or the patched
//!   skeleton graph is disconnected (a cold build would remediate).
//!
//! Both paths migrate at **table parity**: every derived table the old
//! artifact had built (`d_S`, either near-list flavor) comes back built —
//! carried or patched where the damage analysis proves the cold value,
//! recomputed cold otherwise. Parity keeps the two paths comparable on the
//! wall clock and moves the whole re-preparation cost into the repair instead
//! of leaking it into the first post-churn query as a lazy-fill latency
//! spike.
//!
//! Repair work is billed on the simulated round clock like PR 6's recovery:
//! a patch charges the `h` rounds of local re-exploration around the damage,
//! a full re-prepare charges what Algorithm 6 charges.

use std::sync::Arc;

use hybrid_graph::limited::mark_within_hops;
use hybrid_graph::{DeltaBatch, Distance, Graph, INFINITY};
use hybrid_sim::HybridNet;

use crate::error::HybridError;
use crate::prepare::{compute_near, NearData, NearTie, Prepared, SkeletonArtifacts};
use crate::session::SessionConfig;
use crate::skeleton_ops::{compute_skeleton, initial_h};

/// Which route one preamble's migration took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairPath {
    /// Damage analysis held: only dirtied `d_h` rows were recomputed.
    Patched,
    /// The verified fallback: a full Algorithm 6 re-prepare.
    Full,
}

/// Outcome of one [`crate::session::Session::apply_delta`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairReport {
    /// Epoch of the new session (predecessor's epoch + 1).
    pub epoch: u64,
    /// Operations in the applied batch.
    pub ops: usize,
    /// Prepared preambles migrated (0 for a session that never prepared).
    pub preambles: usize,
    /// Preambles repaired incrementally.
    pub patched: usize,
    /// Preambles that took the full re-prepare fallback.
    pub full: usize,
    /// `d_h` rows recomputed across all patched preambles.
    pub rows_patched: usize,
    /// Largest dirtied-node fraction observed across preambles (0.0 when
    /// nothing was prepared).
    pub dirty_fraction: f64,
    /// Simulated rounds the repair cost on the round clock.
    pub rounds: u64,
}

impl RepairReport {
    /// The overall path: [`RepairPath::Full`] if any preamble fell back.
    pub fn path(&self) -> RepairPath {
        if self.full > 0 {
            RepairPath::Full
        } else {
            RepairPath::Patched
        }
    }
}

/// Migrates every built preamble of `old` onto `new_graph`, producing a fresh
/// [`Prepared`] bit-identical to what a cold session on `new_graph` would
/// build for the same keys.
pub(crate) fn repair_prepared(
    old_graph: &Graph,
    new_graph: &Graph,
    batch: &DeltaBatch,
    old: &Prepared,
    cfg: &SessionConfig,
) -> Result<(Prepared, RepairReport), HybridError> {
    let n = new_graph.len();
    let touched = batch.touched_nodes();
    let mut net = HybridNet::new(new_graph, cfg.net);
    if let Some(threads) = cfg.round_threads {
        net.set_round_threads(threads);
    }
    let prepared = Prepared::default();
    let mut report = RepairReport {
        epoch: 0,
        ops: batch.len(),
        preambles: 0,
        patched: 0,
        full: 0,
        rows_patched: 0,
        dirty_fraction: 0.0,
        rounds: 0,
    };
    for (key, art) in old.built_entries() {
        report.preambles += 1;
        let h = art.skeleton.h();
        // Remediated skeletons (h above the cold starting radius) can't be
        // patched: a cold rebuild may settle at a different radius.
        let patchable = h == initial_h(n, key.x_exp(), key.xi());
        let mut dirty = mark_within_hops(old_graph, &touched, h);
        for (slot, m) in dirty.iter_mut().zip(mark_within_hops(new_graph, &touched, h)) {
            *slot = *slot || m;
        }
        let dirty_nodes = dirty.iter().filter(|&&d| d).count();
        let fraction = dirty_nodes as f64 / n as f64;
        report.dirty_fraction = report.dirty_fraction.max(fraction);
        let migrated = if patchable && fraction <= cfg.damage_threshold {
            match patch_preamble(&art, &dirty, new_graph, &mut net)? {
                Some((patched_art, rows)) => {
                    // Bill the ≤h-hop local re-exploration around the damage.
                    net.charge_local(h as u64, "repair:patch");
                    report.patched += 1;
                    report.rows_patched += rows;
                    Some(patched_art)
                }
                None => None,
            }
        } else {
            None
        };
        let migrated = match migrated {
            Some(m) => m,
            None => {
                report.full += 1;
                let skeleton = compute_skeleton(
                    &mut net,
                    key.x_exp(),
                    key.xi(),
                    key.forced(),
                    key.seed(),
                    "repair:full",
                )?;
                Arc::new(rebuild_tables(&art, skeleton, new_graph, &mut net))
            }
        };
        prepared.insert_built(key, migrated);
    }
    report.rounds = net.rounds();
    Ok((prepared, report))
}

/// The patch path for one preamble. Returns `None` when the analysis cannot
/// prove bit-identity and the caller must fall back to a full re-prepare.
#[allow(clippy::type_complexity)]
fn patch_preamble(
    art: &SkeletonArtifacts,
    dirty: &[bool],
    new_graph: &Graph,
    net: &mut HybridNet<'_>,
) -> Result<Option<(Arc<SkeletonArtifacts>, usize)>, HybridError> {
    let (skeleton, rows) = art.skeleton.repair(new_graph, dirty)?;
    // A cold build on the new graph would remediate a disconnected skeleton
    // by doubling h — outside what a patch can reproduce.
    if skeleton.len() > 1 && !skeleton.graph().is_connected() {
        return Ok(None);
    }
    // Derived tables at parity with the old artifact: carry what the
    // analysis proves unchanged, patch what it localizes, recompute the rest
    // cold (the bit-identical value the lazy path would fill in).
    let dh_unchanged = skeleton.dh_flat() == art.skeleton.dh_flat();
    let d_s = match art.d_s_built() {
        Some(old) if skeleton.graph() == art.skeleton.graph() => Some(old),
        Some(_) => Some(Arc::new(skeleton.apsp())),
        None => None,
    };
    // Fresh near runs of the dirty nodes, derived from the patched table in
    // one row-major sweep (cache-friendly, and tie-flavor independent so one
    // sweep serves both flavors). A `d_h` column can only change if the
    // column's node is dirty, so clean runs are proven unchanged.
    let n = new_graph.len();
    let any_near = art.near_built(NearTie::HopThenIndex).is_some()
        || art.near_built(NearTie::IndexOnly).is_some();
    let mut fresh: Vec<Vec<(usize, Distance)>> = Vec::new();
    let mut covered = true;
    if any_near && !dh_unchanged {
        let dirty_nodes: Vec<usize> =
            dirty.iter().enumerate().filter_map(|(v, &dv)| dv.then_some(v)).collect();
        fresh = vec![Vec::new(); n];
        for (i, row) in skeleton.dh_flat().chunks_exact(n).enumerate() {
            for &v in &dirty_nodes {
                let d = row[v];
                if d != INFINITY {
                    fresh[v].push((i, d));
                }
            }
        }
        covered = dirty_nodes.iter().all(|&v| !fresh[v].is_empty());
    }
    let mut migrate = |tie: NearTie| -> Option<Arc<NearData>> {
        let old = art.near_built(tie)?;
        if old.fallbacks == 0 {
            if dh_unchanged {
                return Some(old);
            }
            if covered {
                return Some(Arc::new(old.splice_rows(dirty, &fresh)));
            }
        }
        // Lemma C.1 fallback rows come from *full-graph* Dijkstras (or a
        // dirty node lost coverage and the cold path would run the adaptive
        // fallback) — no locality argument survives, so this flavor rebuilds
        // cold.
        Some(Arc::new(near_cold(new_graph, &skeleton, tie, net)))
    };
    let near_hop = migrate(NearTie::HopThenIndex);
    let near_plain = migrate(NearTie::IndexOnly);
    Ok(Some((Arc::new(SkeletonArtifacts::with_tables(skeleton, d_s, near_hop, near_plain)), rows)))
}

/// Cold near-list build at repair time, with the Lemma C.1 fallback's extra
/// exploration rounds billed to the repair (mirroring what `near_phase`
/// charges the algorithms).
fn near_cold(
    g: &Graph,
    skeleton: &hybrid_graph::skeleton::Skeleton,
    tie: NearTie,
    net: &mut HybridNet<'_>,
) -> NearData {
    let data = compute_near(g, net.round_threads(), skeleton, tie);
    if tie == NearTie::HopThenIndex && data.extra_rounds > 0 {
        net.charge_local(data.extra_rounds, "repair:near");
    }
    data
}

/// Rebuilds, cold, every derived table the old artifact had built, so the
/// full fallback hands back an artifact at table parity with the patch path
/// (and the first post-churn query pays no lazy-fill spike). Each table
/// refills with the bit-identical value the lazy path would compute.
fn rebuild_tables(
    old: &SkeletonArtifacts,
    skeleton: hybrid_graph::skeleton::Skeleton,
    new_graph: &Graph,
    net: &mut HybridNet<'_>,
) -> SkeletonArtifacts {
    let d_s = old.d_s_built().map(|_| Arc::new(skeleton.apsp()));
    let near_hop = old
        .near_built(NearTie::HopThenIndex)
        .map(|_| Arc::new(near_cold(new_graph, &skeleton, NearTie::HopThenIndex, net)));
    let near_plain = old
        .near_built(NearTie::IndexOnly)
        .map(|_| Arc::new(near_cold(new_graph, &skeleton, NearTie::IndexOnly, net)));
    SkeletonArtifacts::with_tables(skeleton, d_s, near_hop, near_plain)
}
