//! NCC aggregation and broadcast (Lemma B.2, from Augustine et al. \[2\]).
//!
//! An aggregate-distributive function (min, max, sum, …) over per-node inputs is
//! computed and made known to *all* nodes in `O(log n)` rounds using only the
//! global network: convergecast up a binary tree over the node IDs, then
//! broadcast back down. Every round each node sends at most 2 and receives at
//! most 2 messages — far under the NCC caps, so this protocol is safe even under
//! the strict overflow policy.

use hybrid_graph::NodeId;
use hybrid_sim::{Envelope, HybridNet};

use crate::error::HybridError;

/// Depth of node `v` in the implicit binary tree over IDs (root = 0).
fn depth(v: usize) -> u32 {
    (v + 1).ilog2()
}

fn parent(v: usize) -> usize {
    (v - 1) / 2
}

fn children(v: usize, n: usize) -> impl Iterator<Item = usize> {
    [2 * v + 1, 2 * v + 2].into_iter().filter(move |&c| c < n)
}

/// Computes `combine` over all `Some` inputs and makes the result known to every
/// node. Returns `None` if no node holds a value.
///
/// Runs in `2 · ⌈log₂ n⌉ + O(1)` rounds on the global network (Lemma B.2).
///
/// # Errors
///
/// Propagates simulator errors (none expected: loads are ≤ 2 per node per round).
///
/// # Example
///
/// ```
/// use hybrid_graph::generators::path;
/// use hybrid_sim::{HybridConfig, HybridNet};
/// use hybrid_core::aggregate::aggregate_all;
///
/// # fn main() -> Result<(), hybrid_core::HybridError> {
/// let g = path(10, 1).expect("valid graph");
/// let mut net = HybridNet::new(&g, HybridConfig::strict());
/// let inputs: Vec<Option<u64>> = (0..10).map(|i| Some(i as u64)).collect();
/// let max = aggregate_all(&mut net, &inputs, "agg", |a, b| a.max(b))?;
/// assert_eq!(max, Some(9));
/// # Ok(())
/// # }
/// ```
pub fn aggregate_all<T, F>(
    net: &mut HybridNet<'_>,
    inputs: &[Option<T>],
    phase: &str,
    mut combine: F,
) -> Result<Option<T>, HybridError>
where
    T: Clone + Send + Sync,
    F: FnMut(T, T) -> T,
{
    let n = net.n();
    assert_eq!(inputs.len(), n, "one input slot per node");
    let mut acc: Vec<Option<T>> = inputs.to_vec();
    let max_depth = if n <= 1 { 0 } else { depth(n - 1) };

    // Convergecast: one exchange per depth level, deepest first.
    for d in (1..=max_depth).rev() {
        let mut outbox = Vec::new();
        for v in 0..n {
            if depth(v) == d {
                // A depth-d node is done after it sends (only shallower nodes
                // receive from here on), so the value moves out instead of
                // being cloned.
                if let Some(val) = acc[v].take() {
                    outbox.push(Envelope::new(NodeId::new(v), NodeId::new(parent(v)), val));
                }
            }
        }
        let inboxes = net.exchange(phase, outbox)?;
        for (v, msgs) in inboxes.into_iter().enumerate() {
            for (_, val) in msgs {
                acc[v] = Some(match acc[v].take() {
                    Some(cur) => combine(cur, val),
                    None => val,
                });
            }
        }
    }

    let result = acc[0].take();

    // Broadcast down: one exchange per depth level.
    if let Some(res) = result.clone() {
        for d in 0..max_depth {
            let mut outbox = Vec::new();
            for v in 0..n {
                if depth(v) == d {
                    for c in children(v, n) {
                        outbox.push(Envelope::new(NodeId::new(v), NodeId::new(c), res.clone()));
                    }
                }
            }
            net.exchange(phase, outbox)?;
        }
    }
    Ok(result)
}

/// Broadcasts a list of `O(log n)`-bit words from one node to every node, via the
/// same binary tree, pipelined (`O(log n + |words| / log n)` rounds). Used to
/// publish the token-routing hash seed (`O(log² n)` bits ⇒ `Õ(1)` rounds,
/// matching Lemma 2.3).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn broadcast_words(
    net: &mut HybridNet<'_>,
    src: NodeId,
    words: &[u64],
    phase: &str,
) -> Result<(), HybridError> {
    let n = net.n();
    if n <= 1 || words.is_empty() {
        return Ok(());
    }
    let cap = net.send_cap();
    // Source ships words to the root first (pipelined), then the tree fans out.
    // Per tree level each node forwards to ≤ 2 children; batches of ⌊cap/2⌋.
    let batch = (cap / 2).max(1);
    // Route to root (node 0) unless src is the root.
    if src.index() != 0 {
        let queue: Vec<Envelope<u64>> =
            words.iter().map(|&w| Envelope::new(src, NodeId::new(0), w)).collect();
        let mut queues: Vec<Vec<Envelope<u64>>> = (0..n).map(|_| Vec::new()).collect();
        queues[src.index()] = queue;
        net.drain_queues(phase, queues)?;
    }
    // Pipelined fan-out: in round `t`, depth `d` forwards chunk `t - d`.
    // Total rounds: depth + ⌈|words|/batch⌉ - 1 instead of their product.
    let max_depth = depth(n - 1) as usize;
    let chunks: Vec<&[u64]> = words.chunks(batch).collect();
    for t in 0..max_depth + chunks.len() - 1 {
        let mut outbox = Vec::new();
        for v in 0..n {
            let d = depth(v) as usize;
            if d > t || t - d >= chunks.len() {
                continue;
            }
            for c in children(v, n) {
                for &w in chunks[t - d] {
                    outbox.push(Envelope::new(NodeId::new(v), NodeId::new(c), w));
                }
            }
        }
        if !outbox.is_empty() {
            net.exchange(phase, outbox)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators::{cycle, path};
    use hybrid_sim::HybridConfig;

    #[test]
    fn max_over_all_nodes() {
        let g = cycle(33, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let inputs: Vec<Option<u64>> = (0..33).map(|i| Some((i * 7 % 13) as u64)).collect();
        let expect = inputs.iter().flatten().copied().max();
        let got = aggregate_all(&mut net, &inputs, "agg", |a, b| a.max(b)).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn rounds_are_logarithmic() {
        let g = path(128, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let inputs: Vec<Option<u64>> = (0..128).map(|i| Some(i as u64)).collect();
        aggregate_all(&mut net, &inputs, "agg", |a, b| a + b).unwrap();
        // 2 · ⌈log2 128⌉ = 14 rounds.
        assert!(net.rounds() <= 14, "rounds = {}", net.rounds());
    }

    #[test]
    fn sparse_inputs() {
        let g = path(20, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let mut inputs: Vec<Option<u64>> = vec![None; 20];
        inputs[17] = Some(5);
        inputs[3] = Some(9);
        let got = aggregate_all(&mut net, &inputs, "agg", |a, b| a.min(b)).unwrap();
        assert_eq!(got, Some(5));
    }

    #[test]
    fn empty_inputs_yield_none() {
        let g = path(8, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let inputs: Vec<Option<u64>> = vec![None; 8];
        assert_eq!(aggregate_all(&mut net, &inputs, "agg", |a, b| a + b).unwrap(), None);
    }

    #[test]
    fn single_node_network() {
        let g = hybrid_graph::GraphBuilder::new(1).build().unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let got = aggregate_all(&mut net, &[Some(42u64)], "agg", |a, b| a + b).unwrap();
        assert_eq!(got, Some(42));
        assert_eq!(net.rounds(), 0);
    }

    #[test]
    fn sum_aggregation() {
        let g = cycle(10, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let inputs: Vec<Option<u64>> = (0..10).map(|i| Some(i as u64)).collect();
        assert_eq!(aggregate_all(&mut net, &inputs, "agg", |a, b| a + b).unwrap(), Some(45));
    }

    #[test]
    fn broadcast_words_is_cheap() {
        let g = path(64, 1).unwrap(); // cap = 6
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let words: Vec<u64> = (0..24).collect(); // O(log² n) bits worth of seed
        broadcast_words(&mut net, NodeId::new(10), &words, "seed").unwrap();
        // ⌈24/6⌉ = 4 rounds to root + pipelined fan-out 6 + ⌈24/3⌉ - 1 = 13.
        assert!(net.rounds() <= 20, "rounds = {}", net.rounds());
    }
}
