//! Skeleton graphs (Appendix C of the paper, originally Ullman & Yannakakis).
//!
//! A skeleton `S = (V_S, E_S)` is built on a random node sample `V_S ⊆ V`
//! (each node sampled with probability `1/x`); two skeleton nodes are adjacent iff
//! their hop distance is at most `h := ξ x ln n`, and the edge weight is the
//! `h`-limited distance `d_h(u, v)`.
//!
//! Key properties (Lemmas C.1 / C.2), exposed here as checkable predicates:
//! * on every shortest path, some sampled node appears at least every `h` hops
//!   (w.h.p.), so
//! * `S` is connected and **distance preserving**: `d_S(u,v) = d_G(u,v)` for all
//!   skeleton pairs (w.h.p.).

use rand::Rng;

use crate::apsp::{apsp, DistanceMatrix};
use crate::dijkstra::dijkstra_lex;
use crate::dist::{Distance, INFINITY};
use crate::graph::{Graph, GraphBuilder, GraphError};
use crate::ids::NodeId;
use crate::limited::hop_limited_distances;

/// Parameters of skeleton construction.
///
/// The paper sets `h = ξ x ln n` with `ξ ≥ 8c` for the w.h.p. guarantee
/// (Lemma C.1). The constant is configurable because at simulable `n` the
/// paper-faithful `ξ` makes `h` exceed the graph diameter; experiments document the
/// value they use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkeletonParams {
    /// Sampling is with probability `1/x`.
    pub x: f64,
    /// The `ξ` constant in `h = ξ x ln n`.
    pub xi: f64,
}

impl SkeletonParams {
    /// Paper-faithful defaults (`ξ = 8`, i.e. `c = 1` in Lemma C.1).
    pub fn paper(x: f64) -> Self {
        SkeletonParams { x, xi: 8.0 }
    }

    /// Test-scale parameters with a small `ξ`.
    pub fn scaled(x: f64, xi: f64) -> Self {
        SkeletonParams { x, xi }
    }

    /// The maximum hop length `h` of a skeleton edge for a graph on `n` nodes.
    pub fn h(&self, n: usize) -> usize {
        let h = (self.xi * self.x * (n.max(2) as f64).ln()).ceil() as usize;
        h.max(1)
    }

    /// The node sampling probability `1/x`, clamped into `(0, 1]`.
    pub fn sampling_probability(&self) -> f64 {
        (1.0 / self.x).clamp(0.0, 1.0)
    }
}

/// Sentinel of the flat global→local index: the node was not sampled.
const NOT_SAMPLED: u32 = u32::MAX;

/// A constructed skeleton graph, with the bookkeeping the paper's algorithms need.
#[derive(Debug, Clone)]
pub struct Skeleton {
    /// The sampled nodes (sorted by ID). Index into this vector = skeleton-local ID.
    nodes: Vec<NodeId>,
    /// Maps a global node to its skeleton-local index — a flat array over the
    /// dense ID space (`NOT_SAMPLED` for unsampled nodes), 4 bytes per node
    /// instead of a hash map entry.
    index: Vec<u32>,
    /// Hop budget `h` of skeleton edges.
    h: usize,
    /// The skeleton graph over local indices `0..|V_S|`.
    graph: Graph,
    /// `d_h(s, v)` for every skeleton node `s` (one row of `gn` entries per
    /// skeleton-local index, row-major) and every `v ∈ V`. This is the
    /// local-exploration knowledge of the paper's algorithms: node `v` knows
    /// `d_h(v, s)` for every skeleton node within `h` hops, which by symmetry
    /// is exactly these rows. Stored flat so it can feed the min-plus kernel
    /// ([`crate::minplus`]) without copying.
    dh: Vec<Distance>,
    /// Row stride of `dh` (= number of nodes of the underlying graph).
    gn: usize,
}

impl Skeleton {
    /// Samples `V_S` with probability `params.sampling_probability()` and builds the
    /// skeleton. `forced` nodes (e.g. the single source of Theorem 1.3 / Lemma 4.5)
    /// are always included. At least one node is always sampled.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from skeleton-graph construction (cannot happen for
    /// valid inputs).
    pub fn build<R: Rng + ?Sized>(
        g: &Graph,
        params: SkeletonParams,
        forced: &[NodeId],
        rng: &mut R,
    ) -> Result<Self, GraphError> {
        let p = params.sampling_probability();
        let mut picked: Vec<NodeId> = g.nodes().filter(|_| rng.gen_bool(p)).collect();
        picked.extend_from_slice(forced);
        if picked.is_empty() {
            picked.push(NodeId::new(rng.gen_range(0..g.len())));
        }
        picked.sort_unstable();
        picked.dedup();
        Self::from_nodes(g, picked, params.h(g.len()))
    }

    /// Builds the skeleton over an explicit node set with hop budget `h`.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from skeleton-graph construction.
    pub fn from_nodes(g: &Graph, nodes: Vec<NodeId>, h: usize) -> Result<Self, GraphError> {
        assert!(!nodes.is_empty(), "skeleton needs at least one node");
        let mut index = vec![NOT_SAMPLED; g.len()];
        for (i, &v) in nodes.iter().enumerate() {
            assert_eq!(index[v.index()], NOT_SAMPLED, "skeleton nodes must be distinct");
            index[v.index()] = i as u32;
        }
        let gn = g.len();
        let mut dh = Vec::with_capacity(nodes.len() * gn);
        for &s in &nodes {
            dh.extend_from_slice(&hop_limited_distances(g, s, h));
        }
        let mut b = GraphBuilder::new(nodes.len());
        for (i, row) in dh.chunks_exact(gn).enumerate() {
            for (j, &t) in nodes.iter().enumerate().skip(i + 1) {
                let d = row[t.index()];
                if d != INFINITY {
                    b.add_edge(NodeId::new(i), NodeId::new(j), d)?;
                }
            }
        }
        let graph = b.build()?;
        Ok(Skeleton { nodes, index, h, graph, dh, gn })
    }

    /// The sampled global node IDs, sorted.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of skeleton nodes `|V_S|`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the skeleton is empty (never true for a built skeleton).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Hop budget `h` of skeleton edges.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Approximate heap footprint in bytes: the sampled node list, the dense
    /// global→local index, the `d_h` table, and the skeleton graph itself.
    pub fn approx_heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.nodes.len() * size_of::<NodeId>()
            + self.index.len() * size_of::<u32>()
            + self.dh.len() * size_of::<Distance>()
            + self.graph.approx_heap_bytes()
    }

    /// The skeleton graph (over local indices).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Skeleton-local index of a global node, if sampled.
    pub fn local_index(&self, v: NodeId) -> Option<usize> {
        match self.index[v.index()] {
            NOT_SAMPLED => None,
            i => Some(i as usize),
        }
    }

    /// Global node of a skeleton-local index.
    pub fn global(&self, local: usize) -> NodeId {
        self.nodes[local]
    }

    /// Whether `v` was sampled into the skeleton.
    pub fn contains(&self, v: NodeId) -> bool {
        self.index[v.index()] != NOT_SAMPLED
    }

    /// `d_h(s, v)` for skeleton node with local index `s_local` and any `v ∈ V`.
    pub fn dh(&self, s_local: usize, v: NodeId) -> Distance {
        self.dh[s_local * self.gn + v.index()]
    }

    /// Full `d_h(s, ·)` row of a skeleton node.
    pub fn dh_row(&self, s_local: usize) -> &[Distance] {
        &self.dh[s_local * self.gn..(s_local + 1) * self.gn]
    }

    /// The whole `d_h` table as a flat row-major `|V_S| × n` matrix — the
    /// right operand of the skeleton-label min-plus products.
    pub fn dh_flat(&self) -> &[Distance] {
        &self.dh
    }

    /// For a global node `v`: all skeleton nodes within `h` hops, as
    /// `(local_index, d_h(v, s))` pairs (symmetry of undirected `d_h`).
    pub fn skeletons_near(&self, v: NodeId) -> Vec<(usize, Distance)> {
        (0..self.nodes.len())
            .filter_map(|i| {
                let d = self.dh[i * self.gn + v.index()];
                (d != INFINITY).then_some((i, d))
            })
            .collect()
    }

    /// Exact APSP on the skeleton graph (the ground truth for CLIQUE-algorithm
    /// plugins; `d_S = d_G` w.h.p. by Lemma C.2).
    pub fn apsp(&self) -> DistanceMatrix {
        apsp(&self.graph)
    }

    /// Rebuilds this skeleton against a post-delta graph `g` (same node
    /// count, same sampled set, same hop budget), recomputing only the `d_h`
    /// rows of skeleton nodes flagged `dirty` — the incremental-repair
    /// primitive of the churn stack. Returns the repaired skeleton and the
    /// number of rows recomputed.
    ///
    /// Soundness is the caller's damage analysis: a `d_h(s, ·)` row depends
    /// only on `s`'s `h`-hop ball, so the result is bit-identical to
    /// [`Skeleton::from_nodes`]`(g, nodes, h)` provided `dirty` covers every
    /// skeleton node within `h` hops of an edited edge endpoint (in the old
    /// *or* new graph).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from skeleton-graph reconstruction (cannot
    /// happen for valid inputs).
    ///
    /// # Panics
    ///
    /// Panics if `g` has a different node count than the graph this skeleton
    /// was built on, or if `dirty` is not `n` entries long.
    pub fn repair(&self, g: &Graph, dirty: &[bool]) -> Result<(Skeleton, usize), GraphError> {
        assert_eq!(g.len(), self.gn, "repair requires an unchanged node set");
        assert_eq!(dirty.len(), self.gn, "dirty mask must cover every node");
        let mut dh = self.dh.clone();
        let mut patched = 0usize;
        for (i, &s) in self.nodes.iter().enumerate() {
            if dirty[s.index()] {
                let row = hop_limited_distances(g, s, self.h);
                dh[i * self.gn..(i + 1) * self.gn].copy_from_slice(&row);
                patched += 1;
            }
        }
        // Rebuild the skeleton graph from the patched table — the identical
        // construction `from_nodes` runs, so equal `d_h` ⇒ equal skeleton.
        let mut b = GraphBuilder::new(self.nodes.len());
        for (i, row) in dh.chunks_exact(self.gn).enumerate() {
            for (j, &t) in self.nodes.iter().enumerate().skip(i + 1) {
                let d = row[t.index()];
                if d != INFINITY {
                    b.add_edge(NodeId::new(i), NodeId::new(j), d)?;
                }
            }
        }
        let graph = b.build()?;
        let repaired = Skeleton {
            nodes: self.nodes.clone(),
            index: self.index.clone(),
            h: self.h,
            graph,
            dh,
            gn: self.gn,
        };
        Ok((repaired, patched))
    }
}

/// Lemma C.1 checker: for each sampled pair `(u, v)`, takes a minimum-weight
/// minimum-hop path and verifies every window of `h` consecutive nodes contains a
/// skeleton node (pairs closer than `h` hops trivially pass). Returns the number of
/// violating pairs.
pub fn count_coverage_violations(
    g: &Graph,
    skeleton_nodes: &[NodeId],
    h: usize,
    pairs: &[(NodeId, NodeId)],
) -> usize {
    let in_skel: std::collections::HashSet<NodeId> = skeleton_nodes.iter().copied().collect();
    let mut violations = 0;
    for &(u, v) in pairs {
        // Reconstruct one lexicographic shortest path u -> v.
        let (dist, hops) = dijkstra_lex(g, u);
        if dist[v.index()] == INFINITY {
            continue;
        }
        // Greedy backwalk: from v, repeatedly step to a neighbor on a lex-shortest
        // path.
        let mut path = vec![v];
        let mut cur = v;
        while cur != u {
            let (dc, hc) = (dist[cur.index()], hops[cur.index()]);
            let mut stepped = false;
            for (w, wt) in g.neighbors(cur) {
                if dist[w.index()] != INFINITY
                    && dist[w.index()] + wt == dc
                    && hops[w.index()] + 1 == hc
                {
                    path.push(w);
                    cur = w;
                    stepped = true;
                    break;
                }
            }
            assert!(stepped, "backwalk must make progress on a shortest path");
        }
        path.reverse();
        if path.len() <= h {
            continue;
        }
        for window in path.windows(h) {
            if !window.iter().any(|w| in_skel.contains(w)) {
                violations += 1;
                break;
            }
        }
    }
    violations
}

/// Lemma C.2 checker: number of skeleton pairs where `d_S(u,v) != d_G(u,v)`.
pub fn count_distance_violations(g: &Graph, skeleton: &Skeleton) -> usize {
    let ds = skeleton.apsp();
    let mut violations = 0;
    for i in 0..skeleton.len() {
        let sp = crate::dijkstra::dijkstra(g, skeleton.global(i));
        for j in 0..skeleton.len() {
            let dg = sp.dist(skeleton.global(j));
            if ds.get(NodeId::new(i), NodeId::new(j)) != dg {
                violations += 1;
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi_connected, path};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn params_h_grows_with_x() {
        let p1 = SkeletonParams::scaled(2.0, 1.0);
        let p2 = SkeletonParams::scaled(8.0, 1.0);
        assert!(p2.h(1000) > p1.h(1000));
        assert!(SkeletonParams::paper(4.0).h(1000) >= 8);
    }

    #[test]
    fn explicit_skeleton_on_path() {
        let g = path(10, 1).unwrap();
        // Skeleton nodes every 2 hops, h = 3 ⇒ consecutive ones are adjacent.
        let nodes: Vec<NodeId> = (0..10).step_by(2).map(NodeId::new).collect();
        let s = Skeleton::from_nodes(&g, nodes, 3).unwrap();
        assert_eq!(s.len(), 5);
        assert!(s.graph().is_connected());
        // d_S must equal d_G on the skeleton (distance preservation).
        assert_eq!(count_distance_violations(&g, &s), 0);
    }

    #[test]
    fn skeleton_edges_use_dh_weights() {
        let g = path(6, 2).unwrap();
        let s = Skeleton::from_nodes(&g, vec![NodeId::new(0), NodeId::new(3)], 3).unwrap();
        assert_eq!(s.graph().edge_weight(NodeId::new(0), NodeId::new(1)), Some(6));
    }

    #[test]
    fn no_edge_beyond_h() {
        let g = path(10, 1).unwrap();
        let s = Skeleton::from_nodes(&g, vec![NodeId::new(0), NodeId::new(9)], 4).unwrap();
        assert_eq!(s.graph().num_edges(), 0);
        assert!(!s.graph().is_connected());
    }

    #[test]
    fn sampled_skeleton_preserves_distances() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = erdos_renyi_connected(80, 0.08, 6, &mut rng).unwrap();
        // Dense-enough sampling so the lemma's conclusion holds at this small n.
        let s = Skeleton::build(&g, SkeletonParams::scaled(3.0, 3.0), &[], &mut rng).unwrap();
        assert!(s.len() > 1);
        assert_eq!(count_distance_violations(&g, &s), 0);
    }

    #[test]
    fn forced_nodes_are_included() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = path(20, 1).unwrap();
        let forced = NodeId::new(13);
        let s = Skeleton::build(&g, SkeletonParams::scaled(5.0, 1.0), &[forced], &mut rng).unwrap();
        assert!(s.contains(forced));
        assert_eq!(s.global(s.local_index(forced).unwrap()), forced);
    }

    #[test]
    fn skeletons_near_respects_h() {
        let g = path(10, 1).unwrap();
        let s = Skeleton::from_nodes(&g, vec![NodeId::new(0), NodeId::new(9)], 4).unwrap();
        let near = s.skeletons_near(NodeId::new(2));
        assert_eq!(near, vec![(0, 2)]); // node 9 is 7 hops away > h = 4
    }

    #[test]
    fn repair_with_sound_dirty_mask_is_bit_identical_to_from_nodes() {
        use crate::delta::DeltaBatch;
        use crate::limited::mark_within_hops;
        // A bounded-growth graph, so h-hop balls are genuinely local (on an
        // expander a 4-hop ball covers nearly everything and repair degrades
        // to a full rebuild).
        let g = path(70, 6).unwrap();
        let nodes: Vec<NodeId> = (0..70).step_by(7).map(NodeId::new).collect();
        let h = 8;
        let old = Skeleton::from_nodes(&g, nodes.clone(), h).unwrap();
        // Edit one edge (reweight the first), touching its two endpoints.
        let e = g.edges()[0];
        let batch = DeltaBatch::new().reweight(e.u, e.v, e.w + 3);
        let g2 = g.apply_delta(&batch).unwrap();
        // Sound dirty mask: h-hop balls of the endpoints in old ∪ new graph.
        let seeds = [e.u, e.v];
        let mut dirty = mark_within_hops(&g, &seeds, h);
        for (slot, m) in dirty.iter_mut().zip(mark_within_hops(&g2, &seeds, h)) {
            *slot = *slot || m;
        }
        let (patched, rows) = old.repair(&g2, &dirty).unwrap();
        let cold = Skeleton::from_nodes(&g2, nodes, h).unwrap();
        assert!(rows > 0, "the edit touches at least one skeleton ball");
        assert!(rows < old.len(), "a single edit must not dirty every row");
        assert_eq!(patched.nodes(), cold.nodes());
        assert_eq!(patched.h(), cold.h());
        assert_eq!(patched.dh_flat(), cold.dh_flat());
        assert_eq!(patched.graph(), cold.graph());
    }

    #[test]
    fn coverage_checker_flags_bad_skeleton() {
        let g = path(30, 1).unwrap();
        // No skeleton nodes in the middle ⇒ windows of length 5 in the middle violate.
        let nodes = vec![NodeId::new(0), NodeId::new(29)];
        let pairs = vec![(NodeId::new(0), NodeId::new(29))];
        assert_eq!(count_coverage_violations(&g, &nodes, 5, &pairs), 1);
        // Dense skeleton passes.
        let dense: Vec<NodeId> = (0..30).step_by(3).map(NodeId::new).collect();
        assert_eq!(count_coverage_violations(&g, &dense, 5, &pairs), 0);
    }
}
