//! Serving front-end for the HYBRID shortest-path stack: a multi-tenant
//! request [`Broker`] over [`hybrid_core::Session`], admission control, a
//! line-delimited wire protocol, and a closed-loop [load generator](loadgen).
//!
//! The paper's economics (Kuhn–Schneider, PODC '20) hinge on *shared*
//! preprocessing: Corollaries 4.6/4.7/5.2 reuse one `x = 2/3` skeleton and
//! Corollaries 4.8/5.3 another, so a serving system amortizes the expensive
//! preamble across tenants' query streams. This crate is that system's front
//! door:
//!
//! * **Byte-budgeted session cache.** The broker owns an LRU of sessions
//!   keyed by `(tenant, graph fingerprint, seed, ξ)`, charged at each
//!   session's measured `prepared_bytes` — eviction is by bytes, not entry
//!   count.
//! * **Admission control.** Each tenant has a bounded queue depth; overflow
//!   is a structured [`ServeError::Overloaded`], never a silent drop. Lossy
//!   fault plans are rejected at registration ([`ServeError::FaultySession`])
//!   because faulty sessions run every query cold and would silently defeat
//!   the cache.
//! * **Batch coalescing.** Concurrent queries on one session are collected
//!   by a batch leader into a single [`hybrid_core::Session::solve_batch`]
//!   call, whose scoped worker pool shards the distinct queries.
//! * **Online bit-identity verification.** Every served answer is digest-
//!   compared against a memoized *cold* solve of the same request — answers,
//!   guarantees, and the simulated round bill are bit-identical by contract;
//!   only wall-clock latency is nondeterministic.
//! * **Wire protocol.** One request line in, one response line out
//!   ([`protocol`]), served in-process ([`Broker::serve_line`]) and over TCP
//!   ([`tcp::serve_tcp`]).
//!
//! # Example
//!
//! ```
//! use hybrid_core::solver::Query;
//! use hybrid_graph::generators::grid;
//! use hybrid_serve::{Broker, BrokerConfig, GraphCatalog, TenantConfig};
//!
//! let mut catalog = GraphCatalog::new();
//! catalog.insert("campus", grid(5, 5, 1).unwrap());
//!
//! let broker = Broker::new(&catalog, BrokerConfig::new(7));
//! broker.register_tenant("acme", TenantConfig::new(4)).unwrap();
//!
//! // In-process line protocol: solve APSP, then hit the session memo.
//! let first = broker.serve_line("SOLVE id=1 tenant=acme graph=campus query=apsp-thm11:xi=1.5");
//! let again = broker.serve_line("SOLVE id=2 tenant=acme graph=campus query=apsp-thm11:xi=1.5");
//! assert!(first.starts_with("OK id=1 query=apsp-thm11"), "{first}");
//! // Same query, same session ⇒ the same digest, verified against a cold solve.
//! assert_eq!(first.split("digest=").nth(1), again.split("digest=").nth(1));
//! assert!(first.ends_with("verified=1"), "{first}");
//! let stats = broker.stats();
//! assert_eq!(stats.served, 2);
//! assert_eq!(stats.mismatches, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod loadgen;
pub mod protocol;
pub mod tcp;

pub use broker::{
    graph_fingerprint, report_digest, Broker, BrokerConfig, BrokerStats, GraphCatalog, Request,
    Response, ServeError, TenantConfig,
};
pub use loadgen::{run_load, LoadReport, LoadSpec};
pub use protocol::{guarantee_label, parse_query_spec, parse_request, query_spec, WireRequest};
pub use tcp::{serve_tcp, TcpServer};

#[cfg(test)]
mod tests {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};

    use hybrid_core::solver::{DiameterCorollary, KsspCorollary, Query, SsspVariant};
    use hybrid_graph::generators::{grid, path};
    use hybrid_graph::NodeId;
    use hybrid_sim::{Crash, FaultPlan};

    use super::*;

    fn mixed_queries() -> Vec<Query> {
        vec![
            Query::apsp().build().unwrap(),
            Query::sssp(NodeId::new(0)).build().unwrap(),
            Query::sssp(NodeId::new(1))
                .variant(SsspVariant::ApproxSoda20 { eps: 0.25 })
                .build()
                .unwrap(),
            Query::kssp(KsspCorollary::Cor46).random_sources(3).build().unwrap(),
            Query::kssp(KsspCorollary::Cor47)
                .sources(vec![NodeId::new(0), NodeId::new(4), NodeId::new(7)])
                .build()
                .unwrap(),
            Query::diameter(DiameterCorollary::Cor52).build().unwrap(),
        ]
    }

    #[test]
    fn query_specs_roundtrip() {
        for q in mixed_queries() {
            let spec = query_spec(&q);
            let parsed = parse_query_spec(&spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(parsed, q, "spec {spec} did not roundtrip");
        }
    }

    #[test]
    fn malformed_specs_are_structured_errors() {
        for spec in ["", "apsp-thm99", "sssp-thm13", "kssp-cor46:eps=0.5", "apsp-thm11:xi=banana"] {
            let err = parse_query_spec(spec).unwrap_err();
            assert_eq!(err.code(), "protocol", "{spec} should fail as a protocol error");
        }
    }

    #[test]
    fn zero_depth_tenant_sheds_with_structured_overload() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", path(12, 1).unwrap());
        let broker = Broker::new(&catalog, BrokerConfig::new(7));
        broker.register_tenant("busy", TenantConfig::new(0)).unwrap();
        let req = Request {
            tenant: "busy".into(),
            graph: "g".into(),
            seed: None,
            query: Query::apsp().build().unwrap(),
        };
        let err = broker.serve(&req).unwrap_err();
        assert_eq!(err, ServeError::Overloaded { tenant: "busy".into(), depth: 0 });
        assert_eq!(broker.stats().shed, 1);
        assert_eq!(broker.tenant_shed("busy"), Some(1));
    }

    #[test]
    fn lossy_fault_plans_are_rejected_at_registration() {
        let catalog = GraphCatalog::new();
        let broker = Broker::new(&catalog, BrokerConfig::new(7));
        let mut lossy = TenantConfig::new(4);
        lossy.faults = Some(FaultPlan::drops(0.25, 9));
        let err = broker.register_tenant("chaotic", lossy).unwrap_err();
        assert_eq!(err.code(), "faulty-session");
        assert!(matches!(err, ServeError::FaultySession { drop_prob, .. } if drop_prob == 0.25));

        let mut crashing = TenantConfig::new(4);
        crashing.faults =
            Some(FaultPlan::node_crashes(vec![Crash { node: NodeId::new(0), at_round: 1 }]));
        assert_eq!(
            broker.register_tenant("crashy", crashing).unwrap_err().code(),
            "faulty-session"
        );

        // Structurally invalid plans surface the session layer's own error.
        let mut invalid = TenantConfig::new(4);
        invalid.faults = Some(FaultPlan::drops(1.5, 9));
        assert_eq!(broker.register_tenant("broken", invalid).unwrap_err().code(), "solve");

        // A trivial plan is fine: it changes nothing and caching stays sound.
        let mut trivial = TenantConfig::new(4);
        trivial.faults = Some(FaultPlan::drops(0.0, 9));
        broker.register_tenant("fine", trivial).unwrap();
    }

    #[test]
    fn unknown_names_are_structured_errors() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", path(8, 1).unwrap());
        let broker = Broker::new(&catalog, BrokerConfig::new(7));
        broker.register_tenant("t", TenantConfig::new(2)).unwrap();
        let q = Query::apsp().build().unwrap();
        let nobody =
            Request { tenant: "ghost".into(), graph: "g".into(), seed: None, query: q.clone() };
        assert_eq!(broker.serve(&nobody).unwrap_err().code(), "unknown-tenant");
        let nowhere = Request { tenant: "t".into(), graph: "mars".into(), seed: None, query: q };
        assert_eq!(broker.serve(&nowhere).unwrap_err().code(), "unknown-graph");
    }

    #[test]
    fn byte_budget_evicts_lru_and_readmission_stays_bit_identical() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("a", grid(5, 5, 1).unwrap());
        catalog.insert("b", path(30, 1).unwrap());
        // A 1-byte budget forces every acquisition over budget: only the most
        // recently used session survives each settlement.
        let mut cfg = BrokerConfig::new(7);
        cfg.session_budget_bytes = 1;
        let broker = Broker::new(&catalog, cfg);
        broker.register_tenant("t", TenantConfig::new(4)).unwrap();
        let q = Query::apsp().build().unwrap();
        let serve = |graph: &str| {
            broker
                .serve(&Request {
                    tenant: "t".into(),
                    graph: graph.into(),
                    seed: None,
                    query: q.clone(),
                })
                .unwrap()
        };
        let first_a = serve("a");
        let first_b = serve("b"); // evicts a
        let stats = broker.stats();
        assert_eq!(stats.resident_sessions, 1, "budget of 1 byte keeps a single session");
        assert_eq!(stats.sessions_evicted, 1);
        let again_a = serve("a"); // re-admission after eviction
        assert!(!again_a.session_hit, "a was evicted, so this is a fresh session");
        assert_eq!(again_a.digest, first_a.digest, "re-admitted session must serve identically");
        assert_eq!(broker.stats().sessions_evicted, 2);
        assert!(first_a.verified && first_b.verified && again_a.verified);
        assert_eq!(broker.stats().mismatches, 0);
    }

    #[test]
    fn stats_and_protocol_lines_agree() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", grid(4, 4, 1).unwrap());
        let broker = Broker::new(&catalog, BrokerConfig::new(7));
        broker.register_tenant("t", TenantConfig::new(4)).unwrap();
        let ok =
            broker.serve_line("SOLVE id=9 tenant=t graph=g query=diameter-cor52:eps=0.5:xi=1.5");
        assert!(ok.starts_with("OK id=9 query=diameter-cor52 rounds="), "{ok}");
        assert!(ok.contains("guarantee=diameter="), "{ok}");
        let err = broker.serve_line("SOLVE id=3 tenant=nobody graph=g query=apsp-thm11:xi=1.5");
        assert!(err.starts_with("ERR id=3 code=unknown-tenant"), "{err}");
        let garbled = broker.serve_line("FROBNICATE everything");
        assert!(garbled.starts_with("ERR id=0 code=protocol"), "{garbled}");
        let stats = broker.serve_line("STATS");
        assert!(stats.starts_with("STATS served=1 shed=0"), "{stats}");
    }

    #[test]
    fn tcp_round_trip_serves_and_shuts_down() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", grid(4, 4, 1).unwrap());
        let broker = Broker::new(&catalog, BrokerConfig::new(7));
        broker.register_tenant("t", TenantConfig::new(4)).unwrap();
        std::thread::scope(|scope| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let server = serve_tcp(scope, &broker, listener).unwrap();
            let mut conn = TcpStream::connect(server.addr()).unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            for id in 1..=2u64 {
                writeln!(conn, "SOLVE id={id} tenant=t graph=g query=apsp-thm11:xi=1.5").unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                assert!(line.starts_with(&format!("OK id={id} query=apsp-thm11")), "{line}");
                assert!(line.trim_end().ends_with("verified=1"), "{line}");
            }
            drop(conn);
            server.shutdown();
        });
        let stats = broker.stats();
        assert_eq!(stats.served, 2);
        assert_eq!((stats.session_hits, stats.sessions_admitted), (1, 1));
    }

    #[test]
    fn load_generator_is_deterministic_in_its_choices() {
        let mut catalog = GraphCatalog::new();
        catalog.insert("g", grid(4, 4, 1).unwrap());
        let run = |seed: u64| {
            let broker = Broker::new(&catalog, BrokerConfig::new(7));
            broker.register_tenant("t", TenantConfig::new(8)).unwrap();
            let spec = LoadSpec {
                name: "unit".into(),
                clients: 3,
                requests_per_client: 6,
                tenants: vec!["t".into()],
                graphs: vec!["g".into()],
                queries: mixed_queries(),
                seed,
            };
            run_load(&broker, &spec)
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a.issued, 18);
        assert_eq!(a.served + a.shed + a.failed, a.issued, "every request is accounted for");
        assert_eq!(a.failed, 0, "registry queries on a connected grid must not fail");
        // The request mix is seed-deterministic, so the simulated round bill
        // (unlike wall-clock latency) matches exactly across runs.
        assert_eq!(a.rounds_total, b.rounds_total);
        assert_eq!(a.served, b.served);
        assert_eq!(a.stats.mismatches, 0);
    }
}
