//! The algorithms of Kuhn & Schneider, *Computing Shortest Paths and Diameter in
//! the Hybrid Network Model* (PODC 2020), on top of the `hybrid-sim` simulator.
//!
//! Layer by layer (paper section in parentheses):
//!
//! * **Primitives** — [`hash`]: k-wise independent hash families (App. D);
//!   [`aggregate`]: NCC tree aggregation in `O(log n)` rounds (App. B, from \[2\]);
//!   [`dissemination`]: token dissemination in `Õ(√k + ℓ)` rounds (App. B, from
//!   \[3\]); [`ruling_set`]: `(2µ+1, 2µ⌈log n⌉)`-ruling sets in `O(µ log n)`
//!   rounds (§2.1, Lemma 2.1).
//! * **Token routing** (§2) — [`helpers`]: helper-set computation (Algorithm 1);
//!   [`token_routing`]: the routing protocol (Algorithms 2–4, Theorem 2.2).
//! * **Shortest paths** — [`apsp`]: exact APSP in `Õ(√n)` (§3, Theorem 1.1) plus
//!   the `Õ(n^{2/3})` baseline of \[3\]; [`skeleton_ops`] and
//!   [`clique_on_skeleton`]: skeleton construction, source representatives, and
//!   the CLIQUE-on-skeleton simulation (§4.1, Corollary 4.1); [`ksssp`]: the
//!   k-SSP framework (Theorem 4.1) and Corollaries 4.6–4.8; [`sssp`]: exact SSSP
//!   in `Õ(n^{2/5})` (Theorem 1.3) and baselines.
//! * **Diameter** (§5) — [`diameter`]: the diameter framework (Theorem 5.1) and
//!   Corollaries 5.2 / 5.3.
//! * **Lower bounds** (§6, §7) — [`lower_bound_experiments`]: information-flow
//!   measurements on the Figure-1 and Figure-2 constructions (Theorems 1.5, 1.6).
//! * **Solver facade** — [`solver`]: the typed [`Query`] → [`solve`] →
//!   [`Report`] front door over every algorithm above; external callers
//!   (scenario engine, benchmarks, examples) go through it instead of the
//!   per-algorithm free functions.

#![warn(missing_docs)]
// Per-node `for v in 0..n` index loops are the message-passing idiom here
// (v *is* the node); the clippy range-loop suggestion would obscure that.
#![allow(clippy::needless_range_loop)]

pub mod aggregate;
pub mod apsp;
pub mod clique_on_skeleton;
pub mod diameter;
pub mod dissemination;
pub mod error;
pub mod hash;
pub mod helpers;
pub mod ksssp;
pub mod lower_bound_experiments;
pub(crate) mod prepare;
pub mod repair;
pub mod ruling_set;
pub mod session;
pub mod skeleton_ops;
pub mod solver;
pub mod sssp;
pub mod token_routing;

pub use error::HybridError;
pub use repair::{RepairPath, RepairReport};
pub use session::{Session, SessionConfig, SessionStats};
pub use solver::{
    solve, Answer, ApspVariant, DiameterCorollary, Guarantee, KsspCorollary, Query, QueryError,
    Report, SourceSet, SsspVariant,
};
