//! The simulated HYBRID network: round clock, local-phase accounting, and the
//! congestion-enforcing global channel.

use std::fmt;

use hybrid_graph::{Graph, NodeId};

use crate::channel::{Envelope, Inboxes};
use crate::config::{HybridConfig, OverflowPolicy};
use crate::metrics::Metrics;

/// Errors of a simulated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Under [`OverflowPolicy::Fail`]: a node tried to send more global messages
    /// in one exchange than the per-round cap allows.
    SendCapExceeded {
        /// The offending node.
        node: NodeId,
        /// Messages it attempted to send.
        sent: usize,
        /// The per-round cap.
        cap: usize,
    },
    /// Under [`OverflowPolicy::Fail`]: a node would receive more global messages
    /// in one round than the cap — the event the paper's Lemma D.2 excludes w.h.p.
    RecvCapExceeded {
        /// The overloaded node.
        node: NodeId,
        /// Messages addressed to it.
        received: usize,
        /// The per-round cap.
        cap: usize,
    },
    /// An envelope addressed a node outside `0..n`.
    AddressOutOfRange {
        /// The bad destination.
        node: NodeId,
        /// Network size.
        n: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SendCapExceeded { node, sent, cap } => {
                write!(f, "node {node} sent {sent} global messages, cap is {cap}")
            }
            SimError::RecvCapExceeded { node, received, cap } => {
                write!(f, "node {node} would receive {received} global messages, cap is {cap}")
            }
            SimError::AddressOutOfRange { node, n } => {
                write!(f, "destination {node} out of range for network of {n} nodes")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A simulated HYBRID network over a fixed local graph.
///
/// See the crate docs for the fidelity contract: global messages are routed and
/// cap-checked individually; local phases are charged on the clock.
#[derive(Debug)]
pub struct HybridNet<'g> {
    graph: &'g Graph,
    config: HybridConfig,
    metrics: Metrics,
    cut: Option<Vec<bool>>,
}

impl<'g> HybridNet<'g> {
    /// Creates a network over `graph`.
    pub fn new(graph: &'g Graph, config: HybridConfig) -> Self {
        HybridNet { graph, config, metrics: Metrics::new(), cut: None }
    }

    /// The local communication graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.graph.len()
    }

    /// The configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    /// Per-node global send cap (messages per round).
    pub fn send_cap(&self) -> usize {
        self.config.send_cap(self.graph.len())
    }

    /// Per-node global receive cap (messages per round).
    pub fn recv_cap(&self) -> usize {
        self.config.recv_cap(self.graph.len())
    }

    /// Total rounds elapsed.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// Execution metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Consumes the network and returns its metrics.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }

    /// Merges metrics of a sub-execution (e.g. a nested protocol run on its own
    /// net) into this one.
    pub fn absorb_metrics(&mut self, other: &Metrics) {
        self.metrics.absorb(other);
    }

    /// Registers a node bipartition; subsequent global messages whose endpoints
    /// lie on different sides are counted in [`Metrics::cut_messages`]. Used by
    /// the lower-bound experiments (§6, §7) to measure Alice↔Bob information flow.
    ///
    /// # Panics
    ///
    /// Panics if `side.len() != n`.
    pub fn set_cut(&mut self, side: Vec<bool>) {
        assert_eq!(side.len(), self.graph.len(), "cut must label every node");
        self.cut = Some(side);
    }

    /// Removes the registered cut.
    pub fn clear_cut(&mut self) {
        self.cut = None;
    }

    /// Charges `rounds` rounds of local-mode communication under `phase`.
    ///
    /// The semantics (what every node knows afterwards) are computed by the caller
    /// with the reference routines of `hybrid-graph` — in the LOCAL model, `d`
    /// rounds of flooding teach every node exactly its `d`-hop neighborhood, and
    /// bandwidth is unconstrained.
    pub fn charge_local(&mut self, rounds: u64, phase: &str) {
        self.metrics.charge_local(rounds, phase);
    }

    /// Charges `rounds` global-mode rounds without routing messages. Used when a
    /// sub-protocol's cost is known (e.g. repeating an already-measured routing
    /// instance `T_A` times in the CLIQUE-on-skeleton simulation) — the rounds
    /// are honest, the message contents are not interesting.
    pub fn charge_global_rounds(&mut self, rounds: u64, phase: &str) {
        self.metrics.charge_global_rounds_only(rounds, phase);
    }

    /// Performs one global-mode communication step: delivers `outbox` subject to
    /// the NCC caps.
    ///
    /// Under [`OverflowPolicy::Stretch`] the step is charged
    /// `max(1, ⌈max_v sent_v / send_cap⌉, ⌈max_v recv_v / recv_cap⌉)` rounds —
    /// the honest time a capacitated network needs for the batch. Under
    /// [`OverflowPolicy::Fail`] any cap violation is an error.
    ///
    /// Inboxes are sorted by `(sender, insertion order)` for determinism.
    ///
    /// # Errors
    ///
    /// [`SimError::AddressOutOfRange`] for a bad destination; cap violations under
    /// [`OverflowPolicy::Fail`].
    pub fn exchange<M>(
        &mut self,
        phase: &str,
        outbox: Vec<Envelope<M>>,
    ) -> Result<Inboxes<M>, SimError> {
        let n = self.graph.len();
        let send_cap = self.send_cap();
        let recv_cap = self.recv_cap();
        let mut sent = vec![0usize; n];
        let mut recv = vec![0usize; n];
        for e in &outbox {
            if e.dst.index() >= n {
                return Err(SimError::AddressOutOfRange { node: e.dst, n });
            }
            if e.src.index() >= n {
                return Err(SimError::AddressOutOfRange { node: e.src, n });
            }
            sent[e.src.index()] += 1;
            recv[e.dst.index()] += 1;
        }
        let mut rounds_needed = 1u64;
        for v in 0..n {
            if sent[v] > send_cap {
                match self.config.overflow {
                    OverflowPolicy::Fail => {
                        return Err(SimError::SendCapExceeded {
                            node: NodeId::new(v),
                            sent: sent[v],
                            cap: send_cap,
                        });
                    }
                    OverflowPolicy::Stretch => {
                        rounds_needed = rounds_needed.max(sent[v].div_ceil(send_cap) as u64);
                    }
                }
            }
            if recv[v] > recv_cap {
                match self.config.overflow {
                    OverflowPolicy::Fail => {
                        return Err(SimError::RecvCapExceeded {
                            node: NodeId::new(v),
                            received: recv[v],
                            cap: recv_cap,
                        });
                    }
                    OverflowPolicy::Stretch => {
                        rounds_needed = rounds_needed.max(recv[v].div_ceil(recv_cap) as u64);
                    }
                }
            }
        }
        // Metrics: loads, cut traffic.
        let max_sent = sent.iter().copied().max().unwrap_or(0);
        self.metrics.max_send_load = self.metrics.max_send_load.max(max_sent);
        for v in 0..n {
            if recv[v] > 0 {
                self.metrics.record_recv_load(recv[v]);
            }
        }
        if let Some(side) = &self.cut {
            let crossing =
                outbox.iter().filter(|e| side[e.src.index()] != side[e.dst.index()]).count();
            self.metrics.cut_messages += crossing as u64;
        }
        self.metrics.charge_global(rounds_needed, outbox.len() as u64, phase);

        // Deliver.
        let mut inboxes: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
        let mut sorted = outbox;
        sorted.sort_by_key(|e| (e.dst, e.src));
        for e in sorted {
            inboxes[e.dst.index()].push((e.src, e.msg));
        }
        Ok(inboxes)
    }

    /// Runs a multi-step global protocol where every node holds a queue of
    /// envelopes and sends at most `send_cap` per round, until all queues drain.
    /// This is the common "while T ≠ ∅: pick Θ(log n) tokens, send" pattern of the
    /// paper's Algorithm 4.
    ///
    /// Returns the concatenated inboxes (per destination, in delivery order).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the underlying exchanges.
    pub fn drain_queues<M>(
        &mut self,
        phase: &str,
        mut queues: Vec<Vec<Envelope<M>>>,
    ) -> Result<Inboxes<M>, SimError> {
        let n = self.graph.len();
        let cap = self.send_cap();
        let mut all: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
        loop {
            let mut outbox = Vec::new();
            for q in queues.iter_mut() {
                let take = cap.min(q.len());
                outbox.extend(q.drain(..take));
            }
            if outbox.is_empty() {
                break;
            }
            let delivered = self.exchange(phase, outbox)?;
            for (v, mut msgs) in delivered.into_iter().enumerate() {
                all[v].append(&mut msgs);
            }
        }
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::generators::path;

    fn net(g: &Graph) -> HybridNet<'_> {
        HybridNet::new(g, HybridConfig::default())
    }

    #[test]
    fn single_exchange_is_one_round() {
        let g = path(16, 1).unwrap();
        let mut net = net(&g);
        let inboxes = net
            .exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(15), 7u32)])
            .unwrap();
        assert_eq!(inboxes[15], vec![(NodeId::new(0), 7)]);
        assert_eq!(net.rounds(), 1);
        assert_eq!(net.metrics().global_messages, 1);
    }

    #[test]
    fn local_charge_accumulates() {
        let g = path(4, 1).unwrap();
        let mut net = net(&g);
        net.charge_local(10, "explore");
        assert_eq!(net.rounds(), 10);
        assert_eq!(net.metrics().local_rounds, 10);
    }

    #[test]
    fn stretch_charges_honest_rounds() {
        let g = path(16, 1).unwrap(); // send cap = ⌈log2 16⌉ = 4
        let mut net = net(&g);
        let outbox: Vec<_> =
            (0..12).map(|i| Envelope::new(NodeId::new(0), NodeId::new(1 + (i % 8)), i)).collect();
        net.exchange("t", outbox).unwrap();
        // 12 messages / cap 4 = 3 rounds.
        assert_eq!(net.rounds(), 3);
        assert_eq!(net.metrics().stretched_exchanges, 1);
    }

    #[test]
    fn fail_policy_rejects_send_overflow() {
        let g = path(16, 1).unwrap();
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let outbox: Vec<_> =
            (0..5).map(|i| Envelope::new(NodeId::new(0), NodeId::new(1 + i), i)).collect();
        let err = net.exchange("t", outbox).unwrap_err();
        assert!(matches!(err, SimError::SendCapExceeded { sent: 5, cap: 4, .. }));
    }

    #[test]
    fn fail_policy_rejects_recv_overflow() {
        let g = path(16, 1).unwrap(); // recv cap = 16
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let outbox: Vec<_> = (0..15)
            .flat_map(|s| {
                (0..2).map(move |j| Envelope::new(NodeId::new(s), NodeId::new(15), (s, j)))
            })
            .collect();
        let err = net.exchange("t", outbox).unwrap_err();
        assert!(matches!(err, SimError::RecvCapExceeded { received: 30, .. }));
    }

    #[test]
    fn rejects_bad_address() {
        let g = path(4, 1).unwrap();
        let mut net = net(&g);
        let err = net
            .exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(9), 0u8)])
            .unwrap_err();
        assert!(matches!(err, SimError::AddressOutOfRange { .. }));
    }

    #[test]
    fn inboxes_sorted_by_sender() {
        let g = path(8, 1).unwrap();
        let mut net = net(&g);
        let outbox = vec![
            Envelope::new(NodeId::new(5), NodeId::new(0), 'b'),
            Envelope::new(NodeId::new(2), NodeId::new(0), 'a'),
        ];
        let inboxes = net.exchange("t", outbox).unwrap();
        assert_eq!(inboxes[0], vec![(NodeId::new(2), 'a'), (NodeId::new(5), 'b')]);
    }

    #[test]
    fn cut_counts_crossings() {
        let g = path(4, 1).unwrap();
        let mut net = net(&g);
        net.set_cut(vec![true, true, false, false]);
        let outbox = vec![
            Envelope::new(NodeId::new(0), NodeId::new(1), 0u8), // same side
            Envelope::new(NodeId::new(0), NodeId::new(3), 0u8), // crossing
            Envelope::new(NodeId::new(2), NodeId::new(1), 0u8), // crossing
        ];
        net.exchange("t", outbox).unwrap();
        assert_eq!(net.metrics().cut_messages, 2);
        net.clear_cut();
        net.exchange("t", vec![Envelope::new(NodeId::new(0), NodeId::new(3), 0u8)]).unwrap();
        assert_eq!(net.metrics().cut_messages, 2);
    }

    #[test]
    fn drain_queues_paces_to_cap() {
        let g = path(16, 1).unwrap(); // cap 4
        let mut net = net(&g);
        // Node 0 queues 10 messages to distinct targets; node 1 queues 2.
        let mut queues: Vec<Vec<Envelope<u32>>> = vec![Vec::new(); 16];
        for i in 0..10 {
            queues[0].push(Envelope::new(NodeId::new(0), NodeId::new(2 + i), i as u32));
        }
        queues[1].push(Envelope::new(NodeId::new(1), NodeId::new(14), 100));
        queues[1].push(Envelope::new(NodeId::new(1), NodeId::new(15), 101));
        let inboxes = net.drain_queues("t", queues).unwrap();
        assert_eq!(net.rounds(), 3); // ⌈10/4⌉
        assert_eq!(net.metrics().global_messages, 12);
        assert_eq!(inboxes[14], vec![(NodeId::new(1), 100)]);
        assert_eq!(net.metrics().stretched_exchanges, 0); // paced, never over cap
    }

    #[test]
    fn error_display() {
        let e = SimError::RecvCapExceeded { node: NodeId::new(3), received: 9, cap: 4 };
        assert!(e.to_string().contains("receive"));
    }
}
