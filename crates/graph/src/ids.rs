//! Node identifiers.
//!
//! The paper assumes nodes carry unique IDs from `[n] = {1, …, n}`. We use the
//! zero-based newtype [`NodeId`] throughout; its numeric value doubles as the index
//! into all per-node arrays.

use std::fmt;

/// Identifier of a node in the local communication graph `G`.
///
/// IDs are dense: a graph on `n` nodes uses exactly the IDs `0..n`. The ID is public
/// knowledge in the HYBRID model (every node can address any other node through the
/// global network by its ID), which is why this type is freely convertible to and
/// from `usize`.
///
/// # Example
///
/// ```
/// use hybrid_graph::NodeId;
/// let v = NodeId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(format!("{v}"), "v7");
/// ```
// NOTE: serde derives are intentionally absent — the build environment is
// offline and the only consumer (JSON export) writes its own serialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node ID from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32` (graphs beyond 4 billion nodes are
    /// out of scope for the simulator).
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl From<NodeId> for usize {
    fn from(v: NodeId) -> Self {
        v.index()
    }
}

/// Convenience iterator over the IDs `0..n`.
///
/// ```
/// use hybrid_graph::ids::node_ids;
/// let all: Vec<_> = node_ids(3).collect();
/// assert_eq!(all.len(), 3);
/// ```
pub fn node_ids(n: usize) -> impl Iterator<Item = NodeId> + Clone {
    (0..n).map(NodeId::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        for i in [0usize, 1, 17, 100_000] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId::new(3).to_string(), "v3");
    }

    #[test]
    fn ordering_matches_index() {
        assert!(NodeId::new(2) < NodeId::new(10));
    }

    #[test]
    fn node_ids_yields_dense_range() {
        let ids: Vec<_> = node_ids(4).collect();
        assert_eq!(ids, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
    }

    #[test]
    fn conversions() {
        let v = NodeId::from(5u32);
        assert_eq!(u32::from(v), 5);
        assert_eq!(usize::from(v), 5);
    }
}
