//! Exact all-pairs shortest paths in the HYBRID model.
//!
//! * [`exact_apsp`] — the paper's Theorem 1.1: `Õ(√n)` rounds. Pipeline:
//!   skeleton on a `1/√n` sample (local, `Õ(√n)` rounds) → skeleton edges made
//!   public by token dissemination (`Õ(√n)`) → every node derives its distance
//!   and *connector* (first skeleton node on a shortest path) to every skeleton
//!   node → **token routing** ships each node's connector info to each skeleton
//!   node (`Õ(n·|V_S|/n + √n) = Õ(√n)`, the step that replaced the broadcast
//!   bottleneck of \[3\]) → skeleton nodes answer distances into their `h`-hop
//!   neighborhoods locally → everyone assembles exact distances.
//! * [`exact_apsp_soda20`] — the `Õ(n^{2/3})` baseline of Augustine et al.
//!   \[3\]: same pipeline, but the last step *broadcasts* all
//!   `|V_S| · n` distance labels with token dissemination, which forces the
//!   skeleton-size trade-off to `x = n^{2/3}`.

use hybrid_graph::apsp::DistanceMatrix;
use hybrid_graph::dijkstra::par_lex_rows_with;
use hybrid_graph::minplus::par_min_plus_into;
use hybrid_graph::skeleton::Skeleton;
use hybrid_graph::{dist_add, Distance, NodeId, INFINITY};
use hybrid_sim::{derive_seed, par, HybridNet};

use crate::dissemination::disseminate;
use crate::error::HybridError;
use crate::prepare::{near_phase, skeleton_apsp, skeleton_phase, NearData, NearTie, Prep};
use crate::token_routing::{route_tokens, RoutingRates, Token};

/// Configuration of the APSP runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApspConfig {
    /// The `ξ` constant in the skeleton radius `h = ξ x ln n` (Lemma C.1 wants
    /// `ξ ≥ 8` for the w.h.p. guarantee; at simulable `n` that exceeds most
    /// graph diameters, so experiments document the value they use).
    pub xi: f64,
}

impl Default for ApspConfig {
    fn default() -> Self {
        ApspConfig { xi: 1.5 }
    }
}

/// Result of a distributed APSP run.
#[derive(Debug, Clone)]
pub struct ApspOutcome {
    /// The computed distance matrix (to be compared against the exact one).
    pub dist: DistanceMatrix,
    /// Total HYBRID rounds.
    pub rounds: u64,
    /// Skeleton size `|V_S|`.
    pub skeleton_size: usize,
    /// Skeleton edge hop budget `h`.
    pub h: usize,
    /// Nodes that needed the adaptive exploration fallback (no skeleton within
    /// `h` hops — the Lemma C.1 failure event).
    pub coverage_fallbacks: usize,
}

/// Final assembly shared by both APSP variants: each node `u` combines its
/// `h`-hop-local exact distances with the skeleton route
/// `min_{s near u} d_h(u,s) + labels[s][v]`.
fn assemble(
    net: &HybridNet<'_>,
    skeleton: &Skeleton,
    near: &NearData,
    labels: &[Distance],
) -> DistanceMatrix {
    let g = net.graph();
    let n = g.len();
    let ns = skeleton.len();
    let h = skeleton.h() as u64;
    let mut out = DistanceMatrix::new(n);
    let sources: Vec<NodeId> = g.nodes().collect();
    // Pass 1 — one parallel lex-Dijkstra per node; each worker writes its
    // h-hop-gated local row straight into the flat matrix.
    par_lex_rows_with(g, &sources, out.as_flat_mut(), |_, _, dist, hops, row| {
        for v in 0..n {
            row[v] = if hops[v] <= h { dist[v] } else { INFINITY };
        }
    });
    // Pass 2 — the skeleton merge is one blocked min-plus product
    // `near (n × |V_S|) ⊗ labels (|V_S| × n)` accumulated into the gated
    // local rows (the kernel's seeded-output mode).
    let mut nearm = vec![INFINITY; n * ns];
    for v in 0..n {
        for (s, d) in near.node(v) {
            nearm[v * ns + s] = d;
        }
    }
    par_min_plus_into(&nearm, labels, out.as_flat_mut(), n, n);
    out
}

/// Publishes the skeleton edges `E_S` by token dissemination (one token per
/// edge, owned by its smaller global endpoint).
fn publish_skeleton_edges(
    net: &mut HybridNet<'_>,
    skeleton: &Skeleton,
    seed: u64,
    phase: &str,
) -> Result<(), HybridError> {
    let owners: Vec<NodeId> =
        skeleton.graph().edges().iter().map(|e| skeleton.global(e.u.index())).collect();
    disseminate(net, &owners, seed, phase)?;
    Ok(())
}

/// Exact APSP in `Õ(√n)` rounds (Theorem 1.1).
///
/// # Errors
///
/// Propagates simulator/routing errors; see [`ApspOutcome::coverage_fallbacks`]
/// for the (counted, remediated) Lemma C.1 failure events.
pub fn exact_apsp(
    net: &mut HybridNet<'_>,
    cfg: ApspConfig,
    seed: u64,
) -> Result<ApspOutcome, HybridError> {
    exact_apsp_prepared(net, cfg, seed, Prep::Cold)
}

pub(crate) fn exact_apsp_prepared(
    net: &mut HybridNet<'_>,
    cfg: ApspConfig,
    seed: u64,
    prep: Prep<'_>,
) -> Result<ApspOutcome, HybridError> {
    let start = net.rounds();
    let n = net.n();
    // Sampling probability 1/√n (the x = √n trade-off point of Theorem 1.1).
    let art = skeleton_phase(net, 0.5, cfg.xi, &[], seed, "apsp:skeleton", prep)?;
    let skeleton = &art.skeleton;
    publish_skeleton_edges(net, skeleton, derive_seed(seed, 1), "apsp:edges")?;
    let d_s = skeleton_apsp(&art);
    let ns = skeleton.len();

    // Every node v derives d(v, s) and its connector for every skeleton node
    // s — an independent per-node step, sharded across the round-engine
    // worker budget (each shard owns a contiguous band of rows). Connector
    // indices are skeleton-local and fit u32 — half the table footprint.
    let near = near_phase(net, &art, NearTie::HopThenIndex, "apsp:fallback");
    const NO_CONN: u32 = u32::MAX;
    let mut conn = vec![NO_CONN; n * ns];
    let mut dvs = vec![INFINITY; n * ns];
    par::map_shards_mut2(
        net.round_threads(),
        n,
        (&mut conn, ns),
        (&mut dvs, ns),
        |start, crows, drows| {
            for (i, (crow, drow)) in crows.chunks_mut(ns).zip(drows.chunks_mut(ns)).enumerate() {
                for (u, dvu) in near.node(start + i) {
                    for s in 0..ns {
                        let cand = dist_add(dvu, d_s.get(NodeId::new(u), NodeId::new(s)));
                        if cand < drow[s] {
                            drow[s] = cand;
                            crow[s] = u as u32;
                        }
                    }
                }
            }
        },
    );

    // Token routing: v sends ⟨d_h(v, s'), ID(v), ID(s')⟩ to each skeleton node s.
    let members = skeleton.nodes();
    let all: Vec<NodeId> = net.graph().nodes().collect();
    let mut tokens = Vec::with_capacity(n * ns);
    for v in 0..n {
        for s in 0..ns {
            let u = conn[v * ns + s];
            if u == NO_CONN {
                continue;
            }
            let dvu = near.dist_to(v, u as usize).expect("connector is near");
            tokens.push(Token::new(
                NodeId::new(v),
                members[s],
                s as u32,
                (dvu, skeleton.global(u as usize)),
            ));
        }
    }
    let rates = RoutingRates { p_s: 1.0, p_r: (ns as f64 / n as f64).min(1.0) };
    let routed =
        route_tokens(net, tokens, &all, members, rates, derive_seed(seed, 2), "apsp:routing")?;

    // Each skeleton node s computes d(s, v) = d_S(s, s') + d_h(s', v) from the
    // received connector tokens, then answers into its h-hop neighborhood
    // (local flooding, Õ(√n) rounds). Node IDs are dense, so the
    // global→local map is a flat u32 array.
    let mut global_to_local = vec![u32::MAX; n];
    for (i, &m) in members.iter().enumerate() {
        global_to_local[m.index()] = i as u32;
    }
    let mut labels = vec![INFINITY; ns * n];
    {
        let threads = net.round_threads();
        par::map_shards_mut(
            threads,
            labels.chunks_mut(n).collect::<Vec<_>>().as_mut_slice(),
            |start, rows| {
                for (i, row) in rows.iter_mut().enumerate() {
                    let s_local = start + i;
                    let s_global = members[s_local];
                    row[s_global.index()] = 0;
                    for t in routed.for_receiver(s_global) {
                        let (dvu, u_global) = t.payload;
                        let u_local = global_to_local[u_global.index()];
                        debug_assert_ne!(u_local, u32::MAX, "connector must be a skeleton member");
                        let v = t.label.s;
                        let d = dist_add(
                            d_s.get(NodeId::new(s_local), NodeId::new(u_local as usize)),
                            dvu,
                        );
                        if d < row[v.index()] {
                            row[v.index()] = d;
                        }
                    }
                }
            },
        );
    }
    net.charge_local(skeleton.h() as u64, "apsp:labels-local");

    let dist = assemble(net, skeleton, &near, &labels);
    Ok(ApspOutcome {
        dist,
        rounds: net.rounds() - start,
        skeleton_size: ns,
        h: skeleton.h(),
        coverage_fallbacks: near.fallbacks,
    })
}

/// Exact APSP in `Õ(n^{2/3})` rounds — the baseline of Augustine et al. \[3\]
/// that Theorem 1.1 improves on. Identical pipeline except the last step: all
/// `|V_S| · n` distance labels `d_h(s, v)` are *broadcast* with token
/// dissemination instead of routed point-to-point, which forces the skeleton
/// trade-off to `x = n^{2/3}` (sampling probability `1/n^{2/3}`).
///
/// # Errors
///
/// Propagates simulator/routing errors.
pub fn exact_apsp_soda20(
    net: &mut HybridNet<'_>,
    cfg: ApspConfig,
    seed: u64,
) -> Result<ApspOutcome, HybridError> {
    exact_apsp_soda20_prepared(net, cfg, seed, Prep::Cold)
}

pub(crate) fn exact_apsp_soda20_prepared(
    net: &mut HybridNet<'_>,
    cfg: ApspConfig,
    seed: u64,
    prep: Prep<'_>,
) -> Result<ApspOutcome, HybridError> {
    let start = net.rounds();
    let n = net.n();
    // Sampling probability 1/n^{2/3} ⇒ |V_S| ≈ n^{1/3}.
    let art = skeleton_phase(net, 1.0 / 3.0, cfg.xi, &[], seed, "apsp3:skeleton", prep)?;
    let skeleton = &art.skeleton;
    publish_skeleton_edges(net, skeleton, derive_seed(seed, 1), "apsp3:edges")?;
    let d_s = skeleton_apsp(&art);
    let ns = skeleton.len();

    // Broadcast every finite label d_h(s, v) (owner: the node v that knows it).
    let mut owners = Vec::new();
    for s in 0..ns {
        let row = skeleton.dh_row(s);
        for (v, &d) in row.iter().enumerate() {
            if d != INFINITY {
                owners.push(NodeId::new(v));
            }
        }
    }
    disseminate(net, &owners, derive_seed(seed, 2), "apsp3:labels")?;

    // All labels are now public: every node can compute
    // d(s, v) = min_{s₂} d_S(s, s₂) + d_h(s₂, v) for every (s, v) — a pure
    // min-plus product `d_S (|V_S| × |V_S|) ⊗ d_h (|V_S| × n)`, handed to the
    // shared blocked kernel.
    let mut labels = vec![INFINITY; ns * n];
    par_min_plus_into(d_s.as_flat(), skeleton.dh_flat(), &mut labels, ns, n);

    let near = near_phase(net, &art, NearTie::HopThenIndex, "apsp3:fallback");
    let dist = assemble(net, skeleton, &near, &labels);
    Ok(ApspOutcome {
        dist,
        rounds: net.rounds() - start,
        skeleton_size: ns,
        h: skeleton.h(),
        coverage_fallbacks: near.fallbacks,
    })
}

/// Baseline: APSP using only the LOCAL mode — `D` rounds of full-graph
/// flooding teach every node the entire topology, after which everything is
/// computed locally. Exact, and the `Θ(D)` yardstick the introduction
/// measures both HYBRID algorithms against.
pub fn apsp_local_only(net: &mut HybridNet<'_>) -> ApspOutcome {
    let g = net.graph();
    let n = g.len();
    // Rounds: the unweighted eccentricity bound — after D rounds of flooding
    // every node holds every edge.
    let mut d = 0u64;
    for v in g.nodes() {
        d = d.max(hybrid_graph::bfs::bfs(g, v).eccentricity());
    }
    net.charge_local(d, "apsp-local:flood");
    let dist = hybrid_graph::apsp::apsp(g);
    ApspOutcome { dist, rounds: d, skeleton_size: n, h: d as usize, coverage_fallbacks: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybrid_graph::apsp::apsp;
    use hybrid_graph::generators::{erdos_renyi_connected, grid, random_geometric_connected};
    use hybrid_sim::HybridConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_exact(g: &hybrid_graph::Graph, xi: f64, seed: u64) -> ApspOutcome {
        let exact = apsp(g);
        let mut net = HybridNet::new(g, HybridConfig::default());
        let out = exact_apsp(&mut net, ApspConfig { xi }, seed).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(out.dist.get(u, v), exact.get(u, v), "pair ({u}, {v})");
            }
        }
        out
    }

    #[test]
    fn exact_on_random_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_connected(90, 0.06, 5, &mut rng).unwrap();
        let out = check_exact(&g, 1.5, 11);
        assert!(out.skeleton_size > 1);
        assert!(out.rounds > 0);
    }

    #[test]
    fn exact_on_grid() {
        let g = grid(9, 9, 3).unwrap();
        check_exact(&g, 1.5, 3);
    }

    #[test]
    fn exact_on_geometric() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_geometric_connected(80, 0.2, 6, &mut rng).unwrap();
        check_exact(&g, 1.5, 7);
    }

    #[test]
    fn baseline_is_exact_too() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi_connected(80, 0.07, 4, &mut rng).unwrap();
        let exact = apsp(&g);
        let mut net = HybridNet::new(&g, HybridConfig::default());
        let out = exact_apsp_soda20(&mut net, ApspConfig { xi: 1.5 }, 13).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(out.dist.get(u, v), exact.get(u, v), "pair ({u}, {v})");
            }
        }
    }

    #[test]
    fn new_algorithm_beats_baseline_rounds() {
        // The headline claim (E2): Õ(√n) vs Õ(n^{2/3}). At moderate n with the
        // same ξ the token-routing variant must already be cheaper (the gap
        // widens with n; see bench_apsp).
        let mut rng = StdRng::seed_from_u64(3);
        let g = erdos_renyi_connected(500, 12.0 / 500.0, 4, &mut rng).unwrap();
        let mut net_a = HybridNet::new(&g, HybridConfig::default());
        let a = exact_apsp(&mut net_a, ApspConfig { xi: 1.5 }, 5).unwrap();
        let mut net_b = HybridNet::new(&g, HybridConfig::default());
        let b = exact_apsp_soda20(&mut net_b, ApspConfig { xi: 1.5 }, 5).unwrap();
        assert!(
            a.rounds < b.rounds,
            "Thm 1.1 ({}) should beat SODA'20 baseline ({})",
            a.rounds,
            b.rounds
        );
    }

    #[test]
    fn local_only_baseline_is_exact_and_charges_diameter() {
        let g = grid(6, 12, 2).unwrap();
        let exact = apsp(&g);
        let mut net = HybridNet::new(&g, HybridConfig::strict());
        let out = apsp_local_only(&mut net);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(out.dist.get(u, v), exact.get(u, v));
            }
        }
        // Rounds = unweighted diameter of the 6x12 grid = 5 + 11.
        assert_eq!(out.rounds, 16);
        assert_eq!(net.metrics().global_messages, 0, "LOCAL-only baseline");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = grid(7, 7, 2).unwrap();
        let mut n1 = HybridNet::new(&g, HybridConfig::default());
        let mut n2 = HybridNet::new(&g, HybridConfig::default());
        let a = exact_apsp(&mut n1, ApspConfig::default(), 21).unwrap();
        let b = exact_apsp(&mut n2, ApspConfig::default(), 21).unwrap();
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.skeleton_size, b.skeleton_size);
    }
}
