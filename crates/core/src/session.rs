//! The serving layer: shared preprocessing sessions over one graph.
//!
//! Every `solve()` call rebuilds the paper's shared preamble — skeleton
//! sampling, skeleton distances, nearby-skeleton knowledge — from zero, even
//! when a thousand queries hit the same graph. A [`Session`] runs that
//! preamble once per skeleton key `(x, ξ, forced nodes, seed)` into an
//! immutable [`Prepared`] artifact and serves any number of queries from it:
//!
//! * **Bit-identical answers.** `session.solve(&q)` returns exactly the
//!   [`Report`] a fresh `solve(&mut net, &q, seed)` would — same distances,
//!   rounds, guarantees, message counts, and structured errors (pinned by
//!   `tests/session_equivalence.rs`). The simulated round bill is never
//!   discounted; only the wall-clock recomputation is.
//! * **Cross-query sharing.** Queries whose frameworks sample with the same
//!   exponent share one skeleton: Corollaries 4.6/4.7 and 5.2 all
//!   instantiate at `x = 2/3`, Corollaries 4.8 and 5.3 at `x ≈ 0.604`, so a
//!   mixed batch prepares far fewer skeletons than it runs queries.
//! * **Repeat serving.** A query already answered under this session's seed
//!   is served from the report memo without re-running the protocol at all —
//!   the steady state of a serving workload where hot queries repeat.
//! * **Batching.** [`Session::solve_batch`] dedups repeated queries and
//!   shards the distinct ones over scoped worker threads (the scenario
//!   runner's pool pattern); answers are deterministic and order-preserving.
//!
//! # Faults
//!
//! A session configured with a lossy [`FaultPlan`] runs **every query cold**:
//! the drop stream is stateful per run, so sharing preprocessing would change
//! *which* messages are lost and break bit-identity. Faulty sessions are
//! still convenient (one place to configure graph + faults + seed) but never
//! amortize — exactly what a fresh solve per query costs.
//!
//! # Example
//!
//! ```
//! use hybrid_core::session::{Session, SessionConfig};
//! use hybrid_core::solver::{DiameterCorollary, KsspCorollary, Query};
//! use hybrid_graph::generators::grid;
//!
//! let g = grid(6, 6, 1).unwrap();
//! let session = Session::new(&g, SessionConfig::new(7)).unwrap();
//! let apsp = session.solve(&Query::apsp().build().unwrap()).unwrap();
//! let diam = session.solve(&Query::diameter(DiameterCorollary::Cor52).build().unwrap()).unwrap();
//! assert!(apsp.guarantee.is_exact());
//! assert!(diam.diameter_estimate().is_some());
//! // Repeats are served from the report memo.
//! let again = session.solve(&Query::apsp().build().unwrap()).unwrap();
//! assert_eq!(apsp.rounds, again.rounds);
//! assert_eq!(session.stats().report_hits, 1);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hybrid_graph::{DeltaBatch, Graph};
use hybrid_sim::{FaultPlan, HybridConfig, HybridNet, Metrics, Recorder, TraceEvent};

use crate::error::HybridError;
use crate::prepare::Prep;
pub use crate::prepare::Prepared;
use crate::repair::{repair_prepared, RepairReport};
use crate::solver::{solve_inner, Query, QueryError, Report, SourceSet, SsspVariant};

/// Configuration of a [`Session`]: the pinned root seed and skeleton
/// constant the preprocessing is derived from, plus the simulated network's
/// parameters.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Root seed of every query served by this session. All preprocessing
    /// (skeleton sampling, source resolution, routing hashes) derives from
    /// it; [`Session::solve_seeded`] rejects any other seed.
    pub seed: u64,
    /// The skeleton radius constant `ξ` the prepared artifacts are built
    /// with. Queries carrying a different `ξ` are rejected with
    /// [`QueryError::SessionXiMismatch`] instead of silently re-preprocessing
    /// (the LOCAL baselines ignore `ξ` and are exempt).
    pub xi: f64,
    /// Simulated network configuration used for every query's net.
    pub net: HybridConfig,
    /// Optional fault plan installed on every query's net. Non-trivial plans
    /// disable all caching (see the module docs).
    pub faults: Option<FaultPlan>,
    /// Round-engine worker budget override applied to every query's net
    /// (`None`: the `HYBRID_ROUND_THREADS` / hardware default).
    pub round_threads: Option<usize>,
    /// Damage threshold of [`Session::apply_delta`]: the dirtied-node
    /// fraction above which incremental repair falls back to a full
    /// re-prepare. Interpreted as a fraction of `n`; values below `0.0`
    /// force the full path, values at or above `1.0` disable the threshold
    /// fallback (the soundness fallbacks still apply). Either path is
    /// bit-identical — the threshold only trades repair cost.
    pub damage_threshold: f64,
}

impl SessionConfig {
    /// A default-configured session pinned to `seed` (`ξ = 1.5`, default
    /// network, no faults, damage threshold `0.25`).
    pub fn new(seed: u64) -> Self {
        SessionConfig {
            seed,
            xi: 1.5,
            net: HybridConfig::default(),
            faults: None,
            round_threads: None,
            damage_threshold: 0.25,
        }
    }
}

/// Cumulative serving statistics of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Queries served (including errors and cache hits; batch inputs all
    /// count, deduplicated repeats included).
    pub queries: u64,
    /// Queries answered without running the protocol: report-memo hits and
    /// batch-deduplicated repeats.
    pub report_hits: u64,
    /// Distinct skeleton preambles prepared so far.
    pub skeletons_prepared: usize,
    /// Approximate heap bytes of the prepared artifacts ([`Prepared::bytes`])
    /// — what a byte-budgeted session cache charges this session at. Zero
    /// until the first query prepares a skeleton; grows as derived tables
    /// fill in.
    pub prepared_bytes: usize,
}

/// Stable hash key of a `(Query, seed)` pair — the report-memo index. Two
/// queries with equal keys are structurally identical (floats compared by
/// bits), so a memo hit serves a bit-identical report.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum QueryKey {
    Apsp { variant: u8, xi: u64 },
    Sssp { variant: u8, source: u32, xi: u64, eps: u64 },
    Kssp { cor: u8, sources: SourceKey, eps: u64, xi: u64 },
    Diameter { cor: u8, eps: u64, xi: u64 },
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SourceKey {
    Random(usize),
    Nodes(Vec<u32>),
}

fn query_key(q: &Query) -> QueryKey {
    match q {
        Query::Apsp { variant, xi } => QueryKey::Apsp { variant: *variant as u8, xi: xi.to_bits() },
        Query::Sssp { variant, source, xi } => {
            let (v, eps) = match variant {
                SsspVariant::Thm13 => (0u8, 0u64),
                SsspVariant::LocalBellmanFord => (1, 0),
                SsspVariant::ApproxSoda20 { eps } => (2, eps.to_bits()),
            };
            QueryKey::Sssp { variant: v, source: source.raw(), xi: xi.to_bits(), eps }
        }
        Query::Kssp { cor, sources, eps, xi } => QueryKey::Kssp {
            cor: cor.number(),
            sources: match sources {
                SourceSet::Random { k } => SourceKey::Random(*k),
                SourceSet::Nodes(nodes) => {
                    SourceKey::Nodes(nodes.iter().map(|v| v.raw()).collect())
                }
            },
            eps: eps.to_bits(),
            xi: xi.to_bits(),
        },
        Query::Diameter { cor, eps, xi } => {
            QueryKey::Diameter { cor: cor.number(), eps: eps.to_bits(), xi: xi.to_bits() }
        }
    }
}

/// A shared-preprocessing serving session over one graph (see the module
/// docs). Create with [`Session::new`], serve with [`Session::solve`] /
/// [`Session::solve_batch`], evolve the graph with [`Session::apply_delta`].
#[derive(Debug)]
pub struct Session {
    graph: Arc<Graph>,
    cfg: SessionConfig,
    epoch: u64,
    prepared: Prepared,
    reports: Mutex<HashMap<(u64, QueryKey), Report>>,
    queries: AtomicU64,
    report_hits: AtomicU64,
}

impl Session {
    /// Opens a session over `graph` with the pinned `(seed, ξ, network)`
    /// configuration (the graph is cloned into shared ownership; use
    /// [`Session::shared`] to reuse an existing [`Arc`]).
    ///
    /// # Errors
    ///
    /// * [`HybridError::Sim`] for a degenerate [`HybridConfig`] or an invalid
    ///   fault plan.
    /// * [`HybridError::Query`] for a non-positive / non-finite `ξ`.
    pub fn new(graph: &Graph, cfg: SessionConfig) -> Result<Self, HybridError> {
        Session::shared(Arc::new(graph.clone()), cfg)
    }

    /// Opens a session over an already-shared graph without cloning it — the
    /// zero-copy path for serving layers that keep graphs in a catalog.
    ///
    /// # Errors
    ///
    /// As [`Session::new`].
    pub fn shared(graph: Arc<Graph>, cfg: SessionConfig) -> Result<Self, HybridError> {
        cfg.net.validate().map_err(HybridError::Sim)?;
        if let Some(plan) = &cfg.faults {
            plan.validate_for(graph.len()).map_err(HybridError::Sim)?;
        }
        if !(cfg.xi > 0.0 && cfg.xi.is_finite()) {
            return Err(HybridError::Query(QueryError::NonPositiveXi { xi: cfg.xi }));
        }
        Ok(Session {
            graph,
            cfg,
            epoch: 0,
            prepared: Prepared::default(),
            reports: Mutex::new(HashMap::new()),
            queries: AtomicU64::new(0),
            report_hits: AtomicU64::new(0),
        })
    }

    /// The session's graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Shared handle to the session's graph (the post-delta graph after
    /// [`Session::apply_delta`]).
    pub fn graph_arc(&self) -> Arc<Graph> {
        Arc::clone(&self.graph)
    }

    /// The session's graph epoch: `0` at construction, incremented by every
    /// [`Session::apply_delta`]. The report memo is keyed by it, so a report
    /// computed on an earlier graph version can never serve a later one.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The pinned root seed.
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// Evolves the session across a topology delta: validates and applies
    /// `batch` to the graph, migrates the prepared artifact by damage
    /// analysis (or the full re-prepare fallback — see [`crate::repair`]),
    /// and returns the successor session at `epoch + 1` together with a
    /// [`RepairReport`] recording which path each preamble took and what the
    /// repair cost on the simulated round clock.
    ///
    /// The successor serves every query exactly as a cold
    /// `Session::new(post-delta graph, same config)` would — bit-identical
    /// answers, guarantees, and round bills. Its report memo starts empty
    /// (and is epoch-keyed besides), so stale hits are impossible. `self` is
    /// untouched: in-flight queries on the old epoch keep their graph alive
    /// through shared ownership.
    ///
    /// # Errors
    ///
    /// [`HybridError::Delta`] when `batch` fails validation against the
    /// current graph; the session is unchanged.
    pub fn apply_delta(&self, batch: &DeltaBatch) -> Result<(Session, RepairReport), HybridError> {
        let new_graph = Arc::new(self.graph.apply_delta(batch)?);
        let (prepared, mut report) =
            repair_prepared(&self.graph, &new_graph, batch, &self.prepared, &self.cfg)?;
        let epoch = self.epoch + 1;
        report.epoch = epoch;
        Ok((
            Session {
                graph: new_graph,
                cfg: self.cfg.clone(),
                epoch,
                prepared,
                reports: Mutex::new(HashMap::new()),
                queries: AtomicU64::new(0),
                report_hits: AtomicU64::new(0),
            },
            report,
        ))
    }

    /// The pinned skeleton constant ξ.
    pub fn xi(&self) -> f64 {
        self.cfg.xi
    }

    /// Cumulative serving statistics.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            queries: self.queries.load(Ordering::Relaxed),
            report_hits: self.report_hits.load(Ordering::Relaxed),
            skeletons_prepared: self.prepared.skeletons(),
            prepared_bytes: self.prepared.bytes(),
        }
    }

    /// Whether preprocessing may be shared: lossy fault plans are stateful
    /// per run and force every query cold.
    fn cacheable(&self) -> bool {
        self.cfg.faults.as_ref().is_none_or(FaultPlan::is_trivial)
    }

    /// Rejects queries whose `ξ` differs from the prepared artifact's (the
    /// LOCAL baselines ignore `ξ` and pass unconditionally).
    fn check_xi(&self, query: &Query) -> Result<(), HybridError> {
        use crate::solver::ApspVariant;
        let query_xi = match query {
            Query::Apsp { variant: ApspVariant::LocalFlood, .. } => return Ok(()),
            Query::Sssp { variant: SsspVariant::LocalBellmanFord, .. } => return Ok(()),
            Query::Apsp { xi, .. }
            | Query::Sssp { xi, .. }
            | Query::Kssp { xi, .. }
            | Query::Diameter { xi, .. } => *xi,
        };
        if query_xi.to_bits() != self.cfg.xi.to_bits() {
            return Err(HybridError::Query(QueryError::SessionXiMismatch {
                expected: self.cfg.xi,
                got: query_xi,
            }));
        }
        Ok(())
    }

    /// A fresh simulated net for one query, configured exactly as a cold
    /// caller would: the session's [`HybridConfig`], fault plan, and
    /// round-engine budget.
    fn fresh_net(&self) -> HybridNet<'_> {
        let mut net = HybridNet::new(&self.graph, self.cfg.net);
        if let Some(threads) = self.cfg.round_threads {
            net.set_round_threads(threads);
        }
        if let Some(plan) = &self.cfg.faults {
            net.inject_faults(plan).expect("fault plan validated at session construction");
        }
        net
    }

    /// Runs `query` end to end on a fresh net, serving preprocessing from
    /// the prepared artifact when caching is sound. Returns the result plus
    /// the net's full metrics (the scenario runner reads partial rounds and
    /// message counts off them on structured errors).
    fn execute(&self, query: &Query) -> (Result<Report, HybridError>, Metrics) {
        let mut net = self.fresh_net();
        let prep = if self.cacheable() { Prep::Warm(&self.prepared) } else { Prep::Cold };
        let result = solve_inner(&mut net, query, self.cfg.seed, prep);
        (result, net.into_metrics())
    }

    /// Serves `query` under the session seed (see the module docs for the
    /// equivalence and amortization contract).
    ///
    /// # Errors
    ///
    /// * [`HybridError::Query`] for invalid parameters or a
    ///   [`QueryError::SessionXiMismatch`].
    /// * Any simulator/protocol error a fresh `solve` would produce.
    pub fn solve(&self, query: &Query) -> Result<Report, HybridError> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        query.validate().map_err(HybridError::Query)?;
        self.check_xi(query)?;
        if !self.cacheable() {
            return self.execute(query).0;
        }
        let key = (self.epoch, query_key(query));
        if let Some(report) = self.reports.lock().expect("report memo lock").get(&key) {
            self.report_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(report.clone());
        }
        let (result, _) = self.execute(query);
        if let Ok(report) = &result {
            self.reports.lock().expect("report memo lock").insert(key, report.clone());
        }
        result
    }

    /// Like [`Session::solve`], but verifies the caller's `seed` against the
    /// session's pinned seed first — the guard for callers that thread seeds
    /// separately from sessions.
    ///
    /// # Errors
    ///
    /// [`QueryError::SessionSeedMismatch`] (wrapped) when `seed` differs from
    /// the session seed; otherwise as [`Session::solve`].
    pub fn solve_seeded(&self, query: &Query, seed: u64) -> Result<Report, HybridError> {
        if seed != self.cfg.seed {
            return Err(HybridError::Query(QueryError::SessionSeedMismatch {
                expected: self.cfg.seed,
                got: seed,
            }));
        }
        self.solve(query)
    }

    /// Serves `query` and returns the executing net's full [`Metrics`]
    /// alongside — always runs the protocol (the report memo is bypassed so
    /// the metrics describe a real run), still sharing preprocessing. The
    /// scenario runner uses this to report partial rounds and message counts
    /// for structured-error runs.
    pub fn solve_with_metrics(&self, query: &Query) -> (Result<Report, HybridError>, Metrics) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = query.validate() {
            return (Err(HybridError::Query(e)), Metrics::new());
        }
        if let Err(e) = self.check_xi(query) {
            return (Err(e), Metrics::new());
        }
        let (result, metrics) = self.execute(query);
        if self.cacheable() {
            if let Ok(report) = &result {
                self.reports
                    .lock()
                    .expect("report memo lock")
                    .entry((self.epoch, query_key(query)))
                    .or_insert_with(|| report.clone());
            }
        }
        (result, metrics)
    }

    /// Like [`Session::solve_with_metrics`], but also records a structured
    /// trace of the run (the report memo is bypassed so the trace describes a
    /// real protocol run; preprocessing is still shared, so cache hits show
    /// up as [`TraceEvent::Cache`] events). The returned recorder reconciles
    /// exactly against the returned metrics.
    pub fn solve_traced(&self, query: &Query) -> (Result<Report, HybridError>, Metrics, Recorder) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if let Err(e) = query.validate() {
            return (Err(HybridError::Query(e)), Metrics::new(), Recorder::new());
        }
        if let Err(e) = self.check_xi(query) {
            return (Err(e), Metrics::new(), Recorder::new());
        }
        let mut net = self.fresh_net();
        net.set_trace(Recorder::new());
        let prep = if self.cacheable() { Prep::Warm(&self.prepared) } else { Prep::Cold };
        let result = solve_inner(&mut net, query, self.cfg.seed, prep);
        let rec = net.take_trace().expect("recorder installed above");
        if self.cacheable() {
            if let Ok(report) = &result {
                self.reports
                    .lock()
                    .expect("report memo lock")
                    .entry((self.epoch, query_key(query)))
                    .or_insert_with(|| report.clone());
            }
        }
        (result, net.into_metrics(), rec)
    }

    /// Serves a batch serially with one merged trace: every input gets a
    /// `batch[i]:<label>` span, protocol runs carry their full event stream,
    /// and memo-served repeats appear as report-cache hit events instead of
    /// re-running — the per-item cost structure of a serving workload, made
    /// visible. Results are bit-identical to [`Session::solve_batch`] on the
    /// same inputs.
    pub fn solve_batch_traced(
        &self,
        queries: &[Query],
    ) -> (Vec<Result<Report, HybridError>>, Recorder) {
        let mut rec = Recorder::new();
        let mut results = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            let span = format!("batch[{i}]:{}", q.label());
            let memo = if self.cacheable() && q.validate().is_ok() && self.check_xi(q).is_ok() {
                self.reports
                    .lock()
                    .expect("report memo lock")
                    .get(&(self.epoch, query_key(q)))
                    .cloned()
            } else {
                None
            };
            if let Some(report) = memo {
                self.queries.fetch_add(1, Ordering::Relaxed);
                self.report_hits.fetch_add(1, Ordering::Relaxed);
                rec.span_begin(&span, 0);
                rec.record(TraceEvent::Cache { name: format!("report:{}", q.label()), hit: true });
                rec.span_end(&span, 0);
                results.push(Ok(report));
                continue;
            }
            let (result, metrics, item) = self.solve_traced(q);
            rec.span_begin(&span, 0);
            rec.merge(&item);
            rec.span_end(&span, metrics.rounds);
            results.push(result);
        }
        (results, rec)
    }

    /// Serves a batch of independent queries, returning one result per input
    /// in order. Repeated queries are deduplicated (solved once, answers
    /// cloned) and the distinct ones are sharded over scoped worker threads
    /// (`HYBRID_SESSION_THREADS` overrides the worker count). Every answer
    /// is bit-identical to solving the batch sequentially. On a faulty
    /// session dedup is disabled along with every other cache: each input
    /// runs its own cold protocol, per the module-level contract.
    pub fn solve_batch(&self, queries: &[Query]) -> Vec<Result<Report, HybridError>> {
        // Dedup: map each input to the first occurrence of its key. A
        // non-cacheable (faulty) session skips dedup entirely — its contract
        // is that *every* query runs cold, through the batch path too.
        let mut first_of: HashMap<QueryKey, usize> = HashMap::new();
        let mut unique: Vec<usize> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            let slot = if self.cacheable() {
                *first_of.entry(query_key(q)).or_insert_with(|| {
                    unique.push(i);
                    unique.len() - 1
                })
            } else {
                unique.push(i);
                unique.len() - 1
            };
            slot_of.push(slot);
        }
        // Deduplicated repeats are served queries too — count them (and the
        // fact that they skipped the protocol) so `stats()` matches its docs.
        let repeats = (queries.len() - unique.len()) as u64;
        self.queries.fetch_add(repeats, Ordering::Relaxed);
        self.report_hits.fetch_add(repeats, Ordering::Relaxed);
        let threads = batch_workers(unique.len());
        let results: Vec<Result<Report, HybridError>> = if threads <= 1 {
            unique.iter().map(|&i| self.solve(&queries[i])).collect()
        } else {
            use std::sync::atomic::AtomicUsize;
            let slots: Vec<Mutex<Option<Result<Report, HybridError>>>> =
                unique.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let u = next.fetch_add(1, Ordering::Relaxed);
                        if u >= unique.len() {
                            break;
                        }
                        let result = self.solve(&queries[unique[u]]);
                        *slots[u].lock().expect("batch slot lock") = Some(result);
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("batch slot").expect("every slot filled"))
                .collect()
        };
        slot_of.into_iter().map(|slot| results[slot].clone()).collect()
    }
}

/// Batch worker count: `HYBRID_SESSION_THREADS` override, else the machine's
/// parallelism, capped at the number of distinct queries.
fn batch_workers(jobs: usize) -> usize {
    let available = std::env::var("HYBRID_SESSION_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1));
    available.min(jobs).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve, DiameterCorollary, KsspCorollary};
    use hybrid_graph::generators::{erdos_renyi_connected, grid};
    use hybrid_graph::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_same_report(a: &Report, b: &Report) {
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.global_messages, b.global_messages);
        assert_eq!(a.dropped_messages, b.dropped_messages);
        assert_eq!(a.skeleton_size, b.skeleton_size);
        assert_eq!(a.h, b.h);
        assert_eq!(a.coverage_fallbacks, b.coverage_fallbacks);
        assert_eq!(a.guarantee, b.guarantee);
        match (&a.answer, &b.answer) {
            (crate::solver::Answer::Distances(x), crate::solver::Answer::Distances(y)) => {
                assert_eq!(x.as_flat(), y.as_flat())
            }
            (
                crate::solver::Answer::DistanceRow { dist: x, .. },
                crate::solver::Answer::DistanceRow { dist: y, .. },
            ) => assert_eq!(x, y),
            (
                crate::solver::Answer::DistanceRows { est: x, .. },
                crate::solver::Answer::DistanceRows { est: y, .. },
            ) => assert_eq!(x, y),
            (
                crate::solver::Answer::Diameter { estimate: x, .. },
                crate::solver::Answer::Diameter { estimate: y, .. },
            ) => assert_eq!(x, y),
            _ => panic!("answer shapes differ"),
        }
    }

    #[test]
    fn session_matches_fresh_solve_across_algorithms() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = erdos_renyi_connected(70, 0.08, 4, &mut rng).unwrap();
        let session = Session::new(&g, SessionConfig::new(11)).unwrap();
        let queries = [
            Query::apsp().build().unwrap(),
            Query::sssp(NodeId::new(3)).build().unwrap(),
            Query::kssp(KsspCorollary::Cor47).random_sources(4).build().unwrap(),
            Query::diameter(DiameterCorollary::Cor52).build().unwrap(),
        ];
        for q in &queries {
            let mut net = HybridNet::new(&g, HybridConfig::default());
            let fresh = solve(&mut net, q, 11).unwrap();
            let served = session.solve(q).unwrap();
            assert_same_report(&fresh, &served);
        }
    }

    #[test]
    fn repeats_hit_the_report_memo_and_skeletons_are_shared() {
        let g = grid(8, 8, 1).unwrap();
        let session = Session::new(&g, SessionConfig::new(5)).unwrap();
        let q46 = Query::kssp(KsspCorollary::Cor46).random_sources(2).build().unwrap();
        let q47 = Query::kssp(KsspCorollary::Cor47).random_sources(5).build().unwrap();
        let d52 = Query::diameter(DiameterCorollary::Cor52).build().unwrap();
        session.solve(&q46).unwrap();
        session.solve(&q47).unwrap();
        session.solve(&d52).unwrap();
        // Cor 4.6, 4.7 and 5.2 all sample at x = 2/3: one shared skeleton.
        assert_eq!(session.stats().skeletons_prepared, 1);
        session.solve(&q46).unwrap();
        session.solve(&q46).unwrap();
        let stats = session.stats();
        assert_eq!(stats.queries, 5);
        assert_eq!(stats.report_hits, 2);
    }

    #[test]
    fn xi_and_seed_mismatches_are_structured_errors() {
        let g = grid(6, 6, 1).unwrap();
        let session = Session::new(&g, SessionConfig::new(3)).unwrap();
        let q = Query::apsp().xi(2.0).build().unwrap();
        let err = session.solve(&q).unwrap_err();
        assert!(
            matches!(err, HybridError::Query(QueryError::SessionXiMismatch { got, .. }) if got == 2.0),
            "{err:?}"
        );
        let ok = Query::apsp().build().unwrap();
        let err = session.solve_seeded(&ok, 4).unwrap_err();
        assert!(
            matches!(
                err,
                HybridError::Query(QueryError::SessionSeedMismatch { expected: 3, got: 4 })
            ),
            "{err:?}"
        );
        assert!(session.solve_seeded(&ok, 3).is_ok());
        // The LOCAL baselines ignore ξ and pass under any value.
        let local = Query::apsp().variant(crate::solver::ApspVariant::LocalFlood).build().unwrap();
        assert!(session.solve(&local).is_ok());
    }

    #[test]
    fn batch_preserves_order_and_dedups() {
        let g = grid(7, 7, 1).unwrap();
        let session = Session::new(&g, SessionConfig::new(9)).unwrap();
        let a = Query::apsp().build().unwrap();
        let b = Query::sssp(NodeId::new(0)).build().unwrap();
        let batch = vec![a.clone(), b.clone(), a.clone(), b.clone(), a.clone()];
        let results = session.solve_batch(&batch);
        assert_eq!(results.len(), 5);
        let r0 = results[0].as_ref().unwrap();
        let r2 = results[2].as_ref().unwrap();
        let r4 = results[4].as_ref().unwrap();
        assert_same_report(r0, r2);
        assert_same_report(r0, r4);
        assert_eq!(results[1].as_ref().unwrap().label(), "sssp-thm13");
        // 5 inputs served, 2 distinct protocol runs, 3 deduplicated repeats.
        let stats = session.stats();
        assert_eq!(stats.queries, 5);
        assert_eq!(stats.report_hits, 3);
    }

    #[test]
    fn traced_solves_reconcile_and_expose_preprocessing_cache_hits() {
        let g = grid(7, 7, 1).unwrap();
        let session = Session::new(&g, SessionConfig::new(5)).unwrap();
        let q = Query::apsp().build().unwrap();
        let cache_events = |rec: &Recorder, want_hit: bool| {
            rec.events()
                .iter()
                .filter(|e| matches!(e, TraceEvent::Cache { hit, .. } if *hit == want_hit))
                .count()
        };
        let (r1, m1, rec1) = session.solve_traced(&q);
        let r1 = r1.unwrap();
        rec1.reconcile(&m1).expect("first traced run reconciles");
        assert!(cache_events(&rec1, false) >= 1, "first run prepares cold");
        assert_eq!(cache_events(&rec1, true), 0);
        let (r2, m2, rec2) = session.solve_traced(&q);
        let r2 = r2.unwrap();
        rec2.reconcile(&m2).expect("second traced run reconciles");
        assert!(cache_events(&rec2, true) >= 1, "second run hits the skeleton cache");
        assert_eq!(cache_events(&rec2, false), 0);
        assert_eq!(r1.rounds, r2.rounds, "the replayed bill is identical");
    }

    #[test]
    fn traced_batch_matches_plain_batch_and_shows_memo_hits() {
        let g = grid(7, 7, 1).unwrap();
        let a = Query::apsp().build().unwrap();
        let b = Query::sssp(NodeId::new(0)).build().unwrap();
        let batch = vec![a.clone(), b.clone(), a.clone(), a.clone()];
        let plain = Session::new(&g, SessionConfig::new(9)).unwrap();
        let expected = plain.solve_batch(&batch);
        let traced = Session::new(&g, SessionConfig::new(9)).unwrap();
        let (results, rec) = traced.solve_batch_traced(&batch);
        assert_eq!(results.len(), expected.len());
        for (got, want) in results.iter().zip(&expected) {
            assert_same_report(got.as_ref().unwrap(), want.as_ref().unwrap());
        }
        // One span per input, in order; the two repeats of `a` are memo hits.
        let spans: Vec<&str> = rec
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::SpanBegin { name, .. } if name.starts_with("batch[") => {
                    Some(name.as_str())
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            spans,
            [
                "batch[0]:apsp-thm11",
                "batch[1]:sssp-thm13",
                "batch[2]:apsp-thm11",
                "batch[3]:apsp-thm11"
            ]
        );
        let memo_hits = rec
            .events()
            .iter()
            .filter(|e| {
                matches!(e, TraceEvent::Cache { name, hit: true } if name.starts_with("report:"))
            })
            .count();
        assert_eq!(memo_hits, 2);
        assert_eq!(traced.stats().report_hits, 2);
    }

    #[test]
    fn prepared_bytes_are_nonzero_and_monotone_in_n() {
        use hybrid_graph::generators::path;
        let q = Query::apsp().build().unwrap();
        let mut sizes = Vec::new();
        for n in [40usize, 160] {
            let g = path(n, 1).unwrap();
            let session = Session::new(&g, SessionConfig::new(7)).unwrap();
            assert_eq!(session.stats().prepared_bytes, 0, "nothing prepared yet");
            session.solve(&q).unwrap();
            let bytes = session.stats().prepared_bytes;
            assert!(bytes > 0, "prepared artifacts must have a nonzero footprint");
            sizes.push(bytes);
        }
        assert!(sizes[1] > sizes[0], "prepared bytes must grow with n: {sizes:?}");
    }

    #[test]
    fn invalid_session_configs_are_rejected() {
        let g = grid(4, 4, 1).unwrap();
        let mut cfg = SessionConfig::new(1);
        cfg.xi = -1.0;
        assert!(matches!(
            Session::new(&g, cfg).unwrap_err(),
            HybridError::Query(QueryError::NonPositiveXi { .. })
        ));
        let cfg = SessionConfig {
            net: HybridConfig { send_cap_factor: 0.0, ..HybridConfig::default() },
            ..SessionConfig::new(1)
        };
        assert!(matches!(Session::new(&g, cfg).unwrap_err(), HybridError::Sim(_)));
    }

    #[test]
    fn post_delta_memo_hits_are_impossible() {
        use hybrid_graph::DeltaBatch;
        let g = grid(6, 6, 1).unwrap();
        let session = Session::new(&g, SessionConfig::new(3)).unwrap();
        let q = Query::apsp().build().unwrap();
        let before = session.solve(&q).unwrap();
        session.solve(&q).unwrap();
        assert_eq!(session.stats().report_hits, 1, "same-epoch repeats do hit");
        let batch = DeltaBatch::new().reweight(NodeId::new(0), NodeId::new(1), 7);
        let (next, repair) = session.apply_delta(&batch).unwrap();
        assert_eq!(session.epoch(), 0, "predecessor unchanged");
        assert_eq!(next.epoch(), 1);
        assert_eq!(repair.epoch, 1);
        let after = next.solve(&q).unwrap();
        assert_eq!(next.stats().report_hits, 0, "a post-delta memo hit must be impossible");
        // The reweight really changed the answer, so a stale hit would have
        // been an observable wrong answer, not a harmless shortcut.
        match (&before.answer, &after.answer) {
            (crate::solver::Answer::Distances(x), crate::solver::Answer::Distances(y)) => {
                assert_ne!(x.as_flat(), y.as_flat())
            }
            _ => panic!("answer shapes differ"),
        }
        let cold = Session::new(next.graph(), SessionConfig::new(3)).unwrap();
        assert_same_report(&after, &cold.solve(&q).unwrap());
    }

    #[test]
    fn apply_delta_patch_path_is_bit_identical_to_cold_rebuild() {
        use hybrid_graph::generators::path;
        use hybrid_graph::DeltaBatch;
        let g = path(120, 3).unwrap();
        // A path graph keeps h-hop balls genuinely local; raise the damage
        // threshold past the worst preamble's dirtied fraction (SSSP samples
        // deeper, so its h-ball covers ~0.7 of the path) so every preamble
        // takes the patch path.
        let cfg = SessionConfig { damage_threshold: 0.75, ..SessionConfig::new(7) };
        let session = Session::new(&g, cfg.clone()).unwrap();
        let queries = [
            Query::apsp().build().unwrap(),
            Query::sssp(NodeId::new(5)).build().unwrap(),
            Query::diameter(DiameterCorollary::Cor52).build().unwrap(),
        ];
        for q in &queries {
            session.solve(q).unwrap();
        }
        let batch = DeltaBatch::new().reweight(NodeId::new(3), NodeId::new(4), 9).add_edge(
            NodeId::new(0),
            NodeId::new(2),
            5,
        );
        let (next, repair) = session.apply_delta(&batch).unwrap();
        assert!(repair.preambles > 0, "prepared preambles must migrate");
        assert_eq!(repair.full, 0, "a local edit on a path graph must patch: {repair:?}");
        assert!(repair.patched > 0);
        assert!(repair.rows_patched > 0);
        assert!(repair.rounds > 0, "repair work is billed on the round clock");
        assert!(repair.dirty_fraction > 0.0 && repair.dirty_fraction <= 0.75);
        assert_eq!(repair.path(), crate::repair::RepairPath::Patched);
        let cold = Session::new(next.graph(), cfg).unwrap();
        for q in &queries {
            assert_same_report(&next.solve(q).unwrap(), &cold.solve(q).unwrap());
        }
        assert_eq!(next.stats().report_hits, 0);
    }

    #[test]
    fn apply_delta_full_fallback_is_bit_identical_too() {
        use hybrid_graph::DeltaBatch;
        let g = grid(8, 8, 1).unwrap();
        // A negative threshold forces the verified full-re-prepare fallback.
        let cfg = SessionConfig { damage_threshold: -1.0, ..SessionConfig::new(5) };
        let session = Session::new(&g, cfg.clone()).unwrap();
        let q = Query::apsp().build().unwrap();
        session.solve(&q).unwrap();
        let batch = DeltaBatch::new().remove_edge(NodeId::new(0), NodeId::new(1));
        let (next, repair) = session.apply_delta(&batch).unwrap();
        assert_eq!(repair.patched, 0);
        assert!(repair.full > 0);
        assert_eq!(repair.path(), crate::repair::RepairPath::Full);
        assert!(repair.rounds > 0);
        let cold = Session::new(next.graph(), cfg).unwrap();
        assert_same_report(&next.solve(&q).unwrap(), &cold.solve(&q).unwrap());
    }

    #[test]
    fn apply_delta_rejects_invalid_batches_structurally() {
        use hybrid_graph::DeltaBatch;
        let g = grid(4, 4, 1).unwrap();
        let session = Session::new(&g, SessionConfig::new(1)).unwrap();
        let bad = DeltaBatch::new().remove_edge(NodeId::new(0), NodeId::new(15));
        let err = session.apply_delta(&bad).unwrap_err();
        assert!(matches!(err, HybridError::Delta(_)), "{err:?}");
        assert_eq!(session.epoch(), 0, "failed deltas leave the session untouched");
    }

    #[test]
    fn faulty_sessions_run_cold_and_stay_bit_identical() {
        let g = grid(8, 8, 1).unwrap();
        let plan = FaultPlan::drops(0.2, 77);
        let cfg = SessionConfig { faults: Some(plan.clone()), ..SessionConfig::new(5) };
        let session = Session::new(&g, cfg).unwrap();
        let q = Query::apsp().build().unwrap();
        let run_fresh = || {
            let mut net = HybridNet::new(&g, HybridConfig::default());
            net.inject_faults(&plan).unwrap();
            solve(&mut net, &q, 5)
        };
        for _ in 0..2 {
            let (served, fresh) = (session.solve(&q), run_fresh());
            match (served, fresh) {
                (Ok(a), Ok(b)) => assert_same_report(&a, &b),
                (Err(a), Err(b)) => assert_eq!(a, b),
                other => panic!("outcomes diverged: {other:?}"),
            }
        }
        // Nothing was cached: every query re-ran the full protocol.
        assert_eq!(session.stats().report_hits, 0);
        assert_eq!(session.stats().skeletons_prepared, 0);
        // The batch path honors the cold contract too: duplicates are not
        // deduplicated away, each input runs its own protocol.
        let results = session.solve_batch(&[q.clone(), q.clone()]);
        assert_eq!(results.len(), 2);
        assert_eq!(session.stats().report_hits, 0, "faulty batches never dedup");
        assert_eq!(session.stats().queries, 4);
    }
}
