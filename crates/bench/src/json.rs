//! Machine-readable benchmark output (`BENCH_*.json`).
//!
//! The experiment binary's `--json` flag appends wall-clock records here so
//! the repository accumulates a perf trajectory PR over PR. The format is
//! deliberately tiny and hand-written — the build environment has no serde —
//! and stable: one object with a schema tag and a flat record array.

use std::fmt::Write as _;
use std::time::Instant;

/// One timed benchmark run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Benchmark name (e.g. `"thm11_apsp"`).
    pub bench: String,
    /// Problem size `n`.
    pub n: usize,
    /// Wall-clock nanoseconds of the run.
    pub wall_ns: u128,
    /// Simulated HYBRID rounds of the run (0 for purely sequential
    /// references).
    pub rounds: u64,
}

impl BenchRecord {
    /// Times `f`, recording its wall clock; `f` returns the simulated round
    /// count (0 for sequential reference code).
    pub fn measure(bench: &str, n: usize, f: impl FnOnce() -> u64) -> Self {
        let start = Instant::now();
        let rounds = f();
        BenchRecord { bench: bench.to_string(), n, wall_ns: start.elapsed().as_nanos(), rounds }
    }
}

/// Schema tag written into every file (bump on breaking format changes).
pub const SCHEMA: &str = "hybrid-bench/apsp-v1";

/// Renders records as the `BENCH_*.json` document.
pub fn render(scale: &str, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"scale\": \"{scale}\",");
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"bench\": \"{}\", \"n\": {}, \"wall_ns\": {}, \"rounds\": {}}}{comma}",
            escape(&r.bench),
            r.n,
            r.wall_ns,
            r.rounds
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_shape() {
        let records = vec![
            BenchRecord { bench: "a".into(), n: 10, wall_ns: 123, rounds: 7 },
            BenchRecord { bench: "b\"x".into(), n: 20, wall_ns: 456, rounds: 0 },
        ];
        let s = render("small", &records);
        assert!(s.contains("\"schema\": \"hybrid-bench/apsp-v1\""));
        assert!(s.contains("\"scale\": \"small\""));
        assert!(s.contains("{\"bench\": \"a\", \"n\": 10, \"wall_ns\": 123, \"rounds\": 7},"));
        assert!(s.contains("\"bench\": \"b\\\"x\""));
        assert!(!s.contains("},\n  ]"), "no trailing comma");
    }

    #[test]
    fn measure_times_and_captures_rounds() {
        let r = BenchRecord::measure("x", 5, || 42);
        assert_eq!(r.bench, "x");
        assert_eq!(r.n, 5);
        assert_eq!(r.rounds, 42);
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape("a\nb"), "a\\u000ab");
        assert_eq!(escape("back\\slash"), "back\\\\slash");
    }
}
