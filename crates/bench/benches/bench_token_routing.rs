//! Criterion wall-clock wrapper for E1 (Theorem 2.2) (see EXPERIMENTS.md; the round-count
//! tables come from the `experiments` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use hybrid_bench::experiments::e1_token_routing;
use hybrid_bench::Scale;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bench_token_routing");
    group.sample_size(10);
    group.bench_function("e1_small", |b| b.iter(|| e1_token_routing(Scale::Small)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
