//! k-wise independent hash families (Appendix D of the paper).
//!
//! Token routing selects intermediate nodes by hashing token labels `(s, r, i)`.
//! Lemma D.2 needs the targets to be uniform and `Θ(log n)`-wise independent so
//! that Chernoff bounds with limited independence (Schmidt–Siegel–Srinivasan)
//! bound every node's receive load by `O(log n)` w.h.p.
//!
//! The classic construction (Lemma D.1, cf. Vadhan): a random polynomial of
//! degree `k-1` over the prime field `F_p` with `p = 2^61 - 1`; evaluating at the
//! (injectively encoded) label yields a k-wise independent value. The seed is the
//! `k` coefficients — `k · 61 ∈ O(log² n)` bits for `k ∈ Θ(log n)`, matching
//! Lemma 2.3's seed-size claim.

use hybrid_graph::NodeId;
use rand::Rng;

/// The Mersenne prime `2^61 - 1` used as the field modulus.
pub const FIELD_PRIME: u64 = (1 << 61) - 1;

/// A token label `(s, r, i)`: token number `i` from sender `s` to receiver `r`
/// (§2.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenLabel {
    /// Sender.
    pub s: NodeId,
    /// Receiver.
    pub r: NodeId,
    /// Index among the tokens from `s` to `r`.
    pub i: u32,
}

impl TokenLabel {
    /// Creates a label.
    pub fn new(s: NodeId, r: NodeId, i: u32) -> Self {
        TokenLabel { s, r, i }
    }

    /// Injective encoding of the label as a field element.
    ///
    /// Valid for networks with `n < 2^20` nodes and at most `2^20` tokens per
    /// `(s, r)` pair; the encoding stays below `2^61 - 1`.
    pub fn key(&self) -> u64 {
        debug_assert!(self.s.raw() < (1 << 20) && self.r.raw() < (1 << 20));
        ((self.s.raw() as u64) << 40) | ((self.r.raw() as u64) << 20) | (self.i as u64 & 0xFFFFF)
    }
}

/// Multiplication mod `2^61 - 1` without overflow.
fn mul_mod(a: u64, b: u64) -> u64 {
    let prod = (a as u128) * (b as u128);
    let lo = (prod & FIELD_PRIME as u128) as u64;
    let hi = (prod >> 61) as u64;
    let mut s = lo + hi;
    if s >= FIELD_PRIME {
        s -= FIELD_PRIME;
    }
    s
}

fn add_mod(a: u64, b: u64) -> u64 {
    let s = a + b;
    if s >= FIELD_PRIME {
        s - FIELD_PRIME
    } else {
        s
    }
}

/// A hash function drawn from a k-wise independent family
/// `h : F_p → {0, …, range-1}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KWiseHash {
    coeffs: Vec<u64>,
    range: u64,
}

impl KWiseHash {
    /// Samples a degree-`(k-1)` polynomial with coefficients uniform in `F_p`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `range == 0`.
    pub fn sample<R: Rng + ?Sized>(k: usize, range: u64, rng: &mut R) -> Self {
        assert!(k >= 1, "independence parameter must be positive");
        assert!(range >= 1, "range must be positive");
        let coeffs = (0..k).map(|_| rng.gen_range(0..FIELD_PRIME)).collect();
        KWiseHash { coeffs, range }
    }

    /// Independence parameter `k` of the family.
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// Size of the random seed in bits (`k · 61`) — `O(log² n)` for
    /// `k ∈ Θ(log n)`, as claimed by Lemma 2.3.
    pub fn seed_bits(&self) -> usize {
        self.coeffs.len() * 61
    }

    /// The output range `{0, …, range-1}`.
    pub fn range(&self) -> u64 {
        self.range
    }

    /// Evaluates the polynomial at `key` (Horner) and reduces into the range.
    ///
    /// The final `mod range` introduces a `≤ p/range / p` deviation from perfect
    /// uniformity — negligible for `range ≪ 2^61` and irrelevant to the Chernoff
    /// argument (Remark A.1 tolerates any `µ_H ≥ E(X)`).
    pub fn eval(&self, key: u64) -> u64 {
        let x = key % FIELD_PRIME;
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = add_mod(mul_mod(acc, x), c);
        }
        acc % self.range
    }

    /// Hashes a token label to a node of an `n`-node network — the
    /// `h : V × V × N → V` of Algorithm 4.
    pub fn node_for(&self, label: TokenLabel) -> NodeId {
        NodeId::new((self.eval(label.key()) % self.range) as usize)
    }

    /// Serializes the seed (for broadcasting it over the global network). Each
    /// coefficient is one `O(log n)`-bit message at realistic `n`.
    pub fn seed_words(&self) -> Vec<u64> {
        self.coeffs.clone()
    }

    /// Reconstructs the hash from broadcast seed words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty or `range == 0`.
    pub fn from_seed_words(words: Vec<u64>, range: u64) -> Self {
        assert!(!words.is_empty() && range >= 1);
        KWiseHash { coeffs: words.into_iter().map(|w| w % FIELD_PRIME).collect(), range }
    }
}

/// The independence parameter Lemma D.2 needs: `k = ⌈3c/ξ · σ⌉` with
/// `σ ∈ Θ(log n)`; we use `4⌈log2 n⌉` (comfortably `Θ(log n)`).
pub fn independence_for(n: usize) -> usize {
    4 * hybrid_graph::graph::log2_ceil(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn label_key_is_injective() {
        let mut keys = std::collections::HashSet::new();
        for s in 0..8 {
            for r in 0..8 {
                for i in 0..8 {
                    assert!(keys.insert(TokenLabel::new(NodeId::new(s), NodeId::new(r), i).key()));
                }
            }
        }
    }

    #[test]
    fn eval_is_deterministic_and_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let h = KWiseHash::sample(8, 100, &mut rng);
        for key in 0..1000u64 {
            let v = h.eval(key);
            assert!(v < 100);
            assert_eq!(v, h.eval(key));
        }
    }

    #[test]
    fn seed_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let h = KWiseHash::sample(6, 50, &mut rng);
        let h2 = KWiseHash::from_seed_words(h.seed_words(), 50);
        assert_eq!(h, h2);
        assert_eq!(h.seed_bits(), 6 * 61);
    }

    #[test]
    fn outputs_look_uniform() {
        // Chi-squared-ish sanity: 10_000 evaluations over range 16 should put
        // every bucket within 3x of the mean.
        let mut rng = StdRng::seed_from_u64(3);
        let h = KWiseHash::sample(16, 16, &mut rng);
        let mut buckets = [0u32; 16];
        for key in 0..10_000u64 {
            buckets[h.eval(key * 2654435761 + 17) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 200 && b < 1900, "bucket count {b} implausible for uniform");
        }
    }

    #[test]
    fn pairwise_independence_moment() {
        // Empirical second-moment check: for a fresh random function, the
        // collision rate of distinct keys should be ≈ 1/range.
        let mut rng = StdRng::seed_from_u64(4);
        let range = 64u64;
        let mut collisions = 0u32;
        let trials = 4000;
        for t in 0..trials {
            let h = KWiseHash::sample(4, range, &mut rng);
            if h.eval(2 * t + 1) == h.eval(2 * t + 2) {
                collisions += 1;
            }
        }
        let rate = collisions as f64 / trials as f64;
        assert!(
            (rate - 1.0 / range as f64).abs() < 0.02,
            "collision rate {rate} far from {}",
            1.0 / range as f64
        );
    }

    #[test]
    fn mul_mod_matches_u128() {
        let cases = [(FIELD_PRIME - 1, FIELD_PRIME - 1), (12345, 67890), (1 << 60, 3)];
        for (a, b) in cases {
            let expect = ((a as u128 * b as u128) % FIELD_PRIME as u128) as u64;
            assert_eq!(mul_mod(a, b), expect);
        }
    }

    #[test]
    fn independence_parameter_scales() {
        assert_eq!(independence_for(1024), 40);
        assert!(independence_for(2) >= 4);
    }
}
