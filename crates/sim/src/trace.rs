//! Structured tracing: round-level spans, per-exchange events, and
//! self-reconciling aggregates.
//!
//! The simulator's scientific payload is the simulated round bill; this
//! module makes it *inspectable* without making it *different*. A
//! [`Recorder`] installed via [`crate::HybridNet::set_trace`] buffers one
//! [`TraceEvent`] per charge the net makes — local charges, global
//! exchanges (with per-exchange message counts and send/receive loads),
//! reliable-layer waves (backoff, retransmissions, declare-dead), and the
//! solver-level spans opened by higher layers. Tracing is strictly
//! observational: a traced run produces bit-identical answers, guarantees,
//! and round bills, and a disabled trace costs zero allocations on the
//! steady-state exchange path (enforced by the counting-allocator suite).
//!
//! Because every event mirrors exactly one `Metrics` mutation,
//! [`Recorder::reconcile`] can prove the trace is complete: the
//! event-derived totals (rounds, messages, drops, retransmissions, and the
//! per-phase breakdown) must equal the final [`Metrics`] counters exactly.
//! The scenario smoke matrix enforces this for every registry workload.
//!
//! Exports: [`Recorder::chrome_trace`] renders the buffer in the
//! `chrome://tracing` JSON format with **simulated rounds as the clock**
//! (1 round = 1 µs on the viewer's axis); [`Recorder::rollup`] renders a
//! text phase tree with rounds/messages/wall-µs per span.
//!
//! # Example
//!
//! ```
//! use hybrid_graph::generators::path;
//! use hybrid_graph::NodeId;
//! use hybrid_sim::{Envelope, HybridConfig, HybridNet, Recorder};
//!
//! let g = path(8, 1).unwrap();
//! let mut net = HybridNet::new(&g, HybridConfig::default());
//! net.set_trace(Recorder::new());
//! net.trace_span_begin("solve:example");
//! net.charge_local(2, "explore");
//! net.exchange("route", vec![Envelope::new(NodeId::new(0), NodeId::new(3), 7u32)]).unwrap();
//! net.trace_span_end("solve:example");
//!
//! let rec = net.take_trace().unwrap();
//! rec.reconcile(net.metrics()).expect("trace totals equal the metrics");
//! assert!(rec.chrome_trace().contains("\"traceEvents\""));
//! assert!(rec.rollup().contains("solve:example"));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use crate::metrics::{Metrics, PhaseStats};

/// One structured observation of a simulated run.
///
/// Charge-mirroring variants ([`TraceEvent::Local`],
/// [`TraceEvent::GlobalRounds`], [`TraceEvent::Exchange`],
/// [`TraceEvent::Backoff`], [`TraceEvent::Wave`], [`TraceEvent::Absorb`])
/// advance the simulated clock by their `rounds` contribution; marker
/// variants (spans, cache hits, declare-dead, delivery summaries) do not.
/// Wall-clock fields appear only on span events and are filled by the
/// [`Recorder`] at record time — determinism comparisons use
/// [`Recorder::events_sans_wall`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A named scope opened (solver `solve`, `prepare` phases, session items).
    SpanBegin {
        /// Scope name, e.g. `"solve:apsp-thm11"`.
        name: String,
        /// Simulated round clock at open.
        round: u64,
        /// Wall-clock µs since the recorder's epoch (filled at record time).
        wall_us: u64,
    },
    /// A named scope closed.
    SpanEnd {
        /// Scope name (matches the corresponding [`TraceEvent::SpanBegin`]).
        name: String,
        /// Simulated round clock at close.
        round: u64,
        /// Wall-clock µs since the recorder's epoch (filled at record time).
        wall_us: u64,
    },
    /// A local-mode charge ([`crate::HybridNet::charge_local`]).
    Local {
        /// Phase label.
        phase: String,
        /// Rounds charged.
        rounds: u64,
    },
    /// A bulk global-mode charge ([`crate::HybridNet::charge_global_rounds`]).
    GlobalRounds {
        /// Phase label.
        phase: String,
        /// Rounds charged.
        rounds: u64,
    },
    /// One fire-and-forget global exchange (also the empty reliable
    /// exchange, which bills its round without running waves).
    Exchange {
        /// Phase label.
        phase: String,
        /// Rounds the exchange cost (> 1 when stretched).
        rounds: u64,
        /// Messages delivered on the wire.
        messages: u64,
        /// Largest per-node send load of this exchange.
        max_send_load: u64,
        /// Largest per-node receive load of this exchange.
        max_recv_load: u64,
        /// Messages removed by the random-loss stream before the wire.
        lost: u64,
        /// Messages suppressed because an endpoint had crashed.
        suppressed: u64,
        /// Messages whose payload the corruption stream flipped (discarded
        /// before delivery — fire-and-forget has no retransmission).
        corrupted: u64,
    },
    /// A reliable-layer exponential-backoff pause before a retry wave.
    Backoff {
        /// Phase label.
        phase: String,
        /// Wave number (the first retry wave is 2).
        wave: u64,
        /// Backoff rounds charged.
        rounds: u64,
    },
    /// One reliable-layer transmission wave (wire rounds plus an ack round).
    Wave {
        /// Phase label.
        phase: String,
        /// Wave number (1 is the initial transmission).
        wave: u64,
        /// Wire rounds of the wave (> 1 when stretched).
        rounds: u64,
        /// Ack rounds charged after the wire rounds (always 1 today).
        ack_rounds: u64,
        /// Messages attempted on the wire this wave.
        messages: u64,
        /// Attempted messages that were retransmissions.
        retransmissions: u64,
        /// Attempted messages lost to the drop stream this wave.
        lost: u64,
        /// Messages suppressed this wave (crashed sender, destination
        /// already declared dead, or given up on at the attempt bound).
        suppressed: u64,
        /// Attempted messages whose payload arrived bit-flipped this wave —
        /// checksum-detected, discarded, and queued for retransmission.
        corrupted: u64,
        /// Messages delivered this wave after at least one retransmission.
        recovered: u64,
        /// Largest per-node send load of the wave.
        max_send_load: u64,
    },
    /// The reliable layer's failure detector declared a node dead.
    DeclareDead {
        /// The node given up on.
        node: u32,
    },
    /// Delivered-set summary of a reliable exchange after recovery.
    Delivered {
        /// Messages that reached their inboxes.
        messages: u64,
        /// Largest per-node receive load of the final delivery.
        max_recv_load: u64,
    },
    /// A cache-visibility marker (session report memo, prepared skeletons).
    Cache {
        /// What was looked up, e.g. `"skeleton:apsp-skeleton"`.
        name: String,
        /// `true` for a hit (served from cache), `false` for a cold build.
        hit: bool,
    },
    /// Totals of a nested sub-execution merged via
    /// [`crate::HybridNet::absorb_metrics`] (e.g. the CLIQUE simulation's
    /// inner net). The sub-run is opaque to this trace; its counters are
    /// folded in wholesale so reconciliation stays exact.
    Absorb {
        /// Sub-run total rounds.
        rounds: u64,
        /// Sub-run local-mode rounds.
        local_rounds: u64,
        /// Sub-run global messages.
        messages: u64,
        /// Sub-run messages lost to drop streams.
        lost: u64,
        /// Sub-run messages suppressed by crashes.
        suppressed: u64,
        /// Sub-run corrupted payloads (checksum-detected, never delivered).
        corrupted: u64,
        /// Sub-run retransmissions.
        retransmissions: u64,
        /// Sub-run recovered messages.
        recovered: u64,
        /// Sub-run declared-dead count.
        declared_dead: u64,
        /// Sub-run stretched exchanges.
        stretched: u64,
        /// Sub-run per-phase breakdown.
        phases: Vec<(String, PhaseStats)>,
    },
}

impl TraceEvent {
    /// Rounds this event advances the simulated clock by (0 for markers).
    pub fn clock_rounds(&self) -> u64 {
        match self {
            TraceEvent::Local { rounds, .. }
            | TraceEvent::GlobalRounds { rounds, .. }
            | TraceEvent::Exchange { rounds, .. }
            | TraceEvent::Backoff { rounds, .. }
            | TraceEvent::Absorb { rounds, .. } => *rounds,
            TraceEvent::Wave { rounds, ack_rounds, .. } => rounds + ack_rounds,
            _ => 0,
        }
    }

    /// A copy with wall-clock fields zeroed — the comparison shape of the
    /// determinism tests (two traced runs must agree on everything else).
    pub fn sans_wall(&self) -> TraceEvent {
        let mut ev = self.clone();
        match &mut ev {
            TraceEvent::SpanBegin { wall_us, .. } | TraceEvent::SpanEnd { wall_us, .. } => {
                *wall_us = 0;
            }
            _ => {}
        }
        ev
    }
}

/// A consumer of trace events. The buffered [`Recorder`] is the sink the
/// net writes into; exporters and tests implement this to walk a recorded
/// buffer via [`Recorder::replay`].
pub trait TraceSink {
    /// Consumes one event.
    fn record(&mut self, ev: TraceEvent);
}

/// Event-derived aggregate totals (see [`Recorder::totals`]) — the left-hand
/// side of [`Recorder::reconcile`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Totals {
    /// Total rounds derived from charge events.
    pub rounds: u64,
    /// Local-mode rounds.
    pub local_rounds: u64,
    /// Global messages on the wire.
    pub messages: u64,
    /// Messages lost to drop streams.
    pub lost: u64,
    /// Messages suppressed by crashes.
    pub suppressed: u64,
    /// Corrupted payloads (checksum-detected, never delivered).
    pub corrupted: u64,
    /// Retransmitted messages.
    pub retransmissions: u64,
    /// Messages recovered after retransmission.
    pub recovered: u64,
    /// Nodes declared dead.
    pub declared_dead: u64,
    /// Exchanges/waves that stretched past one wire round.
    pub stretched: u64,
    /// Per-phase breakdown derived from charge events.
    pub phases: BTreeMap<String, PhaseStats>,
}

impl Totals {
    fn phase(&mut self, label: &str) -> &mut PhaseStats {
        if !self.phases.contains_key(label) {
            self.phases.insert(label.to_string(), PhaseStats::default());
        }
        self.phases.get_mut(label).expect("just interned")
    }

    fn apply(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Local { phase, rounds } => {
                self.rounds += rounds;
                self.local_rounds += rounds;
                self.phase(phase).rounds += rounds;
            }
            TraceEvent::GlobalRounds { phase, rounds }
            | TraceEvent::Backoff { phase, rounds, .. } => {
                self.rounds += rounds;
                self.phase(phase).rounds += rounds;
            }
            TraceEvent::Exchange {
                phase, rounds, messages, lost, suppressed, corrupted, ..
            } => {
                self.rounds += rounds;
                self.messages += messages;
                self.lost += lost;
                self.suppressed += suppressed;
                self.corrupted += corrupted;
                if *rounds > 1 {
                    self.stretched += 1;
                }
                let e = self.phase(phase);
                e.rounds += rounds;
                e.messages += messages;
            }
            TraceEvent::Wave {
                phase,
                rounds,
                ack_rounds,
                messages,
                retransmissions,
                lost,
                suppressed,
                corrupted,
                recovered,
                ..
            } => {
                self.rounds += rounds + ack_rounds;
                self.messages += messages;
                self.retransmissions += retransmissions;
                self.lost += lost;
                self.suppressed += suppressed;
                self.corrupted += corrupted;
                self.recovered += recovered;
                if *rounds > 1 {
                    self.stretched += 1;
                }
                let e = self.phase(phase);
                e.rounds += rounds + ack_rounds;
                e.messages += messages;
            }
            TraceEvent::DeclareDead { .. } => self.declared_dead += 1,
            TraceEvent::Absorb {
                rounds,
                local_rounds,
                messages,
                lost,
                suppressed,
                corrupted,
                retransmissions,
                recovered,
                declared_dead,
                stretched,
                phases,
            } => {
                self.rounds += rounds;
                self.local_rounds += local_rounds;
                self.messages += messages;
                self.lost += lost;
                self.suppressed += suppressed;
                self.corrupted += corrupted;
                self.retransmissions += retransmissions;
                self.recovered += recovered;
                self.declared_dead += declared_dead;
                self.stretched += stretched;
                for (label, stats) in phases {
                    let e = self.phase(label);
                    e.rounds += stats.rounds;
                    e.messages += stats.messages;
                }
            }
            TraceEvent::SpanBegin { .. }
            | TraceEvent::SpanEnd { .. }
            | TraceEvent::Delivered { .. }
            | TraceEvent::Cache { .. } => {}
        }
    }
}

/// The buffered trace sink the simulator emits into (install with
/// [`crate::HybridNet::set_trace`], retrieve with
/// [`crate::HybridNet::take_trace`]). See the module docs for the contract
/// and an end-to-end example.
#[derive(Debug, Clone)]
pub struct Recorder {
    epoch: Instant,
    events: Vec<TraceEvent>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl TraceSink for Recorder {
    fn record(&mut self, ev: TraceEvent) {
        Recorder::record(self, ev);
    }
}

impl Recorder {
    /// An empty recorder; its wall-clock epoch is now.
    pub fn new() -> Self {
        Recorder { epoch: Instant::now(), events: Vec::new() }
    }

    /// Buffers one event, stamping span events with the wall clock.
    pub fn record(&mut self, mut ev: TraceEvent) {
        match &mut ev {
            TraceEvent::SpanBegin { wall_us, .. } | TraceEvent::SpanEnd { wall_us, .. } => {
                *wall_us = self.epoch.elapsed().as_micros() as u64;
            }
            _ => {}
        }
        self.events.push(ev);
    }

    /// Opens a named span at the given simulated round.
    pub fn span_begin(&mut self, name: &str, round: u64) {
        self.record(TraceEvent::SpanBegin { name: name.to_string(), round, wall_us: 0 });
    }

    /// Closes a named span at the given simulated round.
    pub fn span_end(&mut self, name: &str, round: u64) {
        self.record(TraceEvent::SpanEnd { name: name.to_string(), round, wall_us: 0 });
    }

    /// The buffered events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events with wall-clock fields zeroed — what the determinism
    /// tests compare across runs and thread budgets.
    pub fn events_sans_wall(&self) -> Vec<TraceEvent> {
        self.events.iter().map(TraceEvent::sans_wall).collect()
    }

    /// Appends another recorder's events (batch items are merged in item
    /// order; wall clocks stay relative to each recorder's own epoch).
    pub fn merge(&mut self, other: &Recorder) {
        self.events.extend(other.events.iter().cloned());
    }

    /// Feeds every buffered event to a sink, in order.
    pub fn replay<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        for ev in &self.events {
            sink.record(ev.clone());
        }
    }

    /// Event-derived aggregate totals.
    pub fn totals(&self) -> Totals {
        let mut t = Totals::default();
        for ev in &self.events {
            t.apply(ev);
        }
        t
    }

    /// Proves the trace is complete: the event-derived totals must equal
    /// the [`Metrics`] counters of the traced run *exactly* — rounds (total
    /// and local), global messages, loss/suppression/corruption splits,
    /// retransmissions, recoveries, declared-dead count, stretched
    /// exchanges, and the full per-phase rounds/messages breakdown.
    ///
    /// # Errors
    ///
    /// A human-readable list of every mismatching counter.
    pub fn reconcile(&self, metrics: &Metrics) -> Result<(), String> {
        let t = self.totals();
        let mut errs = Vec::new();
        let mut check = |what: &str, trace: u64, metric: u64| {
            if trace != metric {
                errs.push(format!("{what}: trace says {trace}, metrics say {metric}"));
            }
        };
        check("rounds", t.rounds, metrics.rounds);
        check("local rounds", t.local_rounds, metrics.local_rounds);
        check("global rounds", t.rounds - t.local_rounds, metrics.global_rounds);
        check("global messages", t.messages, metrics.global_messages);
        check("dropped by loss", t.lost, metrics.dropped_by_loss);
        check("suppressed by crash", t.suppressed, metrics.suppressed_by_crash);
        check("corrupted payloads", t.corrupted, metrics.corrupted_messages);
        check("dropped messages", t.lost + t.suppressed + t.corrupted, metrics.dropped_messages);
        check("retransmissions", t.retransmissions, metrics.retransmissions);
        check("recovered messages", t.recovered, metrics.recovered_messages);
        check("declared dead", t.declared_dead, metrics.declared_dead);
        check("stretched exchanges", t.stretched, metrics.stretched_exchanges);
        for (label, stats) in &metrics.phases {
            let got = t.phases.get(label).copied().unwrap_or_default();
            if got != *stats {
                errs.push(format!(
                    "phase {label}: trace says {}r/{}m, metrics say {}r/{}m",
                    got.rounds, got.messages, stats.rounds, stats.messages
                ));
            }
        }
        for label in t.phases.keys() {
            if !metrics.phases.contains_key(label) {
                errs.push(format!("phase {label}: in trace but not in metrics"));
            }
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs.join("; "))
        }
    }

    /// Renders the buffer in the `chrome://tracing` / Perfetto JSON format,
    /// with **simulated rounds as the clock** (`ts`/`dur` are rounds, which
    /// the viewer displays as µs). Load the file via `chrome://tracing` or
    /// <https://ui.perfetto.dev>. Spans become `B`/`E` pairs; charges become
    /// complete (`X`) slices; markers become instants.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("{\n  \"displayTimeUnit\": \"ms\",\n");
        out.push_str("  \"otherData\": {\"clock\": \"simulated-rounds\"},\n");
        out.push_str("  \"traceEvents\": [\n");
        let mut clock = 0u64;
        let mut first = true;
        let push = |line: String, out: &mut String, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str("    ");
            out.push_str(&line);
        };
        for ev in &self.events {
            let line = match ev {
                TraceEvent::SpanBegin { name, .. } => Some(format!(
                    "{{\"name\": \"{}\", \"ph\": \"B\", \"ts\": {clock}, \"pid\": 0, \"tid\": 0}}",
                    escape(name)
                )),
                TraceEvent::SpanEnd { name, .. } => Some(format!(
                    "{{\"name\": \"{}\", \"ph\": \"E\", \"ts\": {clock}, \"pid\": 0, \"tid\": 0}}",
                    escape(name)
                )),
                TraceEvent::Local { phase, rounds } => Some(format!(
                    "{{\"name\": \"local:{}\", \"ph\": \"X\", \"ts\": {clock}, \"dur\": {rounds}, \
                     \"pid\": 0, \"tid\": 0}}",
                    escape(phase)
                )),
                TraceEvent::GlobalRounds { phase, rounds } => Some(format!(
                    "{{\"name\": \"global:{}\", \"ph\": \"X\", \"ts\": {clock}, \"dur\": {rounds}, \
                     \"pid\": 0, \"tid\": 0}}",
                    escape(phase)
                )),
                TraceEvent::Exchange {
                    phase,
                    rounds,
                    messages,
                    max_send_load,
                    max_recv_load,
                    lost,
                    suppressed,
                    corrupted,
                } => Some(format!(
                    "{{\"name\": \"exchange:{}\", \"ph\": \"X\", \"ts\": {clock}, \
                     \"dur\": {rounds}, \"pid\": 0, \"tid\": 0, \"args\": {{\"messages\": \
                     {messages}, \"max_send_load\": {max_send_load}, \"max_recv_load\": \
                     {max_recv_load}, \"lost\": {lost}, \"suppressed\": {suppressed}, \
                     \"corrupted\": {corrupted}}}}}",
                    escape(phase)
                )),
                TraceEvent::Backoff { phase, wave, rounds } => Some(format!(
                    "{{\"name\": \"backoff:{}\", \"ph\": \"X\", \"ts\": {clock}, \
                     \"dur\": {rounds}, \"pid\": 0, \"tid\": 0, \"args\": {{\"wave\": {wave}}}}}",
                    escape(phase)
                )),
                TraceEvent::Wave {
                    phase,
                    wave,
                    rounds,
                    ack_rounds,
                    messages,
                    retransmissions,
                    lost,
                    suppressed,
                    corrupted,
                    recovered,
                    max_send_load,
                } => Some(format!(
                    "{{\"name\": \"wave:{}\", \"ph\": \"X\", \"ts\": {clock}, \"dur\": {}, \
                     \"pid\": 0, \"tid\": 0, \"args\": {{\"wave\": {wave}, \"messages\": \
                     {messages}, \"retransmissions\": {retransmissions}, \"lost\": {lost}, \
                     \"suppressed\": {suppressed}, \"corrupted\": {corrupted}, \
                     \"recovered\": {recovered}, \"max_send_load\": {max_send_load}}}}}",
                    escape(phase),
                    rounds + ack_rounds
                )),
                TraceEvent::DeclareDead { node } => Some(format!(
                    "{{\"name\": \"declare-dead:{node}\", \"ph\": \"i\", \"ts\": {clock}, \
                     \"s\": \"g\", \"pid\": 0, \"tid\": 0}}"
                )),
                TraceEvent::Delivered { messages, max_recv_load } => Some(format!(
                    "{{\"name\": \"delivered\", \"ph\": \"i\", \"ts\": {clock}, \"s\": \"t\", \
                     \"pid\": 0, \"tid\": 0, \"args\": {{\"messages\": {messages}, \
                     \"max_recv_load\": {max_recv_load}}}}}"
                )),
                TraceEvent::Cache { name, hit } => Some(format!(
                    "{{\"name\": \"cache-{}:{}\", \"ph\": \"i\", \"ts\": {clock}, \"s\": \"t\", \
                     \"pid\": 0, \"tid\": 0}}",
                    if *hit { "hit" } else { "miss" },
                    escape(name)
                )),
                TraceEvent::Absorb { rounds, messages, .. } => Some(format!(
                    "{{\"name\": \"absorbed-subrun\", \"ph\": \"X\", \"ts\": {clock}, \
                     \"dur\": {rounds}, \"pid\": 0, \"tid\": 0, \"args\": {{\"messages\": \
                     {messages}}}}}"
                )),
            };
            if let Some(line) = line {
                push(line, &mut out, &mut first);
            }
            clock += ev.clock_rounds();
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders a text rollup: the span tree with simulated rounds, global
    /// messages, and wall-µs per span, and each span's per-phase charge
    /// breakdown (innermost attribution) beneath it.
    pub fn rollup(&self) -> String {
        struct Node {
            name: String,
            depth: usize,
            begin_clock: u64,
            rounds: u64,
            messages: u64,
            wall_begin: u64,
            wall_us: Option<u64>,
            phases: Vec<(String, PhaseStats)>,
            cache: Vec<(String, bool)>,
            children: Vec<usize>,
        }
        let mut nodes = vec![Node {
            name: "run".to_string(),
            depth: 0,
            begin_clock: 0,
            rounds: 0,
            messages: 0,
            wall_begin: 0,
            wall_us: None,
            phases: Vec::new(),
            cache: Vec::new(),
            children: Vec::new(),
        }];
        let mut stack = vec![0usize];
        let mut clock = 0u64;
        for ev in &self.events {
            match ev {
                TraceEvent::SpanBegin { name, wall_us, .. } => {
                    let parent = *stack.last().expect("root never popped");
                    let depth = nodes[parent].depth + 1;
                    nodes.push(Node {
                        name: name.clone(),
                        depth,
                        begin_clock: clock,
                        rounds: 0,
                        messages: 0,
                        wall_begin: *wall_us,
                        wall_us: None,
                        phases: Vec::new(),
                        cache: Vec::new(),
                        children: Vec::new(),
                    });
                    let id = nodes.len() - 1;
                    nodes[parent].children.push(id);
                    stack.push(id);
                }
                TraceEvent::SpanEnd { wall_us, .. } => {
                    if stack.len() > 1 {
                        let id = stack.pop().expect("non-empty");
                        nodes[id].rounds = clock - nodes[id].begin_clock;
                        nodes[id].wall_us = Some(wall_us.saturating_sub(nodes[id].wall_begin));
                    }
                }
                TraceEvent::Cache { name, hit } => {
                    let top = *stack.last().expect("root never popped");
                    nodes[top].cache.push((name.clone(), *hit));
                }
                _ => {
                    let dr = ev.clock_rounds();
                    let dm = match ev {
                        TraceEvent::Exchange { messages, .. }
                        | TraceEvent::Wave { messages, .. }
                        | TraceEvent::Absorb { messages, .. } => *messages,
                        _ => 0,
                    };
                    for &id in &stack {
                        nodes[id].messages += dm;
                    }
                    if dr > 0 || dm > 0 {
                        let top = *stack.last().expect("root never popped");
                        let label = match ev {
                            TraceEvent::Local { phase, .. }
                            | TraceEvent::GlobalRounds { phase, .. }
                            | TraceEvent::Exchange { phase, .. }
                            | TraceEvent::Backoff { phase, .. }
                            | TraceEvent::Wave { phase, .. } => phase.clone(),
                            _ => "(absorbed)".to_string(),
                        };
                        let node = &mut nodes[top];
                        match node.phases.iter_mut().find(|(l, _)| *l == label) {
                            Some((_, stats)) => {
                                stats.rounds += dr;
                                stats.messages += dm;
                            }
                            None => {
                                node.phases.push((label, PhaseStats { rounds: dr, messages: dm }));
                            }
                        }
                    }
                    clock += dr;
                }
            }
        }
        // Close any span left open (panicking run, partial trace).
        while stack.len() > 1 {
            let id = stack.pop().expect("non-empty");
            nodes[id].rounds = clock - nodes[id].begin_clock;
        }
        nodes[0].rounds = clock;

        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace rollup: {} events, {} simulated rounds, {} global messages",
            self.events.len(),
            clock,
            nodes[0].messages
        );
        // Pre-order DFS over the recorded tree.
        fn render(nodes: &[Node], id: usize, out: &mut String) {
            let n = &nodes[id];
            if id != 0 {
                let indent = "  ".repeat(n.depth);
                let wall = n.wall_us.map(|w| format!("  wall {w}\u{b5}s")).unwrap_or_default();
                let _ = writeln!(
                    out,
                    "{indent}{:<32} rounds {:>8}  msgs {:>10}{wall}",
                    n.name, n.rounds, n.messages
                );
            }
            let indent = "  ".repeat(n.depth + 1);
            for (label, stats) in &n.phases {
                if stats.messages > 0 {
                    let _ = writeln!(
                        out,
                        "{indent}[phase] {:<24} rounds {:>8}  msgs {:>10}",
                        label, stats.rounds, stats.messages
                    );
                } else {
                    let _ =
                        writeln!(out, "{indent}[phase] {:<24} rounds {:>8}", label, stats.rounds);
                }
            }
            for (name, hit) in &n.cache {
                let _ =
                    writeln!(out, "{indent}[cache] {name}: {}", if *hit { "hit" } else { "cold" });
            }
            for &c in &n.children {
                render(nodes, c, out);
            }
        }
        render(&nodes, 0, &mut out);
        out
    }
}

/// Per-shard receive-side observations of one exchange's scatter. The
/// thread-sharded path fills one per shard and merges them **in shard
/// order** (exactly like the per-shard `Metrics` are absorbed), so the
/// merged result is bit-identical to the sequential scan — max is
/// associative, and the shard ranges partition the nodes in index order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ShardTrace {
    /// Largest per-node receive load seen by this shard.
    pub max_recv_load: u64,
}

impl ShardTrace {
    /// Records one node's receive load.
    pub fn observe(&mut self, load: usize) {
        self.max_recv_load = self.max_recv_load.max(load as u64);
    }

    /// Merges another shard's observations (shard-order merge).
    pub fn absorb(&mut self, other: &ShardTrace) {
        self.max_recv_load = self.max_recv_load.max(other.max_recv_load);
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exchange_ev(phase: &str, rounds: u64, messages: u64) -> TraceEvent {
        TraceEvent::Exchange {
            phase: phase.to_string(),
            rounds,
            messages,
            max_send_load: 1,
            max_recv_load: 1,
            lost: 0,
            suppressed: 0,
            corrupted: 0,
        }
    }

    #[test]
    fn totals_mirror_metric_charges() {
        let mut rec = Recorder::new();
        rec.record(TraceEvent::Local { phase: "explore".into(), rounds: 5 });
        rec.record(exchange_ev("route", 1, 10));
        rec.record(exchange_ev("route", 3, 30));
        let mut m = Metrics::new();
        m.charge_local(5, "explore");
        m.charge_global(1, 10, "route");
        m.charge_global(3, 30, "route");
        rec.reconcile(&m).unwrap();
        let t = rec.totals();
        assert_eq!(t.rounds, 9);
        assert_eq!(t.stretched, 1);
        assert_eq!(t.phases["route"].messages, 40);
    }

    #[test]
    fn reconcile_reports_every_mismatch() {
        let mut rec = Recorder::new();
        rec.record(TraceEvent::Local { phase: "a".into(), rounds: 2 });
        let mut m = Metrics::new();
        m.charge_local(3, "a");
        m.charge_global(1, 4, "b");
        let err = rec.reconcile(&m).unwrap_err();
        assert!(err.contains("rounds"), "{err}");
        assert!(err.contains("phase a"), "{err}");
        assert!(err.contains("phase b"), "{err}");
        // A phase only the trace knows is also a mismatch.
        let mut rec2 = Recorder::new();
        rec2.record(TraceEvent::Local { phase: "ghost".into(), rounds: 0 });
        let err2 = rec2.reconcile(&Metrics::new()).unwrap_err();
        assert!(err2.contains("ghost"), "{err2}");
    }

    #[test]
    fn wave_and_backoff_events_carry_reliable_counters() {
        let mut rec = Recorder::new();
        rec.record(TraceEvent::Wave {
            phase: "t".into(),
            wave: 1,
            rounds: 1,
            ack_rounds: 1,
            messages: 4,
            retransmissions: 0,
            lost: 1,
            suppressed: 0,
            corrupted: 1,
            recovered: 0,
            max_send_load: 2,
        });
        rec.record(TraceEvent::Backoff { phase: "t".into(), wave: 2, rounds: 1 });
        rec.record(TraceEvent::Wave {
            phase: "t".into(),
            wave: 2,
            rounds: 1,
            ack_rounds: 1,
            messages: 2,
            retransmissions: 2,
            lost: 0,
            suppressed: 0,
            corrupted: 0,
            recovered: 2,
            max_send_load: 1,
        });
        rec.record(TraceEvent::DeclareDead { node: 3 });
        let t = rec.totals();
        assert_eq!(t.rounds, 5);
        assert_eq!(t.messages, 6);
        assert_eq!(t.retransmissions, 2);
        assert_eq!(t.lost, 1);
        assert_eq!(t.corrupted, 1);
        assert_eq!(t.recovered, 2);
        assert_eq!(t.declared_dead, 1);
    }

    #[test]
    fn absorb_event_folds_subrun_totals() {
        let mut sub = Metrics::new();
        sub.charge_local(2, "inner");
        sub.charge_global(1, 6, "inner");
        let mut rec = Recorder::new();
        rec.record(TraceEvent::Absorb {
            rounds: sub.rounds,
            local_rounds: sub.local_rounds,
            messages: sub.global_messages,
            lost: 0,
            suppressed: 0,
            corrupted: 0,
            retransmissions: 0,
            recovered: 0,
            declared_dead: 0,
            stretched: 0,
            phases: sub.phases.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        });
        let mut m = Metrics::new();
        m.absorb(&sub);
        rec.reconcile(&m).unwrap();
    }

    #[test]
    fn span_events_get_wall_stamps_and_strip_them() {
        let mut rec = Recorder::new();
        rec.span_begin("solve:x", 0);
        rec.record(TraceEvent::Local { phase: "p".into(), rounds: 1 });
        rec.span_end("solve:x", 1);
        match &rec.events()[2] {
            TraceEvent::SpanEnd { round, .. } => assert_eq!(*round, 1),
            other => panic!("unexpected {other:?}"),
        }
        let stripped = rec.events_sans_wall();
        assert_eq!(
            stripped[0],
            TraceEvent::SpanBegin { name: "solve:x".into(), round: 0, wall_us: 0 }
        );
        // Two recorders of the same run agree after stripping.
        let mut rec2 = Recorder::new();
        rec2.span_begin("solve:x", 0);
        rec2.record(TraceEvent::Local { phase: "p".into(), rounds: 1 });
        rec2.span_end("solve:x", 1);
        assert_eq!(rec.events_sans_wall(), rec2.events_sans_wall());
    }

    #[test]
    fn chrome_trace_uses_simulated_rounds_as_clock() {
        let mut rec = Recorder::new();
        rec.span_begin("solve:x", 0);
        rec.record(TraceEvent::Local { phase: "explore".into(), rounds: 5 });
        rec.record(exchange_ev("route", 2, 8));
        rec.span_end("solve:x", 7);
        let json = rec.chrome_trace();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\": \"local:explore\", \"ph\": \"X\", \"ts\": 0, \"dur\": 5"));
        assert!(json.contains("\"name\": \"exchange:route\", \"ph\": \"X\", \"ts\": 5, \"dur\": 2"));
        assert!(json.contains("\"ph\": \"E\", \"ts\": 7"));
        assert!(!json.contains(",\n  ]"), "no trailing comma before the array close");
    }

    #[test]
    fn rollup_builds_the_span_tree() {
        let mut rec = Recorder::new();
        rec.span_begin("solve:apsp", 0);
        rec.span_begin("prepare:skeleton", 0);
        rec.record(TraceEvent::Cache { name: "skeleton:apsp".into(), hit: false });
        rec.record(TraceEvent::Local { phase: "skeleton".into(), rounds: 4 });
        rec.span_end("prepare:skeleton", 4);
        rec.record(exchange_ev("route", 3, 12));
        rec.span_end("solve:apsp", 7);
        let text = rec.rollup();
        assert!(text.contains("7 simulated rounds"), "{text}");
        assert!(text.contains("12 global messages"), "{text}");
        assert!(text.contains("solve:apsp"), "{text}");
        assert!(text.contains("prepare:skeleton"), "{text}");
        assert!(text.contains("[cache] skeleton:apsp: cold"), "{text}");
        assert!(text.contains("[phase] route"), "{text}");
        // The outer span covers the inner one's rounds plus its own.
        let solve_line = text.lines().find(|l| l.contains("solve:apsp")).unwrap();
        assert!(solve_line.contains("rounds        7"), "{solve_line}");
    }

    #[test]
    fn shard_trace_merge_is_order_independent_max() {
        let mut a = ShardTrace::default();
        a.observe(3);
        a.observe(1);
        let mut b = ShardTrace::default();
        b.observe(7);
        let mut ab = a;
        ab.absorb(&b);
        let mut ba = b;
        ba.absorb(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.max_recv_load, 7);
    }

    #[test]
    fn replay_feeds_a_custom_sink() {
        struct Counter(usize);
        impl TraceSink for Counter {
            fn record(&mut self, _: TraceEvent) {
                self.0 += 1;
            }
        }
        let mut rec = Recorder::new();
        rec.record(TraceEvent::Local { phase: "p".into(), rounds: 1 });
        rec.record(exchange_ev("q", 1, 1));
        let mut c = Counter(0);
        rec.replay(&mut c);
        assert_eq!(c.0, 2);
    }
}
