//! The scenario registry through the serving front-end: every non-lossy
//! registry workload is servable by a [`hybrid_serve::Broker`] at smoke size
//! with online bit-identity verification, and every lossy fault plan serves
//! through the fault-tolerant path — queries run cold through the reliable
//! layer under the tenant's plan, and the cold referee replays the same
//! plan, so bit-identity verification holds on the chaos path too.

use hybrid_scenarios::registry;
use hybrid_serve::{Broker, BrokerConfig, GraphCatalog, Request, TenantConfig};

const SMOKE_N: usize = 48;

#[test]
fn non_lossy_registry_scenarios_serve_verified_through_the_broker() {
    for sc in registry::registry().iter().filter(|sc| !sc.faults.is_lossy()) {
        let g = sc.graph(SMOKE_N);
        let mut catalog = GraphCatalog::new();
        catalog.insert(sc.name, g);

        // The broker runs the scenario's own regime: its fault plan's network
        // configuration (degraded caps included) and its root seed, so the
        // cold referee reproduces exactly what the runner would execute.
        let mut cfg = BrokerConfig::new(sc.seed);
        cfg.net = sc.faults.config();
        let broker = Broker::new(&catalog, cfg);
        broker.register_tenant("engine", TenantConfig::new(2)).unwrap();

        let req = Request::new("engine", sc.name, sc.suite.query());
        let resp = broker
            .serve(&req)
            .unwrap_or_else(|e| panic!("{}: broker failed to serve registry query: {e}", sc.name));
        assert!(resp.verified, "{}: response must be verified against a cold solve", sc.name);

        // A repeat is a session (and report-memo) hit with the same digest.
        let again = broker.serve(&req).unwrap();
        assert!(again.session_hit, "{}: repeat must hit the cached session", sc.name);
        assert_eq!(again.digest, resp.digest, "{}: repeat digest must match", sc.name);

        let stats = broker.stats();
        assert_eq!(stats.mismatches, 0, "{}: no bit-identity mismatches", sc.name);
        assert_eq!(stats.served, 2, "{}: both requests served", sc.name);
    }
}

#[test]
fn lossy_registry_fault_plans_serve_verified_through_the_broker() {
    let lossy: Vec<_> = registry::registry().iter().filter(|sc| sc.faults.is_lossy()).collect();
    assert!(!lossy.is_empty(), "registry must keep at least one lossy scenario");
    for sc in lossy {
        let g = sc.graph(SMOKE_N);
        let mut catalog = GraphCatalog::new();
        catalog.insert(sc.name, g);

        // Same regime as the healthy test — the scenario's network config and
        // root seed — plus the scenario's own simulator fault plan on the
        // tenant, so every query (and its cold referee) runs under faults.
        let mut cfg = BrokerConfig::new(sc.seed);
        cfg.net = sc.faults.config();
        let broker = Broker::new(&catalog, cfg);
        let plan = sc
            .faults
            .sim_plan(SMOKE_N, sc.seed)
            .expect("lossy scenario plans materialize a simulator fault plan");
        let mut tenant = TenantConfig::new(2);
        tenant.faults = Some(plan);
        broker.register_tenant(sc.name, tenant).unwrap();

        let req = Request::new(sc.name, sc.name, sc.suite.query());
        let resp = broker
            .serve(&req)
            .unwrap_or_else(|e| panic!("{}: broker failed to serve lossy scenario: {e}", sc.name));
        assert!(resp.verified, "{}: chaos-path response must be verified", sc.name);

        // Fault streams are deterministic per run, so a repeat must reproduce
        // the exact same digest even though each run replays the plan afresh.
        let again = broker.serve(&req).unwrap();
        assert_eq!(again.digest, resp.digest, "{}: repeat digest must match", sc.name);

        let stats = broker.stats();
        assert_eq!(stats.mismatches, 0, "{}: no bit-identity mismatches under faults", sc.name);
        assert_eq!(stats.served, 2, "{}: both requests served", sc.name);
    }
}
