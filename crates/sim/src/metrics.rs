//! Execution metrics: the experiment tables are produced from these counters.

use std::collections::BTreeMap;

/// Per-phase rounds/messages breakdown (phases are named by the algorithms, e.g.
/// `"ruling-set"`, `"routing-scheme"`, `"local-exploration"`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Rounds charged under this phase label.
    pub rounds: u64,
    /// Global messages sent under this phase label.
    pub messages: u64,
}

/// Counters accumulated over one simulated execution.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Total rounds (local + global).
    pub rounds: u64,
    /// Rounds charged by local-mode phases.
    pub local_rounds: u64,
    /// Rounds consumed by global-mode exchanges.
    pub global_rounds: u64,
    /// Total messages sent over the global network.
    pub global_messages: u64,
    /// Largest per-node send load observed in a single exchange.
    pub max_send_load: usize,
    /// Largest per-node receive load observed in a single exchange.
    pub max_recv_load: usize,
    /// Number of exchanges that needed more than one round under
    /// [`crate::OverflowPolicy::Stretch`].
    pub stretched_exchanges: u64,
    /// Messages that crossed the registered cut (see
    /// [`crate::HybridNet::set_cut`]); `0` if no cut is registered.
    pub cut_messages: u64,
    /// Global messages removed by the installed fault plan (random drops,
    /// messages from/to crashed nodes, and checksum-discarded corrupted
    /// payloads); `0` without faults. Always equals
    /// `dropped_by_loss + suppressed_by_crash + corrupted_messages` (kept
    /// for schema compatibility).
    pub dropped_messages: u64,
    /// Global messages removed by the random-loss stream alone.
    pub dropped_by_loss: u64,
    /// Global messages suppressed because an endpoint had crashed (or had
    /// been declared dead by the reliable layer).
    pub suppressed_by_crash: u64,
    /// Global messages whose payload the fault plan's corruption stream
    /// flipped in flight. The reliable layer's checksum detects every flip
    /// and retransmits (each detection also counts under `dropped_messages`,
    /// as the loss it becomes); the fire-and-forget engine discards the
    /// flipped payload. A corrupted payload is **never** delivered.
    pub corrupted_messages: u64,
    /// Messages re-sent by the reliable exchange layer after a lost or
    /// unacknowledged attempt; `0` outside reliable mode.
    pub retransmissions: u64,
    /// Messages the reliable layer delivered only after at least one
    /// retransmission (i.e. recovered from loss); `0` outside reliable mode.
    pub recovered_messages: u64,
    /// Nodes the reliable layer's failure detector declared dead (acks
    /// stopped arriving past the deterministic timeout).
    pub declared_dead: u64,
    /// Histogram of per-node per-exchange receive loads: `recv_load_hist[l]` =
    /// number of (node, exchange) pairs with load exactly `l` (saturating at the
    /// last bucket).
    pub recv_load_hist: Vec<u64>,
    /// Per-phase breakdown.
    pub phases: BTreeMap<String, PhaseStats>,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Looks up (or interns) the per-phase entry. A known phase label costs a
    /// map lookup and **no allocation** — this keeps the per-exchange hot path
    /// of [`crate::HybridNet::exchange_into`] allocation-free in steady state.
    fn phase_entry(&mut self, phase: &str) -> &mut PhaseStats {
        if !self.phases.contains_key(phase) {
            self.phases.insert(phase.to_string(), PhaseStats::default());
        }
        self.phases.get_mut(phase).expect("just interned")
    }

    /// Records `rounds` local rounds under `phase`.
    pub(crate) fn charge_local(&mut self, rounds: u64, phase: &str) {
        self.rounds += rounds;
        self.local_rounds += rounds;
        self.phase_entry(phase).rounds += rounds;
    }

    /// Records a global exchange: `rounds` rounds, `messages` messages.
    pub(crate) fn charge_global(&mut self, rounds: u64, messages: u64, phase: &str) {
        self.rounds += rounds;
        self.global_rounds += rounds;
        self.global_messages += messages;
        let e = self.phase_entry(phase);
        e.rounds += rounds;
        e.messages += messages;
        if rounds > 1 {
            self.stretched_exchanges += 1;
        }
    }

    /// Records rounds charged in bulk for the global mode (no messages, no
    /// stretch accounting).
    pub(crate) fn charge_global_rounds_only(&mut self, rounds: u64, phase: &str) {
        self.rounds += rounds;
        self.global_rounds += rounds;
        self.phase_entry(phase).rounds += rounds;
    }

    /// Records one node's receive load in an exchange.
    pub(crate) fn record_recv_load(&mut self, load: usize) {
        self.max_recv_load = self.max_recv_load.max(load);
        const MAX_BUCKET: usize = 256;
        let bucket = load.min(MAX_BUCKET);
        if self.recv_load_hist.len() <= bucket {
            self.recv_load_hist.resize(bucket + 1, 0);
        }
        self.recv_load_hist[bucket] += 1;
    }

    /// Renders a human-readable execution report (round totals, message
    /// counts, congestion, and the per-phase breakdown) — what the examples
    /// and the experiment harness print after a run.
    pub fn render_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "rounds: {} (local {}, global {})",
            self.rounds, self.local_rounds, self.global_rounds
        );
        let _ = writeln!(
            out,
            "global messages: {} (max send load {}, max recv load {}, stretched exchanges {})",
            self.global_messages, self.max_send_load, self.max_recv_load, self.stretched_exchanges
        );
        if self.cut_messages > 0 {
            let _ = writeln!(out, "cut crossings: {}", self.cut_messages);
        }
        if self.dropped_messages > 0 {
            let _ = writeln!(
                out,
                "fault-dropped messages: {} (lost {}, crash-suppressed {})",
                self.dropped_messages, self.dropped_by_loss, self.suppressed_by_crash
            );
        }
        if self.corrupted_messages > 0 {
            let _ = writeln!(
                out,
                "corrupted payloads: {} (checksum-detected, none delivered)",
                self.corrupted_messages
            );
        }
        if self.retransmissions > 0 || self.recovered_messages > 0 || self.declared_dead > 0 {
            let _ = writeln!(
                out,
                "reliable layer: {} retransmissions, {} recovered, {} declared dead",
                self.retransmissions, self.recovered_messages, self.declared_dead
            );
        }
        if let Some((p50, p95, max)) = self.recv_load_percentiles() {
            let _ = writeln!(out, "recv load: p50 {p50}, p95 {p95}, max {max}");
        }
        if !self.phases.is_empty() {
            let _ = writeln!(out, "phases:");
            let width = self.phases.keys().map(|k| k.len()).max().unwrap_or(0);
            for (phase, stats) in &self.phases {
                if stats.messages == 0 {
                    // Local-only phase: a `0 msgs` column would be noise.
                    let _ = writeln!(out, "  {phase:<width$}  {:>8} rounds", stats.rounds);
                } else {
                    let _ = writeln!(
                        out,
                        "  {phase:<width$}  {:>8} rounds  {:>10} msgs",
                        stats.rounds, stats.messages
                    );
                }
            }
        }
        out
    }

    /// p50/p95/max of the per-node per-exchange receive-load histogram, or
    /// `None` when no loads were recorded. The max is the histogram's top
    /// occupied bucket, so it saturates with the histogram (the exact maximum
    /// stays available as [`Metrics::max_recv_load`]).
    pub fn recv_load_percentiles(&self) -> Option<(usize, usize, usize)> {
        let total: u64 = self.recv_load_hist.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = |q_num: u64, q_den: u64| -> usize {
            // Smallest load l with cumulative count >= ceil(total * q).
            let target = (total * q_num).div_ceil(q_den);
            let mut seen = 0u64;
            for (load, &count) in self.recv_load_hist.iter().enumerate() {
                seen += count;
                if seen >= target {
                    return load;
                }
            }
            self.recv_load_hist.len() - 1
        };
        let max = self.recv_load_hist.iter().rposition(|&c| c > 0).unwrap_or(0);
        Some((rank(1, 2), rank(19, 20), max))
    }

    /// Merges another run's metrics into this one (used when an algorithm composes
    /// sub-protocols executed on separate nets, e.g. the CLIQUE simulation).
    pub fn absorb(&mut self, other: &Metrics) {
        self.rounds += other.rounds;
        self.local_rounds += other.local_rounds;
        self.global_rounds += other.global_rounds;
        self.global_messages += other.global_messages;
        self.max_send_load = self.max_send_load.max(other.max_send_load);
        self.max_recv_load = self.max_recv_load.max(other.max_recv_load);
        self.stretched_exchanges += other.stretched_exchanges;
        self.cut_messages += other.cut_messages;
        self.dropped_messages += other.dropped_messages;
        self.dropped_by_loss += other.dropped_by_loss;
        self.suppressed_by_crash += other.suppressed_by_crash;
        self.corrupted_messages += other.corrupted_messages;
        self.retransmissions += other.retransmissions;
        self.recovered_messages += other.recovered_messages;
        self.declared_dead += other.declared_dead;
        if self.recv_load_hist.len() < other.recv_load_hist.len() {
            self.recv_load_hist.resize(other.recv_load_hist.len(), 0);
        }
        for (i, &c) in other.recv_load_hist.iter().enumerate() {
            self.recv_load_hist[i] += c;
        }
        for (k, v) in &other.phases {
            let e = self.phases.entry(k.clone()).or_default();
            e.rounds += v.rounds;
            e.messages += v.messages;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut m = Metrics::new();
        m.charge_local(5, "explore");
        m.charge_global(1, 10, "route");
        m.charge_global(3, 30, "route");
        assert_eq!(m.rounds, 9);
        assert_eq!(m.local_rounds, 5);
        assert_eq!(m.global_rounds, 4);
        assert_eq!(m.global_messages, 40);
        assert_eq!(m.stretched_exchanges, 1);
        assert_eq!(m.phases["route"].rounds, 4);
        assert_eq!(m.phases["route"].messages, 40);
        assert_eq!(m.phases["explore"].rounds, 5);
    }

    #[test]
    fn recv_histogram_saturates() {
        let mut m = Metrics::new();
        m.record_recv_load(3);
        m.record_recv_load(3);
        m.record_recv_load(1000);
        assert_eq!(m.recv_load_hist[3], 2);
        assert_eq!(*m.recv_load_hist.last().unwrap(), 1);
        assert_eq!(m.max_recv_load, 1000);
    }

    #[test]
    fn report_renders_all_sections() {
        let mut m = Metrics::new();
        m.charge_local(3, "explore");
        m.charge_global(2, 14, "route");
        m.cut_messages = 5;
        m.record_recv_load(4);
        let r = m.render_report();
        assert!(r.contains("rounds: 5 (local 3, global 2)"));
        assert!(r.contains("global messages: 14"));
        assert!(r.contains("cut crossings: 5"));
        assert!(r.contains("recv load: p50 4, p95 4, max 4"));
        assert!(r.contains("explore"));
        assert!(r.contains("route"));
    }

    #[test]
    fn report_omits_empty_sections() {
        let m = Metrics::new();
        let r = m.render_report();
        assert!(!r.contains("cut crossings"));
        assert!(!r.contains("recv load:"));
        assert!(!r.contains("phases:"));
    }

    #[test]
    fn report_suppresses_msgs_column_for_local_only_phases() {
        let mut m = Metrics::new();
        m.charge_local(3, "explore");
        m.charge_global(2, 14, "route");
        let r = m.render_report();
        let explore = r.lines().find(|l| l.contains("explore")).unwrap();
        let route = r.lines().find(|l| l.contains("route")).unwrap();
        assert!(!explore.contains("msgs"), "local-only phase: {explore}");
        assert!(explore.trim_end().ends_with("rounds"));
        assert!(route.contains("14 msgs"), "global phase keeps msgs: {route}");
    }

    #[test]
    fn recv_load_percentiles_summarize_histogram() {
        let mut m = Metrics::new();
        assert_eq!(m.recv_load_percentiles(), None);
        // 10 samples of load 1, 9 of load 2, 1 of load 50.
        for _ in 0..10 {
            m.record_recv_load(1);
        }
        for _ in 0..9 {
            m.record_recv_load(2);
        }
        m.record_recv_load(50);
        // p50 = 10th of 20 samples -> load 1; p95 = 19th -> load 2; max 50.
        assert_eq!(m.recv_load_percentiles(), Some((1, 2, 50)));
    }

    #[test]
    fn drop_split_and_reliability_counters_render_and_absorb() {
        let mut m = Metrics::new();
        m.dropped_by_loss = 3;
        m.suppressed_by_crash = 2;
        m.dropped_messages = m.dropped_by_loss + m.suppressed_by_crash;
        m.corrupted_messages = 2;
        m.retransmissions = 4;
        m.recovered_messages = 3;
        m.declared_dead = 1;
        let r = m.render_report();
        assert!(r.contains("fault-dropped messages: 5 (lost 3, crash-suppressed 2)"));
        assert!(r.contains("corrupted payloads: 2 (checksum-detected, none delivered)"));
        assert!(r.contains("reliable layer: 4 retransmissions, 3 recovered, 1 declared dead"));
        let mut sum = Metrics::new();
        sum.absorb(&m);
        sum.absorb(&m);
        assert_eq!(sum.dropped_messages, 10);
        assert_eq!(sum.dropped_by_loss, 6);
        assert_eq!(sum.suppressed_by_crash, 4);
        assert_eq!(sum.corrupted_messages, 4);
        assert_eq!(sum.retransmissions, 8);
        assert_eq!(sum.recovered_messages, 6);
        assert_eq!(sum.declared_dead, 2);
        // The healthy report stays free of reliability noise.
        let healthy = Metrics::new().render_report();
        assert!(!healthy.contains("reliable layer"));
        assert!(!healthy.contains("corrupted"));
    }

    #[test]
    fn absorb_merges() {
        let mut a = Metrics::new();
        a.charge_local(2, "x");
        let mut b = Metrics::new();
        b.charge_global(4, 7, "x");
        b.record_recv_load(9);
        a.absorb(&b);
        assert_eq!(a.rounds, 6);
        assert_eq!(a.phases["x"].rounds, 6);
        assert_eq!(a.max_recv_load, 9);
    }
}
