//! Experiment runner: regenerates every table of EXPERIMENTS.md, drives the
//! scenario registry, and emits the machine-readable `BENCH_*.json` files.
//!
//! ```sh
//! cargo run --release -p hybrid-bench --bin experiments -- all
//! cargo run --release -p hybrid-bench --bin experiments -- e2 e5 e16
//! cargo run --release -p hybrid-bench --bin experiments -- --small all
//! cargo run --release -p hybrid-bench --bin experiments -- --large e2 e4
//! cargo run --release -p hybrid-bench --bin experiments -- --json
//! cargo run --release -p hybrid-bench --bin experiments -- --list
//! cargo run --release -p hybrid-bench --bin experiments -- --smoke
//! cargo run --release -p hybrid-bench --bin experiments -- --smoke --via-session
//! cargo run --release -p hybrid-bench --bin experiments -- --smoke --filter faulty
//! cargo run --release -p hybrid-bench --bin experiments -- --trace traces/
//! cargo run --release -p hybrid-bench --bin experiments -- --smoke --trace traces/
//! cargo run --release -p hybrid-bench --bin experiments -- --serve
//! cargo run --release -p hybrid-bench --bin experiments -- --serve --smoke
//! ```
//!
//! * `--list` prints the scenario registry (names, tags, families, faults).
//! * `--smoke` runs the full registry (or the `--filter <tag>` subset) at
//!   tiny `n` with golden verification, then the chaos recovery sweep
//!   (every `chaos-*` scenario next to its fault-free twin), then the churn
//!   repair sweep (patch-vs-full speedup, damage-threshold sweep, and the
//!   churn+chaos serving loop, gated on ≥ 2× incremental speedup and zero
//!   bit-identity mismatches), and exits non-zero on any `fail` — the CI
//!   gate. With `--json` it also writes `BENCH_scenarios.json`,
//!   `BENCH_chaos.json`, and `BENCH_churn.json`.
//! * `--via-session` makes `--smoke` execute every suite through a serving
//!   `Session` instead of a cold `solve` — the CI guard that the session
//!   path answers bit-identically under golden verification.
//! * `--filter <tag>` restricts scenario selection (for `--smoke` and `e16`).
//! * `--trace <dir>` writes one Chrome-trace JSON (`<name>.trace.json`,
//!   simulated rounds as the clock — load in `chrome://tracing` or Perfetto)
//!   plus a text rollup (`<name>.rollup.txt`) per traced run into `<dir>`.
//!   Alone it traces the E2 workload and one `chaos-*` scenario; with
//!   `--smoke` it traces every scenario in the matrix, and a trace that
//!   fails to reconcile against the metrics counters fails the run.
//! * `--large` extends the E2/E4 sweeps (and the `--json` APSP sweep) to
//!   n = 3200 with sampled verification.
//! * `--json` times the E2 APSP workload (Theorem 1.1, the SODA'20 baseline,
//!   and the sequential reference) and writes `BENCH_apsp.json`, plus the
//!   mixed-batch serving sweep into `BENCH_throughput.json`, the chaos
//!   recovery sweep into `BENCH_chaos.json`, and the churn repair sweep
//!   into `BENCH_churn.json`.
//! * `--serve` drives the multi-tenant broker with the closed-loop load
//!   generator over registry workloads — including the `serve-chaos`
//!   workload with faulty, crashing, and panicking tenants — and writes
//!   `BENCH_serving.json` (schema `hybrid-bench/serving-v2`: latency
//!   percentiles, saturation qps, shed rate, cache counters, plus retry,
//!   deadline, breaker, quarantine, and degradation counters). With
//!   `--smoke` it runs the short small-scale loop and exits non-zero on any
//!   bit-identity mismatch (which is also how corruption that slipped past
//!   the checksums would surface), request-accounting hole, breaker
//!   accounting leak, missing degraded service under chaos, or schema
//!   violation — the serving CI gate.

use hybrid_bench::experiments as ex;
use hybrid_bench::{json, Scale};
use hybrid_scenarios::registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else if args.iter().any(|a| a == "--large") {
        Scale::Large
    } else {
        Scale::Full
    };
    let emit_json = args.iter().any(|a| a == "--json");
    let list = args.iter().any(|a| a == "--list");
    let smoke = args.iter().any(|a| a == "--smoke");
    let engine = if args.iter().any(|a| a == "--via-session") {
        hybrid_scenarios::Engine::Session
    } else {
        hybrid_scenarios::Engine::Fresh
    };
    // Like a dangling --filter: a flag no code path will consult must error,
    // not silently run the Fresh engine.
    if engine == hybrid_scenarios::Engine::Session && !smoke {
        eprintln!("--via-session applies to --smoke runs only; nothing here consults it");
        std::process::exit(2);
    }
    // One pass: `--filter` and `--trace` consume the following value,
    // everything else without a `--` prefix is an experiment id.
    let mut filter: Option<String> = None;
    let mut filter_flag = false;
    let mut trace_dir: Option<std::path::PathBuf> = None;
    let mut trace_flag = false;
    let mut wanted: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--filter" {
            filter_flag = true;
            filter = iter.next().map(|s| s.to_string());
        } else if a == "--trace" {
            trace_flag = true;
            trace_dir = iter.next().map(std::path::PathBuf::from);
        } else if !a.starts_with("--") {
            wanted.push(a.as_str());
        }
    }
    if filter_flag && filter.is_none() {
        eprintln!("--filter requires a tag (see --list for the registry's tags)");
        std::process::exit(2);
    }
    if trace_flag && trace_dir.is_none() {
        eprintln!("--trace requires an output directory for the trace/rollup files");
        std::process::exit(2);
    }
    // `--trace` without `--smoke` is its own mode (trace the E2 workload plus
    // one chaos scenario, then exit); experiment ids or `--json` alongside it
    // would be silently ignored, so they must error like any unconsulted flag.
    if trace_dir.is_some() && !smoke && (!wanted.is_empty() || emit_json || list) {
        eprintln!("--trace combines only with --smoke; alone it traces the E2 workload and one chaos scenario");
        std::process::exit(2);
    }
    // A filter that no code path will consult must error, not silently gate
    // nothing: it applies to --smoke and to the e16 scenario matrix.
    let runs_e16 =
        wanted.contains(&"e16") || wanted.contains(&"all") || (wanted.is_empty() && !emit_json);
    if filter.is_some() && !smoke && !list && !runs_e16 {
        eprintln!("--filter applies to --smoke and e16 runs only; nothing here consults it");
        std::process::exit(2);
    }

    // `--serve`: the closed-loop broker sweep is its own mode; every flag it
    // doesn't consult (experiment ids, --trace, --filter, --via-session,
    // --list, --json — it always writes its JSON) must error, not silently
    // do nothing.
    if args.iter().any(|a| a == "--serve") {
        if !wanted.is_empty()
            || trace_flag
            || filter_flag
            || list
            || emit_json
            || engine != hybrid_scenarios::Engine::Fresh
        {
            eprintln!(
                "--serve combines only with --small/--large/--smoke; it always writes \
                 BENCH_serving.json"
            );
            std::process::exit(2);
        }
        let serve_scale = if smoke { Scale::Small } else { scale };
        let scale_name = match serve_scale {
            Scale::Small => "small",
            Scale::Full => "full",
            Scale::Large => "large",
        };
        eprintln!("running closed-loop serving sweep for BENCH_serving.json...");
        let records = ex::bench_serving_records(serve_scale);
        let doc = json::render_with_schema(json::SCHEMA_SERVING, scale_name, &records);
        std::fs::write("BENCH_serving.json", &doc).expect("write BENCH_serving.json");
        eprintln!("wrote BENCH_serving.json:");
        print!("{doc}");
        ex::serving_table(&records).print();
        // The serving gate: bit-identity must hold for every response (a
        // corrupted payload that slipped past the reliable layer's checksums
        // would land here as a mismatch), every request must be accounted
        // (served, shed, deadline-shed, breaker-rejected, or failed — no
        // silent loss), breaker counters must be self-consistent, the chaos
        // workload must actually exercise the degradation path, and the
        // emitted document must carry every serving-v2 field.
        let mut violations = Vec::new();
        for r in &records {
            let s = r.serving.as_ref().expect("serving record");
            let chaos = r.bench == "serve-chaos";
            if s.mismatches > 0 {
                violations.push(format!(
                    "{}: {} bit-identity mismatch(es) — possible undetected corruption",
                    r.bench, s.mismatches
                ));
            }
            // Only the chaos workload runs a deliberately panicking tenant;
            // its contained panics must be matched by quarantined sessions.
            if s.failed > 0 && !chaos {
                violations
                    .push(format!("{}: {} request(s) failed unstructured", r.bench, s.failed));
            }
            if chaos && s.failed > 0 && s.quarantined == 0 {
                violations.push(format!(
                    "{}: {} contained failure(s) but no session was quarantined",
                    r.bench, s.failed
                ));
            }
            let accounted = s.served + s.shed + s.deadline_shed + s.breaker_rejected + s.failed;
            if accounted != s.issued {
                violations.push(format!(
                    "{}: issued {} but accounted {} — silent request loss",
                    r.bench, s.issued, accounted
                ));
            }
            if s.verified < s.served {
                violations.push(format!(
                    "{}: only {} of {} served responses verified against a cold solve",
                    r.bench, s.verified, s.served
                ));
            }
            // Breaker accounting leaks: a probe can only follow an open, and
            // a rejection can only come from an open breaker. Healthy
            // workloads register no breaker tenants, so any activity there
            // is a leak outright.
            if s.breaker_probes > s.breaker_opens {
                violations.push(format!(
                    "{}: {} breaker probe(s) but only {} open(s)",
                    r.bench, s.breaker_probes, s.breaker_opens
                ));
            }
            if s.breaker_rejected > 0 && s.breaker_opens == 0 {
                violations.push(format!(
                    "{}: {} breaker rejection(s) without any breaker open",
                    r.bench, s.breaker_rejected
                ));
            }
            if !chaos && (s.breaker_opens > 0 || s.quarantined > 0 || s.degraded_served > 0) {
                violations.push(format!(
                    "{}: healthy workload leaked chaos counters (opens={} quarantined={} \
                     degraded={})",
                    r.bench, s.breaker_opens, s.quarantined, s.degraded_served
                ));
            }
            if chaos && s.degraded_served == 0 {
                violations.push(format!(
                    "{}: the crashing tenant never produced an explicitly degraded answer",
                    r.bench
                ));
            }
        }
        for field in [
            "\"schema\": \"hybrid-bench/serving-v2\"",
            "\"p50_ns\"",
            "\"p95_ns\"",
            "\"p99_ns\"",
            "\"qps\"",
            "\"shed_rate\"",
            "\"cache_hits\"",
            "\"cache_evicted\"",
            "\"retries\"",
            "\"deadline_shed\"",
            "\"breaker_rejected\"",
            "\"breaker_opens\"",
            "\"breaker_probes\"",
            "\"quarantined\"",
            "\"degraded_served\"",
        ] {
            if !doc.contains(field) {
                violations.push(format!("BENCH_serving.json schema violation: missing {field}"));
            }
        }
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("serving gate FAILED: {v}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "serving sweep healthy: every response bit-identical to its cold solve, \
             every request accounted, chaos contained"
        );
        return;
    }

    if list {
        println!(
            "{} registered scenarios (tags: {}):",
            registry().len(),
            hybrid_scenarios::all_tags().join(", ")
        );
        for sc in registry() {
            println!(
                "  {:<22} family={:<16} faults={:<14} suite={:<14} seed={:<4} default_n={:<5} tags=[{}]",
                sc.name,
                sc.family.label(),
                sc.faults.label(),
                sc.suite.label(),
                sc.seed,
                sc.default_n,
                sc.tags.join(", "),
            );
        }
        return;
    }

    if smoke {
        eprintln!(
            "running scenario smoke matrix (n = {}, filter = {}, engine = {:?})...",
            ex::SMOKE_N,
            filter.as_deref().unwrap_or("<none>"),
            engine,
        );
        let reports = ex::scenario_reports_with(Scale::Small, filter.as_deref(), engine);
        if reports.is_empty() {
            eprintln!("no scenarios match filter {:?}", filter);
            std::process::exit(2);
        }
        let failures = reports.iter().filter(|r| !r.passed()).count();
        ex::scenario_table(&reports).print();
        if emit_json {
            let doc = json::render_scenarios("small", &reports);
            std::fs::write("BENCH_scenarios.json", &doc).expect("write BENCH_scenarios.json");
            eprintln!("wrote BENCH_scenarios.json");
        }
        // The chaos recovery sweep rides every smoke run: each chaos-*
        // scenario next to its fault-free twin, gated on the must-recover
        // verdict like the matrix above.
        eprintln!("running chaos recovery sweep...");
        let chaos = ex::bench_chaos_records(Scale::Small);
        let chaos_failures = chaos.iter().filter(|r| r.verdict.as_deref() != Some("pass")).count();
        if emit_json {
            let doc = json::render_with_schema(json::SCHEMA_CHAOS, "small", &chaos);
            std::fs::write("BENCH_chaos.json", &doc).expect("write BENCH_chaos.json");
            eprintln!("wrote BENCH_chaos.json");
        }
        // The churn repair sweep rides every smoke run too: patch-vs-full
        // wall clock, the damage-threshold sweep, and the churn+chaos
        // serving loop, gated by `churn_gate_violations`.
        eprintln!("running churn repair sweep...");
        let churn = ex::bench_churn_records(Scale::Small);
        let churn_violations = ex::churn_gate_violations(&churn);
        for v in &churn_violations {
            eprintln!("churn gate FAILED: {v}");
        }
        if emit_json {
            let doc = json::render_with_schema(json::SCHEMA_CHURN, "small", &churn);
            std::fs::write("BENCH_churn.json", &doc).expect("write BENCH_churn.json");
            eprintln!("wrote BENCH_churn.json");
        }
        // `--smoke --trace <dir>`: one traced run per scenario in the matrix,
        // exporting the Chrome trace + rollup; a reconciliation mismatch
        // fails the verdict and therefore the gate below.
        let trace_failures = if let Some(dir) = &trace_dir {
            eprintln!("exporting smoke-matrix traces into {}...", dir.display());
            let selected: Vec<&hybrid_scenarios::Scenario> = match filter.as_deref() {
                Some(tag) => hybrid_scenarios::by_tag(tag),
                None => registry().iter().collect(),
            };
            ex::export_scenario_traces(dir, &selected, ex::SMOKE_N)
        } else {
            0
        };
        if failures + chaos_failures + churn_violations.len() + trace_failures > 0 {
            eprintln!(
                "{failures} scenario(s), {chaos_failures} chaos sweep run(s), {} churn gate \
                 violation(s), and {trace_failures} traced run(s) FAILED verification",
                churn_violations.len()
            );
            std::process::exit(1);
        }
        eprintln!(
            "all scenarios passed golden verification (chaos recovery and churn repair included)"
        );
        return;
    }

    // Plain `--trace <dir>`: trace the E2 workload (the perf-trajectory
    // anchor) and the first chaos scenario (retransmission waves and
    // degradation events in the stream), then exit.
    if let Some(dir) = &trace_dir {
        let chaos = hybrid_scenarios::by_tag("chaos");
        let chaos_first = chaos.first().copied().expect("registry ships chaos scenarios");
        let e2 = hybrid_scenarios::find("e2-er").expect("registry ships e2-er");
        eprintln!("exporting traces into {}...", dir.display());
        let trace_failures = ex::export_scenario_traces(dir, &[e2, chaos_first], ex::SMOKE_N);
        if trace_failures > 0 {
            eprintln!("{trace_failures} traced run(s) FAILED verification");
            std::process::exit(1);
        }
        return;
    }

    type Runner = fn(Scale) -> hybrid_bench::table::Table;
    // `--json` alone means "just the JSON sweep"; any experiment id (or `all`)
    // still runs the tables.
    let all = wanted.contains(&"all") || (wanted.is_empty() && !emit_json);
    let runs: Vec<(&str, Runner)> = vec![
        ("e1", ex::e1_token_routing),
        ("e2", ex::e2_apsp),
        ("e3", ex::e3_kssp),
        ("e4", ex::e4_sssp),
        ("e5", ex::e5_diameter),
        ("e6", ex::e6_kssp_lower_bound),
        ("e7", ex::e7_diameter_lower_bound),
        ("e8", ex::e8_helper_sets),
        ("e9", ex::e9_ruling_sets),
        ("e10", ex::e10_skeletons),
        ("e11", ex::e11_congestion),
        ("e12", ex::e12_clique_sim),
        ("e13", ex::e13_xi_ablation),
        ("e14", ex::e14_mu_ablation),
        ("e15", ex::e15_gamma_ablation),
        ("e16", ex::e16_scenarios),
    ];
    for (id, f) in runs {
        if all || wanted.contains(&id) {
            eprintln!("running {id}...");
            if id == "e16" && filter.is_some() {
                ex::scenario_table(&ex::scenario_reports(scale, filter.as_deref())).print();
            } else {
                f(scale).print();
            }
        }
    }
    if emit_json {
        let scale_name = match scale {
            Scale::Small => "small",
            Scale::Full => "full",
            Scale::Large => "large",
        };
        eprintln!("running APSP wall-clock sweep for BENCH_apsp.json...");
        let records = ex::bench_apsp_records(scale);
        let doc = json::render(scale_name, &records);
        let path = "BENCH_apsp.json";
        std::fs::write(path, &doc).expect("write BENCH_apsp.json");
        eprintln!("wrote {path}:");
        print!("{doc}");
        eprintln!("running mixed-batch serving sweep for BENCH_throughput.json...");
        let records = ex::bench_throughput_records(scale);
        let doc = json::render_with_schema(json::SCHEMA_THROUGHPUT, scale_name, &records);
        let path = "BENCH_throughput.json";
        std::fs::write(path, &doc).expect("write BENCH_throughput.json");
        eprintln!("wrote {path}:");
        print!("{doc}");
        eprintln!("running chaos recovery sweep for BENCH_chaos.json...");
        let records = ex::bench_chaos_records(scale);
        let doc = json::render_with_schema(json::SCHEMA_CHAOS, scale_name, &records);
        let path = "BENCH_chaos.json";
        std::fs::write(path, &doc).expect("write BENCH_chaos.json");
        eprintln!("wrote {path}:");
        print!("{doc}");
        eprintln!("running churn repair sweep for BENCH_churn.json...");
        let records = ex::bench_churn_records(scale);
        let doc = json::render_with_schema(json::SCHEMA_CHURN, scale_name, &records);
        let path = "BENCH_churn.json";
        std::fs::write(path, &doc).expect("write BENCH_churn.json");
        eprintln!("wrote {path}:");
        print!("{doc}");
    }
}
