//! Trace determinism: the structured event stream is part of the repo's
//! bit-identical contract. Two traced runs of the same scenario — and runs
//! under different round-engine thread budgets — must produce identical
//! event sequences modulo wall-clock stamps, and the chaos family's
//! retransmission events must account exactly for the metrics counter.

use hybrid_core::solver::solve;
use hybrid_scenarios::model::Scenario;
use hybrid_scenarios::{by_tag, find, registry};
use hybrid_sim::{Metrics, Recorder, TraceEvent};
use proptest::prelude::*;

/// One traced run of a scenario's suite at size ≈ `n`, optionally pinning
/// the round-engine worker budget. Returns the wall-stripped event stream
/// and the run's metrics; reconciliation is asserted on every run.
fn traced_run(sc: &Scenario, n: usize, threads: Option<usize>) -> (Vec<TraceEvent>, Metrics) {
    let g = sc.graph(n);
    let mut net = sc.net(&g);
    if let Some(t) = threads {
        net.set_round_threads(t);
    }
    net.set_trace(Recorder::new());
    let _ = solve(&mut net, &sc.suite.query(), sc.seed);
    let rec = net.take_trace().expect("recorder installed");
    rec.reconcile(net.metrics())
        .unwrap_or_else(|e| panic!("{} at n={n}: trace must reconcile: {e}", sc.name));
    (rec.events_sans_wall(), net.into_metrics())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any registered scenario, traced twice at the same size, emits the
    /// identical event sequence (wall-clock stamps aside) and the identical
    /// round bill.
    #[test]
    fn traced_runs_are_reproducible(idx in 0usize..registry().len(), n in 36usize..52) {
        let sc = &registry()[idx];
        let (a, ma) = traced_run(sc, n, None);
        let (b, mb) = traced_run(sc, n, None);
        prop_assert_eq!(&a, &b, "{} event streams diverged at n={}", sc.name, n);
        prop_assert_eq!(ma.rounds, mb.rounds);
        prop_assert_eq!(ma.global_messages, mb.global_messages);
    }
}

#[test]
fn thread_budget_never_changes_the_event_stream() {
    // One healthy and one chaos scenario, serial vs sharded round engine:
    // the per-shard trace buffers must merge to the serial stream exactly.
    for name in ["e2-er", "chaos-drop-p20-sssp"] {
        let sc = find(name).expect("registered scenario");
        let (serial, m1) = traced_run(sc, 48, Some(1));
        let (sharded, m4) = traced_run(sc, 48, Some(4));
        assert_eq!(serial, sharded, "{name}: 1-thread vs 4-thread events diverged");
        assert_eq!(m1.rounds, m4.rounds, "{name}: round bill diverged");
        assert_eq!(m1.max_recv_load, m4.max_recv_load, "{name}: recv loads diverged");
        assert!(!serial.is_empty());
    }
}

#[test]
fn chaos_wave_events_account_for_every_retransmission() {
    let mut any_retransmitted = false;
    for sc in by_tag("chaos") {
        let (events, metrics) = traced_run(sc, 48, None);
        let traced: u64 = events
            .iter()
            .map(|e| match e {
                TraceEvent::Wave { retransmissions, .. } => *retransmissions,
                TraceEvent::Absorb { retransmissions, .. } => *retransmissions,
                _ => 0,
            })
            .sum();
        assert_eq!(
            traced, metrics.retransmissions,
            "{}: retransmission events must match the metrics counter",
            sc.name
        );
        any_retransmitted |= traced > 0;
    }
    assert!(any_retransmitted, "the chaos sweep must exercise retransmission waves");
}
