//! Experiment runner: regenerates every table of EXPERIMENTS.md, drives the
//! scenario registry, and emits the machine-readable `BENCH_*.json` files.
//!
//! ```sh
//! cargo run --release -p hybrid-bench --bin experiments -- all
//! cargo run --release -p hybrid-bench --bin experiments -- e2 e5 e16
//! cargo run --release -p hybrid-bench --bin experiments -- --small all
//! cargo run --release -p hybrid-bench --bin experiments -- --large e2 e4
//! cargo run --release -p hybrid-bench --bin experiments -- --json
//! cargo run --release -p hybrid-bench --bin experiments -- --list
//! cargo run --release -p hybrid-bench --bin experiments -- --smoke
//! cargo run --release -p hybrid-bench --bin experiments -- --smoke --via-session
//! cargo run --release -p hybrid-bench --bin experiments -- --smoke --filter faulty
//! ```
//!
//! * `--list` prints the scenario registry (names, tags, families, faults).
//! * `--smoke` runs the full registry (or the `--filter <tag>` subset) at
//!   tiny `n` with golden verification, then the chaos recovery sweep
//!   (every `chaos-*` scenario next to its fault-free twin), and exits
//!   non-zero on any `fail` — the CI gate. With `--json` it also writes
//!   `BENCH_scenarios.json` and `BENCH_chaos.json`.
//! * `--via-session` makes `--smoke` execute every suite through a serving
//!   `Session` instead of a cold `solve` — the CI guard that the session
//!   path answers bit-identically under golden verification.
//! * `--filter <tag>` restricts scenario selection (for `--smoke` and `e16`).
//! * `--large` extends the E2/E4 sweeps (and the `--json` APSP sweep) to
//!   n = 3200 with sampled verification.
//! * `--json` times the E2 APSP workload (Theorem 1.1, the SODA'20 baseline,
//!   and the sequential reference) and writes `BENCH_apsp.json`, plus the
//!   mixed-batch serving sweep into `BENCH_throughput.json` and the chaos
//!   recovery sweep into `BENCH_chaos.json`.

use hybrid_bench::experiments as ex;
use hybrid_bench::{json, Scale};
use hybrid_scenarios::registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else if args.iter().any(|a| a == "--large") {
        Scale::Large
    } else {
        Scale::Full
    };
    let emit_json = args.iter().any(|a| a == "--json");
    let list = args.iter().any(|a| a == "--list");
    let smoke = args.iter().any(|a| a == "--smoke");
    let engine = if args.iter().any(|a| a == "--via-session") {
        hybrid_scenarios::Engine::Session
    } else {
        hybrid_scenarios::Engine::Fresh
    };
    // Like a dangling --filter: a flag no code path will consult must error,
    // not silently run the Fresh engine.
    if engine == hybrid_scenarios::Engine::Session && !smoke {
        eprintln!("--via-session applies to --smoke runs only; nothing here consults it");
        std::process::exit(2);
    }
    // One pass: `--filter` consumes the following value, everything else
    // without a `--` prefix is an experiment id.
    let mut filter: Option<String> = None;
    let mut filter_flag = false;
    let mut wanted: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--filter" {
            filter_flag = true;
            filter = iter.next().map(|s| s.to_string());
        } else if !a.starts_with("--") {
            wanted.push(a.as_str());
        }
    }
    if filter_flag && filter.is_none() {
        eprintln!("--filter requires a tag (see --list for the registry's tags)");
        std::process::exit(2);
    }
    // A filter that no code path will consult must error, not silently gate
    // nothing: it applies to --smoke and to the e16 scenario matrix.
    let runs_e16 =
        wanted.contains(&"e16") || wanted.contains(&"all") || (wanted.is_empty() && !emit_json);
    if filter.is_some() && !smoke && !list && !runs_e16 {
        eprintln!("--filter applies to --smoke and e16 runs only; nothing here consults it");
        std::process::exit(2);
    }

    if list {
        println!(
            "{} registered scenarios (tags: {}):",
            registry().len(),
            hybrid_scenarios::all_tags().join(", ")
        );
        for sc in registry() {
            println!(
                "  {:<22} family={:<16} faults={:<14} suite={:<14} seed={:<4} default_n={:<5} tags=[{}]",
                sc.name,
                sc.family.label(),
                sc.faults.label(),
                sc.suite.label(),
                sc.seed,
                sc.default_n,
                sc.tags.join(", "),
            );
        }
        return;
    }

    if smoke {
        eprintln!(
            "running scenario smoke matrix (n = {}, filter = {}, engine = {:?})...",
            ex::SMOKE_N,
            filter.as_deref().unwrap_or("<none>"),
            engine,
        );
        let reports = ex::scenario_reports_with(Scale::Small, filter.as_deref(), engine);
        if reports.is_empty() {
            eprintln!("no scenarios match filter {:?}", filter);
            std::process::exit(2);
        }
        let failures = reports.iter().filter(|r| !r.passed()).count();
        ex::scenario_table(&reports).print();
        if emit_json {
            let doc = json::render_scenarios("small", &reports);
            std::fs::write("BENCH_scenarios.json", &doc).expect("write BENCH_scenarios.json");
            eprintln!("wrote BENCH_scenarios.json");
        }
        // The chaos recovery sweep rides every smoke run: each chaos-*
        // scenario next to its fault-free twin, gated on the must-recover
        // verdict like the matrix above.
        eprintln!("running chaos recovery sweep...");
        let chaos = ex::bench_chaos_records(Scale::Small);
        let chaos_failures = chaos.iter().filter(|r| r.verdict.as_deref() != Some("pass")).count();
        if emit_json {
            let doc = json::render_with_schema(json::SCHEMA_CHAOS, "small", &chaos);
            std::fs::write("BENCH_chaos.json", &doc).expect("write BENCH_chaos.json");
            eprintln!("wrote BENCH_chaos.json");
        }
        if failures + chaos_failures > 0 {
            eprintln!(
                "{failures} scenario(s) and {chaos_failures} chaos sweep run(s) FAILED verification"
            );
            std::process::exit(1);
        }
        eprintln!("all scenarios passed golden verification (chaos recovery included)");
        return;
    }

    type Runner = fn(Scale) -> hybrid_bench::table::Table;
    // `--json` alone means "just the JSON sweep"; any experiment id (or `all`)
    // still runs the tables.
    let all = wanted.contains(&"all") || (wanted.is_empty() && !emit_json);
    let runs: Vec<(&str, Runner)> = vec![
        ("e1", ex::e1_token_routing),
        ("e2", ex::e2_apsp),
        ("e3", ex::e3_kssp),
        ("e4", ex::e4_sssp),
        ("e5", ex::e5_diameter),
        ("e6", ex::e6_kssp_lower_bound),
        ("e7", ex::e7_diameter_lower_bound),
        ("e8", ex::e8_helper_sets),
        ("e9", ex::e9_ruling_sets),
        ("e10", ex::e10_skeletons),
        ("e11", ex::e11_congestion),
        ("e12", ex::e12_clique_sim),
        ("e13", ex::e13_xi_ablation),
        ("e14", ex::e14_mu_ablation),
        ("e15", ex::e15_gamma_ablation),
        ("e16", ex::e16_scenarios),
    ];
    for (id, f) in runs {
        if all || wanted.contains(&id) {
            eprintln!("running {id}...");
            if id == "e16" && filter.is_some() {
                ex::scenario_table(&ex::scenario_reports(scale, filter.as_deref())).print();
            } else {
                f(scale).print();
            }
        }
    }
    if emit_json {
        let scale_name = match scale {
            Scale::Small => "small",
            Scale::Full => "full",
            Scale::Large => "large",
        };
        eprintln!("running APSP wall-clock sweep for BENCH_apsp.json...");
        let records = ex::bench_apsp_records(scale);
        let doc = json::render(scale_name, &records);
        let path = "BENCH_apsp.json";
        std::fs::write(path, &doc).expect("write BENCH_apsp.json");
        eprintln!("wrote {path}:");
        print!("{doc}");
        eprintln!("running mixed-batch serving sweep for BENCH_throughput.json...");
        let records = ex::bench_throughput_records(scale);
        let doc = json::render_with_schema(json::SCHEMA_THROUGHPUT, scale_name, &records);
        let path = "BENCH_throughput.json";
        std::fs::write(path, &doc).expect("write BENCH_throughput.json");
        eprintln!("wrote {path}:");
        print!("{doc}");
        eprintln!("running chaos recovery sweep for BENCH_chaos.json...");
        let records = ex::bench_chaos_records(scale);
        let doc = json::render_with_schema(json::SCHEMA_CHAOS, scale_name, &records);
        let path = "BENCH_chaos.json";
        std::fs::write(path, &doc).expect("write BENCH_chaos.json");
        eprintln!("wrote {path}:");
        print!("{doc}");
    }
}
