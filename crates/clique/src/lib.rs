//! Congested-clique (CLIQUE) substrate.
//!
//! §4 of Kuhn & Schneider simulates CLIQUE-model algorithms on a skeleton graph of
//! the HYBRID network (Corollary 4.1) and transfers their guarantees through the
//! framework of Theorem 4.1. This crate provides that substrate:
//!
//! * [`CliqueNet`] — a cost-model simulator of the CLIQUE: in each round every
//!   node may exchange one `O(log n)`-bit message with every other node; by
//!   Lenzen's routing theorem this is equivalent (up to constants) to delivering
//!   any batch in which every node sends and receives at most `n` messages in one
//!   round. [`CliqueNet::route`] charges exactly
//!   `max_v ⌈max(sent_v, recv_v) / n⌉` rounds per batch.
//! * Genuine CLIQUE algorithms with simulated communication:
//!   [`bellman_ford::BellmanFordKSsp`] (exact k-source shortest paths) and
//!   [`semiring::SemiringApsp`] (exact APSP by min-plus matrix squaring with a 3D
//!   work partition, `Õ(n^{1/3})` rounds per squaring).
//! * [`declared`] — wrappers for the algorithms of Censor-Hillel et al. [7, 8]
//!   that the paper plugs into its framework. Reimplementing distributed
//!   algebraic matrix multiplication is out of scope (see DESIGN.md §3); the
//!   wrappers produce outputs meeting the declared `(α, β)` contract (with
//!   randomized noise so downstream error handling is actually exercised)
//!   and charge the declared round complexity `T_A = Õ(η n^δ)`.
//! * [`diameter`] — CLIQUE diameter algorithms (exact via APSP, and the declared
//!   `(3/2 + ε, W)`-approximation of \[7\]).
//!
//! All algorithms implement the [`traits::CliqueKsspAlgorithm`] /
//! [`traits::CliqueDiameterAlgorithm`] traits, which expose the
//! `(γ, δ, η, α, β)` parameters Theorem 4.1 consumes.

#![warn(missing_docs)]
// Per-node `for v in 0..n` index loops are the message-passing idiom here
// (v *is* the node); the clippy range-loop suggestion would obscure that.
#![allow(clippy::needless_range_loop)]

pub mod bellman_ford;
pub mod declared;
pub mod diameter;
pub mod net;
pub mod semiring;
pub mod traits;

pub use net::{CliqueError, CliqueMsg, CliqueNet};
pub use traits::{
    Beta, CliqueDiameterAlgorithm, CliqueKsspAlgorithm, KsspEstimates, SourceCapacity,
};
